"""Decision-metric tests (Eq. 2: T_c and T_r)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    CarbonModel,
    ChipDesign,
    ChoiceRegime,
    InvalidDesignError,
    ParameterError,
    ParameterSet,
    Workload,
    decision_metrics,
)
from repro.core.metrics import format_decision_table

PARAMS = ParameterSet.default()
WL = Workload.autonomous_vehicle()


@pytest.fixture(scope="module")
def base_report():
    orin = ChipDesign.planar_2d(
        "ORIN_2D", "7nm", gate_count=17e9, throughput_tops=254.0,
        efficiency_tops_per_w=2.74,
    )
    return CarbonModel(orin, PARAMS).evaluate(WL)


def alt_report(base_name: str, integration: str):
    orin = ChipDesign.planar_2d(
        base_name, "7nm", gate_count=17e9, throughput_tops=254.0,
        efficiency_tops_per_w=2.74,
    )
    design = ChipDesign.homogeneous_split(orin, integration)
    return CarbonModel(design, PARAMS).evaluate(WL)


class TestRegimes:
    def test_hybrid_always_better(self, base_report):
        """Hybrid saves embodied AND operational: T_c > 0 (Table 5)."""
        m = decision_metrics(base_report, alt_report("ORIN_2D", "hybrid_3d"))
        assert m.regime is ChoiceRegime.ALWAYS_BETTER
        assert m.tc_years == 0.0
        assert m.choose_recommended

    def test_emib_better_until_tc(self, base_report):
        """EMIB saves embodied, costs operational: finite T_c, T_r = ∞."""
        m = decision_metrics(base_report, alt_report("ORIN_2D", "emib"))
        assert m.regime is ChoiceRegime.BETTER_UNTIL_TC
        assert 0 < m.tc_years < math.inf
        assert math.isinf(m.tr_years)
        assert m.choose_recommended  # 10-year life < Tc

    def test_si_interposer_never(self, base_report):
        """Si interposer costs both: T_c = T_r = ∞ (Table 5)."""
        m = decision_metrics(base_report, alt_report("ORIN_2D", "si_interposer"))
        assert m.regime is ChoiceRegime.NEVER_BETTER
        assert math.isinf(m.tc_years)
        assert math.isinf(m.tr_years)
        assert not m.choose_recommended
        assert not m.replace_recommended

    def test_m3d_finite_tr(self, base_report):
        """M3D saves operational: finite replacement breakeven."""
        m = decision_metrics(base_report, alt_report("ORIN_2D", "m3d"))
        assert m.regime is ChoiceRegime.ALWAYS_BETTER
        assert 0 < m.tr_years < math.inf
        # Paper: Tr > 19 years ≫ 10-year life → don't replace.
        assert m.tr_years > 10.0
        assert not m.replace_recommended

    def test_tr_exceeds_tc_when_both_finite(self, base_report):
        """T_r − T_c = C_emb^2D / savings-rate > 0 by construction."""
        m = decision_metrics(base_report, alt_report("ORIN_2D", "m3d"))
        if math.isfinite(m.tr_years) and math.isfinite(m.tc_years):
            assert m.tr_years >= m.tc_years


class TestGuards:
    def test_invalid_design_rejected(self, base_report):
        mcm = alt_report("ORIN_2D", "mcm")
        assert not mcm.valid
        with pytest.raises(InvalidDesignError):
            decision_metrics(base_report, mcm)

    def test_missing_operational_rejected(self, base_report):
        orin = ChipDesign.planar_2d(
            "ORIN_2D", "7nm", gate_count=17e9, throughput_tops=254.0
        )
        no_op = CarbonModel(orin, PARAMS).evaluate()  # no workload
        with pytest.raises(ParameterError):
            decision_metrics(no_op, base_report)

    def test_bad_lifetime_rejected(self, base_report):
        with pytest.raises(ParameterError):
            decision_metrics(
                base_report, alt_report("ORIN_2D", "emib"),
                lifetime_years=-1.0,
            )


class TestRatios:
    def test_save_ratios_consistent(self, base_report):
        alt = alt_report("ORIN_2D", "hybrid_3d")
        m = decision_metrics(base_report, alt)
        assert m.embodied_save_ratio == pytest.approx(
            1.0 - alt.embodied_kg / base_report.embodied_kg
        )
        assert m.overall_save_ratio == pytest.approx(
            1.0 - alt.total_kg / base_report.total_kg
        )

    def test_delta_signs(self, base_report):
        hybrid = decision_metrics(base_report, alt_report("ORIN_2D", "hybrid_3d"))
        assert hybrid.embodied_delta_kg < 0
        assert hybrid.annual_op_savings_kg > 0
        si = decision_metrics(
            base_report, alt_report("ORIN_2D", "si_interposer")
        )
        assert si.embodied_delta_kg > 0
        assert si.annual_op_savings_kg < 0

    def test_table_renders(self, base_report):
        metrics = [
            decision_metrics(base_report, alt_report("ORIN_2D", name))
            for name in ("emib", "hybrid_3d", "m3d")
        ]
        text = format_decision_table(metrics)
        assert "emb save" in text
        assert "inf" in text      # EMIB's Tr
        assert ">0" in text       # hybrid's Tc


class TestSyntheticRegimes:
    """Exercise Eq. 2's sign logic with synthetic reports via hypothesis."""

    @staticmethod
    def _fake_reports(emb_base, emb_alt, op_base, op_alt):
        from dataclasses import dataclass

        @dataclass
        class FakeOp:
            total_kg: float
            lifetime_years: float = 10.0

        @dataclass
        class FakeReport:
            design_name: str
            embodied_kg: float
            operational: FakeOp
            valid: bool = True

            @property
            def total_kg(self):
                return self.embodied_kg + self.operational.total_kg

        return (
            FakeReport("base", emb_base, FakeOp(op_base)),
            FakeReport("alt", emb_alt, FakeOp(op_alt)),
        )

    @given(
        emb_base=st.floats(min_value=1.0, max_value=100.0),
        emb_alt=st.floats(min_value=1.0, max_value=100.0),
        op_base=st.floats(min_value=1.0, max_value=100.0),
        op_alt=st.floats(min_value=1.0, max_value=100.0),
    )
    @settings(max_examples=300, deadline=None)
    def test_regime_partition(self, emb_base, emb_alt, op_base, op_alt):
        base, alt = self._fake_reports(emb_base, emb_alt, op_base, op_alt)
        m = decision_metrics(base, alt)
        assert m.tc_years >= 0.0
        assert m.tr_years > 0.0
        if m.regime is ChoiceRegime.ALWAYS_BETTER:
            assert emb_alt <= emb_base and op_alt <= op_base
        if m.regime is ChoiceRegime.NEVER_BETTER:
            assert math.isinf(m.tc_years)
        if math.isfinite(m.tr_years) and math.isfinite(m.tc_years):
            assert m.tr_years >= m.tc_years - 1e-9
