"""Unit-conversion tests: the power-of-ten backbone of the model."""

import math

import pytest

from repro.errors import UnitError
from repro import units


class TestArea:
    def test_mm2_to_cm2(self):
        assert units.mm2_to_cm2(100.0) == 1.0

    def test_cm2_to_mm2_roundtrip(self):
        assert units.cm2_to_mm2(units.mm2_to_cm2(57.3)) == pytest.approx(57.3)

    def test_um2_to_mm2(self):
        assert units.um2_to_mm2(1.0e6) == 1.0

    def test_nm_to_mm(self):
        assert units.nm_to_mm(1.0e6) == 1.0

    def test_um_to_mm(self):
        assert units.um_to_mm(1000.0) == 1.0


class TestWaferGeometry:
    def test_wafer_area_300mm(self):
        # π·150² = 70685.83 mm²
        assert units.wafer_area_mm2(300.0) == pytest.approx(70685.83, rel=1e-6)

    def test_table2_wafer_area_range(self):
        """Table 2: A_wafer spans 31,415.93–159,043.13 mm² (200–450 mm)."""
        assert units.wafer_area_mm2(200.0) == pytest.approx(31415.93, abs=0.01)
        assert units.wafer_area_mm2(450.0) == pytest.approx(159043.13, abs=0.01)

    def test_diameter_area_roundtrip(self):
        for diameter in units.WAFER_DIAMETERS_MM:
            area = units.wafer_area_mm2(diameter)
            assert units.wafer_diameter_mm(area) == pytest.approx(diameter)

    def test_negative_diameter_rejected(self):
        with pytest.raises(UnitError):
            units.wafer_area_mm2(-1.0)

    def test_zero_area_rejected(self):
        with pytest.raises(UnitError):
            units.wafer_diameter_mm(0.0)


class TestCarbonEnergy:
    def test_grams_per_kwh(self):
        assert units.grams_per_kwh(500.0) == 0.5

    def test_grams_negative_rejected(self):
        with pytest.raises(UnitError):
            units.grams_per_kwh(-1.0)

    def test_kwh_from_w_hours(self):
        # 100 W for 10 h = 1 kWh
        assert units.kwh_from_w_hours(100.0, 10.0) == pytest.approx(1.0)

    def test_kwh_rejects_negative_power(self):
        with pytest.raises(UnitError):
            units.kwh_from_w_hours(-5.0, 1.0)

    def test_kwh_rejects_negative_hours(self):
        with pytest.raises(UnitError):
            units.kwh_from_w_hours(5.0, -1.0)

    def test_years_to_hours_always_on(self):
        assert units.years_to_hours(1.0) == pytest.approx(365.25 * 24.0)

    def test_years_to_hours_duty_cycle(self):
        assert units.years_to_hours(10.0, 1.0) == pytest.approx(3652.5)

    def test_years_to_hours_rejects_bad_duty(self):
        with pytest.raises(UnitError):
            units.years_to_hours(1.0, 25.0)

    def test_years_to_hours_rejects_negative(self):
        with pytest.raises(UnitError):
            units.years_to_hours(-1.0)


class TestInterfaces:
    def test_gbps_conversion(self):
        assert units.gbps_to_bits_per_s(3.4) == pytest.approx(3.4e9)

    def test_tbps_to_gbps(self):
        assert units.tbps_to_gbps(1.0) == 1000.0

    def test_io_power_one_lane(self):
        # 150 fJ/bit at 3.4 Gbps = 0.51 mW
        assert units.io_power_w(150.0, 3.4) == pytest.approx(5.1e-4)

    def test_io_power_zero_rate(self):
        assert units.io_power_w(150.0, 0.0) == 0.0

    def test_io_power_rejects_negative(self):
        with pytest.raises(UnitError):
            units.io_power_w(-1.0, 1.0)

    def test_terabytes_per_s(self):
        assert units.terabytes_per_s(8.0e12) == pytest.approx(1.0)

    def test_tops_to_ops(self):
        assert units.tops_to_ops(254.0) == pytest.approx(2.54e14)
