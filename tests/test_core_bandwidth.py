"""Bandwidth-constraint tests (Sec. 3.4, Eq. 18)."""

import pytest

from repro import ChipDesign, ParameterSet
from repro.core.bandwidth import (
    degradation_from_ratio,
    evaluate_bandwidth,
    io_lane_count,
)
from repro.core.resolve import resolve_design

PARAMS = ParameterSet.default()


def bw(design, params=PARAMS):
    return evaluate_bandwidth(resolve_design(design, params), params)


class TestDegradationCurve:
    def test_no_loss_at_full_bandwidth(self):
        assert degradation_from_ratio(1.0, PARAMS) == 0.0
        assert degradation_from_ratio(1.5, PARAMS) == 0.0

    def test_mcm_gpu_anchor(self):
        """20 % loss at half bandwidth (Arunkumar ISCA'17)."""
        assert degradation_from_ratio(0.5, PARAMS) == pytest.approx(0.20)

    def test_linear_between(self):
        assert degradation_from_ratio(0.75, PARAMS) == pytest.approx(0.10)

    def test_monotone(self):
        ratios = [1.0, 0.9, 0.7, 0.5, 0.3, 0.1]
        degs = [degradation_from_ratio(r, PARAMS) for r in ratios]
        assert all(a <= b for a, b in zip(degs, degs[1:]))

    def test_capped_at_one(self):
        assert degradation_from_ratio(0.0, PARAMS) <= 1.0


class TestConstraintApplication:
    def test_2d_unconstrained(self, orin_2d):
        result = bw(orin_2d)
        assert not result.constrained
        assert result.valid
        assert result.degradation == 0.0

    def test_3d_matches_onchip(self, hybrid_stack, m3d_stack):
        """Sec. 3.4: 3D I/O bandwidth matches 2D on-chip bandwidth."""
        for design in (hybrid_stack, m3d_stack):
            result = bw(design)
            assert not result.constrained
            assert result.valid

    def test_25d_constrained(self, emib_assembly):
        result = bw(emib_assembly)
        assert result.constrained
        assert result.required_tb_s > 0
        assert result.achieved_tb_s > 0
        assert len(result.io_lanes_per_die) == 2

    def test_required_follows_eq(self, emib_assembly):
        result = bw(emib_assembly)
        assert result.required_tb_s == pytest.approx(
            254.0 * PARAMS.bandwidth.traffic_bytes_per_op
        )

    def test_no_throughput_means_unconstrained(self, orin_2d):
        design = ChipDesign.homogeneous_split(
            orin_2d.with_overrides(throughput_tops=None), "emib"
        )
        result = bw(design)
        assert not result.constrained

    def test_disabled_constraint(self, emib_assembly):
        params = PARAMS.with_bandwidth(enabled=False)
        result = evaluate_bandwidth(
            resolve_design(emib_assembly, params), params
        )
        assert not result.constrained
        assert result.valid

    def test_orin_validity_pattern(self, orin_2d):
        """Sec. 5.2: EMIB/Si valid for ORIN; MCM and InFO invalid."""
        assert bw(ChipDesign.homogeneous_split(orin_2d, "emib")).valid
        assert bw(ChipDesign.homogeneous_split(orin_2d, "si_interposer")).valid
        assert not bw(ChipDesign.homogeneous_split(orin_2d, "mcm")).valid
        assert not bw(ChipDesign.homogeneous_split(orin_2d, "info")).valid

    def test_denser_interface_more_bandwidth(self, orin_2d):
        mcm = bw(ChipDesign.homogeneous_split(orin_2d, "mcm"))
        emib = bw(ChipDesign.homogeneous_split(orin_2d, "emib"))
        si = bw(ChipDesign.homogeneous_split(orin_2d, "si_interposer"))
        assert mcm.achieved_tb_s < emib.achieved_tb_s < si.achieved_tb_s

    def test_runtime_stretch(self, orin_2d):
        emib = bw(ChipDesign.homogeneous_split(orin_2d, "emib"))
        if emib.degradation > 0:
            assert emib.runtime_stretch == pytest.approx(
                1.0 / (1.0 - emib.degradation)
            )
        unconstrained = bw(orin_2d)
        assert unconstrained.runtime_stretch == 1.0


class TestIoLaneCount:
    def test_eq17_n_pitch(self, emib_assembly):
        resolved = resolve_design(emib_assembly, PARAMS)
        rdie = resolved.dies[0]
        spec = resolved.spec
        lanes = io_lane_count(rdie, spec.io_density_per_mm_per_layer)
        assert lanes == pytest.approx(
            rdie.edge_mm * spec.io_density_per_mm_per_layer
            * rdie.beol.layers
        )

    def test_lanes_grow_with_die_edge(self, orin_2d):
        small = ChipDesign.planar_2d(
            "small", "7nm", gate_count=2e9, throughput_tops=30.0
        )
        big_asm = bw(ChipDesign.homogeneous_split(orin_2d, "emib"))
        small_asm = bw(ChipDesign.homogeneous_split(small, "emib"))
        assert max(big_asm.io_lanes_per_die) > max(small_asm.io_lanes_per_die)
