"""Component-calculator tests: Eq. 4 (die), Eq. 11 (bonding), Eq. 12
(packaging), Eq. 13–14 (interposer)."""

import pytest

from repro import ChipDesign, ParameterSet
from repro.config.integration import AssemblyFlow, SubstrateKind
from repro.core.bonding_carbon import bonding_carbon
from repro.core.design import Die, PackageSpec
from repro.core.die_carbon import die_manufacturing_carbon
from repro.core.interposer_carbon import interposer_carbon
from repro.core.packaging_carbon import package_base_area_mm2, packaging_carbon
from repro.core.resolve import resolve_design

PARAMS = ParameterSet.default()
CI = PARAMS.grid("taiwan").kg_co2_per_kwh


def resolve(design):
    return resolve_design(design, PARAMS)


class TestDieCarbon:
    def test_2d_single_record(self, orin_2d):
        result = die_manufacturing_carbon(resolve(orin_2d), PARAMS, CI)
        assert len(result.records) == 1
        assert result.total_kg > 0

    def test_record_consistency(self, orin_2d):
        record = die_manufacturing_carbon(resolve(orin_2d), PARAMS, CI).records[0]
        expected = (
            record.carbon_per_cm2
            * record.effective_wafer_area_mm2 / 100.0
            / record.effective_yield
        )
        assert record.carbon_kg == pytest.approx(expected)

    def test_split_dies_cheaper_total(self, orin_2d, hybrid_stack):
        """Two half dies yield better than one big die (Eq. 4 + Eq. 15)."""
        full = die_manufacturing_carbon(resolve(orin_2d), PARAMS, CI)
        split = die_manufacturing_carbon(resolve(hybrid_stack), PARAMS, CI)
        assert split.total_kg < full.total_kg

    def test_m3d_merges_to_one_record(self, m3d_stack):
        result = die_manufacturing_carbon(resolve(m3d_stack), PARAMS, CI)
        assert len(result.records) == 1
        assert "m3d" in result.records[0].name

    def test_m3d_footprint_is_max_tier(self, m3d_stack):
        resolved = resolve(m3d_stack)
        record = die_manufacturing_carbon(resolved, PARAMS, CI).records[0]
        assert record.die_area_mm2 == pytest.approx(
            max(d.area_mm2 for d in resolved.dies)
        )

    def test_greener_fab_less_carbon(self, orin_2d):
        dirty = die_manufacturing_carbon(resolve(orin_2d), PARAMS, 0.7)
        clean = die_manufacturing_carbon(resolve(orin_2d), PARAMS, 0.03)
        assert clean.total_kg < dirty.total_kg

    def test_w2w_die_carbon_exceeds_d2w(self, lakefield_like):
        """W2W wastes dies bonded to dead partners (Sec. 4.2)."""
        d2w = die_manufacturing_carbon(resolve(lakefield_like), PARAMS, CI)
        w2w_design = lakefield_like.with_overrides(assembly=AssemblyFlow.W2W)
        w2w = die_manufacturing_carbon(resolve(w2w_design), PARAMS, CI)
        assert w2w.total_kg > d2w.total_kg


class TestBondingCarbon:
    def test_2d_has_none(self, orin_2d):
        assert bonding_carbon(resolve(orin_2d), PARAMS, CI).total_kg == 0.0

    def test_m3d_has_none(self, m3d_stack):
        """Sequential manufacturing performs no bond step."""
        assert bonding_carbon(resolve(m3d_stack), PARAMS, CI).total_kg == 0.0

    def test_3d_has_n_minus_1_bonds(self, hybrid_stack):
        result = bonding_carbon(resolve(hybrid_stack), PARAMS, CI)
        assert len(result.records) == 1  # 2 dies → 1 bond

    def test_25d_has_n_bonds(self, emib_assembly):
        result = bonding_carbon(resolve(emib_assembly), PARAMS, CI)
        assert len(result.records) == 2  # 2 dies → 2 die-attach steps

    def test_record_consistency(self, hybrid_stack):
        record = bonding_carbon(resolve(hybrid_stack), PARAMS, CI).records[0]
        expected = (
            CI * record.epa_kwh_per_cm2 * record.area_mm2 / 100.0
            / record.effective_yield
        )
        assert record.carbon_kg == pytest.approx(expected)

    def test_hybrid_bond_costs_more_than_c4(self, hybrid_stack, emib_assembly):
        hybrid = bonding_carbon(resolve(hybrid_stack), PARAMS, CI)
        emib = bonding_carbon(resolve(emib_assembly), PARAMS, CI)
        # per-step comparison (areas are similar)
        assert (hybrid.records[0].carbon_kg
                > emib.records[0].carbon_kg)

    def test_scales_with_ci(self, hybrid_stack):
        low = bonding_carbon(resolve(hybrid_stack), PARAMS, 0.1)
        high = bonding_carbon(resolve(hybrid_stack), PARAMS, 0.5)
        assert high.total_kg == pytest.approx(5.0 * low.total_kg)


class TestPackagingCarbon:
    def test_2d_base_is_die(self, orin_2d):
        resolved = resolve(orin_2d)
        assert package_base_area_mm2(resolved) == pytest.approx(
            resolved.dies[0].area_mm2
        )

    def test_3d_base_is_max_die(self, lakefield_like):
        resolved = resolve(lakefield_like)
        assert package_base_area_mm2(resolved) == pytest.approx(
            max(d.area_mm2 for d in resolved.dies)
        )

    def test_25d_base_is_total(self, emib_assembly):
        resolved = resolve(emib_assembly)
        assert package_base_area_mm2(resolved) == pytest.approx(
            sum(d.area_mm2 for d in resolved.dies)
        )

    def test_m3d_base_is_footprint(self, m3d_stack):
        resolved = resolve(m3d_stack)
        assert package_base_area_mm2(resolved) == pytest.approx(
            resolved.m3d_stack.footprint_mm2
        )

    def test_area_override_honoured(self, lakefield_like):
        result = packaging_carbon(resolve(lakefield_like), PARAMS)
        assert result.package_area_mm2 == 144.0

    def test_carbon_formula(self, orin_2d):
        result = packaging_carbon(resolve(orin_2d), PARAMS)
        assert result.carbon_kg == pytest.approx(
            result.cpa_kg_per_cm2 * result.package_area_mm2 / 100.0
        )

    def test_3d_package_smaller_than_2d(self, orin_2d, hybrid_stack):
        """Stacking shrinks the package footprint (Sec. 3.2.3)."""
        full = packaging_carbon(resolve(orin_2d), PARAMS)
        stacked = packaging_carbon(resolve(hybrid_stack), PARAMS)
        assert stacked.package_area_mm2 < full.package_area_mm2


class TestInterposerCarbon:
    def test_2d_zero(self, orin_2d):
        result = interposer_carbon(resolve(orin_2d), PARAMS, CI)
        assert result.carbon_kg == 0.0
        assert result.kind is SubstrateKind.NONE

    def test_3d_zero(self, hybrid_stack):
        assert interposer_carbon(resolve(hybrid_stack), PARAMS, CI).carbon_kg == 0.0

    def test_mcm_organic_zero(self, orin_2d):
        mcm = ChipDesign.homogeneous_split(orin_2d, "mcm")
        result = interposer_carbon(resolve(mcm), PARAMS, CI)
        assert result.carbon_kg == 0.0

    def test_emib_bridge_small(self, orin_2d, emib_assembly):
        emib = interposer_carbon(resolve(emib_assembly), PARAMS, CI)
        si = ChipDesign.homogeneous_split(orin_2d, "si_interposer")
        interposer = interposer_carbon(resolve(si), PARAMS, CI)
        assert 0.0 < emib.carbon_kg < interposer.carbon_kg / 3.0

    def test_si_interposer_area_eq13(self, orin_2d):
        si = ChipDesign.homogeneous_split(orin_2d, "si_interposer")
        resolved = resolve(si)
        result = interposer_carbon(resolved, PARAMS, CI)
        expected = (
            PARAMS.substrate.si_interposer_scale
            * sum(d.area_mm2 for d in resolved.dies)
        )
        assert result.area_mm2 == pytest.approx(expected)

    def test_rdl_area_eq14(self, orin_2d):
        from repro.floorplan import total_adjacent_length_mm

        info = ChipDesign.homogeneous_split(orin_2d, "info")
        resolved = resolve(info)
        result = interposer_carbon(resolved, PARAMS, CI)
        expected = (
            PARAMS.substrate.rdl_scale
            * PARAMS.substrate.die_gap_mm
            * total_adjacent_length_mm(resolved.floorplan)
        )
        assert result.area_mm2 == pytest.approx(expected)

    def test_interposer_carbon_significant(self, orin_2d):
        """Sec. 5.1: the silicon interposer dominates its design's penalty."""
        si = ChipDesign.homogeneous_split(orin_2d, "si_interposer")
        resolved = resolve(si)
        sub = interposer_carbon(resolved, PARAMS, CI)
        dies = die_manufacturing_carbon(resolved, PARAMS, CI)
        assert sub.carbon_kg > 0.2 * dies.total_kg
