"""Shared fixtures: parameter sets, reference designs, workloads."""

from __future__ import annotations

import pytest

from repro import ChipDesign, ParameterSet, Workload
from repro.config.integration import AssemblyFlow, StackingStyle
from repro.core.design import Die, DieKind, PackageSpec


@pytest.fixture(scope="session")
def params() -> ParameterSet:
    return ParameterSet.default()


@pytest.fixture(scope="session")
def orin_2d() -> ChipDesign:
    """The Table 4 ORIN as a 2D reference (17 B gates, 7 nm, 254 TOPS)."""
    return ChipDesign.planar_2d(
        "ORIN_2D", "7nm", gate_count=17e9, throughput_tops=254.0,
        efficiency_tops_per_w=2.74,
    )


@pytest.fixture(scope="session")
def small_2d() -> ChipDesign:
    """A small area-specified 2D design for fast unit tests."""
    return ChipDesign.planar_2d("small", "14nm", area_mm2=100.0)


@pytest.fixture(scope="session")
def hybrid_stack(orin_2d) -> ChipDesign:
    return ChipDesign.homogeneous_split(orin_2d, "hybrid_3d")


@pytest.fixture(scope="session")
def emib_assembly(orin_2d) -> ChipDesign:
    return ChipDesign.homogeneous_split(orin_2d, "emib")


@pytest.fixture(scope="session")
def m3d_stack(orin_2d) -> ChipDesign:
    return ChipDesign.homogeneous_split(orin_2d, "m3d")


@pytest.fixture(scope="session")
def av_workload() -> Workload:
    return Workload.autonomous_vehicle()


@pytest.fixture()
def lakefield_like() -> ChipDesign:
    """A Lakefield-shaped micro-bump stack (area-specified dies)."""
    return ChipDesign(
        name="lakefield_like",
        dies=(
            Die("base", "14nm", area_mm2=92.0, kind=DieKind.MEMORY,
                workload_share=0.0),
            Die("logic", "7nm", area_mm2=82.0, workload_share=1.0),
        ),
        integration="micro_3d",
        stacking=StackingStyle.F2F,
        assembly=AssemblyFlow.D2W,
        package=PackageSpec("pop_mobile", area_mm2=144.0),
    )
