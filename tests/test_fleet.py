"""Pre-forked fleet: cross-process dedup, supervision, load harness.

The tentpole guarantees under test:

* **Exactly-one-compute across processes.** Two forked workers share
  one listening socket and one SQLite store; N concurrent identical
  requests must produce exactly one ``computed`` answer — the rest come
  back ``store`` or ``coalesced`` — and every payload is bit-identical.
* **A killed worker never wedges a key.** A claim row whose owner died
  mid-compute expires after its TTL; another worker takes the claim and
  computes the same bit-identical result.
* **Supervision.** A SIGKILLed worker is reaped and its slot refilled;
  ``close()`` tears the whole fleet down without zombies.
* **Keep-alive client.** Connections round-trip through the pool and a
  server-closed pooled socket is replaced transparently.
"""

from __future__ import annotations

import json
import os
import signal
import tempfile
import threading
import time
import urllib.request
from collections import Counter
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.service.client import ServiceClient
from repro.service.dispatcher import Dispatcher
from repro.service.fleet import ServiceFleet, resolve_worker_count
from repro.service.loadgen import bench_fleet, run_load
from repro.service.schema import parse_evaluate_request
from repro.service.store import ResultStore


def design_payload(index: int = 0) -> dict:
    gates = 17.0e9 * (1.0 + 0.01 * index)
    return {
        "name": f"fleet_chip_{index}",
        "integration": "hybrid_3d",
        "stacking": "f2f",
        "assembly": "d2w",
        "package": {"class": "fcbga"},
        "throughput_tops": 254.0,
        "dies": [
            {"name": "top", "node": "7nm", "gate_count": gates / 2,
             "workload_share": 0.5},
            {"name": "bottom", "node": "7nm", "gate_count": gates / 2,
             "workload_share": 0.5},
        ],
    }


@pytest.fixture()
def fleet(tmp_path):
    """A running two-worker fleet on a shared store."""
    instance = ServiceFleet(
        workers=2, store_path=str(tmp_path / "fleet.sqlite3"),
        poll_interval_s=0.05,
    )
    instance.start()
    try:
        yield instance
    finally:
        instance.close()


class TestClaims:
    """Store-level claim rows — the cross-process dedup primitive."""

    def test_claim_is_exclusive_until_released(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite3"))
        try:
            acquired, swept = store.try_claim("k", "owner-a", ttl_s=30.0)
            assert acquired and not swept
            assert store.claim_active("k")
            acquired, _ = store.try_claim("k", "owner-b", ttl_s=30.0)
            assert not acquired
            store.release_claim("k", "owner-a")
            assert not store.claim_active("k")
            acquired, swept = store.try_claim("k", "owner-b", ttl_s=30.0)
            assert acquired and not swept
        finally:
            store.close()

    def test_release_requires_matching_owner(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite3"))
        try:
            store.try_claim("k", "owner-a", ttl_s=30.0)
            store.release_claim("k", "owner-b")  # not yours to release
            assert store.claim_active("k")
        finally:
            store.close()

    def test_stale_claim_expires_and_is_swept(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite3"))
        try:
            store.try_claim("k", "dead-worker", ttl_s=0.05)
            time.sleep(0.1)
            assert not store.claim_active("k")
            acquired, swept = store.try_claim("k", "survivor", ttl_s=30.0)
            assert acquired
            assert swept  # the dead worker's row was swept on acquire
        finally:
            store.close()

    def test_peek_does_not_touch_stats_or_lru(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite3"))
        try:
            store.put("k", "\"payload\"")
            before = store.stats()
            for _ in range(5):
                assert store.peek("k") == "\"payload\""
            assert store.peek("missing") is None
            after = store.stats()
            assert after["hits"] == before["hits"]
            assert after["misses"] == before["misses"]
        finally:
            store.close()

    def test_clear_also_drops_claims(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite3"))
        try:
            store.try_claim("k", "owner", ttl_s=30.0)
            store.clear()
            assert not store.claim_active("k")
        finally:
            store.close()


class TestClaimedDispatch:
    """Dispatcher behavior layered over claims (single process)."""

    def test_failed_compute_releases_claim(self, tmp_path):
        store = ResultStore(str(tmp_path / "s.sqlite3"))
        dispatcher = Dispatcher(store=store)
        request = parse_evaluate_request(
            {"schema": 1, "type": "evaluate", "design": design_payload()}
        )
        key = dispatcher._point_key(request)
        original = dispatcher._run_compute

        def boom(compute):
            raise RuntimeError("injected compute failure")

        dispatcher._run_compute = boom
        try:
            with pytest.raises(RuntimeError):
                dispatcher.evaluate(request)
            # The claim must not outlive the failed compute: a peer (or
            # a retry) can claim and compute immediately.
            assert not store.claim_active(key)
            dispatcher._run_compute = original
            result, source = dispatcher.evaluate(request)
            assert source == "computed"
            assert result["valid"]
        finally:
            store.close()

    def test_peer_claim_takeover_after_owner_death(self, tmp_path):
        """A claim abandoned by a killed process is retaken via TTL."""
        store = ResultStore(str(tmp_path / "s.sqlite3"))
        dispatcher = Dispatcher(store=store, claim_ttl_s=0.2,
                                claim_poll_s=0.01)
        request = parse_evaluate_request(
            {"schema": 1, "type": "evaluate", "design": design_payload()}
        )
        key = dispatcher._point_key(request)
        # Simulate a foreign worker that claimed the key and then died
        # without publishing: the claim row exists, no payload ever will.
        acquired, _ = store.try_claim(key, "killed-worker", ttl_s=0.2)
        assert acquired
        start = time.monotonic()
        result, source = dispatcher.evaluate(request)
        elapsed = time.monotonic() - start
        assert source == "computed"  # this process took over the claim
        assert result["valid"]
        assert elapsed >= 0.1  # it genuinely waited for the expiry
        assert dispatcher.stats.as_dict()["claim_waits"] >= 1
        assert dispatcher.stats.as_dict()["claims_expired"] >= 1
        store.close()


class TestFleetDedup:
    """The acceptance scenario: forked workers, one compute."""

    def test_concurrent_identical_requests_compute_once(self, fleet):
        body = json.dumps({
            "schema": 1, "type": "evaluate", "design": design_payload(),
        }).encode("utf-8")

        def post():
            request = urllib.request.Request(
                fleet.url + "/evaluate", data=body,
                headers={"Content-Type": "application/json"},
            )
            with urllib.request.urlopen(request, timeout=60) as response:
                return json.load(response)

        with ThreadPoolExecutor(8) as pool:
            envelopes = list(pool.map(lambda _: post(), range(8)))
        sources = Counter(envelope["cache"] for envelope in envelopes)
        assert sources["computed"] == 1
        assert set(sources) <= {"computed", "store", "coalesced"}
        payloads = {
            json.dumps(envelope["result"], sort_keys=True)
            for envelope in envelopes
        }
        assert len(payloads) == 1  # bit-identical across workers

    def test_fleet_stats_are_store_backed(self, fleet):
        client = ServiceClient(fleet.url)
        try:
            client.evaluate(design_payload(1))
            client.evaluate(design_payload(1))
            stats = client.stats()
            fleet_block = stats["store"]["fleet"]
            # Whichever worker answered /stats sees the shared store's
            # lifetime counters, not just its own process's.
            assert fleet_block["hits"] + fleet_block["misses"] >= 1
            assert stats["service"]["worker"] in (0, 1)
        finally:
            client.close()

    def test_metrics_carry_worker_label(self, fleet):
        with urllib.request.urlopen(fleet.url + "/metrics",
                                    timeout=30) as response:
            text = response.read().decode("utf-8")
        labelled = [line for line in text.splitlines()
                    if "worker=" in line and not line.startswith("#")]
        assert labelled, "no worker-labelled series in /metrics"
        assert any('worker="0"' in line or 'worker="1"' in line
                   for line in labelled)


class TestKilledMidClaim:
    """A worker killed mid-compute must not wedge the key."""

    def test_takeover_computes_bit_identical_result(self, tmp_path):
        store_path = str(tmp_path / "takeover.sqlite3")
        request_dict = {
            "schema": 1, "type": "evaluate", "design": design_payload(),
        }
        request = parse_evaluate_request(request_dict)
        probe = Dispatcher(store=None)
        key = probe._point_key(request)

        # Child process: claim the key, then die without publishing —
        # exactly a worker SIGKILLed mid-compute.
        pid = os.fork()
        if pid == 0:
            status = 1
            try:
                child_store = ResultStore(store_path)
                acquired, _ = child_store.try_claim(
                    key, "doomed", ttl_s=0.3
                )
                status = 0 if acquired else 2
            finally:
                os._exit(status)
        _, wait_status = os.waitpid(pid, 0)
        assert os.waitstatus_to_exitcode(wait_status) == 0

        store = ResultStore(store_path)
        try:
            assert store.claim_active(key)  # the orphaned claim is live
            survivor = Dispatcher(store=store, claim_ttl_s=0.3,
                                  claim_poll_s=0.01)
            result, source = survivor.evaluate(request)
            assert source == "computed"
            # Bit-identical to an independent claim-free evaluation.
            reference, _ = Dispatcher(store=None).evaluate(request)
            assert json.dumps(result, sort_keys=True) == json.dumps(
                reference, sort_keys=True
            )
        finally:
            store.close()


class TestSupervision:
    def test_dead_worker_is_restarted(self, fleet):
        before = fleet.alive()
        assert len(before) == 2
        os.kill(before[0], signal.SIGKILL)
        deadline = time.monotonic() + 10.0
        while time.monotonic() < deadline:
            alive = fleet.alive()
            if len(alive) == 2 and before[0] not in alive:
                break
            time.sleep(0.05)
        else:
            pytest.fail("fleet never refilled the killed worker's slot")
        assert fleet.restarts >= 1
        # The refilled worker serves traffic.
        client = ServiceClient(fleet.url)
        try:
            assert client.healthz()["ready"]
        finally:
            client.close()

    def test_close_reaps_every_worker(self, tmp_path):
        instance = ServiceFleet(
            workers=2, store_path=str(tmp_path / "reap.sqlite3")
        )
        instance.start()
        pids = instance.alive()
        assert len(pids) == 2
        instance.close()
        assert instance.alive() == []
        for pid in pids:
            # Reaped, not zombied: the pid is gone (or recycled to a
            # process we cannot signal).
            with pytest.raises((ProcessLookupError, PermissionError)):
                os.kill(pid, 0)

    def test_resolve_worker_count(self):
        assert resolve_worker_count(3) == 3
        assert resolve_worker_count("2") == 2
        assert resolve_worker_count("auto") >= 1
        assert resolve_worker_count(None) >= 1
        with pytest.raises(ValueError):
            resolve_worker_count(0)


class TestLoadHarness:
    def test_run_load_reports_latency_and_identity(self, fleet):
        result = run_load(fleet.url, requests_n=12, concurrency=3,
                          distinct=3)
        assert result["errors"] == []
        assert result["completed"] == 12
        assert result["rps"] > 0
        assert 0 < result["p50_ms"] <= result["p99_ms"]
        assert set(result["digests"]) == {0, 1, 2}
        assert sum(result["sources"].values()) == 12

    def test_bench_fleet_curves_and_identity(self):
        result = bench_fleet(worker_counts=(1, 2), requests_n=12,
                             concurrency=3, distinct=3)
        assert [c["workers"] for c in result["curves"]] == [1, 2]
        assert result["identical"] is True
        assert result["cpus"] >= 1
        assert result["keep_alive"] is True
        for curve in result["curves"]:
            assert curve["warm_rps"] > 0
            assert curve["cold_p99_ms"] >= curve["cold_p50_ms"]

    @pytest.mark.skipif(
        len(os.sched_getaffinity(0)) < 4,
        reason="rps scaling across workers needs >= 4 usable CPUs",
    )
    def test_four_workers_scale_warm_rps(self):
        result = bench_fleet(worker_counts=(1, 4), requests_n=96,
                             concurrency=16, distinct=8)
        one, four = result["curves"]
        assert four["warm_rps"] >= 2.5 * one["warm_rps"]


class TestKeepAliveClient:
    def test_pool_round_trips_one_connection(self, fleet):
        client = ServiceClient(fleet.url)
        try:
            client.healthz()
            assert len(client.pool._idle) == 1
            conn = client.pool._idle[0]
            client.healthz()
            assert client.pool._idle == [conn]
        finally:
            client.close()

    def test_stale_socket_reconnects_across_worker_restart(self, fleet):
        client = ServiceClient(fleet.url, retries=0)
        try:
            first = client.evaluate(design_payload(2))
            # Kill both current workers: every pooled socket goes stale.
            for pid in fleet.alive():
                os.kill(pid, signal.SIGKILL)
            deadline = time.monotonic() + 10.0
            while time.monotonic() < deadline:
                if len(fleet.alive()) == 2:
                    break
                time.sleep(0.05)
            time.sleep(0.2)  # let the fresh workers start accepting
            second = client.evaluate(design_payload(2))
            assert json.dumps(first["result"], sort_keys=True) == json.dumps(
                second["result"], sort_keys=True
            )
        finally:
            client.close()
