"""Batch engine: equivalence with the scalar path, memo behaviour, caches."""

import math

import numpy as np
import pytest

from repro import ChipDesign, DEFAULT_PARAMETERS, Workload
from repro.analysis.optimizer import search_configurations
from repro.analysis.sensitivity import (
    FactorTarget,
    SensitivityFactor,
    default_factors,
    tornado,
)
from repro.analysis.uncertainty import (
    UncertaintyResult,
    _monte_carlo_scalar,
    comparison_robustness,
    monte_carlo,
)
from repro.core.model import CarbonModel
from repro.engine import (
    BatchEvaluator,
    EvalPoint,
    ParameterPerturber,
    triangular_multipliers,
)
from repro.engine import fingerprint as fp
from repro.rent.davis import WirelengthDistribution, _region_moments
from repro.studies.sweep import (
    sweep_fab_locations,
    sweep_integrations,
    sweep_wafer_diameters,
)


@pytest.fixture()
def reference():
    return ChipDesign.planar_2d(
        "engine_ref", "7nm", gate_count=17.0e9, throughput_tops=254.0
    )


@pytest.fixture()
def stacked(reference):
    return ChipDesign.homogeneous_split(reference, "hybrid_3d")


@pytest.fixture()
def workload():
    return Workload.autonomous_vehicle()


# -- equivalence: engine vs scalar path ------------------------------------


def test_monte_carlo_engine_matches_scalar(stacked, workload):
    engine = monte_carlo(stacked, workload=workload, samples=60)
    scalar = _monte_carlo_scalar(stacked, workload=workload, samples=60)
    assert engine.samples_kg == scalar.samples_kg  # same floats, same order
    assert engine.base_kg == scalar.base_kg


@pytest.mark.parametrize(
    "integration",
    ["micro_3d", "m3d", "mcm", "info", "emib", "si_interposer"],
)
def test_monte_carlo_matches_scalar_per_integration(
    reference, workload, integration
):
    """Pins every branch of the record-free *_total_kg twins.

    Covers the RDL (info), organic (mcm), EMIB-bridge and silicon-
    interposer substrate branches plus the M3D and micro-bump 3D die
    paths — a divergence in any lean twin breaks exact equality here.
    """
    design = ChipDesign.homogeneous_split(reference, integration)
    engine = monte_carlo(design, workload=workload, samples=25)
    scalar = _monte_carlo_scalar(design, workload=workload, samples=25)
    assert engine.samples_kg == scalar.samples_kg
    assert engine.base_kg == scalar.base_kg


def test_monte_carlo_matches_scalar_for_2d_design(reference, workload):
    engine = monte_carlo(reference, workload=workload, samples=25)
    scalar = _monte_carlo_scalar(reference, workload=workload, samples=25)
    assert engine.samples_kg == scalar.samples_kg


def test_monte_carlo_matches_scalar_without_targets(stacked, workload):
    """Factors lacking declarative targets fall back to sequential apply."""
    factors = [
        SensitivityFactor(f.name, f.low, f.high, f.apply, target=None)
        for f in default_factors(node="7nm", integration="hybrid_3d")
    ]
    engine = monte_carlo(
        stacked, factors=factors, workload=workload, samples=40
    )
    scalar = _monte_carlo_scalar(
        stacked, factors=factors, workload=workload, samples=40
    )
    assert engine.samples_kg == scalar.samples_kg


def test_sweep_integrations_matches_naive_path(reference, workload):
    points = sweep_integrations(reference, workload=workload)
    for point in points:
        params = DEFAULT_PARAMETERS
        if params.integration_spec(point.label).is_2d:
            design = reference
        else:
            design = ChipDesign.homogeneous_split(reference, point.label)
        naive = CarbonModel(design, params, "taiwan").evaluate(workload)
        assert point.report.total_kg == naive.total_kg
        assert point.report.embodied_kg == naive.embodied_kg
        assert point.report.valid == naive.valid


def test_sweep_fab_locations_resolves_once(stacked):
    evaluator = BatchEvaluator()
    points = sweep_fab_locations(stacked, evaluator=evaluator)
    assert len(points) == 5
    assert evaluator.stats.resolve_misses == 1
    assert evaluator.stats.resolve_hits == len(points) - 1
    # and the totals match the naive per-location path
    for point in points:
        naive = CarbonModel(stacked, DEFAULT_PARAMETERS, point.label).evaluate()
        assert point.report.total_kg == naive.total_kg


def test_sweep_wafer_diameters_resolves_once(stacked):
    evaluator = BatchEvaluator()
    sweep_wafer_diameters(stacked, evaluator=evaluator)
    assert evaluator.stats.resolve_misses == 1


def test_optimizer_matches_naive_path(reference, workload):
    result = search_configurations(reference, workload=workload)
    for candidate in result.candidates:
        naive = CarbonModel(
            candidate.design, DEFAULT_PARAMETERS, "taiwan"
        ).evaluate(workload)
        assert candidate.report.total_kg == naive.total_kg
    labels = [c.label for c in result.candidates]
    assert labels[0] == "2d"
    assert result.best is not None and result.best.valid


def test_tornado_matches_naive_path(stacked, workload):
    results = tornado(stacked, workload=workload)
    factors = {
        f.name: f for f in default_factors(node="7nm",
                                           integration="hybrid_3d")
    }
    for res in results:
        factor = factors[res.factor]
        low = CarbonModel(
            stacked, factor.apply(DEFAULT_PARAMETERS, factor.low), "taiwan"
        ).evaluate(workload).total_kg
        high = CarbonModel(
            stacked, factor.apply(DEFAULT_PARAMETERS, factor.high), "taiwan"
        ).evaluate(workload).total_kg
        assert res.low_kg == low
        assert res.high_kg == high


def test_comparison_robustness_probability_range(reference, workload):
    alt = ChipDesign.homogeneous_split(reference, "hybrid_3d")
    p = comparison_robustness(reference, alt, workload=workload, samples=30)
    assert 0.0 <= p <= 1.0


# -- vectorized draws and the perturber ------------------------------------


def test_triangular_multipliers_match_scalar_sequence():
    factors = default_factors(node="7nm", integration="hybrid_3d")
    matrix = triangular_multipliers(factors, samples=50, seed=7)
    rng = np.random.default_rng(7)
    for row in matrix:
        for factor, value in zip(factors, row):
            assert value == rng.triangular(factor.low, 1.0, factor.high)


def test_perturber_fast_path_matches_sequential(stacked):
    factors = default_factors(node="7nm", integration="hybrid_3d")
    perturber = ParameterPerturber(factors, DEFAULT_PARAMETERS)
    assert perturber._plan is not None
    row = [1.3, 0.9, 1.1, 0.7, 1.4, 0.8, 1.01]
    fast = perturber.perturbed(row)
    slow = perturber._sequential(row)
    node_f, node_s = fast.node("7nm"), slow.node("7nm")
    assert node_f == node_s
    assert fast.bandwidth == slow.bandwidth
    assert fast.packaging.get("fcbga") == slow.packaging.get("fcbga")
    # evaluation through either parameter set is identical
    a = CarbonModel(stacked, fast).evaluate().total_kg
    b = CarbonModel(stacked, slow).evaluate().total_kg
    assert a == b


def test_perturber_out_of_range_row_falls_back():
    factors = default_factors(node="7nm", integration="hybrid_3d")
    perturber = ParameterPerturber(factors, DEFAULT_PARAMETERS)
    row = [5.0] + [1.0] * (len(factors) - 1)  # outside triangular support
    fast = perturber.perturbed(row)
    slow = perturber._sequential(row)
    assert fast.node("7nm") == slow.node("7nm")


def test_factor_targets_describe_their_apply():
    """Every built-in factor's target must mirror its apply closure."""
    for integration in ("hybrid_3d", "mcm", "m3d", "2d"):
        for factor in default_factors(node="7nm", integration=integration):
            assert factor.target is not None, factor.name
            base = factor.target.read(DEFAULT_PARAMETERS)
            perturbed = factor.apply(DEFAULT_PARAMETERS, factor.high)
            assert factor.target.read(perturbed) == factor.target.scale(
                base, factor.high
            ), factor.name


# -- fingerprints and cache-hit accounting ----------------------------------


def test_resolve_key_discriminates_resolve_relevant_changes(stacked):
    params = DEFAULT_PARAMETERS
    base = fp.resolve_key(stacked, params)
    same = fp.resolve_key(stacked, params)
    assert base == same and hash(base) == hash(same)
    perturbed = params.with_node_override("7nm", defect_density_per_cm2=0.2)
    assert fp.resolve_key(stacked, perturbed) != base
    # embodied-only perturbations keep the resolve key unchanged
    epa_only = params.with_node_override("7nm", epa_kwh_per_cm2=2.0)
    assert fp.resolve_key(stacked, epa_only) != base  # node record in key
    wafer_only = params.with_wafer_diameter(200.0)
    assert fp.resolve_key(stacked, wafer_only) == base


def test_fingerprint_memo_hit_counts(stacked, workload):
    evaluator = BatchEvaluator()
    evaluator.report(stacked, workload=workload)
    stats = evaluator.stats
    assert stats.resolve_misses == 1
    assert stats.embodied_misses == 1
    assert stats.operational_misses == 1

    # identical point: everything hits, nothing re-resolves
    evaluator.report(stacked, workload=workload)
    stats = evaluator.stats
    assert stats.resolve_misses == 1
    assert stats.resolve_hits >= 1
    assert stats.embodied_hits == 1
    assert stats.operational_hits == 1

    # a wafer-diameter change re-prices embodied but not resolution
    evaluator.report(
        stacked, workload=workload,
        params=DEFAULT_PARAMETERS.with_wafer_diameter(200.0),
    )
    stats = evaluator.stats
    assert stats.resolve_misses == 1
    assert stats.embodied_misses == 2


def test_structure_cache_shared_across_defect_perturbations(stacked):
    """Davis/area structure is reused when only yields change."""
    evaluator = BatchEvaluator()
    evaluator.report(stacked)
    misses_before = evaluator.stats.structure_misses
    perturbed = DEFAULT_PARAMETERS.with_node_override(
        "7nm", defect_density_per_cm2=0.2
    )
    evaluator.report(stacked, params=perturbed)
    stats = evaluator.stats
    assert stats.resolve_misses == 2          # resolution re-ran (yields)
    assert stats.structure_misses == misses_before  # wirelength did not


def test_total_kg_fast_path_matches_report(stacked, workload):
    evaluator = BatchEvaluator()
    total = evaluator.total_kg(stacked, workload=workload, transient=True)
    report = BatchEvaluator().report(stacked, workload=workload)
    assert total == report.total_kg


def test_transient_points_do_not_grow_caches(stacked):
    evaluator = BatchEvaluator()
    for defect in (0.10, 0.11, 0.12, 0.13):
        params = DEFAULT_PARAMETERS.with_node_override(
            "7nm", defect_density_per_cm2=defect
        )
        evaluator.total_kg(stacked, params=params, transient=True)
    assert len(evaluator._caches.resolved) == 0
    assert len(evaluator._caches.embodied_totals) == 0


def test_cache_limit_bounds_every_engine_cache(reference, workload):
    """A stream of unique-keyed draws cannot grow the caches past the bound.

    The 2.5D default factor set perturbs ``io_area_ratio``, so each draw
    carries a fresh IntegrationSpec — the worst case for every spec-keyed
    cache.
    """
    design = ChipDesign.homogeneous_split(reference, "si_interposer")
    evaluator = BatchEvaluator(cache_limit=8)
    result = monte_carlo(
        design, workload=workload, samples=30, evaluator=evaluator
    )
    scalar = _monte_carlo_scalar(design, workload=workload, samples=30)
    assert result.samples_kg == scalar.samples_kg  # bounding never skews values
    limit = evaluator.cache_limit
    assert len(evaluator._caches.operational) <= limit
    assert len(evaluator._statics) <= limit
    assert len(evaluator._ci_cache) <= limit
    assert len(evaluator.resolve_cache.die_structure) <= limit
    assert len(evaluator.resolve_cache.floorplans) <= limit
    assert len(evaluator.resolve_cache.validations) <= limit
    assert len(evaluator.resolve_cache.die_fast) <= limit


def test_evaluate_many_workers_match_sequential(reference, workload):
    designs = [reference] + [
        ChipDesign.homogeneous_split(reference, name)
        for name in ("hybrid_3d", "mcm", "emib")
    ]
    points = [
        EvalPoint(design=d, fab_location=loc, workload=workload)
        for d in designs for loc in ("taiwan", "usa")
    ]
    sequential = BatchEvaluator().evaluate_many(points)
    threaded = BatchEvaluator().evaluate_many(points, workers=3, chunk_size=2)
    assert [r.total_kg for r in threaded] == [r.total_kg for r in sequential]
    assert [r.design_name for r in threaded] == [
        r.design_name for r in sequential
    ]


# -- satellite caches --------------------------------------------------------


def test_carbon_model_memoizes_operational_per_workload(stacked, workload):
    model = CarbonModel(stacked)
    first = model.operational(workload)
    assert model.operational(workload) is first
    report = model.evaluate(workload)
    assert report.operational is first
    other = Workload(name="other", total_tera_ops=1.0e9)
    assert model.operational(other) is not first


def test_operational_suite_reuses_workload_cache(stacked, workload):
    from repro import WorkloadSuite

    model = CarbonModel(stacked)
    cached = model.operational(workload)
    suite = model.operational_suite(
        WorkloadSuite(name="s", workloads=(workload,))
    )
    assert suite.per_workload[0] is cached
    assert suite.total_kg == cached.total_kg


def test_davis_moments_lru_cache_hits():
    _region_moments.cache_clear()
    a = _region_moments(1.0e9, 0.62, 1)
    before = _region_moments.cache_info().hits
    b = _region_moments(1.0e9, 0.62, 1)
    assert a == b
    assert _region_moments.cache_info().hits == before + 1


def test_wirelength_distribution_normalizer_cached():
    dist = WirelengthDistribution(gate_count=1.0e6, rent_exponent=0.65)
    first = dist.pdf(10.0)
    assert "_normalizer" in dist.__dict__  # computed once, stored
    assert dist.pdf(10.0) == first
    # pdf still integrates to ~1 over the support
    lo, hi = dist.support
    xs = np.linspace(lo, hi, 20001)
    integral = np.trapezoid([dist.pdf(x) for x in xs], xs)
    assert math.isclose(integral, 1.0, rel_tol=5e-3)


def test_uncertainty_result_statistics_cached_and_consistent():
    samples = tuple(float(x) for x in np.random.default_rng(3).normal(
        100.0, 5.0, size=500
    ))
    result = UncertaintyResult(samples_kg=samples, base_kg=100.0)
    assert result.mean_kg == float(np.mean(samples))
    assert result.std_kg == float(np.std(samples))
    assert result.p50 == float(np.percentile(samples, 50.0))
    assert result.percentile(5.0) == float(np.percentile(samples, 5.0))
    # cached: the sorted array is materialized once and reused
    sorted_first = result._sorted_samples
    assert result._sorted_samples is sorted_first
    assert "mean_kg" in result.__dict__
    assert "p95" in result.__dict__ or result.p95 is not None
