"""Grid, surveyed-power, M3D and aggregated ParameterSet tests."""

import pytest

from repro.config.grid import DEFAULT_GRID_TABLE, GridProfile, GridTable
from repro.config.m3d import M3DParameters
from repro.config.parameters import (
    BandwidthConstraintParameters,
    ParameterSet,
)
from repro.config.power import (
    DEFAULT_DEVICE_SURVEY,
    NVIDIA_DRIVE_SERIES,
    DeviceSurvey,
    DeviceSurveyTable,
    surveyed_efficiency,
)
from repro.errors import ParameterError, UnknownTechnologyError


class TestGrids:
    def test_table2_range_span(self):
        """Table 2: CI 30–700 g CO₂/kWh — both extremes are available."""
        intensities = [g.g_co2_per_kwh for g in DEFAULT_GRID_TABLE]
        assert min(intensities) <= 30.0
        assert max(intensities) >= 700.0

    def test_lookup_by_name(self):
        assert DEFAULT_GRID_TABLE.get("taiwan").g_co2_per_kwh == 509.0

    def test_lookup_by_value(self):
        grid = DEFAULT_GRID_TABLE.get(123.0)
        assert grid.g_co2_per_kwh == 123.0
        assert grid.kg_co2_per_kwh == pytest.approx(0.123)

    def test_case_and_space_insensitive(self):
        assert DEFAULT_GRID_TABLE.get("South Korea").name == "south_korea"

    def test_unknown_location_raises(self):
        with pytest.raises(UnknownTechnologyError):
            DEFAULT_GRID_TABLE.get("atlantis")

    def test_kg_conversion(self):
        assert DEFAULT_GRID_TABLE.get("iceland").kg_co2_per_kwh == 0.03

    def test_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            GridProfile("bad", 2000.0)

    def test_register_duplicate_rejected(self):
        table = GridTable()
        with pytest.raises(ParameterError):
            table.register(table.get("taiwan"))

    def test_contains(self):
        assert "taiwan" in DEFAULT_GRID_TABLE
        assert "atlantis" not in DEFAULT_GRID_TABLE


class TestDeviceSurvey:
    def test_table4_rows(self):
        """Table 4 values, verbatim."""
        expected = {
            "PX2": ("16nm", 15.3, 0.75, 2016),
            "XAVIER": ("12nm", 21.0, 1.00, 2017),
            "ORIN": ("7nm", 17.0, 2.74, 2019),
            "THOR": ("5nm", 77.0, 12.5, 2022),
        }
        assert len(NVIDIA_DRIVE_SERIES) == 4
        for device in NVIDIA_DRIVE_SERIES:
            node, gates, eff, year = expected[device.name]
            assert device.node == node
            assert device.gate_count_billion == gates
            assert device.efficiency_tops_per_w == eff
            assert device.announced_year == year

    def test_efficiency_grows_over_generations(self):
        """Sec. 5.1: exponential efficiency growth over time."""
        effs = [d.efficiency_tops_per_w for d in NVIDIA_DRIVE_SERIES]
        assert all(a < b for a, b in zip(effs, effs[1:]))

    def test_power_property(self):
        orin = DEFAULT_DEVICE_SURVEY.get("orin")
        assert orin.power_w == pytest.approx(254.0 / 2.74)

    def test_gate_count_scaling(self):
        assert DEFAULT_DEVICE_SURVEY.get("THOR").gate_count == 77e9

    def test_unknown_device_raises(self):
        with pytest.raises(UnknownTechnologyError):
            DEFAULT_DEVICE_SURVEY.get("PEGASUS")

    def test_surveyed_efficiency_matches_drive_nodes(self):
        for device in NVIDIA_DRIVE_SERIES:
            assert surveyed_efficiency(device.node) == pytest.approx(
                device.efficiency_tops_per_w
            )

    def test_surveyed_unknown_node_raises(self):
        with pytest.raises(UnknownTechnologyError):
            surveyed_efficiency("1nm")

    def test_bad_device_rejected(self):
        with pytest.raises(ParameterError):
            DeviceSurvey("bad", "7nm", -1.0, 1.0, 2020, 10.0)

    def test_register(self):
        table = DeviceSurveyTable()
        table.register(DeviceSurvey("NEW", "3nm", 100.0, 20.0, 2025, 4000.0))
        assert table.get("new").node == "3nm"


class TestM3DParameters:
    def test_defaults_valid(self):
        m3d = M3DParameters()
        assert 0.0 <= m3d.feol_overhead <= 1.0
        assert m3d.defect_density_factor >= 1.0
        assert m3d.max_tiers == 2

    def test_bad_overhead_rejected(self):
        with pytest.raises(ParameterError):
            M3DParameters(feol_overhead=1.5)

    def test_defect_improvement_rejected(self):
        with pytest.raises(ParameterError):
            M3DParameters(defect_density_factor=0.9)

    def test_override(self):
        assert M3DParameters().with_overrides(feol_overhead=0.5).feol_overhead == 0.5


class TestBandwidthParameters:
    def test_mcm_gpu_anchor(self):
        bw = BandwidthConstraintParameters()
        assert bw.degradation_at_half_bw == pytest.approx(0.20)
        assert bw.invalid_bw_ratio == pytest.approx(0.5)

    def test_bad_thresholds_rejected(self):
        with pytest.raises(ParameterError):
            BandwidthConstraintParameters(degradation_at_half_bw=0.0)
        with pytest.raises(ParameterError):
            BandwidthConstraintParameters(invalid_bw_ratio=0.0)
        with pytest.raises(ParameterError):
            BandwidthConstraintParameters(traffic_bytes_per_op=-1.0)
        with pytest.raises(ParameterError):
            BandwidthConstraintParameters(io_traffic_fraction=0.0)


class TestParameterSet:
    def test_default_construction(self):
        params = ParameterSet.default()
        assert params.node("7nm").name == "7nm"
        assert params.integration_spec("emib").name == "emib"
        assert params.grid("taiwan").name == "taiwan"

    def test_wafer_diameter_range(self):
        with pytest.raises(ParameterError):
            ParameterSet(wafer_diameter_mm=50.0)

    def test_with_wafer_diameter(self):
        params = ParameterSet.default().with_wafer_diameter(450.0)
        assert params.wafer_diameter_mm == 450.0

    def test_with_beol_aware(self):
        assert not ParameterSet.default().with_beol_aware(False).beol_aware

    def test_with_bandwidth(self):
        params = ParameterSet.default().with_bandwidth(enabled=False)
        assert not params.bandwidth.enabled

    def test_with_node_override_isolated(self):
        base = ParameterSet.default()
        swept = base.with_node_override("7nm", defect_density_per_cm2=0.4)
        assert swept.node("7nm").defect_density_per_cm2 == 0.4
        assert base.node("7nm").defect_density_per_cm2 != 0.4

    def test_with_integration_override(self):
        swept = ParameterSet.default().with_integration_override(
            "emib", data_rate_gbps=6.8
        )
        assert swept.integration_spec("emib").data_rate_gbps == 6.8

    def test_with_substrate_override(self):
        swept = ParameterSet.default().with_substrate(die_gap_mm=0.5)
        assert swept.substrate.die_gap_mm == 0.5

    def test_with_m3d_override(self):
        swept = ParameterSet.default().with_m3d(feol_overhead=0.6)
        assert swept.m3d.feol_overhead == 0.6
