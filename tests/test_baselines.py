"""Baseline-model tests: ACT, ACT+, LCA, first-order (Sec. 4 comparators)."""

import pytest

from repro import ChipDesign, ParameterSet
from repro.baselines import (
    ACT_FIXED_YIELD,
    ACT_PACKAGING_KG,
    act_die_carbon_kg,
    act_estimate,
    act_plus_estimate,
    first_order_estimate,
    gabi_factor,
    lca_estimate,
)
from repro.config.integration import AssemblyFlow
from repro.errors import ParameterError

PARAMS = ParameterSet.default()
CI = PARAMS.grid("taiwan").kg_co2_per_kwh


class TestAct:
    def test_closed_form(self):
        node = PARAMS.node("7nm")
        expected = (
            (CI * node.epa_kwh_per_cm2 + node.gpa_kg_per_cm2
             + node.mpa_kg_per_cm2)
            * 1.0  # 100 mm² = 1 cm²
            / ACT_FIXED_YIELD
        )
        assert act_die_carbon_kg("7nm", 100.0, CI, PARAMS) == pytest.approx(
            expected
        )

    def test_fixed_packaging(self):
        estimate = act_estimate([("d", "7nm", 100.0)], CI, PARAMS)
        assert estimate.packaging_kg == ACT_PACKAGING_KG

    def test_linear_in_area(self):
        """ACT has no yield-area coupling: carbon is linear in area."""
        small = act_die_carbon_kg("7nm", 100.0, CI, PARAMS)
        large = act_die_carbon_kg("7nm", 400.0, CI, PARAMS)
        assert large == pytest.approx(4.0 * small)

    def test_breakdown_sums(self):
        estimate = act_estimate(
            [("a", "7nm", 74.0), ("b", "14nm", 416.0)], CI, PARAMS
        )
        assert sum(estimate.breakdown().values()) == pytest.approx(
            estimate.total_kg
        )

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            act_estimate([], CI, PARAMS)

    def test_rejects_bad_yield(self):
        with pytest.raises(ParameterError):
            act_die_carbon_kg("7nm", 100.0, CI, PARAMS, process_yield=0.0)


class TestActPlus:
    def test_3d_treated_as_2d(self, lakefield_like):
        """ACT+ cannot tell D2W from W2W (Sec. 4.2)."""
        d2w = act_plus_estimate(lakefield_like, CI, PARAMS)
        w2w = act_plus_estimate(
            lakefield_like.with_overrides(assembly=AssemblyFlow.W2W),
            CI, PARAMS,
        )
        assert d2w.total_kg == pytest.approx(w2w.total_kg)

    def test_25d_cost_factor_applied(self, orin_2d, emib_assembly):
        est = act_plus_estimate(emib_assembly, CI, PARAMS)
        assert est.cost_factor > 1.0
        est_3d = act_plus_estimate(
            ChipDesign.homogeneous_split(orin_2d, "hybrid_3d"), CI, PARAMS
        )
        assert est_3d.cost_factor == 1.0

    def test_no_bonding_or_interposer(self, emib_assembly):
        est = act_plus_estimate(emib_assembly, CI, PARAMS)
        breakdown = est.breakdown()
        assert breakdown["bonding"] == 0.0
        assert breakdown["interposer"] == 0.0

    def test_underestimates_3d_carbon(self, lakefield_like):
        """ACT+ misses stacking yields and bonding energy."""
        from repro.core.embodied import embodied_carbon

        full = embodied_carbon(lakefield_like, PARAMS, CI)
        simplified = act_plus_estimate(lakefield_like, CI, PARAMS)
        assert simplified.total_kg < full.total_kg


class TestLca:
    def test_sub_14nm_clamps(self):
        factor_7, clamped_7 = gabi_factor("7nm", PARAMS)
        factor_14, clamped_14 = gabi_factor("14nm", PARAMS)
        assert clamped_7 and not clamped_14
        assert factor_7 == factor_14

    def test_coarse_node_clamps_to_coarsest(self):
        factor, clamped = gabi_factor("interposer", PARAMS)
        assert clamped
        assert factor == gabi_factor("65nm", PARAMS)[0]

    def test_monolithic_exceeds_per_die(self):
        """One huge die yields worse than many small ones (Sec. 4.1)."""
        dies = [("14nm", 178.0)] * 4
        mono = lca_estimate(dies, PARAMS, monolithic=True)
        split = lca_estimate(dies, PARAMS, monolithic=False)
        assert mono.die_kg > split.die_kg

    def test_clamp_recorded(self):
        estimate = lca_estimate([("7nm", 82.0)], PARAMS)
        assert "7nm" in estimate.clamped_nodes

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            lca_estimate([], PARAMS)

    def test_rejects_bad_area(self):
        with pytest.raises(ParameterError):
            lca_estimate([("14nm", -1.0)], PARAMS)


class TestFirstOrder:
    def test_linear_model(self):
        estimate = first_order_estimate(200.0, kg_per_cm2=1.0,
                                        packaging_kg=0.5)
        assert estimate.die_kg == pytest.approx(2.0)
        assert estimate.total_kg == pytest.approx(2.5)

    def test_defaults(self):
        estimate = first_order_estimate(100.0)
        assert estimate.total_kg > 0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            first_order_estimate(0.0)
        with pytest.raises(ParameterError):
            first_order_estimate(100.0, kg_per_cm2=-1.0)

    def test_insensitive_to_partitioning(self):
        """The first-order model cannot see die splits at all."""
        whole = first_order_estimate(458.0)
        split = first_order_estimate(229.0)
        assert whole.die_kg == pytest.approx(2.0 * split.die_kg)
