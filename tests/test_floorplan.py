"""Floorplanner tests: geometry, placement, adjacency (Eq. 14 inputs)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.floorplan import (
    Rect,
    adjacent_pairs,
    bounding_box,
    place_dies,
    square_for_area,
    total_adjacent_length_mm,
)


class TestRect:
    def test_area(self):
        assert Rect(0, 0, 4, 5).area == 20

    def test_rejects_degenerate(self):
        with pytest.raises(ParameterError):
            Rect(0, 0, 0, 5)

    def test_overlap_detection(self):
        a = Rect(0, 0, 10, 10)
        assert a.overlaps(Rect(5, 5, 10, 10))
        assert not a.overlaps(Rect(20, 20, 5, 5))

    def test_touching_edges_do_not_overlap(self):
        a = Rect(0, 0, 10, 10)
        assert not a.overlaps(Rect(10, 0, 10, 10))

    def test_gap_to(self):
        a = Rect(0, 0, 10, 10)
        assert a.gap_to(Rect(12, 0, 5, 10)) == pytest.approx(2.0)
        assert a.gap_to(Rect(5, 5, 10, 10)) == 0.0

    def test_gap_diagonal(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(13, 14, 5, 5)
        assert a.gap_to(b) == pytest.approx(math.hypot(3, 4))

    def test_facing_length_horizontal(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(11, 2, 10, 10)  # 1 mm gap, y-overlap 8
        assert a.facing_length(b, max_gap=1.5) == pytest.approx(8.0)

    def test_facing_length_vertical(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(3, 11, 10, 10)  # 1 mm gap above, x-overlap 7
        assert a.facing_length(b, max_gap=1.5) == pytest.approx(7.0)

    def test_facing_length_too_far(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(15, 0, 10, 10)  # 5 mm gap
        assert a.facing_length(b, max_gap=1.5) == 0.0

    def test_facing_length_symmetric(self):
        a = Rect(0, 0, 10, 10)
        b = Rect(11, 2, 10, 10)
        assert a.facing_length(b, 1.5) == b.facing_length(a, 1.5)

    def test_translated(self):
        moved = Rect(0, 0, 2, 3).translated(5, 7)
        assert (moved.x, moved.y) == (5, 7)

    def test_square_for_area(self):
        w, h = square_for_area(64.0)
        assert w == h == 8.0

    def test_bounding_box(self):
        box = bounding_box([Rect(0, 0, 2, 2), Rect(5, 5, 2, 2)])
        assert (box.x, box.y, box.x2, box.y2) == (0, 0, 7, 7)

    def test_bounding_box_empty_rejected(self):
        with pytest.raises(ParameterError):
            bounding_box([])


class TestPlacer:
    def test_two_dies_adjacent(self):
        plan = place_dies([100.0, 100.0], die_gap_mm=1.0)
        assert plan.is_overlap_free()
        assert total_adjacent_length_mm(plan) == pytest.approx(10.0)

    def test_total_area_preserved(self):
        areas = [100.0, 64.0, 81.0]
        plan = place_dies(areas)
        assert plan.total_die_area_mm2 == pytest.approx(sum(areas))

    def test_names_carried(self):
        plan = place_dies([50.0, 60.0], names=["a", "b"])
        assert {d.name for d in plan.dies} == {"a", "b"}

    def test_name_length_mismatch_rejected(self):
        with pytest.raises(ParameterError):
            place_dies([50.0], names=["a", "b"])

    def test_rejects_empty(self):
        with pytest.raises(ParameterError):
            place_dies([])

    def test_rejects_non_positive_area(self):
        with pytest.raises(ParameterError):
            place_dies([10.0, -5.0])

    def test_epyc_like_layout_has_adjacency(self):
        """4 CCDs + 1 I/O die: every die pair contributes bridge length."""
        plan = place_dies([74.0] * 4 + [416.0], die_gap_mm=1.0)
        assert plan.is_overlap_free()
        assert total_adjacent_length_mm(plan) > 0.0
        assert len(adjacent_pairs(plan)) >= 4

    def test_row_wrap(self):
        """Many dies wrap to multiple rows within the width budget."""
        plan = place_dies([100.0] * 6, die_gap_mm=1.0, max_row_width_mm=25.0)
        assert plan.is_overlap_free()
        ys = {d.rect.y for d in plan.dies}
        assert len(ys) > 1

    def test_gap_respected(self):
        plan = place_dies([100.0, 100.0], die_gap_mm=2.0)
        a, b = (d.rect for d in plan.dies)
        assert a.gap_to(b) == pytest.approx(2.0)

    @given(
        areas=st.lists(
            st.floats(min_value=1.0, max_value=500.0), min_size=1, max_size=8
        ),
        gap=st.floats(min_value=0.1, max_value=2.0),
    )
    @settings(max_examples=100, deadline=None)
    def test_never_overlaps(self, areas, gap):
        plan = place_dies(areas, die_gap_mm=gap)
        assert plan.is_overlap_free()

    @given(
        areas=st.lists(
            st.floats(min_value=1.0, max_value=500.0), min_size=2, max_size=6
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_outline_contains_all_dies(self, areas):
        plan = place_dies(areas)
        outline = plan.outline
        for die in plan.dies:
            assert die.rect.x >= outline.x - 1e-9
            assert die.rect.y >= outline.y - 1e-9
            assert die.rect.x2 <= outline.x2 + 1e-9
            assert die.rect.y2 <= outline.y2 + 1e-9

    @given(
        areas=st.lists(
            st.floats(min_value=4.0, max_value=400.0), min_size=2, max_size=6
        )
    )
    @settings(max_examples=100, deadline=None)
    def test_adjacency_non_negative_and_bounded(self, areas):
        plan = place_dies(areas, die_gap_mm=1.0)
        total = total_adjacent_length_mm(plan)
        assert total >= 0.0
        perimeter = sum(
            2.0 * (d.rect.width + d.rect.height) for d in plan.dies
        )
        assert total <= perimeter
