"""Service wire schema: strict parsing, typed error payloads."""

from __future__ import annotations

import pytest

from repro.core.operational import Workload
from repro.errors import DesignError
from repro.service import schema
from repro.service.schema import (
    SCHEMA_VERSION,
    SchemaError,
    error_envelope,
    error_payload,
    ok_envelope,
    parse_batch_request,
    parse_evaluate_request,
    parse_montecarlo_request,
    parse_optimize_request,
    parse_request,
    parse_sweep_request,
    workload_from_value,
    workload_to_value,
)


def design_payload(name="chip", integration="hybrid_3d") -> dict:
    return {
        "name": name,
        "integration": integration,
        "stacking": "f2f",
        "assembly": "d2w",
        "package": {"class": "fcbga"},
        "throughput_tops": 254.0,
        "dies": [
            {"name": "top", "node": "7nm", "gate_count": 8.5e9,
             "workload_share": 0.5},
            {"name": "bottom", "node": "7nm", "gate_count": 8.5e9,
             "workload_share": 0.5},
        ],
    }


def evaluate_payload(**overrides) -> dict:
    payload = {
        "schema": SCHEMA_VERSION,
        "type": "evaluate",
        "design": design_payload(),
    }
    payload.update(overrides)
    return payload


class TestEnvelope:
    def test_ok_envelope(self):
        envelope = ok_envelope({"total_kg": 1.0}, cache="store")
        assert envelope["ok"] is True
        assert envelope["schema"] == SCHEMA_VERSION
        assert envelope["cache"] == "store"
        assert envelope["result"] == {"total_kg": 1.0}

    def test_error_envelope_is_typed(self):
        envelope = error_envelope(SchemaError("bad", field="points"))
        assert envelope["ok"] is False
        assert envelope["error"]["type"] == "SchemaError"
        assert envelope["error"]["field"] == "points"
        assert "bad" in envelope["error"]["message"]

    def test_error_payload_for_library_errors(self):
        payload = error_payload(DesignError("no dies"))
        assert payload == {"type": "DesignError", "message": "no dies"}


class TestEvaluateParsing:
    def test_roundtrip(self):
        request = parse_evaluate_request(evaluate_payload())
        assert request.design.name == "chip"
        assert request.design.die_count == 2
        assert request.workload == Workload.autonomous_vehicle()
        assert request.fab_location is None

    def test_fab_location_name_or_number(self):
        assert parse_evaluate_request(
            evaluate_payload(fab_location="iceland")
        ).fab_location == "iceland"
        assert parse_evaluate_request(
            evaluate_payload(fab_location=450)
        ).fab_location == 450.0

    def test_missing_schema_rejected(self):
        payload = evaluate_payload()
        del payload["schema"]
        with pytest.raises(SchemaError, match="schema"):
            parse_evaluate_request(payload)

    def test_wrong_schema_version_rejected(self):
        with pytest.raises(SchemaError, match="schema"):
            parse_evaluate_request(evaluate_payload(schema=99))

    def test_unknown_key_rejected(self):
        with pytest.raises(SchemaError, match="unknown key"):
            parse_evaluate_request(evaluate_payload(surprise=1))

    def test_wrong_type_for_endpoint_rejected(self):
        with pytest.raises(SchemaError, match="expects"):
            parse_evaluate_request(evaluate_payload(type="batch"))

    def test_missing_design_rejected(self):
        payload = evaluate_payload()
        del payload["design"]
        with pytest.raises(SchemaError, match="design"):
            parse_evaluate_request(payload)

    def test_non_object_request_rejected(self):
        with pytest.raises(SchemaError, match="object"):
            parse_evaluate_request([1, 2, 3])

    def test_bad_design_values_are_typed_not_tracebacks(self):
        bad = design_payload()
        bad["stacking"] = "sideways"
        with pytest.raises(DesignError, match="stacking"):
            parse_evaluate_request(evaluate_payload(design=bad))

    def test_bad_fab_location_rejected(self):
        with pytest.raises(SchemaError, match="fab_location"):
            parse_evaluate_request(evaluate_payload(fab_location=[1]))


class TestWorkloadField:
    def test_av_shorthand(self):
        assert workload_from_value("av") == Workload.autonomous_vehicle()

    def test_none_spellings(self):
        assert workload_from_value(None) is None
        assert workload_from_value("none") is None

    def test_record(self):
        workload = workload_from_value({
            "name": "dc", "total_tera_ops": 1e9,
            "use_location": "usa", "lifetime_years": 4.0,
        })
        assert workload.name == "dc"
        assert workload.lifetime_years == 4.0

    def test_record_roundtrip(self):
        value = {"name": "dc", "total_tera_ops": 1e9,
                 "use_location": "usa", "lifetime_years": 4.0}
        assert workload_to_value(workload_from_value(value)) == value
        assert workload_to_value(Workload.autonomous_vehicle()) == "av"
        assert workload_to_value(None) is None

    def test_bad_records_rejected(self):
        with pytest.raises(SchemaError, match="missing"):
            workload_from_value({"name": "x"})
        with pytest.raises(SchemaError, match="unknown key"):
            workload_from_value(
                {"name": "x", "total_tera_ops": 1.0, "extra": 2}
            )
        with pytest.raises(SchemaError, match="number"):
            workload_from_value({"name": "x", "total_tera_ops": "lots"})
        with pytest.raises(SchemaError, match="> 0"):
            workload_from_value({"name": "x", "total_tera_ops": -1.0})


class TestBatchParsing:
    def test_points_parsed_in_order(self):
        request = parse_batch_request({
            "schema": SCHEMA_VERSION, "type": "batch",
            "points": [
                {"design": design_payload("a"), "label": "first"},
                {"design": design_payload("b"), "workload": "none",
                 "fab_location": "usa"},
            ],
        })
        assert [p.design.name for p in request.points] == ["a", "b"]
        assert request.points[0].label == "first"
        assert request.points[1].workload is None

    def test_empty_batch_rejected(self):
        with pytest.raises(SchemaError, match="points"):
            parse_batch_request(
                {"schema": SCHEMA_VERSION, "type": "batch", "points": []}
            )

    def test_batch_limit_enforced(self):
        points = [{"design": design_payload()}] * (schema.MAX_BATCH_POINTS + 1)
        with pytest.raises(SchemaError, match="limited"):
            parse_batch_request(
                {"schema": SCHEMA_VERSION, "type": "batch", "points": points}
            )

    def test_point_errors_name_the_point(self):
        with pytest.raises(SchemaError, match=r"points\[1\]"):
            parse_batch_request({
                "schema": SCHEMA_VERSION, "type": "batch",
                "points": [{"design": design_payload()}, {"oops": 1}],
            })


class TestSweepParsing:
    def test_defaults_fill_in(self):
        request = parse_sweep_request({
            "schema": SCHEMA_VERSION, "type": "sweep",
            "design": {"name": "ref", "throughput_tops": 254.0,
                       "dies": [{"name": "d", "node": "7nm",
                                 "gate_count": 17e9}]},
        })
        assert "hybrid_3d" in request.integrations
        assert request.fab_locations == (None,)

    def test_explicit_axes(self):
        request = parse_sweep_request({
            "schema": SCHEMA_VERSION, "type": "sweep",
            "design": {"name": "ref",
                       "dies": [{"name": "d", "node": "7nm",
                                 "gate_count": 17e9}]},
            "integrations": ["2d", "m3d"],
            "fab_locations": ["taiwan", 30],
            "workload": "none",
        })
        assert request.integrations == ("2d", "m3d")
        assert request.fab_locations == ("taiwan", 30.0)
        assert request.workload is None

    def test_bad_axes_rejected(self):
        base = {
            "schema": SCHEMA_VERSION, "type": "sweep",
            "design": {"name": "ref",
                       "dies": [{"name": "d", "node": "7nm",
                                 "gate_count": 17e9}]},
        }
        with pytest.raises(SchemaError, match="integrations"):
            parse_sweep_request({**base, "integrations": []})
        with pytest.raises(SchemaError, match="fab_locations"):
            parse_sweep_request({**base, "fab_locations": "taiwan"})


class TestOptimizeParsing:
    @staticmethod
    def base(**overrides) -> dict:
        payload = {
            "schema": SCHEMA_VERSION, "type": "optimize",
            "design": {"name": "ref", "throughput_tops": 254.0,
                       "dies": [{"name": "d", "node": "7nm",
                                 "gate_count": 17e9}]},
        }
        payload.update(overrides)
        return payload

    def test_defaults(self):
        request = parse_optimize_request(self.base())
        assert request.integrations is None  # dispatcher fills the axes
        assert request.die_counts is None
        assert request.wafer_diameters_mm is None
        assert request.fab_locations is None
        assert request.max_configs is None
        assert request.chunk is None
        assert request.seed == 20240623
        assert request.stream is False
        assert isinstance(request.workload, Workload)

    def test_explicit_axes(self):
        request = parse_optimize_request(self.base(
            integrations=["hybrid_3d", "mcm"],
            die_counts=[2, 3],
            wafer_diameters_mm=[300, 450.0],
            fab_locations=["taiwan", 30],
            max_configs=1000, chunk=100, seed=7, stream=True,
            workload="none",
        ))
        assert request.integrations == ("hybrid_3d", "mcm")
        assert request.die_counts == (2, 3)
        assert request.wafer_diameters_mm == (300.0, 450.0)
        assert request.fab_locations == ("taiwan", 30.0)
        assert request.max_configs == 1000
        assert request.chunk == 100
        assert request.seed == 7
        assert request.stream is True
        assert request.workload is None

    def test_unknown_key_rejected(self):
        with pytest.raises(SchemaError, match="unknown"):
            parse_optimize_request(self.base(objectives=["total_kg"]))

    def test_missing_design_rejected(self):
        payload = self.base()
        del payload["design"]
        with pytest.raises(SchemaError, match="design"):
            parse_optimize_request(payload)

    def test_bad_axes_rejected(self):
        with pytest.raises(SchemaError, match="integrations"):
            parse_optimize_request(self.base(integrations=[]))
        with pytest.raises(SchemaError, match="die_counts"):
            parse_optimize_request(self.base(die_counts=[1]))
        with pytest.raises(SchemaError, match="wafer_diameters_mm"):
            parse_optimize_request(self.base(wafer_diameters_mm=[-300.0]))
        with pytest.raises(SchemaError, match="max_configs"):
            parse_optimize_request(self.base(max_configs=0))
        with pytest.raises(SchemaError, match="chunk"):
            parse_optimize_request(self.base(chunk=0))
        with pytest.raises(SchemaError, match="seed"):
            parse_optimize_request(self.base(seed=-1))

    def test_parse_request_dispatches(self):
        request = parse_request(self.base())
        assert request.__class__.__name__ == "OptimizeRequest"

    def test_dispatcher_rejects_oversized_grids(self):
        """The expansion bound runs *before* the grid materializes."""
        from repro.service.dispatcher import Dispatcher

        request = parse_optimize_request(self.base(
            wafer_diameters_mm=[float(d) for d in range(150, 500)],
            fab_locations=[float(ci) for ci in range(30, 700, 3)],
        ))
        with pytest.raises(SchemaError, match="narrow an axis"):
            Dispatcher().optimize(request)


class TestMonteCarloParsing:
    def test_defaults(self):
        request = parse_montecarlo_request({
            "schema": SCHEMA_VERSION, "type": "montecarlo",
            "design": design_payload(),
        })
        assert request.samples == 200
        assert request.seed == 20240623

    def test_sample_bounds(self):
        # The engine needs >= 2 draws for a distribution summary.
        for samples in (0, 1):
            with pytest.raises(SchemaError, match="samples"):
                parse_montecarlo_request({
                    "schema": SCHEMA_VERSION, "type": "montecarlo",
                    "design": design_payload(), "samples": samples,
                })
        with pytest.raises(SchemaError, match="samples"):
            parse_montecarlo_request({
                "schema": SCHEMA_VERSION, "type": "montecarlo",
                "design": design_payload(),
                "samples": schema.MAX_MC_SAMPLES + 1,
            })

    def test_negative_seed_rejected(self):
        # numpy's default_rng refuses negative seeds — reject at the wire.
        with pytest.raises(SchemaError, match="seed"):
            parse_montecarlo_request({
                "schema": SCHEMA_VERSION, "type": "montecarlo",
                "design": design_payload(), "seed": -1,
            })

    def test_bool_is_not_an_integer(self):
        with pytest.raises(SchemaError, match="samples"):
            parse_montecarlo_request({
                "schema": SCHEMA_VERSION, "type": "montecarlo",
                "design": design_payload(), "samples": True,
            })


class TestParseRequestDispatch:
    def test_dispatches_on_type(self):
        parsed = parse_request(evaluate_payload())
        assert parsed.design.name == "chip"

    def test_unknown_type_rejected(self):
        with pytest.raises(SchemaError, match="type"):
            parse_request({"schema": SCHEMA_VERSION, "type": "divine"})


class TestBackendField:
    def test_defaults_to_repro3d(self):
        parsed = parse_request(evaluate_payload())
        assert parsed.backend == "repro3d"

    def test_accepts_registered_names(self):
        for name in ("repro3d", "act", "act_plus", "lca", "first_order"):
            parsed = parse_request(evaluate_payload(backend=name))
            assert parsed.backend == name

    def test_unknown_backend_is_typed_backend_error(self):
        from repro.errors import BackendError

        with pytest.raises(BackendError) as excinfo:
            parse_request(evaluate_payload(backend="gabi"))
        payload = schema.error_payload(excinfo.value)
        assert payload["type"] == "BackendError"
        assert payload["field"] == "backend"

    def test_backend_must_be_a_string(self):
        with pytest.raises(SchemaError, match="backend"):
            parse_request(evaluate_payload(backend=3))

    def test_batch_points_carry_backends(self):
        parsed = parse_request({
            "schema": SCHEMA_VERSION, "type": "batch",
            "points": [
                {"design": design_payload(), "backend": "act"},
                {"design": design_payload()},
            ],
        })
        assert [p.backend for p in parsed.points] == ["act", "repro3d"]

    def test_sweep_and_montecarlo_accept_backend(self):
        sweep = parse_request({
            "schema": SCHEMA_VERSION, "type": "sweep",
            "design": design_payload(integration="2d"), "backend": "lca",
        })
        assert sweep.backend == "lca"
        mc = parse_request({
            "schema": SCHEMA_VERSION, "type": "montecarlo",
            "design": design_payload(), "backend": "first_order",
        })
        assert mc.backend == "first_order"


class TestReturnSamplesField:
    def test_defaults_false(self):
        parsed = parse_request({
            "schema": SCHEMA_VERSION, "type": "montecarlo",
            "design": design_payload(),
        })
        assert parsed.return_samples is False

    def test_accepts_true(self):
        parsed = parse_request({
            "schema": SCHEMA_VERSION, "type": "montecarlo",
            "design": design_payload(), "return_samples": True,
        })
        assert parsed.return_samples is True

    def test_rejects_non_boolean(self):
        with pytest.raises(SchemaError, match="return_samples"):
            parse_request({
                "schema": SCHEMA_VERSION, "type": "montecarlo",
                "design": design_payload(), "return_samples": 1,
            })
