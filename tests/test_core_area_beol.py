"""Area-estimation (Eq. 7–9) and BEOL-estimation (Eq. 10) tests."""

import pytest

from repro.config.integration import StackingStyle
from repro.config.parameters import DEFAULT_PARAMETERS
from repro.core.area import (
    equivalent_gate_count,
    gate_area_mm2,
    io_driver_area_mm2,
    resolve_area,
    tsv_area_for_die,
)
from repro.core.beol import MIN_BEOL_LAYERS, estimate_beol_layers
from repro.core.design import Die, DieKind
from repro.errors import DesignError

PARAMS = DEFAULT_PARAMETERS
NODE_7 = PARAMS.node("7nm")
NODE_28 = PARAMS.node("28nm")
SPEC_2D = PARAMS.integration_spec("2d")
SPEC_MICRO = PARAMS.integration_spec("micro_3d")
SPEC_HYBRID = PARAMS.integration_spec("hybrid_3d")
SPEC_M3D = PARAMS.integration_spec("m3d")
SPEC_EMIB = PARAMS.integration_spec("emib")


class TestGateArea:
    def test_eq8_closed_form(self):
        """A = N·β·λ² — 1e9 gates at 7 nm."""
        expected = 1e9 * 550.0 * (7e-3) ** 2 / 1e6  # µm² → mm²
        assert gate_area_mm2(1e9, NODE_7) == pytest.approx(expected)

    def test_memory_density_factor(self):
        logic = gate_area_mm2(1e9, NODE_28, DieKind.LOGIC)
        memory = gate_area_mm2(1e9, NODE_28, DieKind.MEMORY)
        assert memory == pytest.approx(logic * NODE_28.sram_density_factor)

    def test_integration_scaling(self):
        full = gate_area_mm2(1e9, NODE_7, gate_area_factor=1.0)
        m3d = gate_area_mm2(1e9, NODE_7, gate_area_factor=0.8)
        assert m3d == pytest.approx(0.8 * full)

    def test_equivalent_gate_count_roundtrip(self):
        area = gate_area_mm2(5e8, NODE_7)
        assert equivalent_gate_count(area, NODE_7) == pytest.approx(5e8)

    def test_rejects_non_positive(self):
        with pytest.raises(DesignError):
            gate_area_mm2(0.0, NODE_7)
        with pytest.raises(DesignError):
            equivalent_gate_count(-1.0, NODE_7)


class TestTsvArea:
    def test_2d_has_none(self):
        assert tsv_area_for_die(1e9, NODE_7, SPEC_2D, StackingStyle.NA, False) == 0.0

    def test_top_die_has_none(self):
        assert tsv_area_for_die(
            1e9, NODE_7, SPEC_MICRO, StackingStyle.F2B, is_top_die=True
        ) == 0.0

    def test_f2b_exceeds_f2f(self):
        """Rent-rule TSVs (F2B) outnumber external-I/O TSVs (F2F)."""
        f2b = tsv_area_for_die(
            1e9, NODE_7, SPEC_MICRO, StackingStyle.F2B, is_top_die=False
        )
        f2f = tsv_area_for_die(
            1e9, NODE_7, SPEC_MICRO, StackingStyle.F2F, is_top_die=False
        )
        assert f2b > f2f > 0.0

    def test_m3d_miv_negligible(self):
        miv = tsv_area_for_die(
            1e9, NODE_7, SPEC_M3D, StackingStyle.F2B, is_top_die=False
        )
        f2b = tsv_area_for_die(
            1e9, NODE_7, SPEC_MICRO, StackingStyle.F2B, is_top_die=False
        )
        assert 0.0 < miv < f2b / 5.0


class TestIoDriverArea:
    def test_eq9(self):
        assert io_driver_area_mm2(100.0, SPEC_EMIB) == pytest.approx(
            SPEC_EMIB.io_area_ratio * 100.0
        )

    def test_hybrid_needs_none(self):
        assert io_driver_area_mm2(100.0, SPEC_HYBRID) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(DesignError):
            io_driver_area_mm2(-1.0, SPEC_EMIB)


class TestResolveArea:
    def test_gate_count_path(self):
        die = Die("d", "7nm", gate_count=8.5e9)
        breakdown = resolve_area(die, NODE_7, SPEC_EMIB, StackingStyle.NA, False)
        assert breakdown.gate_area_mm2 > 0
        assert breakdown.io_area_mm2 > 0
        assert breakdown.total_mm2 == pytest.approx(
            breakdown.gate_area_mm2 + breakdown.tsv_area_mm2
            + breakdown.io_area_mm2
        )

    def test_explicit_area_is_final(self):
        """Measured die areas already include all overheads."""
        die = Die("d", "7nm", area_mm2=82.0)
        breakdown = resolve_area(
            die, NODE_7, SPEC_MICRO, StackingStyle.F2B, False
        )
        assert breakdown.total_mm2 == 82.0
        assert breakdown.tsv_area_mm2 == 0.0
        assert breakdown.gate_count > 0

    def test_orin_area_calibration(self):
        die = Die("orin", "7nm", gate_count=17e9)
        breakdown = resolve_area(die, NODE_7, SPEC_2D, StackingStyle.NA, True)
        assert breakdown.total_mm2 == pytest.approx(458.0, rel=0.01)


class TestBeolEstimation:
    def test_orin_2d_in_realistic_range(self):
        """Eq. 10 lands a 17 B-gate 7 nm SoC near its max metal count."""
        estimate = estimate_beol_layers(17e9, 458.0, NODE_7)
        assert 9.0 <= estimate.layers <= 13.0

    def test_override_short_circuits(self):
        estimate = estimate_beol_layers(17e9, 458.0, NODE_7, override=9)
        assert estimate.layers == 9.0

    def test_override_validated(self):
        with pytest.raises(DesignError):
            estimate_beol_layers(17e9, 458.0, NODE_7, override=0)

    def test_layers_saved_reduces(self):
        base = estimate_beol_layers(8.5e9, 229.0, NODE_7)
        saved = estimate_beol_layers(8.5e9, 229.0, NODE_7, layers_saved=3)
        assert saved.layers == pytest.approx(base.layers - 3.0)

    def test_never_below_minimum(self):
        estimate = estimate_beol_layers(8.5e9, 229.0, NODE_7, layers_saved=100)
        assert estimate.layers == MIN_BEOL_LAYERS

    def test_clamped_at_node_maximum(self):
        """Extremely wire-bound designs clamp to the node's max stack."""
        dense_node = NODE_7.with_overrides(rent_exponent=0.8)
        estimate = estimate_beol_layers(17e9, 458.0, dense_node)
        assert estimate.layers == float(dense_node.max_beol_layers)
        assert estimate.clamped_at_max

    def test_halving_gates_reduces_layers(self):
        """The paper's BEOL saving: split dies need fewer metal layers."""
        full = estimate_beol_layers(17e9, 458.0, NODE_7)
        half = estimate_beol_layers(8.5e9, 229.0, NODE_7)
        assert half.layers < full.layers

    def test_rejects_bad_inputs(self):
        with pytest.raises(DesignError):
            estimate_beol_layers(17e9, -1.0, NODE_7)
        with pytest.raises(DesignError):
            estimate_beol_layers(2, 100.0, NODE_7)
