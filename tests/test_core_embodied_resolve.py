"""Embodied-orchestration (Eq. 3) and design-resolution tests."""

import pytest

from repro import ChipDesign, ParameterSet
from repro.config.integration import AssemblyFlow, SubstrateKind
from repro.core.embodied import embodied_carbon
from repro.core.resolve import resolve_design

PARAMS = ParameterSet.default()
CI = PARAMS.grid("taiwan").kg_co2_per_kwh


class TestResolve:
    def test_2d_resolution(self, orin_2d):
        resolved = resolve_design(orin_2d, PARAMS)
        assert len(resolved.dies) == 1
        assert resolved.floorplan is None
        assert resolved.substrate is None
        assert not resolved.is_m3d
        assert len(resolved.stack_yields.per_die) == 1
        assert resolved.stack_yields.per_bond == ()

    def test_3d_resolution(self, hybrid_stack):
        resolved = resolve_design(hybrid_stack, PARAMS)
        assert len(resolved.dies) == 2
        assert len(resolved.stack_yields.per_bond) == 1
        assert resolved.substrate is None

    def test_25d_resolution(self, emib_assembly):
        resolved = resolve_design(emib_assembly, PARAMS)
        assert resolved.floorplan is not None
        assert resolved.substrate is not None
        assert resolved.substrate.kind is SubstrateKind.EMIB_BRIDGE
        assert resolved.substrate.area_mm2 > 0
        assert resolved.stack_yields.substrate is not None

    def test_m3d_resolution(self, m3d_stack):
        resolved = resolve_design(m3d_stack, PARAMS)
        assert resolved.is_m3d
        assert resolved.m3d_stack.footprint_mm2 == pytest.approx(
            max(d.area_mm2 for d in resolved.dies)
        )
        assert len(resolved.m3d_stack.tier_layers) == 2

    def test_m3d_defect_penalty(self, m3d_stack):
        """The merged stack yields below a same-size single die."""
        from repro.core.yield_model import die_yield

        resolved = resolve_design(m3d_stack, PARAMS)
        node = resolved.dies[0].node
        plain = die_yield(
            resolved.m3d_stack.footprint_mm2,
            node.defect_density_per_cm2,
            node.alpha,
        )
        assert resolved.m3d_stack.raw_yield < plain

    def test_yield_override_respected(self):
        design = ChipDesign.planar_2d("forced", "7nm", gate_count=1e9)
        die = design.dies[0].with_overrides(yield_override=0.42)
        design = design.with_overrides(dies=(die,))
        resolved = resolve_design(design, PARAMS)
        assert resolved.dies[0].raw_yield == 0.42

    def test_beol_override_respected(self):
        design = ChipDesign.planar_2d("forced", "7nm", gate_count=1e9)
        die = design.dies[0].with_overrides(beol_layers=5)
        design = design.with_overrides(dies=(die,))
        resolved = resolve_design(design, PARAMS)
        assert resolved.dies[0].beol.layers == 5.0

    def test_total_and_max_area(self, emib_assembly):
        resolved = resolve_design(emib_assembly, PARAMS)
        assert resolved.total_die_area_mm2 == pytest.approx(
            sum(d.area_mm2 for d in resolved.dies)
        )
        assert resolved.max_die_area_mm2 == max(
            d.area_mm2 for d in resolved.dies
        )

    def test_mcm_has_organic_substrate_geometry(self, orin_2d):
        mcm = ChipDesign.homogeneous_split(orin_2d, "mcm")
        resolved = resolve_design(mcm, PARAMS)
        assert resolved.substrate is not None
        assert resolved.substrate.kind is SubstrateKind.ORGANIC
        assert resolved.substrate.area_mm2 == 0.0


class TestEmbodied:
    def test_breakdown_sums_to_total(self, emib_assembly):
        report = embodied_carbon(emib_assembly, PARAMS, CI)
        assert sum(report.breakdown().values()) == pytest.approx(
            report.total_kg
        )

    def test_2d_has_only_die_and_packaging(self, orin_2d):
        report = embodied_carbon(orin_2d, PARAMS, CI)
        assert report.bonding_kg == 0.0
        assert report.interposer_kg == 0.0
        assert report.die_kg > 0
        assert report.packaging_kg > 0

    def test_accepts_resolved_design(self, orin_2d):
        resolved = resolve_design(orin_2d, PARAMS)
        a = embodied_carbon(orin_2d, PARAMS, CI)
        b = embodied_carbon(resolved, PARAMS, CI)
        assert a.total_kg == pytest.approx(b.total_kg)

    def test_eq3_component_presence_by_family(self, orin_2d):
        """Eq. 3: which components appear for which family."""
        hybrid = embodied_carbon(
            ChipDesign.homogeneous_split(orin_2d, "hybrid_3d"), PARAMS, CI
        )
        assert hybrid.bonding_kg > 0 and hybrid.interposer_kg == 0
        emib = embodied_carbon(
            ChipDesign.homogeneous_split(orin_2d, "emib"), PARAMS, CI
        )
        assert emib.bonding_kg > 0 and emib.interposer_kg > 0
        m3d = embodied_carbon(
            ChipDesign.homogeneous_split(orin_2d, "m3d"), PARAMS, CI
        )
        assert m3d.bonding_kg == 0 and m3d.interposer_kg == 0

    def test_beol_ablation_increases_carbon(self, orin_2d):
        """Disabling the BEOL-aware refinement prices full stacks (A1)."""
        aware = embodied_carbon(orin_2d, PARAMS, CI)
        flat = embodied_carbon(
            orin_2d, PARAMS.with_beol_aware(False), CI
        )
        assert flat.total_kg > aware.total_kg

    def test_wafer_size_ablation(self, orin_2d):
        """Bigger wafers waste less edge area (A2)."""
        small = embodied_carbon(
            orin_2d, PARAMS.with_wafer_diameter(200.0), CI
        )
        large = embodied_carbon(
            orin_2d, PARAMS.with_wafer_diameter(450.0), CI
        )
        assert large.total_kg < small.total_kg

    def test_d2w_vs_w2w_ablation(self, lakefield_like):
        """D2W total embodied below W2W for Lakefield (Sec. 4.2, A3)."""
        d2w = embodied_carbon(lakefield_like, PARAMS, CI)
        w2w = embodied_carbon(
            lakefield_like.with_overrides(assembly=AssemblyFlow.W2W),
            PARAMS,
            CI,
        )
        assert d2w.total_kg < w2w.total_kg

    def test_report_metadata(self, emib_assembly):
        report = embodied_carbon(emib_assembly, PARAMS, CI)
        assert report.integration == "emib"
        assert report.design_name == emib_assembly.name
