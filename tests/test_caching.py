"""The shared LRU eviction policy (engine caches + service store)."""

from __future__ import annotations

import pytest

from repro.caching import EvictionPolicy, LRUCache
from repro.core.resolve import ResolveCache
from repro.errors import ParameterError


class TestEvictionPolicy:
    def test_defaults(self):
        policy = EvictionPolicy()
        assert policy.max_entries == 4096
        assert policy.evict_batch == 1

    def test_validation(self):
        with pytest.raises(ParameterError):
            EvictionPolicy(max_entries=0)
        with pytest.raises(ParameterError):
            EvictionPolicy(max_entries=4, evict_batch=5)
        with pytest.raises(ParameterError):
            EvictionPolicy(max_entries=4, evict_batch=0)

    def test_store_variant_batches(self):
        policy = EvictionPolicy.for_store(1000)
        assert policy.max_entries == 1000
        assert policy.evict_batch == 50
        assert EvictionPolicy.for_store(5).evict_batch == 1


class TestLRUCache:
    def test_roundtrip_and_len(self):
        cache = LRUCache(4)
        cache["a"] = 1
        assert cache.get("a") == 1
        assert cache.get("missing") is None
        assert cache.get("missing", 7) == 7
        assert len(cache) == 1
        assert "a" in cache

    def test_evicts_least_recently_used(self):
        cache = LRUCache(3)
        for key in "abc":
            cache[key] = key
        assert cache.get("a") == "a"        # refresh 'a'
        cache["d"] = "d"                    # evicts 'b', the stalest
        assert "b" not in cache
        assert all(key in cache for key in "acd")
        assert cache.evictions == 1

    def test_overwrite_refreshes_recency(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        cache["a"] = 10                     # 'a' becomes most recent
        cache["c"] = 3                      # evicts 'b'
        assert cache.get("a") == 10
        assert "b" not in cache

    def test_batched_eviction(self):
        cache = LRUCache(EvictionPolicy(max_entries=10, evict_batch=5))
        for index in range(11):
            cache[index] = index
        # One overflow drops a whole batch, keeping the newest entries.
        assert len(cache) == 6
        assert 10 in cache and 0 not in cache

    def test_never_evicts_the_new_entry(self):
        cache = LRUCache(EvictionPolicy(max_entries=1, evict_batch=1))
        cache["a"] = 1
        cache["b"] = 2
        assert "b" in cache and "a" not in cache

    def test_peek_does_not_touch_recency(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        assert cache.peek("a") == 1         # no refresh
        cache["c"] = 3                      # evicts 'a' anyway
        assert "a" not in cache

    def test_clear(self):
        cache = LRUCache(2)
        cache["a"] = 1
        cache["b"] = 2
        cache["c"] = 3
        cache.clear()
        assert len(cache) == 0
        assert cache.evictions == 0


class TestResolveCacheEviction:
    def test_layers_share_one_policy(self):
        cache = ResolveCache(limit=7)
        assert cache.limit == 7
        assert cache.die_structure.policy is cache.policy
        assert cache.floorplans.policy is cache.policy
        assert cache.validations.policy is cache.policy
        assert cache.die_fast.policy is cache.policy

    def test_eviction_keeps_recent_entries_hitting(self):
        cache = ResolveCache(limit=2)
        for index in range(5):
            cache.die_structure[("key", index)] = index
        assert len(cache.die_structure) == 2
        # The newest keys survive — a stop-inserting bound would instead
        # have frozen the cache at keys 0 and 1.
        assert cache.die_structure.get(("key", 4)) == 4


class TestEvaluatorEviction:
    def test_engine_caches_recycle_not_freeze(self, orin_2d, av_workload):
        from repro.config.parameters import DEFAULT_PARAMETERS
        from repro.engine import BatchEvaluator

        evaluator = BatchEvaluator(cache_limit=4)
        assert evaluator.eviction_policy.max_entries == 4
        # Stream more distinct parameter sets than the bound holds.
        for defect in (0.08, 0.09, 0.10, 0.11, 0.12, 0.13):
            params = DEFAULT_PARAMETERS.with_node_override(
                "7nm", defect_density_per_cm2=defect
            )
            evaluator.report(orin_2d, workload=av_workload, params=params)
        assert len(evaluator._caches.resolved) <= 4
        # The most recent key is still cached: repeating it hits.
        hits_before = evaluator.stats.resolve_hits
        evaluator.report(orin_2d, workload=av_workload, params=params)
        assert evaluator.stats.resolve_hits == hits_before + 1
