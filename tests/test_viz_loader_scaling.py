"""Tests for the viz, parameter-loader and node-scaling extensions."""

import json

import pytest

from repro import CarbonModel, ChipDesign, ParameterSet, Workload
from repro.config.loader import (
    SCHEMA_VERSION,
    load_parameters,
    parameters_from_dict,
    parameters_to_dict,
    save_parameters,
)
from repro.errors import ParameterError
from repro.studies.scaling import (
    SCALING_NODES,
    format_scaling_table,
    node_scaling_study,
)
from repro.viz import grouped_comparison, histogram, stacked_bars

PARAMS = ParameterSet.default()
WL = Workload.autonomous_vehicle()


class TestStackedBars:
    @pytest.fixture(scope="class")
    def reports(self, orin_2d):
        designs = [orin_2d, ChipDesign.homogeneous_split(orin_2d, "m3d")]
        return [CarbonModel(d, PARAMS).evaluate(WL) for d in designs]

    def test_renders_all_reports(self, reports):
        text = stacked_bars(reports)
        for report in reports:
            assert report.design_name in text

    def test_legend_present(self, reports):
        text = stacked_bars(reports)
        assert "#=die" in text and ".=operational" in text

    def test_invalid_marked(self, orin_2d):
        mcm = ChipDesign.homogeneous_split(orin_2d, "mcm")
        report = CarbonModel(mcm, PARAMS).evaluate(WL)
        assert "x INVALID" in stacked_bars([report])

    def test_larger_total_longer_bar(self, reports):
        lines = stacked_bars(reports).splitlines()
        bar_2d = lines[0].split("|")[1]
        bar_m3d = lines[1].split("|")[1]
        assert bar_2d.count("#") + bar_2d.count(".") > (
            bar_m3d.count("#") + bar_m3d.count(".")
        )

    def test_custom_labels(self, reports):
        text = stacked_bars(reports, labels=["a", "b"])
        assert text.startswith("a")

    def test_rejects_bad_inputs(self, reports):
        with pytest.raises(ParameterError):
            stacked_bars([])
        with pytest.raises(ParameterError):
            stacked_bars(reports, width=2)
        with pytest.raises(ParameterError):
            stacked_bars(reports, labels=["only_one"])


class TestGroupedAndHistogram:
    def test_grouped_scales(self):
        text = grouped_comparison([("LCA", 26.1), ("ACT+", 11.5)])
        lines = text.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_grouped_rejects_empty(self):
        with pytest.raises(ParameterError):
            grouped_comparison([])

    def test_histogram_counts_sum(self):
        samples = [1.0, 1.1, 2.0, 2.1, 2.2, 3.0]
        text = histogram(samples, bins=3)
        counts = [int(line.rsplit("|", 1)[1]) for line in text.splitlines()]
        assert sum(counts) == len(samples)

    def test_histogram_degenerate(self):
        assert "all 3 samples" in histogram([2.0, 2.0, 2.0])

    def test_histogram_rejects_small(self):
        with pytest.raises(ParameterError):
            histogram([1.0])
        with pytest.raises(ParameterError):
            histogram([1.0, 2.0], bins=1)


class TestParameterLoader:
    def test_dict_roundtrip_preserves_evaluation(self, orin_2d):
        restored = parameters_from_dict(parameters_to_dict(PARAMS))
        a = CarbonModel(orin_2d, PARAMS).embodied().total_kg
        b = CarbonModel(orin_2d, restored).embodied().total_kg
        assert a == pytest.approx(b)

    def test_file_roundtrip(self, tmp_path, orin_2d):
        path = tmp_path / "calibration.json"
        save_parameters(PARAMS, path)
        restored = load_parameters(path)
        a = CarbonModel(orin_2d, PARAMS).embodied().total_kg
        b = CarbonModel(orin_2d, restored).embodied().total_kg
        assert a == pytest.approx(b)
        json.loads(path.read_text())  # valid JSON on disk

    def test_roundtrip_preserves_tables(self):
        restored = parameters_from_dict(parameters_to_dict(PARAMS))
        assert len(restored.technology) == len(PARAMS.technology)
        assert len(restored.integration) == len(PARAMS.integration)
        assert restored.node("7nm") == PARAMS.node("7nm")
        assert restored.integration_spec("emib") == (
            PARAMS.integration_spec("emib")
        )

    def test_modified_parameters_survive(self, tmp_path):
        modified = PARAMS.with_node_override(
            "7nm", defect_density_per_cm2=0.42
        ).with_bandwidth(traffic_bytes_per_op=0.2)
        path = tmp_path / "mod.json"
        save_parameters(modified, path)
        restored = load_parameters(path)
        assert restored.node("7nm").defect_density_per_cm2 == 0.42
        assert restored.bandwidth.traffic_bytes_per_op == 0.2

    def test_schema_version_checked(self):
        data = parameters_to_dict(PARAMS)
        data["schema_version"] = 99
        with pytest.raises(ParameterError):
            parameters_from_dict(data)

    def test_schema_version_written(self):
        assert parameters_to_dict(PARAMS)["schema_version"] == SCHEMA_VERSION

    def test_corrupt_record_rejected(self):
        data = parameters_to_dict(PARAMS)
        data["nodes"][0]["defect_density_per_cm2"] = -1.0
        with pytest.raises(ParameterError):
            parameters_from_dict(data)


class TestNodeScaling:
    @pytest.fixture(scope="class")
    def points(self):
        return node_scaling_study(gate_count=2.0e9)

    def test_all_nodes_present(self, points):
        assert [p.node for p in points] == list(SCALING_NODES)

    def test_carbon_per_cm2_rises_towards_finer_nodes(self, points):
        values = [p.carbon_per_cm2_kg for p in points]
        assert all(a <= b + 1e-12 for a, b in zip(values, values[1:]))

    def test_density_rises(self, points):
        values = [p.gate_density_m_per_mm2 for p in points]
        assert all(a < b for a, b in zip(values, values[1:]))

    def test_carbon_per_gate_falls(self, points):
        """Density (and yield of smaller dies) beats per-area intensity."""
        values = [p.carbon_per_bgate_kg for p in points]
        assert all(a > b for a, b in zip(values, values[1:]))

    def test_reference_design_consistent(self, points):
        for p in points:
            assert p.reference_design_kg == pytest.approx(
                p.carbon_per_bgate_kg * 2.0
            )

    def test_format(self, points):
        text = format_scaling_table(points)
        assert "kg/Bgate" in text and "28nm" in text

    def test_rejects_bad_gate_count(self):
        with pytest.raises(ParameterError):
            node_scaling_study(gate_count=0.0)
