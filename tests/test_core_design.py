"""Design-description tests: Die / ChipDesign validation and factories."""

import pytest

from repro import ChipDesign, DesignError, ParameterSet
from repro.config.integration import AssemblyFlow, StackingStyle
from repro.core.design import Die, DieKind, PackageSpec

PARAMS = ParameterSet.default()


class TestDie:
    def test_gate_count_die(self):
        die = Die("a", "7nm", gate_count=1e9)
        assert die.gate_count == 1e9
        assert die.area_mm2 is None

    def test_area_die(self):
        die = Die("a", "7nm", area_mm2=80.0)
        assert die.area_mm2 == 80.0

    def test_requires_exactly_one_size(self):
        with pytest.raises(DesignError):
            Die("a", "7nm")
        with pytest.raises(DesignError):
            Die("a", "7nm", gate_count=1e9, area_mm2=80.0)

    def test_rejects_empty_name(self):
        with pytest.raises(DesignError):
            Die("", "7nm", gate_count=1e9)

    def test_rejects_bad_share(self):
        with pytest.raises(DesignError):
            Die("a", "7nm", gate_count=1e9, workload_share=1.5)

    def test_rejects_bad_yield_override(self):
        with pytest.raises(DesignError):
            Die("a", "7nm", gate_count=1e9, yield_override=0.0)

    def test_rejects_bad_beol(self):
        with pytest.raises(DesignError):
            Die("a", "7nm", gate_count=1e9, beol_layers=0)

    def test_rejects_bad_efficiency(self):
        with pytest.raises(DesignError):
            Die("a", "7nm", gate_count=1e9, efficiency_tops_per_w=-2.0)

    def test_with_overrides(self):
        die = Die("a", "7nm", gate_count=1e9)
        half = die.with_overrides(gate_count=5e8)
        assert half.gate_count == 5e8
        assert die.gate_count == 1e9


class TestChipDesignValidation:
    def test_2d_exactly_one_die(self):
        design = ChipDesign(
            name="bad2d",
            dies=(Die("a", "7nm", gate_count=1e9),
                  Die("b", "7nm", gate_count=1e9)),
            integration="2d",
        )
        with pytest.raises(DesignError):
            design.validate(PARAMS)

    def test_3d_needs_two_dies(self):
        design = ChipDesign(
            name="bad3d",
            dies=(Die("a", "7nm", gate_count=1e9),),
            integration="hybrid_3d",
            stacking=StackingStyle.F2F,
            assembly=AssemblyFlow.D2W,
        )
        with pytest.raises(DesignError):
            design.validate(PARAMS)

    def test_m3d_tier_limit(self):
        design = ChipDesign(
            name="deep_m3d",
            dies=tuple(
                Die(f"t{i}", "7nm", gate_count=1e9) for i in range(3)
            ),
            integration="m3d",
            stacking=StackingStyle.F2B,
        )
        with pytest.raises(DesignError):
            design.validate(PARAMS)

    def test_hybrid_f2f_two_die_limit(self):
        design = ChipDesign(
            name="deep_hybrid",
            dies=tuple(
                Die(f"d{i}", "7nm", gate_count=1e9) for i in range(3)
            ),
            integration="hybrid_3d",
            stacking=StackingStyle.F2F,
            assembly=AssemblyFlow.D2W,
        )
        with pytest.raises(DesignError):
            design.validate(PARAMS)

    def test_m3d_rejects_f2f(self):
        design = ChipDesign(
            name="m3d_f2f",
            dies=(Die("a", "7nm", gate_count=1e9),
                  Die("b", "7nm", gate_count=1e9)),
            integration="m3d",
            stacking=StackingStyle.F2F,
        )
        with pytest.raises(DesignError):
            design.validate(PARAMS)

    def test_emib_rejects_chip_first(self):
        design = ChipDesign(
            name="emib_cf",
            dies=(Die("a", "7nm", gate_count=1e9),
                  Die("b", "7nm", gate_count=1e9)),
            integration="emib",
            assembly=AssemblyFlow.CHIP_FIRST,
        )
        with pytest.raises(DesignError):
            design.validate(PARAMS)

    def test_duplicate_die_names_rejected(self):
        with pytest.raises(DesignError):
            ChipDesign(
                name="dup",
                dies=(Die("a", "7nm", gate_count=1e9),
                      Die("a", "7nm", gate_count=1e9)),
                integration="hybrid_3d",
            )

    def test_unknown_node_caught_at_validate(self):
        design = ChipDesign(
            name="weird",
            dies=(Die("a", "9nm", gate_count=1e9),),
            integration="2d",
        )
        with pytest.raises(Exception):
            design.validate(PARAMS)

    def test_valid_hybrid_passes(self, hybrid_stack):
        spec = hybrid_stack.validate(PARAMS)
        assert spec.name == "hybrid_3d"

    def test_package_override_validated(self):
        with pytest.raises(DesignError):
            PackageSpec("fcbga", area_mm2=-5.0)

    def test_bad_throughput_rejected(self):
        with pytest.raises(DesignError):
            ChipDesign.planar_2d("x", "7nm", gate_count=1e9,
                                 throughput_tops=-1.0)


class TestFactories:
    def test_planar_2d(self):
        design = ChipDesign.planar_2d("chip", "7nm", gate_count=1e9)
        assert design.die_count == 1
        assert design.integration == "2d"

    def test_homogeneous_split_conserves_gates(self, orin_2d):
        split = ChipDesign.homogeneous_split(orin_2d, "hybrid_3d")
        assert sum(d.gate_count for d in split.dies) == pytest.approx(17e9)
        assert split.die_count == 2

    def test_homogeneous_split_equal_shares(self, orin_2d):
        split = ChipDesign.homogeneous_split(orin_2d, "mcm")
        assert all(
            d.workload_share == pytest.approx(0.5) for d in split.dies
        )

    def test_homogeneous_2_5d_gets_valid_assembly(self, orin_2d):
        split = ChipDesign.homogeneous_split(orin_2d, "emib")
        assert split.assembly is AssemblyFlow.CHIP_LAST
        assert split.stacking is StackingStyle.NA
        split.validate(PARAMS)

    def test_m3d_split_forces_f2b(self, orin_2d):
        split = ChipDesign.homogeneous_split(orin_2d, "m3d")
        assert split.stacking is StackingStyle.F2B
        split.validate(PARAMS)

    def test_heterogeneous_split_structure(self, orin_2d):
        split = ChipDesign.heterogeneous_split(orin_2d, "hybrid_3d")
        memory, logic = split.dies
        assert memory.kind is DieKind.MEMORY
        assert memory.node == "28nm"
        assert memory.workload_share == 0.0
        assert logic.workload_share == 1.0
        assert logic.node == "7nm"

    def test_heterogeneous_memory_smaller_than_logic(self, orin_2d, params):
        """Sec. 5.1: 'smaller memory die areas'."""
        from repro.core.resolve import resolve_design

        split = ChipDesign.heterogeneous_split(orin_2d, "hybrid_3d")
        resolved = resolve_design(split, params)
        memory, logic = resolved.dies
        assert memory.area_mm2 < logic.area_mm2

    def test_split_requires_gate_count(self, small_2d):
        with pytest.raises(DesignError):
            ChipDesign.homogeneous_split(small_2d, "hybrid_3d")

    def test_split_requires_single_die_reference(self, hybrid_stack):
        with pytest.raises(DesignError):
            ChipDesign.homogeneous_split(hybrid_stack, "emib")

    def test_split_to_2d_rejected(self, orin_2d):
        with pytest.raises(DesignError):
            ChipDesign.homogeneous_split(orin_2d, "2d")

    def test_throughput_carried_over(self, orin_2d):
        split = ChipDesign.homogeneous_split(orin_2d, "emib")
        assert split.throughput_tops == orin_2d.throughput_tops
