"""Test package marker.

Makes ``tests.test_analysis`` and ``benchmarks.test_analysis`` distinct
module names so one pytest invocation can collect both trees (the seed
layout collided on the shared ``test_analysis`` basename).
"""
