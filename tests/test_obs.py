"""Observability tests: metrics primitives, tracing, and correlation.

The acceptance scenario of the observability PR lives here: one trace id
correlates the client's ``X-Carbon3D-Trace-Id`` header, the server's
JSON log record, the response envelope, and an NDJSON stream's framing
lines — while ``GET /metrics`` exposes dispatcher/store/engine/breaker
signals as valid Prometheus text and ``DispatchStats`` counts exactly
under concurrent increments.
"""

from __future__ import annotations

import io
import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.api import Session, StudySpec
from repro.engine import BatchEvaluator, EvalPoint
from repro.io.designs import design_from_dict
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.obs.logging import JsonRequestLog
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.service import ServiceClient, make_server
from repro.service.dispatcher import Dispatcher, DispatchStats


def design_payload(name="obs_chip", gates=17e9) -> dict:
    return {
        "name": name,
        "integration": "hybrid_3d",
        "stacking": "f2f",
        "assembly": "d2w",
        "package": {"class": "fcbga"},
        "throughput_tops": 254.0,
        "dies": [
            {"name": "top", "node": "7nm", "gate_count": gates / 2,
             "workload_share": 0.5},
            {"name": "bottom", "node": "7nm", "gate_count": gates / 2,
             "workload_share": 0.5},
        ],
    }


# -- metrics primitives -------------------------------------------------------


class TestCounter:
    def test_inc_and_value(self):
        counter = Counter("c_total", "help")
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_labels_are_independent_children(self):
        counter = Counter("c_total", "help")
        counter.labels(kind="a").inc()
        counter.labels(kind="a").inc()
        counter.labels(kind="b").inc()
        assert counter.labels(kind="a").value == 2
        assert counter.labels(kind="b").value == 1

    def test_function_counter_samples_at_read(self):
        box = {"n": 7}
        counter = Counter("c_total", "help")
        counter.set_function(lambda: box["n"])
        assert counter.value == 7
        box["n"] = 9
        assert counter.value == 9

    def test_function_counter_swallows_errors(self):
        counter = Counter("c_total", "help")
        counter.set_function(lambda: 1 / 0)
        assert counter.value == 0


class TestGauge:
    def test_set_inc_dec(self):
        gauge = Gauge("g", "help")
        gauge.set(10)
        gauge.inc(2)
        gauge.dec()
        assert gauge.value == 11


class TestHistogram:
    def test_summary_percentiles(self):
        hist = Histogram("h_seconds", "help")
        for _ in range(90):
            hist.observe(0.001)
        for _ in range(10):
            hist.observe(0.5)
        summary = hist.summary()
        assert summary["count"] == 100
        assert summary["p50"] <= 0.005
        assert summary["p99"] >= 0.1
        assert summary["min"] <= summary["p50"] <= summary["p99"]

    def test_timer_context_manager(self):
        hist = Histogram("h_seconds", "help")
        with hist.time():
            pass
        assert hist.summary()["count"] == 1


class TestRegistry:
    def test_idempotent_registration(self):
        registry = MetricsRegistry()
        first = registry.counter("x_total", "help")
        again = registry.counter("x_total", "help")
        assert first is again

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("req_total", "requests").inc(3)
        registry.gauge("temp", "temperature").set(1.5)
        hist = registry.histogram("lat_seconds", "latency")
        hist.observe(0.01)
        text = registry.render_prometheus()
        assert "# HELP req_total requests" in text
        assert "# TYPE req_total counter" in text
        assert "req_total 3" in text
        assert 'lat_seconds_bucket{le="+Inf"} 1' in text
        assert "lat_seconds_count 1" in text
        assert text.endswith("\n")

    def test_snapshot_has_histogram_summaries(self):
        registry = MetricsRegistry()
        registry.histogram("lat_seconds", "latency").observe(0.01)
        snap = registry.snapshot()
        assert snap["lat_seconds"]["count"] == 1
        assert "p99" in snap["lat_seconds"]


# -- DispatchStats: atomic counters ------------------------------------------


class TestDispatchStatsAtomicity:
    def test_concurrent_increments_count_exactly(self):
        stats = DispatchStats()
        threads, per_thread = 8, 2000

        def hammer():
            for _ in range(per_thread):
                stats.inc("requests")
                stats.inc("points", 2)

        pool = [threading.Thread(target=hammer) for _ in range(threads)]
        for t in pool:
            t.start()
        for t in pool:
            t.join()
        assert stats.requests == threads * per_thread
        assert stats.points == threads * per_thread * 2

    def test_attribute_writes_are_rejected(self):
        # The unlocked `stats.requests += 1` pattern raced; __slots__
        # forces every write through the atomic inc().
        stats = DispatchStats()
        with pytest.raises(AttributeError):
            stats.requests = 5

    def test_as_dict_round_trip(self):
        stats = DispatchStats()
        stats.inc("errors", 3)
        data = stats.as_dict()
        assert data["errors"] == 3
        assert set(data) == set(DispatchStats.FIELDS)


# -- tracing ------------------------------------------------------------------


class TestTrace:
    def test_span_is_noop_without_active_trace(self):
        before = len(obs_trace.collector.trace_ids())
        with obs_trace.span("orphan") as span:
            assert span is None
        assert len(obs_trace.collector.trace_ids()) == before

    def test_nested_spans_share_trace_and_parent(self):
        with obs_trace.trace("root") as root:
            with obs_trace.span("child") as child:
                assert child.trace_id == root.trace_id
                assert child.parent_id == root.span_id
        spans = obs_trace.collector.spans(root.trace_id)
        assert sorted(s.name for s in spans) == ["child", "root"]

    def test_explicit_trace_id_adopted(self):
        with obs_trace.trace("root", trace_id="feedbeef" * 4) as root:
            assert root.trace_id == "feedbeef" * 4

    def test_render_tree_and_breakdown(self):
        with obs_trace.trace("root") as root:
            with obs_trace.span("stage.work", backend="x"):
                pass
        spans = obs_trace.collector.spans(root.trace_id)
        tree = obs_trace.render_tree(spans)
        assert "root" in tree and "stage.work" in tree
        breakdown = obs_trace.stage_breakdown(spans)
        assert breakdown["stage.work"]["count"] == 1
        assert breakdown["root"]["self_s"] <= breakdown["root"]["total_s"]

    def test_worker_capture_round_trip(self):
        with obs_trace.trace("root") as root:
            capture = obs_trace.begin_worker_capture()
            with obs_trace.span("stage.forked"):
                pass
            shipped = obs_trace.end_worker_capture(capture)
            assert shipped and shipped[0]["name"] == "stage.forked"
            obs_trace.adopt_spans(shipped)
        names = [s.name for s in obs_trace.collector.spans(root.trace_id)]
        assert "stage.forked" in names


class TestProcessWorkerSpans:
    def test_forked_worker_spans_reattach(self):
        evaluator = BatchEvaluator(workers=2, worker_mode="process")
        points = [
            EvalPoint(design=design_from_dict(
                design_payload(f"fork_{i}", 16e9 + i * 1e8)
            ))
            for i in range(4)
        ]
        with obs_trace.trace("forked-batch") as root:
            evaluator.evaluate_many(points, chunk_size=2)
        spans = obs_trace.collector.spans(root.trace_id)
        worker_spans = [s for s in spans if "worker" in s.attrs]
        assert worker_spans, "no spans shipped back from forked workers"
        assert all(s.trace_id == root.trace_id for s in worker_spans)
        assert any(s.name.startswith("stage.") for s in worker_spans)


# -- server correlation: header -> log -> envelope -> stream ------------------


@pytest.fixture()
def obs_service(tmp_path):
    """A running server with a captured JSON request log."""
    log_stream = io.StringIO()
    server = make_server(
        store_path=str(tmp_path / "store.sqlite3"),
        request_log=JsonRequestLog(log_stream),
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, ServiceClient(server.url), log_stream
    finally:
        server.close()
        thread.join(timeout=5.0)


def log_records(stream: io.StringIO, expect: int = 1) -> list:
    # The server logs *after* writing the response body, so the client
    # can observe the reply a beat before the record lands.
    deadline = time.monotonic() + 5.0
    while time.monotonic() < deadline:
        lines = stream.getvalue().splitlines()
        if len(lines) >= expect:
            break
        time.sleep(0.01)
    return [json.loads(line) for line in stream.getvalue().splitlines()]


class TestTraceCorrelation:
    def test_trace_id_spans_client_log_and_envelope(self, obs_service):
        _, client, log_stream = obs_service
        with obs_trace.trace("correlate") as root:
            envelope = client.evaluate(design_payload())
        assert envelope["trace_id"] == root.trace_id
        records = log_records(log_stream)
        assert [r["trace_id"] for r in records] == [root.trace_id]
        record = records[0]
        assert record["route"] == "/evaluate"
        assert record["status"] == 200
        assert record["duration_ms"] >= 0
        assert record["cache"] == "computed"

    def test_server_mints_trace_id_without_header(self, obs_service):
        _, client, log_stream = obs_service
        envelope = client.evaluate(design_payload("minted"))
        assert envelope["trace_id"]
        assert log_records(log_stream)[0]["trace_id"] == envelope["trace_id"]

    def test_stream_framing_carries_trace_id(self, obs_service):
        server, _, _ = obs_service
        payload = {
            "schema": 1,
            "type": "batch",
            "stream": True,
            "points": [
                {"design": design_payload("s0")},
                {"design": design_payload("s1")},
            ],
        }
        sent = "ab" * 16
        request = urllib.request.Request(
            server.url + "/batch",
            data=json.dumps(payload).encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                obs_trace.TRACE_HEADER: sent,
            },
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            lines = [json.loads(line) for line in response.read().splitlines()]
        header, *entries, done = lines
        assert header["trace_id"] == sent
        assert done["trace_id"] == sent
        # Per-point entries stay byte-identical to local execution.
        assert all("trace_id" not in entry for entry in entries)

    def test_sweep_stream_framing_carries_trace_id(self, obs_service):
        server, _, _ = obs_service
        payload = {
            "schema": 1,
            "type": "sweep",
            "stream": True,
            # Sweeps re-split a single-die 2D reference per integration.
            "design": {
                "name": "sw_ref",
                "integration": "2d",
                "package": {"class": "fcbga"},
                "throughput_tops": 254.0,
                "dies": [{"name": "soc", "node": "7nm",
                          "gate_count": 17e9, "workload_share": 1.0}],
            },
            "integrations": ["2d", "hybrid_3d"],
        }
        sent = "cd" * 16
        request = urllib.request.Request(
            server.url + "/sweep",
            data=json.dumps(payload).encode("utf-8"),
            headers={
                "Content-Type": "application/json",
                obs_trace.TRACE_HEADER: sent,
            },
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            lines = [json.loads(line) for line in response.read().splitlines()]
        assert lines[0]["trace_id"] == sent
        assert lines[-1]["trace_id"] == sent

    def test_error_responses_are_logged_with_type(self, obs_service):
        server, _, log_stream = obs_service
        request = urllib.request.Request(
            server.url + "/evaluate",
            data=b"{not json",
            headers={"Content-Type": "application/json"},
        )
        with pytest.raises(urllib.error.HTTPError):
            urllib.request.urlopen(request, timeout=30)
        record = log_records(log_stream)[0]
        assert record["status"] == 400
        assert record["error"]


class TestMetricsEndpoint:
    EXPECTED = (
        "carbon3d_dispatcher_requests_total",
        "carbon3d_request_duration_seconds",
        "carbon3d_engine_cache_hit_ratio",
        "carbon3d_store_entries",
        "carbon3d_breakers_open",
        "carbon3d_inflight_requests",
        "carbon3d_shed_requests_total",
    )

    def test_metrics_text_covers_every_layer(self, obs_service):
        _, client, _ = obs_service
        client.evaluate(design_payload("metrics"))
        with urllib.request.urlopen(
            client.base_url + "/metrics", timeout=30
        ) as response:
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        for name in self.EXPECTED:
            assert name in text, f"{name} missing from /metrics"
        assert "carbon3d_dispatcher_requests_total 1" in text

    def test_metrics_open_on_token_servers(self, tmp_path):
        server = make_server(
            store_path=str(tmp_path / "auth.sqlite3"), token="sekrit"
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with urllib.request.urlopen(
                server.url + "/metrics", timeout=30
            ) as response:
                assert response.status == 200
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_stats_carries_metrics_snapshot(self, obs_service):
        _, client, log_stream = obs_service
        client.evaluate(design_payload("snap"))
        # Request duration is observed after the response is written;
        # the log record (emitted right after) marks it as landed.
        log_records(log_stream)
        stats = client.stats()
        assert stats["metrics"]["carbon3d_dispatcher_requests_total"] == 1
        series = stats["metrics"]["carbon3d_request_duration_seconds"]
        assert any("p99" in summary for summary in series.values())


# -- Session timing parity ----------------------------------------------------


class TestSessionTiming:
    def timing_for(self, session) -> dict:
        handle = session.submit(StudySpec.batch([
            {"design": design_payload("t0")},
            {"design": design_payload("t1", 18e9)},
        ]))
        handle.result(timeout=60)
        return handle.timing()

    def test_local_breakdown(self):
        with Session() as session:
            timing = self.timing_for(session)
        assert timing["trace_id"]
        assert timing["duration_s"] > 0
        assert any(
            name.startswith("stage.") for name in timing["stages"]
        ), timing["stages"]

    def test_local_vs_service_shape_parity(self, obs_service):
        server, _, _ = obs_service
        with Session() as local:
            local_timing = self.timing_for(local)
        with Session(executor="service", url=server.url) as remote:
            remote_timing = self.timing_for(remote)
        assert set(local_timing) == set(remote_timing)
        assert remote_timing["trace_id"]
        assert remote_timing["duration_s"] > 0

    def test_stats_uniform_across_executors(self, obs_service):
        server, _, _ = obs_service
        with Session() as local:
            local.evaluate(design_payload("st"))
            local_stats = local.stats()
        with Session(executor="service", url=server.url) as remote:
            remote.evaluate(design_payload("st"))
            remote_stats = remote.stats()
        for key in ("dispatcher", "engine", "metrics"):
            assert key in local_stats and key in remote_stats
        assert local_stats["dispatcher"]["requests"] >= 1
        assert remote_stats["dispatcher"]["requests"] >= 1


# -- the trace CLI ------------------------------------------------------------


class TestTraceCli:
    def test_span_tree_for_bare_design(self, tmp_path, capsys):
        from repro.cli import main

        design_file = tmp_path / "design.json"
        design_file.write_text(json.dumps(design_payload("cli_traced")))
        assert main(["trace", str(design_file)]) == 0
        out = capsys.readouterr().out
        assert "trace " in out
        assert "stage.embodied" in out
        assert "self ms" in out

    def test_wire_payload_study(self, tmp_path, capsys):
        from repro.cli import main

        study_file = tmp_path / "study.json"
        study_file.write_text(json.dumps({
            "type": "montecarlo",
            "design": design_payload("cli_mc"),
            "samples": 20,
        }))
        assert main(["trace", str(study_file)]) == 0
        out = capsys.readouterr().out
        assert "monte_carlo study" in out

    def test_serve_accepts_log_json_flag(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["serve", "--log-json"])
        assert args.log_json is True


# -- engine overhead guard ----------------------------------------------------


class TestInactiveTracingIsFree:
    def test_span_returns_shared_null_object(self):
        first = obs_trace.span("a")
        second = obs_trace.span("b")
        assert first is second

    def test_engine_without_metrics_skips_observation(self):
        evaluator = BatchEvaluator()
        observation = evaluator._observe_stage("embodied")
        with observation:
            pass
        assert observation is evaluator._observe_stage("resolve")
