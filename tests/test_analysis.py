"""Analysis-extension tests: tornado, Monte Carlo, configuration search."""

import pytest

from repro import ChipDesign, ParameterSet, Workload
from repro.analysis import (
    SensitivityFactor,
    comparison_robustness,
    default_factors,
    format_tornado,
    monte_carlo,
    search_configurations,
    tornado,
)
from repro.errors import ParameterError
from repro.studies.drive import drive_2d_design

PARAMS = ParameterSet.default()
WL = Workload.autonomous_vehicle()


@pytest.fixture(scope="module")
def hybrid_orin():
    return ChipDesign.homogeneous_split(drive_2d_design("ORIN"), "hybrid_3d")


class TestSensitivity:
    def test_factor_validation(self):
        with pytest.raises(ParameterError):
            SensitivityFactor("bad", 1.5, 2.0, lambda p, m: p)

    def test_default_factors_cover_table2_knobs(self):
        names = {f.name.split("[")[0] for f in default_factors()}
        assert {"defect_density", "fab_energy_epa", "packaging_cpa",
                "bonding_epa"} <= names

    def test_2d_has_no_bonding_factor(self):
        names = [f.name for f in default_factors(integration="2d")]
        assert not any("bonding" in n for n in names)

    def test_tornado_sorted_by_swing(self, hybrid_orin):
        results = tornado(hybrid_orin, workload=WL)
        swings = [abs(r.swing_kg) for r in results]
        assert swings == sorted(swings, reverse=True)

    def test_tornado_base_consistent(self, hybrid_orin):
        results = tornado(hybrid_orin, workload=WL)
        bases = {round(r.base_kg, 9) for r in results}
        assert len(bases) == 1

    def test_defect_density_dominates(self, hybrid_orin):
        """Yield is the paper's largest embodied lever for big 7 nm dies."""
        results = tornado(hybrid_orin, workload=WL)
        assert results[0].factor.startswith("defect_density")

    def test_monotone_factors_have_positive_swing(self, hybrid_orin):
        results = tornado(hybrid_orin, workload=WL)
        for r in results:
            if r.factor.startswith(("defect_density", "fab_energy",
                                    "packaging")):
                assert r.swing_kg > 0, r.factor

    def test_bond_yield_swing_negative(self, hybrid_orin):
        """Raising the bond yield lowers carbon: high multiplier, low kg."""
        results = tornado(hybrid_orin, workload=WL)
        bond = next(r for r in results if r.factor.startswith("bond_yield"))
        assert bond.swing_kg < 0

    def test_elasticity_sign_matches_swing(self, hybrid_orin):
        for r in tornado(hybrid_orin, workload=WL):
            if r.swing_kg != 0:
                assert (r.elasticity > 0) == (r.swing_kg > 0)

    def test_format(self, hybrid_orin):
        text = format_tornado(tornado(hybrid_orin, workload=WL))
        assert "base total" in text and "#" in text

    def test_format_empty(self):
        assert format_tornado([]) == "(no factors)"


class TestMonteCarlo:
    def test_reproducible(self, hybrid_orin):
        a = monte_carlo(hybrid_orin, workload=WL, samples=20, seed=7)
        b = monte_carlo(hybrid_orin, workload=WL, samples=20, seed=7)
        assert a.samples_kg == b.samples_kg

    def test_seed_changes_samples(self, hybrid_orin):
        a = monte_carlo(hybrid_orin, workload=WL, samples=20, seed=1)
        b = monte_carlo(hybrid_orin, workload=WL, samples=20, seed=2)
        assert a.samples_kg != b.samples_kg

    def test_distribution_brackets_base(self, hybrid_orin):
        result = monte_carlo(hybrid_orin, workload=WL, samples=60)
        assert result.p05 < result.base_kg * 1.25
        assert result.p95 > result.base_kg * 0.85
        assert result.p05 <= result.p50 <= result.p95

    def test_std_positive(self, hybrid_orin):
        assert monte_carlo(hybrid_orin, workload=WL, samples=30).std_kg > 0

    def test_summary_text(self, hybrid_orin):
        text = monte_carlo(hybrid_orin, workload=WL, samples=10).summary()
        assert "p95" in text

    def test_rejects_tiny_sample_count(self, hybrid_orin):
        with pytest.raises(ParameterError):
            monte_carlo(hybrid_orin, samples=1)

    def test_robustness_hybrid_beats_2d(self, hybrid_orin):
        """Hybrid's savings survive parameter uncertainty (common draws)."""
        probability = comparison_robustness(
            drive_2d_design("ORIN"), hybrid_orin, workload=WL, samples=40
        )
        assert probability > 0.9


class TestSearch:
    @pytest.fixture(scope="class")
    def result(self):
        return search_configurations(drive_2d_design("ORIN"), WL)

    def test_best_is_m3d_homogeneous(self, result):
        assert result.best is not None
        assert result.best.label.startswith("m3d/homog")

    def test_best_is_valid_and_minimal(self, result):
        assert result.best.valid
        for candidate in result.valid_candidates():
            assert result.best.total_kg <= candidate.total_kg + 1e-9

    def test_includes_2d_baseline(self, result):
        assert any(c.label == "2d" for c in result.candidates)

    def test_invalid_candidates_excluded_from_best(self, result):
        invalid = [c for c in result.candidates if not c.valid]
        assert invalid  # MCM/InFO @ ORIN at least
        assert all(c is not result.best for c in invalid)

    def test_pareto_front_is_nondominated(self, result):
        front = result.pareto_front()
        assert front
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominates = (
                    b.report.embodied_kg <= a.report.embodied_kg
                    and b.report.operational_kg <= a.report.operational_kg
                    and (b.report.embodied_kg < a.report.embodied_kg
                         or b.report.operational_kg < a.report.operational_kg)
                )
                assert not dominates

    def test_pareto_sorted_by_embodied(self, result):
        front = result.pareto_front()
        embodied = [c.report.embodied_kg for c in front]
        assert embodied == sorted(embodied)

    def test_format_table(self, result):
        text = result.format_table()
        assert "<== best" in text
        assert "NO" in text

    def test_multi_die_reference_rejected(self, hybrid_orin):
        with pytest.raises(ParameterError):
            search_configurations(hybrid_orin, WL)

    def test_restricted_search(self):
        result = search_configurations(
            drive_2d_design("ORIN"), WL,
            integrations=["hybrid_3d"], approaches=("homogeneous",),
            include_2d=False,
        )
        labels = {c.label for c in result.candidates}
        assert labels == {"hybrid_3d/homog/d2w", "hybrid_3d/homog/w2w"}


class TestNonDefaultFactorSets:
    """Tornado and robustness under a backend's own (non-Table 2) factors."""

    def test_tornado_under_act_factor_set(self, hybrid_orin):
        from repro.pipeline.registry import get_backend

        results = tornado(hybrid_orin, backend="act")
        expected = {
            factor.name
            for factor in get_backend("act").factor_set(hybrid_orin, PARAMS)
        }
        assert {entry.factor for entry in results} == expected
        # The intensity factors scale ACT's die term directly: every
        # swing is real and positive (bigger multiplier, more carbon).
        assert all(entry.swing_kg > 0 for entry in results)

    def test_tornado_prices_model_scoped_factors(self, hybrid_orin):
        results = tornado(hybrid_orin, backend="lca")
        by_name = {entry.factor: entry for entry in results}
        cpa = by_name["gabi_cpa_scale"]
        assert cpa.low_kg < cpa.base_kg < cpa.high_kg
        # cpa_scale multiplies only the die term, linearly: the swing
        # above base vs below base must sit in the bounds' ratio.
        above = cpa.high_kg - cpa.base_kg
        below = cpa.base_kg - cpa.low_kg
        assert above / below == pytest.approx(
            (cpa.high_multiplier - 1.0) / (1.0 - cpa.low_multiplier),
            rel=1e-9,
        )

    def test_tornado_explicit_factor_set_object(self, hybrid_orin):
        from repro.uncertainty import FactorSet, FactorSpec, FactorTarget

        only_epa = FactorSet("just_epa", (
            FactorSpec(
                "epa", 0.5, 2.0,
                FactorTarget("node", ("7nm",), "epa_kwh_per_cm2"),
            ),
        ))
        results = tornado(hybrid_orin, factors=only_epa)
        assert [entry.factor for entry in results] == ["epa"]

    def test_robustness_under_backend_factor_set(self, hybrid_orin):
        probability = comparison_robustness(
            drive_2d_design("ORIN"), hybrid_orin, workload=WL, samples=30,
            backend="act",
        )
        assert 0.0 <= probability <= 1.0

    def test_robustness_model_scoped_draws(self, hybrid_orin):
        """LCA's cpa_scale perturbs both designs per draw (common draws)."""
        probability = comparison_robustness(
            drive_2d_design("ORIN"), hybrid_orin, samples=30, backend="lca"
        )
        assert 0.0 <= probability <= 1.0

    def test_robustness_reproducible_per_backend(self, hybrid_orin):
        kwargs = dict(samples=25, seed=99, backend="first_order")
        first = comparison_robustness(
            drive_2d_design("ORIN"), hybrid_orin, **kwargs
        )
        second = comparison_robustness(
            drive_2d_design("ORIN"), hybrid_orin, **kwargs
        )
        assert first == second
