"""Golden regression values: pin the calibrated model outputs.

These values are produced by the default ParameterSet and recorded in
EXPERIMENTS.md. They are intentionally tight (0.5 % relative): any change
to a calibrated constant that silently shifts the reproduction will fail
here first, pointing straight at the calibration contract. When a
deliberate recalibration happens, update EXPERIMENTS.md and these pins
together.
"""

import pytest

from repro import CarbonModel, ChipDesign, ParameterSet, Workload
from repro.studies.drive import drive_2d_design
from repro.studies.validation import epyc_validation, lakefield_validation

PARAMS = ParameterSet.default()
WL = Workload.autonomous_vehicle()
RTOL = 0.005


def evaluate(design):
    return CarbonModel(design, PARAMS, "taiwan").evaluate(WL)


class TestGoldenOrin:
    """The Fig. 5(a)/Table 5 ORIN column, pinned."""

    EXPECTED = {
        "2d": (16.96, 12.70),
        "micro_3d": (12.45, 14.06),
        "hybrid_3d": (10.95, 12.32),
        "m3d": (5.79, 11.66),
        "emib": (12.85, 15.98),
        "si_interposer": (18.61, 14.00),
    }

    @pytest.fixture(scope="class")
    def reports(self):
        reference = drive_2d_design("ORIN")
        out = {"2d": evaluate(reference)}
        for name in self.EXPECTED:
            if name != "2d":
                out[name] = evaluate(
                    ChipDesign.homogeneous_split(reference, name)
                )
        return out

    @pytest.mark.parametrize("integration", sorted(EXPECTED))
    def test_embodied_pinned(self, reports, integration):
        expected_emb, _ = self.EXPECTED[integration]
        assert reports[integration].embodied_kg == pytest.approx(
            expected_emb, rel=RTOL
        )

    @pytest.mark.parametrize("integration", sorted(EXPECTED))
    def test_operational_pinned(self, reports, integration):
        _, expected_op = self.EXPECTED[integration]
        assert reports[integration].operational_kg == pytest.approx(
            expected_op, rel=RTOL
        )


class TestGoldenValidation:
    def test_epyc_totals(self):
        result = epyc_validation()
        assert result.lca.total_kg == pytest.approx(26.07, rel=RTOL)
        assert result.act_plus.total_kg == pytest.approx(11.51, rel=RTOL)
        assert result.carbon_3d.total_kg == pytest.approx(18.47, rel=RTOL)
        assert result.carbon_3d_as_2d.total_kg == pytest.approx(
            25.00, rel=RTOL
        )

    def test_lakefield_totals(self):
        result = lakefield_validation()
        assert result.lca.total_kg == pytest.approx(3.199, rel=RTOL)
        assert result.act_plus.total_kg == pytest.approx(2.817, rel=RTOL)
        assert result.carbon_3d_d2w.total_kg == pytest.approx(3.345, rel=RTOL)
        assert result.carbon_3d_w2w.total_kg == pytest.approx(3.642, rel=RTOL)


class TestGoldenComponents:
    """Component-level pins for the 2D ORIN (the calibration root)."""

    def test_orin_2d_breakdown(self):
        report = evaluate(drive_2d_design("ORIN"))
        breakdown = report.embodied.breakdown()
        assert breakdown["die"] == pytest.approx(15.37, rel=RTOL)
        assert breakdown["packaging"] == pytest.approx(1.59, rel=RTOL)
        assert breakdown["bonding"] == 0.0
        assert breakdown["interposer"] == 0.0

    def test_orin_2d_derived_quantities(self):
        resolved = CarbonModel(drive_2d_design("ORIN"), PARAMS).resolved()
        die = resolved.dies[0]
        assert die.area_mm2 == pytest.approx(458.15, rel=RTOL)
        assert die.raw_yield == pytest.approx(0.5375, rel=RTOL)
        assert die.beol.layers == pytest.approx(12.70, rel=0.01)

    def test_orin_emib_bandwidth(self):
        design = ChipDesign.homogeneous_split(
            drive_2d_design("ORIN"), "emib"
        )
        bw = CarbonModel(design, PARAMS).bandwidth()
        assert bw.required_tb_s == pytest.approx(33.02, rel=RTOL)
        assert bw.ratio == pytest.approx(0.722, abs=0.01)
        assert bw.degradation == pytest.approx(0.111, abs=0.005)
