"""Backend-protocol tests: registry, pipeline runs, and bit-exact parity.

The refactor's contract: every registered carbon backend produces
*bit-identical* results through the protocol versus its pre-refactor
direct module API, and the batch engine's memoized backend path matches
both. The Sec. 4 comparison study and the worker modes ride on that
guarantee, so it is pinned here exactly (``==`` on floats, never
``approx``).
"""

from __future__ import annotations

import pytest

from repro.baselines import (
    act_estimate,
    act_plus_estimate,
    first_order_estimate,
    lca_estimate,
)
from repro.config.parameters import ParameterSet
from repro.core.design import ChipDesign
from repro.core.model import CarbonModel
from repro.core.operational import Workload
from repro.core.resolve import resolve_design
from repro.engine import BatchEvaluator, EvalPoint
from repro.errors import BackendError, ParameterError
from repro.pipeline import (
    BackendReport,
    EvalContext,
    LcaBackend,
    PipelineRun,
    Repro3DBackend,
    backend_names,
    get_backend,
    register_backend,
    resolve_backend,
)
from repro.studies.validation import (
    compare_backends,
    epyc_7452_design,
    epyc_validation,
    lakefield_design,
)

PARAMS = ParameterSet.default()
CI = PARAMS.grid("taiwan").kg_co2_per_kwh
BUILTIN = ("repro3d", "act", "act_plus", "lca", "first_order")


@pytest.fixture(params=["2d", "hybrid_3d", "mcm", "micro_3d"])
def any_design(request, orin_2d, lakefield_like):
    if request.param == "2d":
        return orin_2d
    if request.param == "micro_3d":
        return lakefield_like
    return ChipDesign.homogeneous_split(orin_2d, request.param)


class TestRegistry:
    def test_builtins_registered(self):
        assert backend_names() == BUILTIN

    def test_unknown_name_raises_typed_error(self):
        with pytest.raises(BackendError) as excinfo:
            get_backend("nope")
        assert excinfo.value.backend == "nope"
        assert excinfo.value.known == BUILTIN
        assert excinfo.value.field == "backend"

    def test_duplicate_registration_needs_replace(self):
        backend = get_backend("act")
        with pytest.raises(BackendError):
            register_backend(backend)
        register_backend(backend, replace=True)  # no-op override is fine

    def test_resolve_accepts_name_instance_none(self):
        act = get_backend("act")
        assert resolve_backend("act") is act
        assert resolve_backend(act) is act
        assert resolve_backend(None).name == "repro3d"
        with pytest.raises(BackendError):
            resolve_backend(42)


class TestPipelineIntrospection:
    def test_stage_names(self):
        assert get_backend("repro3d").stage_names() == (
            "resolve", "embodied", "bandwidth", "operational"
        )
        for name in ("act", "act_plus", "lca", "first_order"):
            stages = get_backend(name).stage_names()
            assert stages[0] == "resolve" and len(stages) == 2

    def test_stage_fns_are_module_level(self):
        """Every stage fn must be picklable by reference (process workers)."""
        import pickle

        for name in backend_names():
            for stage in get_backend(name).stages:
                assert pickle.loads(pickle.dumps(stage.fn)) is stage.fn

    def test_run_records_keys_and_outputs(self, orin_2d, av_workload):
        backend = get_backend("repro3d")
        ctx = EvalContext.build(orin_2d, PARAMS, "taiwan", av_workload)
        run = PipelineRun(backend, ctx)
        resolved = run.output("resolve")
        assert resolved.design is orin_2d
        assert run.key("embodied") is not None
        report = run.result()
        assert report.total_kg == run.summary().total_kg

    def test_memo_shares_stages_across_runs(self, orin_2d):
        backend = get_backend("repro3d")
        memo: dict = {}
        ctx = EvalContext.build(orin_2d, PARAMS, "taiwan", None)
        first = PipelineRun(backend, ctx, memo=memo).output("resolve")
        second = PipelineRun(backend, ctx, memo=memo).output("resolve")
        assert first is second


class TestProtocolParity:
    """Backend-protocol results == pre-refactor direct APIs, bit for bit."""

    def test_repro3d_matches_carbon_model(self, any_design, av_workload):
        direct = CarbonModel(any_design, PARAMS, "taiwan").evaluate(av_workload)
        summary = get_backend("repro3d").evaluate(
            any_design, PARAMS, "taiwan", av_workload
        )
        assert summary.total_kg == direct.total_kg
        assert summary.embodied_kg == direct.embodied_kg
        assert summary.operational_kg == direct.operational.total_kg
        assert summary.breakdown_dict() == direct.embodied.breakdown()
        assert summary.valid == direct.valid
        # repr-compare: an idle die's efficiency is NaN, and NaN != NaN
        # would fail dataclass equality on bit-identical reports.
        assert repr(summary.detail) == repr(direct)

    def test_act_matches_direct(self, any_design):
        resolved = resolve_design(any_design, PARAMS)
        dies = [(d.name, d.node.name, d.area_mm2) for d in resolved.dies]
        direct = act_estimate(dies, CI, PARAMS)
        summary = get_backend("act").evaluate(any_design, PARAMS, "taiwan")
        assert summary.total_kg == direct.total_kg
        assert summary.breakdown_dict() == direct.breakdown()
        assert summary.detail == direct

    def test_act_plus_matches_direct(self, any_design):
        direct = act_plus_estimate(any_design, CI, PARAMS)
        summary = get_backend("act_plus").evaluate(any_design, PARAMS, "taiwan")
        assert summary.total_kg == direct.total_kg
        assert summary.breakdown_dict() == direct.breakdown()
        assert summary.detail == direct

    def test_lca_matches_direct(self, any_design):
        resolved = resolve_design(any_design, PARAMS)
        dies = [(d.node.name, d.area_mm2) for d in resolved.dies]
        direct = lca_estimate(
            dies, PARAMS, monolithic=len(any_design.dies) > 1
        )
        summary = get_backend("lca").evaluate(any_design, PARAMS, "taiwan")
        assert summary.total_kg == direct.total_kg
        assert summary.detail == direct

    def test_first_order_matches_direct(self, any_design):
        resolved = resolve_design(any_design, PARAMS)
        direct = first_order_estimate(resolved.total_die_area_mm2)
        summary = get_backend("first_order").evaluate(
            any_design, PARAMS, "taiwan"
        )
        assert summary.total_kg == direct.total_kg
        assert summary.detail == direct

    def test_lca_monolithic_pinning(self, hybrid_stack):
        resolved = resolve_design(hybrid_stack, PARAMS)
        dies = [(d.node.name, d.area_mm2) for d in resolved.dies]
        per_die = LcaBackend(monolithic=False).evaluate(hybrid_stack, PARAMS)
        assert per_die.total_kg == lca_estimate(
            dies, PARAMS, monolithic=False
        ).total_kg
        auto = get_backend("lca").evaluate(hybrid_stack, PARAMS)
        assert auto.total_kg != per_die.total_kg

    def test_act_plus_shared_resolution_changes_nothing(self, emib_assembly):
        resolved = resolve_design(emib_assembly, PARAMS)
        assert act_plus_estimate(
            emib_assembly, CI, PARAMS, resolved=resolved
        ) == act_plus_estimate(emib_assembly, CI, PARAMS)


class TestEngineEquivalence:
    """Engine-memoized backend path == direct backend path, bit for bit."""

    @pytest.mark.parametrize("name", BUILTIN)
    def test_engine_matches_direct_per_backend(
        self, name, any_design, av_workload
    ):
        evaluator = BatchEvaluator(params=PARAMS, fab_location="taiwan")
        direct = get_backend(name).evaluate(
            any_design, PARAMS, "taiwan", av_workload
        )
        first = evaluator.backend_report(
            any_design, name, workload=av_workload
        )
        again = evaluator.backend_report(  # memoized second pass
            any_design, name, workload=av_workload
        )
        for engine_report in (first, again):
            assert engine_report.total_kg == direct.total_kg
            assert engine_report.breakdown == direct.breakdown
            assert engine_report.to_dict() == direct.to_dict()

    def test_backend_total_kg_matches_report(self, hybrid_stack, av_workload):
        evaluator = BatchEvaluator(params=PARAMS)
        for name in BUILTIN:
            assert evaluator.backend_total_kg(
                hybrid_stack, name, workload=av_workload
            ) == evaluator.backend_report(
                hybrid_stack, name, workload=av_workload
            ).total_kg

    def test_resolution_shared_across_backends(self, hybrid_stack):
        evaluator = BatchEvaluator(params=PARAMS)
        for name in BUILTIN:
            evaluator.backend_report(hybrid_stack, name)
        # One physical resolve; every other backend hit the shared memo.
        assert evaluator.stats.resolve_misses == 1
        assert evaluator.stats.resolve_hits == len(BUILTIN) - 1

    def test_evaluate_point_types(self, hybrid_stack, av_workload):
        evaluator = BatchEvaluator(params=PARAMS)
        classic = evaluator.evaluate(
            EvalPoint(design=hybrid_stack, workload=av_workload)
        )
        uniform = evaluator.evaluate(
            EvalPoint(
                design=hybrid_stack, workload=av_workload, backend="repro3d"
            )
        )
        assert type(classic).__name__ == "LifecycleReport"
        assert isinstance(uniform, BackendReport)
        assert uniform.total_kg == classic.total_kg

    def test_unknown_backend_point_raises(self, hybrid_stack):
        evaluator = BatchEvaluator(params=PARAMS)
        with pytest.raises(BackendError):
            evaluator.evaluate(EvalPoint(design=hybrid_stack, backend="nope"))


class TestWorkerModes:
    def test_evaluate_many_modes_bit_identical(self, orin_2d, av_workload):
        evaluator = BatchEvaluator(params=PARAMS)
        points = [
            EvalPoint(
                design=orin_2d, workload=av_workload, fab_location=location,
                backend=backend,
            )
            for location in ("iceland", "usa", "taiwan", "india")
            for backend in BUILTIN
        ]
        serial = evaluator.evaluate_many(points)
        threaded = evaluator.evaluate_many(points, workers=2)
        forked = evaluator.evaluate_many(
            points, workers=2, worker_mode="process"
        )
        assert [r.to_dict() for r in serial] \
            == [r.to_dict() for r in threaded] \
            == [r.to_dict() for r in forked]

    def test_workers_process_sugar(self, orin_2d, av_workload):
        evaluator = BatchEvaluator(params=PARAMS)
        points = [
            EvalPoint(design=orin_2d, workload=av_workload,
                      fab_location=location)
            for location in ("france", "taiwan")
        ]
        sugar = evaluator.evaluate_many(points, workers="process")
        assert [r.total_kg for r in sugar] \
            == [r.total_kg for r in evaluator.evaluate_many(points)]

    def test_worker_mode_validation(self):
        with pytest.raises(ParameterError):
            BatchEvaluator(worker_mode="fiber")
        with pytest.raises(ParameterError):
            BatchEvaluator(workers="process", worker_mode="thread")

    def test_child_exception_propagates(self):
        from repro.engine.parallel import fork_map

        def explode(value):
            if value == 3:
                raise ValueError("boom in child")
            return value

        with pytest.raises(ValueError, match="boom in child"):
            fork_map(explode, [0, 1, 2, 3], 2)

    def test_fork_map_preserves_order(self):
        from repro.engine.parallel import fork_map

        items = list(range(23))
        assert fork_map(lambda x: x * x, items, 3) == [x * x for x in items]


class TestCompareBackends:
    def test_reproduces_sec4_epyc_numbers(self):
        """compare_backends == the Fig. 4(a) study's own numbers."""
        comparison = compare_backends(epyc_7452_design())
        reference = epyc_validation()
        assert comparison.report("lca").total_kg == reference.lca.total_kg
        assert comparison.report("act_plus").total_kg \
            == reference.act_plus.total_kg
        assert comparison.report("repro3d").embodied_kg \
            == reference.carbon_3d.total_kg

    def test_one_batched_engine_call_shares_resolution(self):
        evaluator = BatchEvaluator(params=PARAMS)
        compare_backends(lakefield_design(), evaluator=evaluator)
        assert evaluator.stats.resolve_misses == 1

    def test_rows_and_table(self, hybrid_stack, av_workload):
        comparison = compare_backends(hybrid_stack, workload=av_workload)
        rows = comparison.rows()
        assert [row[0] for row in rows] == [
            "3D-Carbon", "ACT", "ACT+", "LCA", "First-order"
        ]
        table = comparison.format_table()
        assert "3D-Carbon" in table and "—" in table
        # Only repro3d models the use phase.
        assert rows[0][6] is not None
        assert all(row[6] is None for row in rows[1:])

    def test_unknown_backend_rejected_before_evaluation(self, orin_2d):
        with pytest.raises(BackendError):
            compare_backends(orin_2d, backends=["repro3d", "nope"])

    def test_backend_subset_and_order(self, orin_2d):
        comparison = compare_backends(
            orin_2d, backends=["lca", "first_order"]
        )
        assert [r.backend for r in comparison.reports] \
            == ["lca", "first_order"]

    def test_draws_attach_per_backend_bands(self, hybrid_stack):
        from repro.analysis.uncertainty import monte_carlo

        evaluator = BatchEvaluator(params=PARAMS)
        comparison = compare_backends(
            hybrid_stack, backends=["repro3d", "act"],
            evaluator=evaluator, draws=15, seed=3,
        )
        assert comparison.bands is not None
        band = comparison.band("act")
        assert band.n == 15
        # The band is the backend's own monte_carlo study, verbatim.
        reference = monte_carlo(
            hybrid_stack, samples=15, seed=3, backend="act",
            evaluator=evaluator,
        )
        assert band.samples_kg == reference.samples_kg
        assert comparison.band("repro3d").samples_kg != band.samples_kg
        table = comparison.format_table()
        assert "uncertainty (each backend draws its own factor set)" in table

    def test_without_draws_bands_absent(self, orin_2d):
        comparison = compare_backends(orin_2d, backends=["lca"])
        assert comparison.bands is None
        with pytest.raises(KeyError):
            comparison.band("lca")


class TestBackendReportShape:
    def test_to_dict_shape(self, hybrid_stack, av_workload):
        data = get_backend("repro3d").evaluate(
            hybrid_stack, PARAMS, "taiwan", av_workload
        ).to_dict()
        assert data["backend"] == "repro3d"
        assert data["total_kg"] == pytest.approx(
            data["embodied_kg"] + data["operational_kg"]
        )
        baseline = get_backend("act").evaluate(
            hybrid_stack, PARAMS, "taiwan", av_workload
        ).to_dict()
        assert "operational_kg" not in baseline
        assert baseline["valid"] is True
        assert sum(baseline["embodied_breakdown_kg"].values()) \
            == pytest.approx(baseline["total_kg"])


class TestPluginEvaluatorSemantics:
    """backend=None is the engine's own path (plugin included); an
    explicit backend stays bit-identical to its direct evaluate()."""

    class _DoublePlugin:
        def efficiency_tops_per_w(self, rdie):
            return 2.0

    def test_explicit_repro3d_ignores_evaluator_plugin(
        self, hybrid_stack, av_workload
    ):
        evaluator = BatchEvaluator(
            params=PARAMS, efficiency_plugin=self._DoublePlugin()
        )
        explicit = evaluator.backend_report(
            hybrid_stack, "repro3d", workload=av_workload
        ).total_kg
        direct = get_backend("repro3d").evaluate(
            hybrid_stack, PARAMS, "taiwan", av_workload
        ).total_kg
        assert explicit == direct

    def test_backend_none_keeps_engine_plugin_path(
        self, hybrid_stack, av_workload
    ):
        evaluator = BatchEvaluator(
            params=PARAMS, efficiency_plugin=self._DoublePlugin()
        )
        own = evaluator.backend_report(
            hybrid_stack, None, workload=av_workload
        ).total_kg
        plain = evaluator.report(hybrid_stack, workload=av_workload).total_kg
        assert own == plain
        # The plugin genuinely changes the number, so the two semantics
        # are observably different on this evaluator.
        assert plain != get_backend("repro3d").evaluate(
            hybrid_stack, PARAMS, "taiwan", av_workload
        ).total_kg
