"""Yield-model tests: Eq. 15 and the Table 3 compositions."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config.integration import AssemblyFlow
from repro.core.yield_model import (
    StackYields,
    die_yield,
    three_d_stack_yields,
    two_five_d_yields,
)
from repro.errors import DesignError, ParameterError


class TestEq15DieYield:
    def test_closed_form(self):
        # (1 + 1 cm² · 0.1 / 10)^-10
        assert die_yield(100.0, 0.1, 10.0) == pytest.approx(1.01**-10)

    def test_zero_area_limit(self):
        assert die_yield(1e-9, 0.1, 10.0) == pytest.approx(1.0, abs=1e-6)

    def test_zero_defects(self):
        assert die_yield(500.0, 0.0, 10.0) == 1.0

    def test_monotone_decreasing_in_area(self):
        assert die_yield(50.0, 0.1, 10.0) > die_yield(500.0, 0.1, 10.0)

    def test_monotone_decreasing_in_d0(self):
        assert die_yield(100.0, 0.05, 10.0) > die_yield(100.0, 0.2, 10.0)

    def test_poisson_limit_for_large_alpha(self):
        """α → ∞ recovers exp(−A·D₀)."""
        area, d0 = 200.0, 0.1
        nb = die_yield(area, d0, 1e6)
        poisson = math.exp(-2.0 * d0)
        assert nb == pytest.approx(poisson, rel=1e-4)

    def test_lakefield_logic_anchor(self):
        """82 mm² at the calibrated 7 nm D₀ yields 89.3 % (Sec. 4.2)."""
        assert die_yield(82.0, 0.139, 10.0) == pytest.approx(0.893, abs=0.002)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            die_yield(-1.0, 0.1, 10.0)
        with pytest.raises(ParameterError):
            die_yield(100.0, -0.1, 10.0)
        with pytest.raises(ParameterError):
            die_yield(100.0, 0.1, 0.0)


class TestThreeDStackYields:
    def test_d2w_composition(self):
        """Table 3 D2W: Y_die_i = y_i · y_b^(N−i)."""
        yields = three_d_stack_yields([0.9, 0.8, 0.7], 0.95, AssemblyFlow.D2W)
        assert yields.per_die[0] == pytest.approx(0.9 * 0.95**2)
        assert yields.per_die[1] == pytest.approx(0.8 * 0.95)
        assert yields.per_die[2] == pytest.approx(0.7)

    def test_d2w_bond_yields(self):
        yields = three_d_stack_yields([0.9, 0.8, 0.7], 0.95, AssemblyFlow.D2W)
        assert len(yields.per_bond) == 2
        assert yields.per_bond[0] == pytest.approx(0.95**2)
        assert yields.per_bond[1] == pytest.approx(0.95)

    def test_w2w_composition(self):
        """Table 3 W2W: every die carries the whole stack's yield."""
        yields = three_d_stack_yields([0.9, 0.8], 0.97, AssemblyFlow.W2W)
        stack = 0.9 * 0.8 * 0.97
        assert yields.per_die == (pytest.approx(stack), pytest.approx(stack))
        assert yields.per_bond == (pytest.approx(stack),)

    def test_top_die_unaffected_in_d2w(self):
        """The last-placed die survives no further bonds."""
        yields = three_d_stack_yields([0.9, 0.8], 0.5, AssemblyFlow.D2W)
        assert yields.per_die[-1] == pytest.approx(0.8)

    def test_d2w_beats_w2w_for_effective_die_yield(self):
        """Known-good-die testing keeps D2W per-die yields above W2W."""
        d2w = three_d_stack_yields([0.9, 0.85], 0.96, AssemblyFlow.D2W)
        w2w = three_d_stack_yields([0.9, 0.85], 0.97, AssemblyFlow.W2W)
        assert min(d2w.per_die) > min(w2w.per_die)

    def test_single_die_rejected(self):
        with pytest.raises(DesignError):
            three_d_stack_yields([0.9], 0.95, AssemblyFlow.D2W)

    def test_bad_flow_rejected(self):
        with pytest.raises(DesignError):
            three_d_stack_yields([0.9, 0.8], 0.95, AssemblyFlow.CHIP_LAST)

    def test_bad_yield_rejected(self):
        with pytest.raises(ParameterError):
            three_d_stack_yields([1.5, 0.8], 0.95, AssemblyFlow.D2W)


class TestTwoFiveDYields:
    def test_chip_first(self):
        """Table 3: Y_die = y_die·y_sub; Y_bond = 1."""
        yields = two_five_d_yields(
            [0.9, 0.8], 0.95, 0.99, AssemblyFlow.CHIP_FIRST
        )
        assert yields.per_die[0] == pytest.approx(0.9 * 0.95)
        assert yields.per_die[1] == pytest.approx(0.8 * 0.95)
        assert all(b == 1.0 for b in yields.per_bond)
        assert yields.substrate == pytest.approx(0.95)

    def test_chip_last(self):
        """Table 3: Y_die = y_die·Πy_bond; Y_sub = y_sub·Πy_bond."""
        yields = two_five_d_yields(
            [0.9, 0.8], 0.95, 0.99, AssemblyFlow.CHIP_LAST
        )
        bond_product = 0.99**2
        assert yields.per_die[0] == pytest.approx(0.9 * bond_product)
        assert yields.per_die[1] == pytest.approx(0.8 * bond_product)
        assert yields.substrate == pytest.approx(0.95 * bond_product)
        assert all(
            b == pytest.approx(bond_product) for b in yields.per_bond
        )

    def test_bond_count_matches_die_count(self):
        yields = two_five_d_yields(
            [0.9, 0.8, 0.85], 0.95, 0.99, AssemblyFlow.CHIP_LAST
        )
        assert len(yields.per_bond) == 3

    def test_bad_flow_rejected(self):
        with pytest.raises(DesignError):
            two_five_d_yields([0.9, 0.8], 0.95, 0.99, AssemblyFlow.W2W)

    def test_single_die_rejected(self):
        with pytest.raises(DesignError):
            two_five_d_yields([0.9], 0.95, 0.99, AssemblyFlow.CHIP_LAST)


class TestStackYieldsContainer:
    def test_worst_die(self):
        yields = StackYields(per_die=(0.7, 0.9), per_bond=())
        assert yields.worst_die == 0.7

    def test_rejects_out_of_range(self):
        with pytest.raises(ParameterError):
            StackYields(per_die=(1.2,), per_bond=())
        with pytest.raises(ParameterError):
            StackYields(per_die=(0.9,), per_bond=(0.0,))


class TestProperties:
    yields_strategy = st.lists(
        st.floats(min_value=0.05, max_value=1.0), min_size=2, max_size=6
    )

    @given(
        die_yields=yields_strategy,
        bond=st.floats(min_value=0.5, max_value=1.0),
        flow=st.sampled_from([AssemblyFlow.D2W, AssemblyFlow.W2W]),
    )
    @settings(max_examples=200, deadline=None)
    def test_3d_effective_below_raw(self, die_yields, bond, flow):
        """Composition can only lose yield, never gain it."""
        yields = three_d_stack_yields(die_yields, bond, flow)
        for effective, raw in zip(yields.per_die, die_yields):
            assert effective <= raw + 1e-12
        for value in yields.per_die + yields.per_bond:
            assert 0.0 < value <= 1.0

    @given(
        die_yields=yields_strategy,
        sub=st.floats(min_value=0.5, max_value=1.0),
        bond=st.floats(min_value=0.5, max_value=1.0),
        flow=st.sampled_from(
            [AssemblyFlow.CHIP_FIRST, AssemblyFlow.CHIP_LAST]
        ),
    )
    @settings(max_examples=200, deadline=None)
    def test_25d_effective_below_raw(self, die_yields, sub, bond, flow):
        yields = two_five_d_yields(die_yields, sub, bond, flow)
        for effective, raw in zip(yields.per_die, die_yields):
            assert effective <= raw + 1e-12
        assert yields.substrate is not None
        assert yields.substrate <= sub + 1e-12

    @given(
        area=st.floats(min_value=0.1, max_value=2000.0),
        d0=st.floats(min_value=0.0, max_value=1.0),
        alpha=st.floats(min_value=1.0, max_value=50.0),
    )
    @settings(max_examples=300, deadline=None)
    def test_eq15_in_unit_interval(self, area, d0, alpha):
        assert 0.0 < die_yield(area, d0, alpha) <= 1.0
