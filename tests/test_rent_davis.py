"""Davis wirelength-model tests, including hypothesis property tests."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.rent.davis import (
    WirelengthDistribution,
    average_wirelength_gate_pitches,
    average_wirelength_mm,
    donath_average_wirelength,
)


class TestAverageWirelength:
    def test_small_array_sane(self):
        avg = average_wirelength_gate_pitches(1024, 0.6)
        assert 1.0 < avg < 2.0 * math.sqrt(1024)

    def test_average_grows_with_rent_exponent(self):
        low = average_wirelength_gate_pitches(1e8, 0.55)
        high = average_wirelength_gate_pitches(1e8, 0.75)
        assert high > low

    def test_average_grows_with_gate_count_for_high_p(self):
        small = average_wirelength_gate_pitches(1e6, 0.7)
        large = average_wirelength_gate_pitches(1e9, 0.7)
        assert large > small

    def test_saturates_for_low_p(self):
        """For p < 0.5 the average saturates to O(1) gate pitches."""
        small = average_wirelength_gate_pitches(1e6, 0.3)
        large = average_wirelength_gate_pitches(1e10, 0.3)
        assert large < 10.0
        assert abs(large - small) < 1.0

    def test_power_law_regime(self):
        """For 0.5 < p < 1, L̄ ~ N^(p−1/2) (Donath scaling)."""
        p = 0.65
        ratio = (
            average_wirelength_gate_pitches(1e10, p)
            / average_wirelength_gate_pitches(1e8, p)
        )
        expected = (1e10 / 1e8) ** (p - 0.5)
        assert ratio == pytest.approx(expected, rel=0.15)

    def test_donath_cross_check(self):
        """Exact Davis moments agree with Donath within a small factor."""
        for n in (1e7, 1e9):
            davis = average_wirelength_gate_pitches(n, 0.65)
            donath = donath_average_wirelength(n, 0.65)
            assert 0.2 < davis / donath < 5.0

    def test_physical_units(self):
        """1e9 gates on 100 mm²: gate pitch 0.316 µm scales the average."""
        pitches = average_wirelength_gate_pitches(1e9, 0.62)
        mm = average_wirelength_mm(1e9, 0.62, 100.0)
        assert mm == pytest.approx(pitches * math.sqrt(100.0 / 1e9))

    def test_rejects_tiny_arrays(self):
        with pytest.raises(ParameterError):
            average_wirelength_gate_pitches(2, 0.6)

    def test_rejects_bad_exponent(self):
        with pytest.raises(ParameterError):
            average_wirelength_gate_pitches(1e6, 1.0)
        with pytest.raises(ParameterError):
            average_wirelength_gate_pitches(1e6, 0.0)

    def test_rejects_bad_area(self):
        with pytest.raises(ParameterError):
            average_wirelength_mm(1e6, 0.6, -1.0)


class TestDistribution:
    def test_support(self):
        dist = WirelengthDistribution(10000, 0.65)
        low, high = dist.support
        assert low == 1.0
        assert high == 2.0 * math.sqrt(10000)

    def test_density_zero_outside_support(self):
        dist = WirelengthDistribution(10000, 0.65)
        assert dist.density(0.5) == 0.0
        assert dist.density(2.0 * math.sqrt(10000) + 1.0) == 0.0

    def test_density_positive_inside(self):
        dist = WirelengthDistribution(10000, 0.65)
        assert dist.density(1.0) > 0.0
        assert dist.density(math.sqrt(10000)) > 0.0

    def test_density_decreasing_overall(self):
        """Short wires dominate: density at l=2 far above l=√N."""
        dist = WirelengthDistribution(1e6, 0.65)
        assert dist.density(2.0) > 100.0 * dist.density(math.sqrt(1e6))

    def test_pdf_integrates_to_one(self):
        dist = WirelengthDistribution(4096, 0.65)
        low, high = dist.support
        steps = 20000
        dl = (high - low) / steps
        total = sum(
            dist.pdf(low + (i + 0.5) * dl) * dl for i in range(steps)
        )
        assert total == pytest.approx(1.0, rel=0.01)

    def test_mean_matches_numeric_integral(self):
        dist = WirelengthDistribution(4096, 0.65)
        low, high = dist.support
        steps = 20000
        dl = (high - low) / steps
        mean = sum(
            (low + (i + 0.5) * dl) * dist.pdf(low + (i + 0.5) * dl) * dl
            for i in range(steps)
        )
        assert mean == pytest.approx(dist.mean(), rel=0.02)


class TestProperties:
    @given(
        n=st.floats(min_value=100, max_value=1e11),
        p=st.floats(min_value=0.2, max_value=0.9),
    )
    @settings(max_examples=200, deadline=None)
    def test_average_within_support(self, n, p):
        avg = average_wirelength_gate_pitches(n, p)
        assert 0.0 < avg < 2.0 * math.sqrt(n)

    @given(
        n=st.floats(min_value=1e4, max_value=1e10),
        p1=st.floats(min_value=0.3, max_value=0.85),
        p2=st.floats(min_value=0.3, max_value=0.85),
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_rent_exponent(self, n, p1, p2):
        lo, hi = sorted((p1, p2))
        if hi - lo < 1e-3:
            return
        assert (average_wirelength_gate_pitches(n, lo)
                <= average_wirelength_gate_pitches(n, hi) + 1e-9)

    @given(n=st.floats(min_value=100, max_value=1e10))
    @settings(max_examples=100, deadline=None)
    def test_density_non_negative(self, n):
        dist = WirelengthDistribution(n, 0.65)
        low, high = dist.support
        for frac in (0.0, 0.1, 0.5, 0.9, 1.0):
            l = low + frac * (high - low)
            assert dist.density(l) >= 0.0
