"""Wafer-carbon tests (Eq. 6 and the M3D sequential variant)."""

import pytest

from repro.config.m3d import M3DParameters
from repro.config.parameters import DEFAULT_PARAMETERS
from repro.core.wafer import (
    m3d_wafer_carbon_per_cm2,
    wafer_carbon_kg,
    wafer_carbon_per_cm2,
)
from repro.errors import ParameterError

NODE_7 = DEFAULT_PARAMETERS.node("7nm")
NODE_14 = DEFAULT_PARAMETERS.node("14nm")
M3D = M3DParameters()
CI = 0.509  # Taiwan grid


class TestEq6:
    def test_components(self):
        b = wafer_carbon_per_cm2(NODE_7, CI, beol_aware=False)
        assert b.energy_kg_per_cm2 == pytest.approx(CI * NODE_7.epa_kwh_per_cm2)
        assert b.gas_kg_per_cm2 == NODE_7.gpa_kg_per_cm2
        assert b.material_kg_per_cm2 == NODE_7.mpa_kg_per_cm2

    def test_total_is_sum(self):
        b = wafer_carbon_per_cm2(NODE_7, CI, beol_aware=False)
        assert b.total_kg_per_cm2 == pytest.approx(
            b.energy_kg_per_cm2 + b.gas_kg_per_cm2 + b.material_kg_per_cm2
        )

    def test_beol_aware_at_max_equals_flat(self):
        """At the node's max layer count the split reassembles exactly."""
        flat = wafer_carbon_per_cm2(NODE_7, CI, beol_aware=False)
        aware = wafer_carbon_per_cm2(
            NODE_7, CI, beol_layers=float(NODE_7.max_beol_layers)
        )
        assert aware.total_kg_per_cm2 == pytest.approx(flat.total_kg_per_cm2)

    def test_fewer_layers_less_carbon(self):
        """The paper's BEOL lever: shallower stacks emit less."""
        deep = wafer_carbon_per_cm2(NODE_7, CI, beol_layers=13.0)
        shallow = wafer_carbon_per_cm2(NODE_7, CI, beol_layers=8.0)
        assert shallow.total_kg_per_cm2 < deep.total_kg_per_cm2

    def test_layers_do_not_change_material(self):
        deep = wafer_carbon_per_cm2(NODE_7, CI, beol_layers=13.0)
        shallow = wafer_carbon_per_cm2(NODE_7, CI, beol_layers=8.0)
        assert deep.material_kg_per_cm2 == shallow.material_kg_per_cm2

    def test_greener_grid_less_carbon(self):
        dirty = wafer_carbon_per_cm2(NODE_7, 0.7, beol_aware=False)
        clean = wafer_carbon_per_cm2(NODE_7, 0.03, beol_aware=False)
        assert clean.total_kg_per_cm2 < dirty.total_kg_per_cm2

    def test_wafer_total(self):
        b = wafer_carbon_per_cm2(NODE_7, CI, beol_aware=False)
        kg = wafer_carbon_kg(b, 70685.83)  # 300 mm wafer
        assert kg == pytest.approx(b.total_kg_per_cm2 * 706.8583)

    def test_rejects_negative_ci(self):
        with pytest.raises(ParameterError):
            wafer_carbon_per_cm2(NODE_7, -0.1)

    def test_rejects_negative_layers(self):
        with pytest.raises(ParameterError):
            wafer_carbon_per_cm2(NODE_7, CI, beol_layers=-1.0)

    def test_rejects_bad_wafer_area(self):
        b = wafer_carbon_per_cm2(NODE_7, CI)
        with pytest.raises(ParameterError):
            wafer_carbon_kg(b, 0.0)


class TestM3DWafer:
    def two_tier(self, layers=8.0):
        return [(NODE_7, layers), (NODE_7, layers)]

    def test_costs_more_per_cm2_than_single_wafer(self):
        """Sequential processing adds FEOL + ILD passes per footprint."""
        single = wafer_carbon_per_cm2(NODE_7, CI, beol_layers=8.0)
        stacked = m3d_wafer_carbon_per_cm2(self.two_tier(), CI, M3D)
        assert stacked.total_kg_per_cm2 > single.total_kg_per_cm2

    def test_costs_less_than_two_wafers(self):
        """...but far less than two independently processed wafers."""
        single = wafer_carbon_per_cm2(NODE_7, CI, beol_layers=8.0)
        stacked = m3d_wafer_carbon_per_cm2(self.two_tier(), CI, M3D)
        assert stacked.total_kg_per_cm2 < 2.0 * single.total_kg_per_cm2

    def test_material_charged_once(self):
        stacked = m3d_wafer_carbon_per_cm2(self.two_tier(), CI, M3D)
        assert stacked.material_kg_per_cm2 == NODE_7.mpa_kg_per_cm2

    def test_heterogeneous_tiers(self):
        mixed = m3d_wafer_carbon_per_cm2(
            [(NODE_14, 8.0), (NODE_7, 8.0)], CI, M3D
        )
        pure = m3d_wafer_carbon_per_cm2(self.two_tier(), CI, M3D)
        assert mixed.total_kg_per_cm2 != pytest.approx(pure.total_kg_per_cm2)
        assert mixed.material_kg_per_cm2 == NODE_14.mpa_kg_per_cm2

    def test_overhead_scales_with_parameter(self):
        cheap = m3d_wafer_carbon_per_cm2(
            self.two_tier(), CI, M3DParameters(feol_overhead=0.1)
        )
        costly = m3d_wafer_carbon_per_cm2(
            self.two_tier(), CI, M3DParameters(feol_overhead=0.9)
        )
        assert cheap.total_kg_per_cm2 < costly.total_kg_per_cm2

    def test_single_tier_rejected(self):
        with pytest.raises(ParameterError):
            m3d_wafer_carbon_per_cm2([(NODE_7, 8.0)], CI, M3D)

    def test_too_many_tiers_rejected(self):
        with pytest.raises(ParameterError):
            m3d_wafer_carbon_per_cm2(
                [(NODE_7, 8.0)] * 3, CI, M3D
            )

    def test_negative_layers_rejected(self):
        with pytest.raises(ParameterError):
            m3d_wafer_carbon_per_cm2([(NODE_7, -1.0), (NODE_7, 8.0)], CI, M3D)

    def test_beol_unaware_mode(self):
        aware = m3d_wafer_carbon_per_cm2(self.two_tier(), CI, M3D)
        unaware = m3d_wafer_carbon_per_cm2(
            self.two_tier(), CI, M3D, beol_aware=False
        )
        # Unaware mode charges full per-tier wafer processing: at 8 of 13
        # layers the aware mode must be cheaper.
        assert aware.total_kg_per_cm2 < unaware.total_kg_per_cm2
