"""Vectorized evaluation core: planning, parity, isolation, Pareto search.

The contract under test is the one the optimizer and ``/optimize`` ride
on: shape-group planning partitions any grid without loss, every output
column is bit-identical to the scalar pipeline, a bad point poisons
nothing beyond itself, and the Pareto front is deterministic and
chunk-invariant.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.optimizer import (
    PARETO_OBJECTIVES,
    ParetoSearch,
)
from repro.core.design import ChipDesign
from repro.engine import BatchEvaluator
from repro.errors import DesignError, ParameterError
from repro.vec import DesignGrid, VectorizedBatch
from repro.vec.evaluate import COLUMN_NAMES, evaluate_grid
from repro.vec.plan import shape_key


def mixed_grid(
    orin_2d,
    wafers=(200.0, 300.0),
    locations=("taiwan", 30.0),
    die_counts=(2, 3),
):
    """A small grid mixing 2D, 3D stacks and 2.5D assemblies.

    With three-die variants included, the grid carries a few designs
    that construct but fail structural resolution (hybrid F2F and M3D
    cap at 2 dies) — deliberate: their points must error exactly like
    the scalar path, without touching their neighbours.
    """
    return DesignGrid.from_axes(
        orin_2d,
        integrations=("hybrid_3d", "mcm", "emib", "m3d"),
        die_counts=die_counts,
        wafer_diameters_mm=wafers,
        fab_locations=locations,
        workload="av",
    )


class TestDesignGrid:
    def test_from_axes_needs_single_die_reference(self, orin_2d):
        stacked = ChipDesign.homogeneous_split(orin_2d, "hybrid_3d")
        with pytest.raises(ParameterError, match="single-die 2D reference"):
            DesignGrid.from_axes(stacked)

    def test_wafer_bounds_validated(self, orin_2d):
        for bad in (50.0, 600.0, -1.0):
            with pytest.raises(ParameterError, match="wafer diameter"):
                DesignGrid.from_axes(orin_2d, wafer_diameters_mm=[bad])

    def test_empty_axes_rejected(self, orin_2d):
        with pytest.raises(ParameterError, match="wafer diameter"):
            DesignGrid.from_axes(orin_2d, wafer_diameters_mm=[])
        with pytest.raises(ParameterError, match="fab location"):
            DesignGrid.from_axes(orin_2d, fab_locations=[])

    def test_sample_is_deterministic_and_order_preserving(self, orin_2d):
        grid = mixed_grid(orin_2d)
        a = grid.sample(10, seed=7)
        b = grid.sample(10, seed=7)
        assert [p.label for p in a.points] == [p.label for p in b.points]
        assert len(a.points) == 10
        # Order-preserving: the sampled labels appear in grid order.
        full = [p.label for p in grid.points]
        positions = [full.index(p.label) for p in a.points]
        assert positions == sorted(positions)
        # A different seed draws a different subset.
        c = grid.sample(10, seed=8)
        assert [p.label for p in c.points] != [p.label for p in a.points]

    def test_sample_larger_than_grid_is_identity(self, orin_2d):
        grid = mixed_grid(orin_2d)
        assert grid.sample(10 ** 9, seed=1) is grid


class TestShapeGroupPlanning:
    def test_partition_covers_every_point_exactly_once(self, orin_2d):
        grid = mixed_grid(orin_2d)
        batch = VectorizedBatch.plan(grid)
        seen = sorted(
            index
            for group in batch.groups
            for block in group.blocks
            for index in block.indices
        )
        assert seen == list(range(len(grid.points)))

    def test_groups_split_on_structural_shape_only(self, orin_2d):
        grid = mixed_grid(orin_2d)
        batch = VectorizedBatch.plan(grid)
        for group in batch.groups:
            for block in group.blocks:
                assert shape_key(block.design) == group.key
                # A block's points differ only along the wafer/CI axes.
                designs = {
                    id(grid.points[i].design) for i in block.indices
                }
                assert len(designs) == 1
        # Mixed integrations yield multiple groups; die-count variants
        # of one integration land in *different* groups (distinct shape).
        keys = [group.key for group in batch.groups]
        assert len(keys) == len(set(keys))
        hybrid_counts = {k[2] for k in keys if k[0] == "hybrid_3d"}
        assert hybrid_counts == {2, 3}

    def test_block_indices_ascend(self, orin_2d):
        batch = VectorizedBatch.plan(mixed_grid(orin_2d))
        for group in batch.groups:
            for block in group.blocks:
                assert list(block.indices) == sorted(block.indices)

    def test_empty_grid_plans_and_evaluates(self):
        grid = DesignGrid(points=())
        batch = VectorizedBatch.plan(grid)
        assert batch.group_count == 0
        result = evaluate_grid(grid)
        assert result.point_count == 0
        assert result.error_count == 0
        for name in COLUMN_NAMES:
            assert result.column(name).shape == (0,)


class TestScalarParity:
    def test_every_report_column_bit_identical(self, orin_2d):
        grid = mixed_grid(orin_2d)
        evaluator = BatchEvaluator()
        result = evaluate_grid(grid, evaluator=evaluator)

        scalar = BatchEvaluator()
        wafer_params = {}
        clean = 0
        for index, point in enumerate(grid.points):
            params = wafer_params.setdefault(
                point.wafer_diameter_mm,
                scalar.params.with_wafer_diameter(point.wafer_diameter_mm),
            )
            try:
                report = scalar.report(
                    point.design, workload=grid.workload, params=params,
                    fab_location=point.fab_location,
                )
            except (DesignError, ParameterError) as error:
                # Structural failures carry the scalar path's message.
                assert result.errors[index] == str(error), point.label
                continue
            clean += 1
            assert result.errors[index] is None
            expected = {
                "total_kg": report.total_kg,
                "embodied_kg": report.embodied_kg,
                "operational_kg": report.operational_kg,
                "die_kg": report.embodied.die_kg,
                "bonding_kg": report.embodied.bonding_kg,
                "packaging_kg": report.embodied.packaging_kg,
                "interposer_kg": report.embodied.interposer_kg,
                "performance_tops": point.design.throughput_tops
                * (1.0 - report.bandwidth.degradation),
            }
            for name, value in expected.items():
                assert float(result.column(name)[index]) == value, (
                    f"{name} mismatch at {point.label}"
                )
            # cost_mm2 is vec-only (the exploration proxy); pin its shape.
            assert float(result.column("cost_mm2")[index]) > 0.0
        assert clean > 0

    def test_invalid_wafer_points_stay_local(self):
        # A 4000 mm² die does not fit a 100 mm wafer: those points must
        # error with the scalar DPW message while the same design's
        # 300 mm points — the same block — evaluate normally, as must
        # the unrelated small design sharing the batch.
        big = ChipDesign.planar_2d("big", "14nm", area_mm2=4000.0)
        small_die = ChipDesign.planar_2d("small", "14nm", area_mm2=100.0)
        grid = DesignGrid.from_designs(
            [big, small_die],
            wafer_diameters_mm=(100.0, 300.0),
            fab_locations=("taiwan",),
            workload="none",
        )
        result = evaluate_grid(grid)
        totals = result.column("total_kg")
        for index, point in enumerate(grid.points):
            if point.design is big and point.wafer_diameter_mm == 100.0:
                assert "does not fit a 100 mm wafer" in result.errors[index]
                assert np.isnan(totals[index])
            else:
                assert result.errors[index] is None
                assert np.isfinite(totals[index])

    def test_unknown_location_points_stay_local(self, orin_2d):
        grid = mixed_grid(
            orin_2d, locations=("taiwan", "atlantis"), die_counts=(2,)
        )
        result = evaluate_grid(grid)
        bad = [
            i for i, p in enumerate(grid.points)
            if p.fab_location == "atlantis"
        ]
        good = [
            i for i, p in enumerate(grid.points)
            if p.fab_location == "taiwan"
        ]
        assert all(result.errors[i] is not None for i in bad)
        assert all(result.errors[i] is None for i in good)
        assert np.all(np.isfinite(result.column("total_kg")[good]))


class TestParetoSearch:
    def search(self, orin_2d, chunk=16):
        return ParetoSearch.from_axes(
            orin_2d,
            integrations=("hybrid_3d", "mcm", "emib"),
            die_counts=(2, 3),
            wafer_diameters_mm=(200.0, 300.0, 450.0),
            fab_locations=("taiwan", "iceland", 700.0),
            chunk=chunk,
        )

    def test_run_is_deterministic(self, orin_2d):
        front_a = self.search(orin_2d).run(seed=3).to_dict()
        front_b = self.search(orin_2d).run(seed=3).to_dict()
        assert front_a == front_b

    def test_front_is_mutually_non_dominated(self, orin_2d):
        front = self.search(orin_2d).run()
        assert front.points, "expected a non-empty front"
        for a in front.points:
            for b in front.points:
                if a is b:
                    continue
                dominates = (
                    b.total_kg <= a.total_kg
                    and b.performance_tops >= a.performance_tops
                    and b.cost_mm2 <= a.cost_mm2
                )
                assert not dominates, f"{b.label} dominates {a.label}"

    def test_front_points_are_chunk_invariant(self, orin_2d):
        fine = self.search(orin_2d, chunk=7).run()
        coarse = self.search(orin_2d, chunk=10_000).run()
        assert [p.to_dict() for p in fine.points] == [
            p.to_dict() for p in coarse.points
        ]
        assert fine.evaluated == coarse.evaluated
        assert fine.errors == coarse.errors
        assert fine.chunks != coarse.chunks

    def test_max_configs_bounds_evaluation(self, orin_2d):
        front = self.search(orin_2d).run(max_configs=20, seed=5)
        assert front.evaluated == 20

    def test_stream_snapshots_accumulate_to_run(self, orin_2d):
        snapshots = list(self.search(orin_2d, chunk=16).stream(seed=3))
        final = self.search(orin_2d, chunk=16).run(seed=3)
        assert [s["chunk"] for s in snapshots] == list(
            range(1, final.chunks + 1)
        )
        assert snapshots[-1]["evaluated"] == final.evaluated
        assert snapshots[-1]["front"] == [
            p.to_dict() for p in final.points
        ]
        # Evaluated counts increase monotonically chunk over chunk.
        counts = [s["evaluated"] for s in snapshots]
        assert counts == sorted(counts)

    def test_objectives_are_the_documented_triple(self):
        assert PARETO_OBJECTIVES == (
            ("total_kg", "min"),
            ("performance_tops", "max"),
            ("cost_mm2", "min"),
        )

    def test_chunk_must_be_positive(self, orin_2d):
        with pytest.raises(ParameterError, match="chunk"):
            ParetoSearch.from_axes(orin_2d, chunk=0)
