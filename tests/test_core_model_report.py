"""CarbonModel façade and LifecycleReport tests."""

import json

import pytest

from repro import CarbonModel, ChipDesign, ParameterSet, Workload
from repro.core.model import evaluate_design
from repro.core.report import format_report_table

PARAMS = ParameterSet.default()
WL = Workload.autonomous_vehicle()


class TestCarbonModel:
    def test_resolution_cached(self, orin_2d):
        model = CarbonModel(orin_2d, PARAMS)
        assert model.resolved() is model.resolved()
        assert model.embodied() is model.embodied()
        assert model.bandwidth() is model.bandwidth()

    def test_fab_location_by_name_and_value(self, orin_2d):
        named = CarbonModel(orin_2d, PARAMS, fab_location="taiwan")
        valued = CarbonModel(orin_2d, PARAMS, fab_location=509.0)
        assert named.fab_ci_kg_per_kwh == pytest.approx(
            valued.fab_ci_kg_per_kwh
        )

    def test_cleaner_fab_cheaper_embodied(self, orin_2d):
        dirty = CarbonModel(orin_2d, PARAMS, "india").embodied().total_kg
        clean = CarbonModel(orin_2d, PARAMS, "iceland").embodied().total_kg
        assert clean < dirty

    def test_evaluate_without_workload(self, orin_2d):
        report = CarbonModel(orin_2d, PARAMS).evaluate()
        assert report.operational is None
        assert report.operational_kg == 0.0
        assert report.total_kg == report.embodied_kg

    def test_evaluate_with_workload(self, orin_2d):
        report = CarbonModel(orin_2d, PARAMS).evaluate(WL)
        assert report.operational is not None
        assert report.total_kg == pytest.approx(
            report.embodied_kg + report.operational_kg
        )

    def test_one_shot_helper(self, orin_2d):
        a = evaluate_design(orin_2d, WL, PARAMS)
        b = CarbonModel(orin_2d, PARAMS).evaluate(WL)
        assert a.total_kg == pytest.approx(b.total_kg)


class TestLifecycleReport:
    def test_to_dict_roundtrips_json(self, emib_assembly):
        report = CarbonModel(emib_assembly, PARAMS).evaluate(WL)
        data = json.loads(json.dumps(report.to_dict()))
        assert data["design"] == emib_assembly.name
        assert data["integration"] == "emib"
        assert data["total_kg"] == pytest.approx(report.total_kg)
        assert data["valid"] == report.valid
        assert len(data["per_die"]) == 2
        assert "operational" in data

    def test_to_dict_breakdown_sums(self, emib_assembly):
        report = CarbonModel(emib_assembly, PARAMS).evaluate(WL)
        data = report.to_dict()
        assert sum(data["embodied_breakdown_kg"].values()) == pytest.approx(
            data["embodied_kg"]
        )

    def test_to_dict_without_workload(self, orin_2d):
        data = CarbonModel(orin_2d, PARAMS).evaluate().to_dict()
        assert "operational" not in data

    def test_render_mentions_components(self, emib_assembly):
        text = CarbonModel(emib_assembly, PARAMS).evaluate(WL).render()
        for token in ("embodied", "packaging", "interposer", "bandwidth",
                      "total", "operational"):
            assert token in text

    def test_render_flags_invalid(self, orin_2d):
        mcm = ChipDesign.homogeneous_split(orin_2d, "mcm")
        text = CarbonModel(mcm, PARAMS).evaluate(WL).render()
        assert "NO (bandwidth)" in text

    def test_table_formatting(self, orin_2d, emib_assembly):
        reports = [
            CarbonModel(orin_2d, PARAMS).evaluate(WL),
            CarbonModel(emib_assembly, PARAMS).evaluate(WL),
        ]
        table = format_report_table(reports, title="cmp")
        assert "cmp" in table
        assert orin_2d.name[:30] in table
        assert table.count("\n") >= 3
