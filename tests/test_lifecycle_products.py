"""Lifecycle-extension (transport/EOL) and extra-product tests."""

import pytest

from repro import CarbonModel, ParameterSet, Workload
from repro.errors import ParameterError
from repro.lifecycle import (
    DEFAULT_ROUTE,
    EolParameters,
    FreightMode,
    TransportLeg,
    end_of_life_carbon_kg,
    eol_share_of_total,
    package_mass_kg,
    transport_carbon_kg,
    transport_share_of_total,
)
from repro.studies.products import (
    hbm_stack_design,
    p100_class_design,
    ryzen_5800x3d_design,
)

PARAMS = ParameterSet.default()


class TestTransport:
    def test_package_mass_scales_with_area(self):
        assert package_mass_kg(2000.0) == pytest.approx(
            2.0 * package_mass_kg(1000.0)
        )

    def test_45mm_package_mass_realistic(self):
        """A 45×45 mm FCBGA weighs on the order of 100 g."""
        mass = package_mass_kg(45.0 * 45.0)
        assert 0.03 < mass < 0.2

    def test_leg_carbon_formula(self):
        leg = TransportLeg("test", FreightMode.AIR, 1000.0)
        # 1 kg over 1000 km by air: 0.001 t × 1000 km × 0.6 = 0.6 kg
        assert leg.carbon_kg(1.0) == pytest.approx(0.6)

    def test_air_dirtiest_sea_cleanest(self):
        legs = {
            mode: TransportLeg("x", mode, 1000.0).carbon_kg(1.0)
            for mode in FreightMode
        }
        assert legs[FreightMode.AIR] == max(legs.values())
        assert legs[FreightMode.SEA] == min(legs.values())

    def test_default_route_total(self):
        carbon = transport_carbon_kg(2025.0)
        assert carbon > 0

    def test_transport_is_negligible(self, orin_2d):
        """Fig. 1 scoping: transport ≪ embodied+operational (< 2 %)."""
        report = CarbonModel(orin_2d, PARAMS).evaluate(
            Workload.autonomous_vehicle()
        )
        pkg = report.embodied.packaging.package_area_mm2
        share = transport_share_of_total(pkg, report.total_kg)
        assert share < 0.02

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            TransportLeg("bad", FreightMode.AIR, -1.0)
        with pytest.raises(ParameterError):
            package_mass_kg(0.0)
        with pytest.raises(ParameterError):
            DEFAULT_ROUTE[0].carbon_kg(0.0)
        with pytest.raises(ParameterError):
            transport_share_of_total(100.0, 0.0)


class TestEndOfLife:
    def test_net_small_magnitude(self):
        """EOL is grams either way for a 20 cm² package."""
        assert abs(end_of_life_carbon_kg(2025.0)) < 0.1

    def test_high_recovery_turns_into_credit(self):
        generous = EolParameters(
            metal_fraction=0.4, recycling_credit_kg_per_kg=3.0,
            collection_rate=0.9,
        )
        assert end_of_life_carbon_kg(2025.0, generous) < 0.0

    def test_no_collection_means_no_credit(self):
        landfill_only = EolParameters(collection_rate=0.0)
        assert end_of_life_carbon_kg(2025.0, landfill_only) >= 0.0

    def test_share_negligible(self, orin_2d):
        report = CarbonModel(orin_2d, PARAMS).evaluate(
            Workload.autonomous_vehicle()
        )
        pkg = report.embodied.packaging.package_area_mm2
        assert eol_share_of_total(pkg, report.total_kg) < 0.01

    def test_parameter_validation(self):
        with pytest.raises(ParameterError):
            EolParameters(metal_fraction=1.5)
        with pytest.raises(ParameterError):
            EolParameters(collection_rate=-0.1)
        with pytest.raises(ParameterError):
            EolParameters(processing_kg_per_kg=-1.0)


class TestProducts:
    def test_v_cache_validates_and_evaluates(self):
        design = ryzen_5800x3d_design()
        design.validate(PARAMS)
        report = CarbonModel(design, PARAMS).evaluate()
        assert report.embodied_kg > 0
        assert report.embodied.bonding_kg > 0  # hybrid bond step

    def test_v_cache_cheaper_than_double_ccd(self):
        """Stacking a small SRAM die costs less than doubling the CCD."""
        from repro import ChipDesign

        stacked = CarbonModel(ryzen_5800x3d_design(), PARAMS).embodied()
        doubled = CarbonModel(
            ChipDesign.planar_2d("big_ccd", "7nm", area_mm2=162.0), PARAMS
        ).embodied()
        assert stacked.total_kg < doubled.total_kg * 1.5

    def test_hbm_stack_tiers(self):
        design = hbm_stack_design(dram_tiers=4)
        assert design.die_count == 5
        design.validate(PARAMS)
        report = CarbonModel(design, PARAMS).evaluate()
        assert report.embodied_kg > 0
        # 4 tiers → 4 bonds.
        assert len(report.embodied.bonding.records) == 4

    def test_hbm_taller_stack_costs_more(self):
        two = CarbonModel(hbm_stack_design(2), PARAMS).embodied().total_kg
        eight = CarbonModel(hbm_stack_design(8), PARAMS).embodied().total_kg
        assert eight > two

    def test_hbm_rejects_zero_tiers(self):
        with pytest.raises(ValueError):
            hbm_stack_design(0)

    def test_p100_class_has_interposer(self):
        design = p100_class_design()
        design.validate(PARAMS)
        report = CarbonModel(design, PARAMS).evaluate()
        assert report.embodied.interposer_kg > 0
        # The interposer spans GPU + 4 HBM sites.
        assert (report.embodied.interposer.area_mm2
                > 610.0 + 4 * 96.0)

    def test_p100_bandwidth_satisfied(self):
        """An interposer easily feeds a 21-TOPS 16 nm GPU (Sec. 3.4)."""
        report = CarbonModel(p100_class_design(), PARAMS).evaluate(
            Workload.autonomous_vehicle()
        )
        assert report.valid
