"""Dies-per-wafer tests (Eq. 5)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dpw import (
    dies_per_wafer,
    edge_loss_fraction,
    effective_area_per_die_mm2,
)
from repro.errors import DesignError, ParameterError
from repro.units import wafer_area_mm2


class TestDiesPerWafer:
    def test_formula_value(self):
        """300 mm wafer, 100 mm² die: π·150²/100 − π·300/√200."""
        expected = math.pi * 150**2 / 100 - math.pi * 300 / math.sqrt(200)
        assert dies_per_wafer(300.0, 100.0) == pytest.approx(expected)

    def test_monotone_decreasing_in_area(self):
        assert dies_per_wafer(300.0, 50.0) > dies_per_wafer(300.0, 100.0)

    def test_monotone_increasing_in_diameter(self):
        assert dies_per_wafer(450.0, 100.0) > dies_per_wafer(200.0, 100.0)

    def test_oversized_die_raises(self):
        with pytest.raises(DesignError):
            dies_per_wafer(200.0, 25000.0)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            dies_per_wafer(-300.0, 100.0)
        with pytest.raises(ParameterError):
            dies_per_wafer(300.0, 0.0)

    def test_epyc_io_die(self):
        """416 mm² on 300 mm: ~137 dies (Sec. 4.1 inputs)."""
        assert dies_per_wafer(300.0, 416.0) == pytest.approx(137.2, abs=0.5)


class TestEffectiveArea:
    def test_exceeds_die_area(self):
        """Edge losses are shared: every die pays more than its own area."""
        assert effective_area_per_die_mm2(300.0, 100.0) > 100.0

    def test_small_dies_waste_less(self):
        overhead_small = effective_area_per_die_mm2(300.0, 50.0) / 50.0
        overhead_large = effective_area_per_die_mm2(300.0, 500.0) / 500.0
        assert overhead_small < overhead_large

    def test_bigger_wafer_less_overhead(self):
        overhead_200 = effective_area_per_die_mm2(200.0, 100.0)
        overhead_450 = effective_area_per_die_mm2(450.0, 100.0)
        assert overhead_450 < overhead_200

    def test_consistency_with_dpw(self):
        dpw = dies_per_wafer(300.0, 229.0)
        assert effective_area_per_die_mm2(300.0, 229.0) == pytest.approx(
            wafer_area_mm2(300.0) / dpw
        )


class TestEdgeLoss:
    def test_fraction_in_unit_interval(self):
        loss = edge_loss_fraction(300.0, 100.0)
        assert 0.0 < loss < 1.0

    def test_larger_die_more_loss(self):
        assert edge_loss_fraction(300.0, 700.0) > edge_loss_fraction(300.0, 50.0)


class TestProperties:
    @given(
        diameter=st.sampled_from([200.0, 300.0, 450.0]),
        area=st.floats(min_value=1.0, max_value=900.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_dpw_bounded_by_gross(self, diameter, area):
        dpw = dies_per_wafer(diameter, area)
        assert 1.0 <= dpw < wafer_area_mm2(diameter) / area

    @given(
        diameter=st.sampled_from([200.0, 300.0, 450.0]),
        area=st.floats(min_value=1.0, max_value=900.0),
    )
    @settings(max_examples=200, deadline=None)
    def test_used_silicon_below_wafer(self, diameter, area):
        dpw = dies_per_wafer(diameter, area)
        assert dpw * area <= wafer_area_mm2(diameter)

    @given(area=st.floats(min_value=1.0, max_value=900.0))
    @settings(max_examples=100, deadline=None)
    def test_effective_area_at_least_die(self, area):
        assert effective_area_per_die_mm2(300.0, area) >= area
