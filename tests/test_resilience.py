"""Fault-injection framework + the recovery machinery it exercises.

Covers the resilience layer itself (plans, injector determinism,
deadlines, circuit breaker) and the in-process recovery paths: fork-map
shard reassignment (bit-identical results after a worker crash or a
shard deadline), evaluator point budgets, store quarantine-and-rebuild
and busy retries, client argument hygiene, dispatcher deadlines, and
StudyHandle failure surfacing. The HTTP-level chaos scenarios live in
``test_chaos.py``.
"""

import json
import sqlite3

import pytest

from repro import ChipDesign, Workload
from repro.analysis.uncertainty import monte_carlo
from repro.engine import BatchEvaluator, EvalPoint
from repro.engine.parallel import fork_available, fork_map
from repro.errors import EvaluationTimeout, ParameterError
from repro.resilience import (
    CircuitBreaker,
    CircuitOpenError,
    Deadline,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultRule,
    injected,
    resolve_injector,
)
from repro.resilience.faults import GLOBAL_INJECTOR

needs_fork = pytest.mark.skipif(
    not fork_available(), reason="needs os.fork()"
)


@pytest.fixture()
def small_design():
    return ChipDesign.planar_2d("resil", "14nm", area_mm2=100.0)


# -- FaultPlan: validation, round-trips, coercion ----------------------------


class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            rules=(
                FaultRule("store.get", action="error", error="busy",
                          after=2, times=3),
                FaultRule("worker.item", action="crash", worker=1,
                          exit_code=9),
                FaultRule("engine.point", action="delay", delay_s=0.5,
                          probability=0.25, times=None),
            ),
            seed=42,
            name="round-trip",
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again == plan

    def test_unknown_site_rejected(self):
        with pytest.raises(ParameterError, match="unknown fault site"):
            FaultRule("store.vanish")

    def test_unknown_action_rejected(self):
        with pytest.raises(ParameterError, match="error/delay/crash"):
            FaultRule("store.get", action="explode")

    def test_probability_bounds(self):
        with pytest.raises(ParameterError, match="probability"):
            FaultRule("store.get", probability=0.0)
        with pytest.raises(ParameterError, match="probability"):
            FaultRule("store.get", probability=1.5)

    def test_unknown_plan_keys_rejected(self):
        with pytest.raises(ParameterError, match="unknown key"):
            FaultPlan.from_dict({"rules": [], "sites": []})
        with pytest.raises(ParameterError, match="unknown key"):
            FaultPlan.from_dict({"rules": [{"site": "store.get",
                                            "when": "now"}]})

    def test_coerce_spellings(self, tmp_path):
        data = {"rules": [{"site": "store.get"}], "seed": 7}
        from_dict = FaultPlan.coerce(data)
        from_text = FaultPlan.coerce(json.dumps(data))
        path = tmp_path / "plan.json"
        path.write_text(json.dumps(data), encoding="utf-8")
        from_file = FaultPlan.coerce(str(path))
        assert from_dict == from_text == from_file
        assert FaultPlan.coerce(None) is None
        assert FaultPlan.coerce(from_dict) is from_dict
        with pytest.raises(ParameterError, match="cannot build"):
            FaultPlan.coerce(42)
        with pytest.raises(ParameterError, match="not valid JSON"):
            FaultPlan.coerce("{nope")


# -- the injector ------------------------------------------------------------


class TestFaultInjector:
    def test_after_and_times_window(self):
        injector = FaultInjector(FaultPlan(
            rules=(FaultRule("store.get", after=1, times=2),)
        ))
        injector.hit("store.get")  # skipped: after=1
        with pytest.raises(FaultError):
            injector.hit("store.get")
        with pytest.raises(FaultError):
            injector.hit("store.get")
        injector.hit("store.get")  # exhausted: times=2
        assert injector.fired_sites() == ["store.get", "store.get"]

    def test_other_sites_untouched(self):
        injector = FaultInjector(FaultPlan(
            rules=(FaultRule("store.get"),)
        ))
        injector.hit("store.put")
        injector.hit("engine.point")
        assert injector.fired == []

    def test_probabilistic_rules_are_deterministic(self):
        plan = FaultPlan(
            rules=(FaultRule("engine.point", probability=0.4, times=None),),
            seed=99,
        )

        def firing_pattern():
            injector = FaultInjector(plan)
            pattern = []
            for _ in range(40):
                try:
                    injector.hit("engine.point")
                    pattern.append(False)
                except FaultError:
                    pattern.append(True)
            return pattern

        first = firing_pattern()
        assert first == firing_pattern()  # same seed, same sequence
        assert any(first) and not all(first)

    def test_error_kinds_map_to_real_exception_families(self):
        injector = FaultInjector(FaultPlan(rules=(
            FaultRule("store.get", error="sqlite"),
            FaultRule("store.put", error="busy"),
            FaultRule("transport.request", error="connection"),
        )))
        with pytest.raises(sqlite3.DatabaseError):
            injector.hit("store.get")
        with pytest.raises(sqlite3.OperationalError, match="busy"):
            injector.hit("store.put")
        with pytest.raises(ConnectionError):
            injector.hit("transport.request")

    def test_inactive_injector_is_a_noop(self):
        injector = FaultInjector(None)
        assert injector.active is False
        injector.hit("store.get")  # no plan, no effect
        assert injector.fired == []

    def test_describe(self):
        assert FaultInjector(None).describe() == "inactive"
        injector = FaultInjector(FaultPlan(
            rules=(FaultRule("store.get"),), seed=3, name="demo"
        ))
        text = injector.describe()
        assert "demo" in text and "store.get" in text and "seed 3" in text

    def test_injected_context_arms_and_disarms_global(self):
        assert GLOBAL_INJECTOR.active is False
        with injected({"rules": [{"site": "dispatcher.compute"}]}):
            assert GLOBAL_INJECTOR.active is True
            with pytest.raises(FaultError):
                GLOBAL_INJECTOR.hit("dispatcher.compute")
        assert GLOBAL_INJECTOR.active is False

    def test_resolve_injector_spellings(self):
        assert resolve_injector(None) is GLOBAL_INJECTOR
        mine = FaultInjector(None)
        assert resolve_injector(mine) is mine
        private = resolve_injector(FaultPlan(
            rules=(FaultRule("store.get"),)
        ))
        assert private is not GLOBAL_INJECTOR
        assert private.active is True


# -- Deadline ----------------------------------------------------------------


class TestDeadline:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError, match="budget"):
            Deadline(0.0)
        with pytest.raises(ValueError, match="budget"):
            Deadline(-1.0)

    def test_check_raises_typed_timeout_after_budget(self):
        now = [100.0]
        deadline = Deadline(2.0, clock=lambda: now[0])
        deadline.check("warm-up")  # within budget
        assert deadline.remaining_s() == pytest.approx(2.0)
        now[0] = 103.0
        assert deadline.expired() is True
        assert deadline.remaining_s() == 0.0
        with pytest.raises(EvaluationTimeout) as exc:
            deadline.check("the batch")
        assert exc.value.budget_s == pytest.approx(2.0)
        assert exc.value.elapsed_s == pytest.approx(3.0)
        assert "the batch" in str(exc.value)

    def test_after_ms_converts(self):
        deadline = Deadline.after_ms(1500.0)
        assert deadline.budget_s == pytest.approx(1.5)


# -- CircuitBreaker ----------------------------------------------------------


class TestCircuitBreaker:
    def make(self, threshold=3, cooldown=10.0):
        now = [0.0]
        breaker = CircuitBreaker(
            failure_threshold=threshold, cooldown_s=cooldown,
            clock=lambda: now[0],
        )
        return breaker, now

    def test_opens_after_consecutive_failures(self):
        breaker, _ = self.make()
        for _ in range(2):
            breaker.record_failure()
        breaker.check()  # still closed under the threshold
        breaker.record_failure()
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError) as exc:
            breaker.check()
        assert exc.value.retry_after_s > 0
        assert breaker.rejected == 1

    def test_success_resets_the_streak(self):
        breaker, _ = self.make()
        breaker.record_failure()
        breaker.record_failure()
        breaker.record_success()
        breaker.record_failure()
        breaker.record_failure()
        assert breaker.state == "closed"

    def test_retry_after_extends_cooldown(self):
        breaker, now = self.make(threshold=1, cooldown=1.0)
        breaker.record_failure(retry_after_s=30.0)
        now[0] = 5.0  # past the base cooldown, inside Retry-After
        assert breaker.state == "open"
        with pytest.raises(CircuitOpenError):
            breaker.check()
        now[0] = 31.0
        assert breaker.state == "half_open"

    def test_half_open_probe_success_closes(self):
        breaker, now = self.make(threshold=1, cooldown=1.0)
        breaker.record_failure()
        now[0] = 2.0
        breaker.check()  # the single half-open probe is admitted
        with pytest.raises(CircuitOpenError):
            breaker.check()  # a second concurrent probe is not
        breaker.record_success()
        assert breaker.state == "closed"
        breaker.check()

    def test_half_open_probe_failure_reopens(self):
        breaker, now = self.make(threshold=1, cooldown=1.0)
        breaker.record_failure()
        now[0] = 2.0
        breaker.check()
        breaker.record_failure()
        assert breaker.state == "open"
        assert breaker.opened == 2


# -- fork_map recovery -------------------------------------------------------


@needs_fork
class TestForkMapRecovery:
    def test_child_crash_recovers_bit_identical(self):
        plan = FaultPlan(rules=(
            FaultRule("worker.item", action="crash", worker=1, after=1),
        ))
        losses = []
        got = fork_map(
            lambda x: x * x, list(range(23)), 4,
            faults=FaultInjector(plan),
            on_shard_lost=lambda shard, reason: losses.append(shard),
        )
        assert got == [x * x for x in range(23)]
        assert losses == [1]

    def test_shard_deadline_recovers_bit_identical(self):
        plan = FaultPlan(rules=(
            FaultRule("worker.item", action="delay", delay_s=30.0,
                      worker=2),
        ))
        losses = []
        got = fork_map(
            lambda x: x + 1, list(range(12)), 3,
            faults=FaultInjector(plan),
            shard_deadline_s=0.25,
            on_shard_lost=lambda shard, reason: losses.append(reason),
        )
        assert got == [x + 1 for x in range(12)]
        assert len(losses) == 1 and "deadline" in losses[0]

    def test_application_errors_still_raise(self):
        def fn(x):
            if x == 9:
                raise ValueError("bad item")
            return x

        with pytest.raises(ValueError, match="bad item"):
            fork_map(fn, list(range(12)), 3)

    def test_worker_scoped_rule_spares_other_shards(self):
        plan = FaultPlan(rules=(
            FaultRule("worker.item", action="crash", worker=2),
        ))
        got = fork_map(
            lambda x: -x, list(range(9)), 3, faults=FaultInjector(plan)
        )
        assert got == [-x for x in range(9)]


@needs_fork
class TestEngineWorkerRecovery:
    def test_monte_carlo_bit_identical_after_worker_crash(self, small_design):
        """The acceptance scenario: a worker killed mid-500-draw MC run
        loses its shard, the parent recomputes it, and every sample
        matches the serial run bit for bit."""
        serial = monte_carlo(small_design, samples=500, seed=11)
        crashy = BatchEvaluator(faults=FaultPlan(rules=(
            FaultRule("worker.item", action="crash", worker=1),
        )))
        recovered = monte_carlo(
            small_design, samples=500, seed=11,
            evaluator=crashy, workers=4, worker_mode="process",
        )
        assert recovered.samples_kg == serial.samples_kg
        assert crashy.stats.worker_shards_recovered == 1

    def test_evaluate_many_recovers_and_counts(self, small_design):
        designs = [small_design] + [
            ChipDesign.homogeneous_split(
                ChipDesign.planar_2d(
                    "resil_ref", "7nm", gate_count=17e9,
                    throughput_tops=254.0,
                ),
                name,
            )
            for name in ("hybrid_3d", "mcm")
        ]
        points = [
            EvalPoint(design=d, fab_location=loc,
                      workload=Workload.autonomous_vehicle())
            for d in designs for loc in ("taiwan", "usa")
        ]
        expected = [r.total_kg for r in BatchEvaluator().evaluate_many(points)]
        crashy = BatchEvaluator(faults=FaultPlan(rules=(
            FaultRule("worker.item", action="crash", worker=1),
        )))
        got = crashy.evaluate_many(
            points, workers=3, chunk_size=2, worker_mode="process"
        )
        assert [r.total_kg for r in got] == expected
        assert crashy.stats.worker_shards_recovered == 1


# -- evaluator budgets and stage faults --------------------------------------


class TestEvaluatorResilience:
    def test_point_timeout_raises_typed_error(self, small_design):
        evaluator = BatchEvaluator(
            faults=FaultPlan(rules=(
                FaultRule("engine.point", action="delay", delay_s=0.2),
            )),
            point_timeout_s=0.05,
        )
        point = EvalPoint(design=small_design)
        with pytest.raises(EvaluationTimeout) as exc:
            evaluator.evaluate(point)
        assert exc.value.budget_s == pytest.approx(0.05)
        assert exc.value.elapsed_s >= 0.05

    def test_budget_knobs_validated(self):
        with pytest.raises(ParameterError, match="point_timeout_s"):
            BatchEvaluator(point_timeout_s=0.0)
        with pytest.raises(ParameterError, match="shard_deadline_s"):
            BatchEvaluator(shard_deadline_s=-1.0)

    def test_stage_faults_surface_from_the_stage(self, small_design):
        evaluator = BatchEvaluator(faults=FaultPlan(rules=(
            FaultRule("stage.embodied", message="embodied stage down"),
        )))
        with pytest.raises(FaultError, match="embodied stage down"):
            evaluator.evaluate(EvalPoint(design=small_design))
        # The rule is spent; the same evaluator recovers on retry.
        report = evaluator.evaluate(EvalPoint(design=small_design))
        assert report.total_kg > 0


# -- store self-healing ------------------------------------------------------


class TestStoreSelfHealing:
    def make(self, tmp_path, rules, **kwargs):
        from repro.service.store import ResultStore

        return ResultStore(
            str(tmp_path / "store.sqlite3"),
            faults=FaultPlan(rules=rules),
            **kwargs,
        )

    def test_open_corruption_quarantines_and_rebuilds(self, tmp_path):
        store = self.make(tmp_path, (
            FaultRule("store.open", error="sqlite"),
        ))
        store.put("k", "v")
        assert store.get("k") == "v"
        assert store.quarantined == 1
        store.close()

    def test_busy_get_retries_until_clear(self, tmp_path):
        store = self.make(tmp_path, (
            FaultRule("store.get", error="busy", times=2),
        ), busy_backoff_s=0.001)
        store.put("k", "v")
        assert store.get("k") == "v"
        assert store.busy_retried == 2
        assert store.quarantined == 0
        store.close()

    def test_busy_beyond_retries_is_typed(self, tmp_path):
        from repro.service.store import StoreError

        store = self.make(tmp_path, (
            FaultRule("store.get", error="busy", times=None),
        ), busy_retries=2, busy_backoff_s=0.001)
        with pytest.raises(StoreError, match="store.get"):
            store.get("k")

    def test_put_corruption_heals_and_lands_the_write(self, tmp_path):
        store = self.make(tmp_path, (
            FaultRule("store.put", error="sqlite", after=1),
        ))
        store.put("first", "1")
        store.put("second", "2")  # corrupts mid-write, heals, re-inserts
        assert store.quarantined == 1
        assert store.get("second") == "2"
        # The quarantined file (with the pre-corruption content) is kept.
        assert (tmp_path / "store.sqlite3.corrupt").exists()
        store.close()

    def test_close_fault_still_closes(self, tmp_path, capsys):
        store = self.make(tmp_path, (
            FaultRule("store.close", error="sqlite"),
        ))
        store.put("k", "v")
        store.close()
        assert "lifetime counter" in capsys.readouterr().err

    def test_real_on_disk_corruption_recovers_across_restart(self, tmp_path):
        from repro.service.store import ResultStore

        path = tmp_path / "store.sqlite3"
        with ResultStore(str(path)) as store:
            store.put("k", "precious")
        path.write_bytes(b"not a database at all" * 64)
        with ResultStore(str(path)) as store:
            assert store.get("k") is None  # rebuilt empty — recompute
            store.put("k", "recomputed")
            assert store.get("k") == "recomputed"
            assert store.quarantined == 1
        corpses = list(tmp_path.glob("*.corrupt*"))
        assert corpses and b"not a database" in corpses[0].read_bytes()


# -- client hygiene ----------------------------------------------------------


class TestClientValidation:
    def make(self, **kwargs):
        from repro.service.client import ServiceClient

        return ServiceClient("http://127.0.0.1:9", **kwargs)

    def test_negative_timeout_rejected(self):
        with pytest.raises(ValueError, match="timeout"):
            self.make(timeout=-1.0)
        with pytest.raises(ValueError, match="timeout"):
            self.make(timeout=0.0)

    def test_bad_retries_rejected(self):
        with pytest.raises(ValueError, match="retries"):
            self.make(retries=-1)
        with pytest.raises(ValueError, match="retries"):
            self.make(retries=1.5)
        with pytest.raises(ValueError, match="retries"):
            self.make(retries=True)

    def test_bad_deadline_rejected(self):
        with pytest.raises(ValueError, match="deadline_ms"):
            self.make(deadline_ms=0)

    def test_nonpositive_backoff_clamps_to_no_sleep(self, monkeypatch):
        client = self.make(backoff_s=-3.0)
        assert client.backoff_s == 0.0
        slept = []
        monkeypatch.setattr("time.sleep", lambda s: slept.append(s))
        client._sleep_before_retry(0)
        client._sleep_before_retry(5)
        assert slept == []  # zero backoff means retry immediately


# -- dispatcher deadlines ----------------------------------------------------


class TestDispatcherDeadline:
    def make_dispatcher(self):
        from repro.service.dispatcher import Dispatcher
        from repro.service.store import ResultStore

        return Dispatcher(store=ResultStore(":memory:"))

    def request(self):
        from repro.service.schema import parse_evaluate_request

        return parse_evaluate_request({
            "schema": 1, "type": "evaluate",
            "design": {
                "name": "deadline_chip", "integration": "2d",
                "dies": [{"name": "die0", "node": "14nm",
                          "area_mm2": 100.0}],
            },
            "workload": "none",
        })

    def test_deadline_overrun_mid_compute_raises_but_publishes(self):
        from repro.service.dispatcher import Dispatcher
        from repro.service.store import ResultStore

        # The injected delay makes the compute overrun its budget, so
        # the deadline trips on the post-compute check — after publish.
        dispatcher = Dispatcher(
            store=ResultStore(":memory:"),
            faults=FaultPlan(rules=(
                FaultRule("dispatcher.compute", action="delay",
                          delay_s=0.1),
            )),
        )
        with pytest.raises(EvaluationTimeout):
            dispatcher.evaluate(self.request(), deadline=Deadline(0.05))
        # The timeout answered 504 to its caller only; the computed
        # result was published first, so the next request is a hit.
        result, source = dispatcher.evaluate(self.request())
        assert source == "store"
        assert result["total_kg"] > 0

    def test_generous_deadline_is_invisible(self):
        dispatcher = self.make_dispatcher()
        with_deadline, _ = dispatcher.evaluate(
            self.request(), deadline=Deadline(60.0)
        )
        bare, _ = dispatcher.evaluate(self.request())
        assert with_deadline == bare


# -- the facade: session faults, deadlines, handle surfacing -----------------


class TestSessionResilience:
    def test_faults_reject_service_sessions(self):
        from repro.api import Session

        with pytest.raises(ParameterError, match="fault-plan"):
            Session(executor="service",
                    faults=FaultPlan(rules=(FaultRule("store.get"),)))

    def test_deadline_ms_validated(self):
        from repro.api import Session

        with pytest.raises(ParameterError, match="deadline_ms"):
            Session(deadline_ms=0)

    def test_session_threads_faults_into_the_engine(self, small_design):
        from repro.api import Session

        plan = FaultPlan(rules=(
            FaultRule("dispatcher.compute", message="compute down"),
        ))
        with Session(faults=plan) as session:
            with pytest.raises(FaultError, match="compute down"):
                session.evaluate(small_design, workload="none")
            # The rule fired once; the session heals on retry.
            result = session.evaluate(small_design, workload="none")
            assert result.payload["total_kg"] > 0

    def test_handle_result_raises_study_error_with_cause(self, small_design):
        from repro.api import Session, StudySpec
        from repro.api.handle import StudyError

        plan = FaultPlan(rules=(
            FaultRule("dispatcher.compute", message="mid-study fault",
                      times=None),
        ))
        with Session(faults=plan) as session:
            handle = session.submit(
                StudySpec.evaluate(small_design, workload="none")
            )
            with pytest.raises(StudyError, match="mid-study fault") as exc:
                handle.result(timeout=30)
            assert isinstance(exc.value.__cause__, FaultError)
            # exception() hands back the original typed error, unwrapped.
            assert isinstance(handle.exception(timeout=30), FaultError)

    def test_partial_iterator_surfaces_failures_too(self, small_design):
        from repro.api import Session, StudySpec
        from repro.api.handle import StudyError

        # Batch points stream through the engine, not _compute_through,
        # so the fault rides a stage site (fires on every memo miss).
        plan = FaultPlan(rules=(
            FaultRule("stage.embodied", times=None),
        ))
        with Session(faults=plan) as session:
            handle = session.submit(StudySpec.batch([small_design]))
            with pytest.raises(StudyError):
                list(handle.partial())

    def test_healthy_handle_exception_returns_none(self, small_design):
        from repro.api import Session, StudySpec

        with Session() as session:
            handle = session.submit(
                StudySpec.evaluate(small_design, workload="none")
            )
            assert handle.exception(timeout=30) is None
            assert handle.result(timeout=1).payload["total_kg"] > 0

    def test_session_deadline_is_typed(self, small_design):
        from repro.api import Session

        plan = FaultPlan(rules=(
            FaultRule("dispatcher.compute", action="delay", delay_s=0.3),
        ))
        with Session(faults=plan, deadline_ms=50) as session:
            with pytest.raises(EvaluationTimeout):
                session.evaluate(small_design, workload="none")
