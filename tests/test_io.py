"""Serialization tests: designs ↔ JSON, results → CSV/JSON."""

import json

import pytest

from repro import CarbonModel, ChipDesign, ParameterSet, Workload
from repro.config.integration import AssemblyFlow, StackingStyle
from repro.core.design import Die, DieKind, PackageSpec
from repro.errors import DesignError
from repro.io import (
    design_from_dict,
    design_to_dict,
    die_from_dict,
    die_to_dict,
    drive_study_rows,
    load_design,
    read_csv,
    report_row,
    save_design,
    table5_rows,
    write_csv,
    write_json,
)

PARAMS = ParameterSet.default()


def full_design() -> ChipDesign:
    return ChipDesign(
        name="roundtrip",
        dies=(
            Die("base", "14nm", area_mm2=92.0, kind=DieKind.MEMORY,
                workload_share=0.0, beol_layers=6, yield_override=0.9),
            Die("logic", "7nm", gate_count=8.5e9, workload_share=1.0,
                efficiency_tops_per_w=2.74),
        ),
        integration="micro_3d",
        stacking=StackingStyle.F2F,
        assembly=AssemblyFlow.D2W,
        package=PackageSpec("pop_mobile", area_mm2=144.0),
        throughput_tops=254.0,
    )


class TestDesignRoundtrip:
    def test_die_roundtrip(self):
        for die in full_design().dies:
            assert die_from_dict(die_to_dict(die)) == die

    def test_design_roundtrip(self):
        design = full_design()
        assert design_from_dict(design_to_dict(design)) == design

    def test_defaults_omitted(self):
        design = ChipDesign.planar_2d("plain", "7nm", gate_count=1e9)
        data = design_to_dict(design)
        assert "stacking" not in data
        assert "assembly" not in data
        assert "throughput_tops" not in data
        assert "kind" not in data["dies"][0]

    def test_roundtrip_via_file(self, tmp_path):
        design = full_design()
        path = tmp_path / "design.json"
        save_design(design, path)
        assert load_design(path) == design
        # file is actual JSON
        json.loads(path.read_text())

    def test_missing_name_rejected(self):
        with pytest.raises(DesignError):
            design_from_dict({"dies": [{"name": "d", "node": "7nm",
                                        "area_mm2": 10.0}]})

    def test_missing_dies_rejected(self):
        with pytest.raises(DesignError):
            design_from_dict({"name": "x", "dies": []})

    def test_die_missing_node_rejected(self):
        with pytest.raises(DesignError):
            die_from_dict({"name": "d"})

    def test_deserialized_design_evaluates(self):
        design = design_from_dict(design_to_dict(full_design()))
        report = CarbonModel(design, PARAMS).evaluate()
        assert report.embodied_kg > 0


class TestResultRows:
    @pytest.fixture(scope="class")
    def report(self, orin_2d):
        return CarbonModel(orin_2d, PARAMS).evaluate(
            Workload.autonomous_vehicle()
        )

    def test_report_row_columns(self, report):
        row = report_row(report)
        assert set(row) == set(
            __import__("repro.io.results", fromlist=["REPORT_COLUMNS"])
            .REPORT_COLUMNS
        )

    def test_report_row_consistency(self, report):
        row = report_row(report)
        assert row["total_kg"] == pytest.approx(
            row["embodied_kg"] + row["operational_kg"]
        )
        assert row["embodied_kg"] == pytest.approx(
            row["die_kg"] + row["bonding_kg"] + row["packaging_kg"]
            + row["interposer_kg"]
        )

    def test_drive_rows(self):
        from repro.studies.drive import drive_study

        result = drive_study("homogeneous", devices=["ORIN"])
        rows = drive_study_rows(result)
        assert len(rows) == 9
        assert {r["device"] for r in rows} == {"ORIN"}
        assert all(r["approach"] == "homogeneous" for r in rows)

    def test_table5_rows(self):
        from repro.studies.decision import table5_study

        rows = table5_rows(table5_study())
        assert len(rows) == 5
        si = next(r for r in rows if r["option"] == "Si_int")
        assert si["tc_years"] is None  # ∞ encodes as null
        assert si["regime"] == "never"

    def test_csv_roundtrip(self, tmp_path, report):
        rows = [report_row(report)]
        path = tmp_path / "rows.csv"
        write_csv(rows, path)
        back = read_csv(path)
        assert len(back) == 1
        assert float(back[0]["total_kg"]) == pytest.approx(
            rows[0]["total_kg"]
        )

    def test_csv_rejects_empty(self, tmp_path):
        with pytest.raises(ValueError):
            write_csv([], tmp_path / "empty.csv")

    def test_json_writer(self, tmp_path, report):
        path = tmp_path / "rows.json"
        write_json([report_row(report)], path)
        data = json.loads(path.read_text())
        assert data[0]["design"] == report.design_name


class TestMalformedDesigns:
    """Bad JSON values must raise typed DesignErrors, never tracebacks."""

    def base(self) -> dict:
        return {
            "name": "chip",
            "integration": "hybrid_3d",
            "stacking": "f2f",
            "assembly": "d2w",
            "dies": [
                {"name": "top", "node": "7nm", "gate_count": 8.5e9},
                {"name": "bottom", "node": "7nm", "gate_count": 8.5e9},
            ],
        }

    def test_unknown_stacking_style(self):
        data = self.base()
        data["stacking"] = "sideways"
        with pytest.raises(DesignError, match="stacking.*known"):
            design_from_dict(data)

    def test_unknown_assembly_flow(self):
        data = self.base()
        data["assembly"] = "telekinesis"
        with pytest.raises(DesignError, match="assembly.*known"):
            design_from_dict(data)

    def test_unknown_die_kind(self):
        data = self.base()
        data["dies"][0]["kind"] = "quantum"
        with pytest.raises(DesignError, match="die kind.*known"):
            design_from_dict(data)

    def test_non_string_integration(self):
        data = self.base()
        data["integration"] = 3
        with pytest.raises(DesignError, match="integration"):
            design_from_dict(data)

    def test_non_object_design(self):
        with pytest.raises(DesignError, match="object"):
            design_from_dict(["not", "a", "design"])

    def test_non_array_dies(self):
        data = self.base()
        data["dies"] = "two of them"
        with pytest.raises(DesignError, match="array"):
            design_from_dict(data)

    def test_non_object_die(self):
        data = self.base()
        data["dies"][1] = 42
        with pytest.raises(DesignError, match="die record"):
            design_from_dict(data)

    def test_non_object_package(self):
        data = self.base()
        data["package"] = "fcbga"
        with pytest.raises(DesignError, match="package"):
            design_from_dict(data)

    def test_non_numeric_gate_count(self):
        data = self.base()
        data["dies"][0]["gate_count"] = "lots"
        with pytest.raises(DesignError, match="gate_count"):
            design_from_dict(data)

    def test_non_numeric_yield(self):
        data = self.base()
        data["dies"][0]["yield"] = "high"
        with pytest.raises(DesignError, match="yield"):
            design_from_dict(data)
