"""Multi-application workload suites (Eq. 16's Σ_k) and plug-in wiring."""

import pytest

from repro import (
    CarbonModel,
    ChipDesign,
    DesignError,
    ParameterSet,
    Workload,
    WorkloadSuite,
)
from repro.power.plugin import CallablePlugin

PARAMS = ParameterSet.default()


@pytest.fixture(scope="module")
def model(orin_2d):
    return CarbonModel(orin_2d, PARAMS)


def make_suite():
    perception = Workload.from_activity(
        "perception", 200.0, 0.5, 10.0, use_location="renewable_charging"
    )
    planning = Workload.from_activity(
        "planning", 54.0, 0.5, 10.0, use_location="usa"
    )
    return WorkloadSuite("av_suite", (perception, planning))


class TestWorkloadSuite:
    def test_rejects_empty(self):
        with pytest.raises(DesignError):
            WorkloadSuite("empty", ())

    def test_lifetime_is_max(self):
        suite = WorkloadSuite(
            "mixed",
            (Workload("a", 1e6, lifetime_years=3.0),
             Workload("b", 1e6, lifetime_years=8.0)),
        )
        assert suite.lifetime_years == 8.0

    def test_sum_over_applications(self, model):
        """Σ_k: the suite total equals the sum of per-app evaluations."""
        suite = make_suite()
        combined = model.operational_suite(suite)
        individual = sum(
            model.operational(w).total_kg for w in suite.workloads
        )
        assert combined.total_kg == pytest.approx(individual)
        assert len(combined.per_workload) == 2

    def test_per_application_grids_respected(self, model):
        suite = make_suite()
        report = model.operational_suite(suite)
        cis = {r.workload_name: r.use_ci_kg_per_kwh
               for r in report.per_workload}
        assert cis["perception"] == pytest.approx(0.05)
        assert cis["planning"] == pytest.approx(0.38)

    def test_annual_rate(self, model):
        report = model.operational_suite(make_suite())
        assert report.annual_kg == pytest.approx(report.total_kg / 10.0)

    def test_energy_aggregates(self, model):
        report = model.operational_suite(make_suite())
        assert report.total_energy_kwh == pytest.approx(
            sum(r.total_energy_kwh for r in report.per_workload)
        )

    def test_suite_equivalent_to_merged_workload_on_one_grid(self, model):
        """Two same-grid apps behave like one app with the summed work."""
        a = Workload("a", 4e8, use_location="usa")
        b = Workload("b", 6e8, use_location="usa")
        merged = Workload("ab", 1e9, use_location="usa")
        suite_kg = model.operational_suite(
            WorkloadSuite("s", (a, b))
        ).total_kg
        assert suite_kg == pytest.approx(model.operational(merged).total_kg)


class TestPluginWiring:
    def test_plugin_overrides_survey(self, orin_2d):
        """An injected power plug-in replaces the surveyed efficiency."""
        doubled = CallablePlugin("double", lambda die: 2.0 * 2.74)
        wl = Workload.autonomous_vehicle()
        plain = CarbonModel(orin_2d, PARAMS).operational(wl)
        plugged = CarbonModel(
            orin_2d, PARAMS, efficiency_plugin=doubled
        ).operational(wl)
        assert plugged.compute_energy_kwh == pytest.approx(
            plain.compute_energy_kwh / 2.0
        )

    def test_dnn_plugin_end_to_end(self, orin_2d):
        from repro.power.dnn import AnalyticalDnnPlugin

        wl = Workload.autonomous_vehicle()
        report = CarbonModel(
            orin_2d.with_overrides(
                dies=(orin_2d.dies[0].with_overrides(
                    efficiency_tops_per_w=None),)
            ),
            PARAMS,
            efficiency_plugin=AnalyticalDnnPlugin(),
        ).operational(wl)
        assert report.total_kg > 0

    def test_plugin_applies_to_suites(self, orin_2d):
        fixed = CallablePlugin("fixed", lambda die: 10.0)
        suite = make_suite()
        report = CarbonModel(
            orin_2d, PARAMS, efficiency_plugin=fixed
        ).operational_suite(suite)
        for sub in report.per_workload:
            for record in sub.per_die:
                if record.workload_share > 0:
                    assert record.efficiency_tops_per_w == 10.0
