"""Integration-technology database tests (Table 1 + Fig. 2)."""

import pytest

from repro.config.integration import (
    DEFAULT_INTEGRATION_TABLE,
    AssemblyFlow,
    BondingMethod,
    IntegrationFamily,
    IntegrationSpec,
    IntegrationTable,
    StackingStyle,
    SubstrateKind,
)
from repro.errors import ParameterError, UnknownTechnologyError


def spec(name: str) -> IntegrationSpec:
    return DEFAULT_INTEGRATION_TABLE.get(name)


class TestCoverage:
    def test_all_paper_technologies_present(self):
        """Table 1: 3 commercial 3D + 4 2.5D technologies (+ 2D)."""
        for name in ("2d", "micro_3d", "hybrid_3d", "m3d",
                     "mcm", "info", "emib", "si_interposer"):
            assert name in DEFAULT_INTEGRATION_TABLE

    def test_family_partition(self):
        three_d = DEFAULT_INTEGRATION_TABLE.three_d_names()
        two_five = DEFAULT_INTEGRATION_TABLE.two_five_d_names()
        assert sorted(three_d) == ["hybrid_3d", "m3d", "micro_3d"]
        assert sorted(two_five) == ["emib", "info", "mcm", "si_interposer"]

    def test_aliases(self):
        table = DEFAULT_INTEGRATION_TABLE
        assert table.get("hybrid") is table.get("hybrid_3d")
        assert table.get("Si_int") is table.get("si_interposer")
        assert table.get("monolithic_3d") is table.get("m3d")
        assert table.get("micro-bump") is table.get("micro_3d")

    def test_unknown_raises(self):
        with pytest.raises(UnknownTechnologyError):
            DEFAULT_INTEGRATION_TABLE.get("cowos_z")


class TestFig2InterfacePhysics:
    """Data rates, densities, and energies transcribed from Fig. 2."""

    def test_mcm(self):
        s = spec("mcm")
        assert s.data_rate_gbps == 4.0
        assert s.io_density_per_mm_per_layer == 50.0
        assert 500.0 <= s.energy_per_bit_fj <= 2000.0

    def test_info(self):
        s = spec("info")
        assert s.data_rate_gbps == 4.0
        assert s.io_density_per_mm_per_layer == 100.0
        assert s.energy_per_bit_fj == 250.0

    def test_emib(self):
        s = spec("emib")
        assert s.data_rate_gbps == pytest.approx(3.4)
        assert 200.0 <= s.io_density_per_mm_per_layer <= 500.0
        assert s.energy_per_bit_fj == 150.0

    def test_si_interposer(self):
        s = spec("si_interposer")
        assert 3.2 <= s.data_rate_gbps <= 6.4
        assert s.io_density_per_mm_per_layer == 500.0
        assert s.energy_per_bit_fj == 120.0

    def test_micro_bump_pitch(self):
        s = spec("micro_3d")
        assert 10.0 <= s.connection_pitch_um <= 50.0
        assert s.energy_per_bit_fj == 140.0
        assert s.data_rate_gbps == 6.0

    def test_hybrid_pitch(self):
        s = spec("hybrid_3d")
        assert 1.0 <= s.connection_pitch_um <= 5.0
        assert s.data_rate_gbps == 5.0

    def test_m3d_miv(self):
        s = spec("m3d")
        assert s.connection_pitch_um <= 0.6
        assert s.energy_per_bit_fj <= 5.0
        assert s.data_rate_gbps == 15.0

    def test_interface_density_ordering(self):
        """Finer technologies supply more connections per mm."""
        assert (spec("mcm").io_density_per_mm_per_layer
                < spec("info").io_density_per_mm_per_layer
                < spec("emib").io_density_per_mm_per_layer
                <= spec("si_interposer").io_density_per_mm_per_layer)


class TestDeploymentRules:
    def test_io_power_rule(self):
        """Sec. 3.3: only 2.5D and micro-bump 3D pay interface power."""
        assert spec("micro_3d").io_power_counted
        for name in ("mcm", "info", "emib", "si_interposer"):
            assert spec(name).io_power_counted
        for name in ("2d", "hybrid_3d", "m3d"):
            assert not spec(name).io_power_counted

    def test_3d_matches_onchip_bandwidth(self):
        """Sec. 3.4 assumption: 3D ICs match 2D on-chip bandwidth."""
        for name in ("micro_3d", "hybrid_3d", "m3d"):
            assert spec(name).bandwidth_matches_2d
        for name in ("mcm", "info", "emib", "si_interposer"):
            assert not spec(name).bandwidth_matches_2d

    def test_m3d_two_tiers(self):
        assert spec("m3d").max_dies == 2

    def test_m3d_has_no_bond_step(self):
        assert spec("m3d").bonding is BondingMethod.NONE

    def test_2_5d_substrates(self):
        assert spec("mcm").substrate is SubstrateKind.ORGANIC
        assert spec("info").substrate is SubstrateKind.RDL
        assert spec("emib").substrate is SubstrateKind.EMIB_BRIDGE
        assert spec("si_interposer").substrate is SubstrateKind.SILICON_INTERPOSER

    def test_io_area_ratio_range(self):
        """Table 2: γ ∈ [0, 1]; only coarse interfaces need drivers."""
        assert spec("micro_3d").io_area_ratio > 0.0
        assert spec("hybrid_3d").io_area_ratio == 0.0
        assert spec("m3d").io_area_ratio == 0.0

    def test_interconnect_power_saving_ordering(self):
        """Kim DAC'21: M3D > hybrid > micro wire-shortening benefit."""
        assert (spec("m3d").interconnect_power_saving
                > spec("hybrid_3d").interconnect_power_saving
                > spec("micro_3d").interconnect_power_saving
                > spec("mcm").interconnect_power_saving)

    def test_gate_area_factor_ordering(self):
        assert (spec("m3d").gate_area_factor
                < spec("hybrid_3d").gate_area_factor
                < spec("micro_3d").gate_area_factor
                <= 1.0)

    def test_stacking_options(self):
        assert StackingStyle.F2F in spec("hybrid_3d").allowed_stacking
        assert spec("m3d").allowed_stacking == (StackingStyle.F2B,)

    def test_assembly_options(self):
        assert AssemblyFlow.D2W in spec("micro_3d").allowed_assembly
        assert AssemblyFlow.CHIP_FIRST in spec("info").allowed_assembly
        assert AssemblyFlow.CHIP_LAST in spec("info").allowed_assembly
        assert spec("emib").allowed_assembly == (AssemblyFlow.CHIP_LAST,)


class TestValidation:
    def test_negative_rate_rejected(self):
        with pytest.raises(ParameterError):
            spec("emib").with_overrides(data_rate_gbps=-1.0)

    def test_bad_gamma_rejected(self):
        with pytest.raises(ParameterError):
            spec("emib").with_overrides(io_area_ratio=1.5)

    def test_bad_kappa_rejected(self):
        with pytest.raises(ParameterError):
            spec("m3d").with_overrides(interconnect_power_saving=0.9)

    def test_bad_gate_area_factor_rejected(self):
        with pytest.raises(ParameterError):
            spec("m3d").with_overrides(gate_area_factor=0.2)

    def test_override_isolated(self):
        table = IntegrationTable()
        modified = table.with_spec_override("emib", data_rate_gbps=5.0)
        assert modified.get("emib").data_rate_gbps == 5.0
        assert table.get("emib").data_rate_gbps == pytest.approx(3.4)

    def test_register_duplicate_rejected(self):
        table = IntegrationTable()
        with pytest.raises(ParameterError):
            table.register(table.get("emib"))

    def test_family_flags_consistent(self):
        for s in DEFAULT_INTEGRATION_TABLE:
            flags = [s.is_2d, s.is_3d, s.is_2_5d]
            assert sum(flags) == 1
