"""Persistent content-addressed result store: keys, LRU, persistence."""

from __future__ import annotations

import json

import pytest

from repro.caching import EvictionPolicy
from repro.config.parameters import DEFAULT_PARAMETERS
from repro.core.operational import Workload
from repro.service.dispatcher import (
    evaluate_fingerprint,
    montecarlo_fingerprint,
)
from repro.service.store import (
    ResultStore,
    StoreError,
    canonical_text,
    content_key,
)


class TestCanonicalText:
    def test_primitives(self):
        assert canonical_text(None) == "None"
        assert canonical_text(True) == "True"
        assert canonical_text(1) == "1"
        assert canonical_text(1.5) == "1.5"
        assert canonical_text("a\"b") == '"a\\"b"'

    def test_float_int_distinct(self):
        assert canonical_text(1.0) != canonical_text(1)

    def test_nested_structures(self):
        assert canonical_text((1, (2, "x"))) == '(1,(2,"x"))'
        assert canonical_text({"b": 2, "a": 1}) == '{"a":1,"b":2}'

    def test_dataclass_and_enum(self):
        from repro.config.integration import BondingMethod

        node = DEFAULT_PARAMETERS.node("7nm")
        text = canonical_text((node, BondingMethod.HYBRID))
        assert "ProcessNode(" in text
        assert "BondingMethod.HYBRID" in text

    def test_refuses_unknown_types(self):
        with pytest.raises(StoreError, match="canonically encode"):
            canonical_text(object())

    def test_content_key_is_stable_hex(self):
        key = content_key(("evaluate", 1))
        assert key == content_key(("evaluate", 1))
        assert len(key) == 64
        assert key != content_key(("evaluate", 2))


class TestFingerprints:
    def test_same_values_same_key(self, orin_2d, av_workload):
        a = evaluate_fingerprint(
            orin_2d, DEFAULT_PARAMETERS, "taiwan", av_workload
        )
        b = evaluate_fingerprint(
            orin_2d, DEFAULT_PARAMETERS, "taiwan",
            Workload.autonomous_vehicle(),
        )
        assert content_key(a) == content_key(b)

    def test_location_changes_key(self, orin_2d, av_workload):
        a = evaluate_fingerprint(
            orin_2d, DEFAULT_PARAMETERS, "taiwan", av_workload
        )
        b = evaluate_fingerprint(
            orin_2d, DEFAULT_PARAMETERS, "iceland", av_workload
        )
        assert content_key(a) != content_key(b)

    def test_parameter_perturbation_changes_key(self, orin_2d, av_workload):
        perturbed = DEFAULT_PARAMETERS.with_node_override(
            "7nm", defect_density_per_cm2=0.2
        )
        a = evaluate_fingerprint(
            orin_2d, DEFAULT_PARAMETERS, "taiwan", av_workload
        )
        b = evaluate_fingerprint(orin_2d, perturbed, "taiwan", av_workload)
        assert content_key(a) != content_key(b)

    def test_montecarlo_key_pins_draws(self, hybrid_stack, av_workload):
        a = montecarlo_fingerprint(
            hybrid_stack, DEFAULT_PARAMETERS, "taiwan", av_workload, 100, 1
        )
        b = montecarlo_fingerprint(
            hybrid_stack, DEFAULT_PARAMETERS, "taiwan", av_workload, 100, 2
        )
        assert content_key(a) != content_key(b)

    def test_montecarlo_key_distinct_per_backend(
        self, hybrid_stack, av_workload
    ):
        """Each backend's MC key carries its own factor-set fingerprint."""
        from repro.pipeline.registry import backend_names

        keys = {
            content_key(montecarlo_fingerprint(
                hybrid_stack, DEFAULT_PARAMETERS, "taiwan", av_workload,
                100, 1, backend=name,
            ))
            for name in backend_names()
        }
        assert len(keys) == len(list(backend_names()))

    def test_montecarlo_key_embeds_the_factor_set(
        self, hybrid_stack, av_workload
    ):
        fingerprint = montecarlo_fingerprint(
            hybrid_stack, DEFAULT_PARAMETERS, "taiwan", av_workload,
            100, 1, backend="act",
        )
        from repro.pipeline.registry import get_backend

        expected = get_backend("act").factor_set(
            hybrid_stack, DEFAULT_PARAMETERS
        ).fingerprint()
        assert expected in fingerprint


class TestResultStore:
    def test_roundtrip_and_counters(self):
        with ResultStore(":memory:") as store:
            assert store.get("k") is None
            store.put("k", json.dumps({"total_kg": 1.25}))
            assert json.loads(store.get("k"))["total_kg"] == 1.25
            assert store.hits == 1
            assert store.misses == 1
            assert len(store) == 1
            assert "k" in store and "other" not in store

    def test_put_refreshes_payload(self):
        with ResultStore(":memory:") as store:
            store.put("k", "old")
            store.put("k", "new")
            assert store.get("k") == "new"
            assert len(store) == 1

    def test_lru_eviction(self):
        policy = EvictionPolicy(max_entries=3, evict_batch=1)
        with ResultStore(":memory:", policy=policy) as store:
            for name in "abc":
                store.put(name, name)
            assert store.get("a") == "a"        # refresh 'a'
            store.put("d", "d")                 # evicts 'b'
            assert store.get("b") is None
            assert store.get("a") == "a"
            assert store.get("d") == "d"
            assert store.evictions == 1

    def test_batched_eviction(self):
        policy = EvictionPolicy(max_entries=4, evict_batch=2)
        with ResultStore(":memory:", policy=policy) as store:
            for index in range(5):
                store.put(str(index), "x")
            assert len(store) == 3              # one overflow drops a batch
            assert store.get("4") == "x"        # newest entry survives

    def test_persistence_across_reopen(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        with ResultStore(path) as store:
            store.put("k", "payload")
        with ResultStore(path) as reopened:
            assert reopened.get("k") == "payload"
            assert reopened.hits == 1
            lifetime = reopened.stats()["lifetime"]
            assert lifetime["hits"] == 1

    def test_lru_clock_survives_reopen(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        policy = EvictionPolicy(max_entries=2, evict_batch=1)
        with ResultStore(path, policy=policy) as store:
            store.put("old", "1")
            store.put("new", "2")
        with ResultStore(path, policy=policy) as reopened:
            reopened.put("newest", "3")         # evicts 'old', not 'new'
            assert reopened.get("old") is None
            assert reopened.get("new") == "2"

    def test_stats_shape(self):
        with ResultStore(":memory:", max_entries=10) as store:
            stats = store.stats()
            assert stats["entries"] == 0
            assert stats["max_entries"] == 10
            assert set(stats["lifetime"]) == {"hits", "misses", "evictions"}

    def test_clear(self):
        with ResultStore(":memory:") as store:
            store.put("k", "v")
            store.get("k")
            store.clear()
            assert len(store) == 0
            assert store.hits == 0


class TestFormatMigration:
    """A store written under an older key format is rebuilt, not trusted."""

    def test_v2_store_is_detected_and_rebuilt(self, tmp_path):
        import sqlite3

        from repro.service.store import STORE_FORMAT_VERSION

        path = tmp_path / "store.sqlite3"
        with ResultStore(path) as store:
            store.put("stale-backend-key", json.dumps({"total_kg": 1.0}))
        # Rewrite the metadata the way a pre-factor-set release left it:
        # v2 keys never included the per-backend factor-set fingerprint,
        # so their entries could serve stale per-backend MC results.
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value = '2' WHERE key = 'format_version'"
        )
        conn.commit()
        conn.close()
        with ResultStore(path) as reopened:
            assert reopened.get("stale-backend-key") is None
            assert len(reopened) == 0
        conn = sqlite3.connect(path)
        row = conn.execute(
            "SELECT value FROM meta WHERE key = 'format_version'"
        ).fetchone()
        conn.close()
        assert row[0] == str(STORE_FORMAT_VERSION)

    def test_current_version_store_is_preserved(self, tmp_path):
        path = tmp_path / "store.sqlite3"
        with ResultStore(path) as store:
            store.put("k", "payload")
        with ResultStore(path) as reopened:
            assert reopened.get("k") == "payload"
