"""Bonding, packaging and substrate database tests."""

import pytest

from repro.config.bonding import (
    DEFAULT_BONDING_TABLE,
    BondingProcess,
    BondingTable,
)
from repro.config.integration import AssemblyFlow, BondingMethod, SubstrateKind
from repro.config.packaging import DEFAULT_PACKAGING_TABLE, PackageClass, PackagingTable
from repro.config.substrate import SubstrateParameters
from repro.errors import ParameterError, UnknownTechnologyError


class TestBondingTable:
    def test_all_3d_combinations_present(self):
        for method in (BondingMethod.MICRO_BUMP, BondingMethod.HYBRID):
            for flow in (AssemblyFlow.D2W, AssemblyFlow.W2W):
                assert DEFAULT_BONDING_TABLE.get(method, flow) is not None

    def test_c4_both_25d_flows(self):
        for flow in (AssemblyFlow.CHIP_FIRST, AssemblyFlow.CHIP_LAST):
            assert DEFAULT_BONDING_TABLE.get(BondingMethod.C4, flow)

    def test_none_method_rejected(self):
        with pytest.raises(ParameterError):
            DEFAULT_BONDING_TABLE.get(BondingMethod.NONE, AssemblyFlow.D2W)

    def test_unknown_combination_raises(self):
        with pytest.raises(UnknownTechnologyError):
            DEFAULT_BONDING_TABLE.get(BondingMethod.HYBRID, AssemblyFlow.CHIP_FIRST)

    def test_d2w_bond_yield_below_w2w(self):
        """Sec. 4.2: D2W's advanced bonding has lower per-bond yield."""
        for method in (BondingMethod.MICRO_BUMP, BondingMethod.HYBRID):
            d2w = DEFAULT_BONDING_TABLE.get(method, AssemblyFlow.D2W)
            w2w = DEFAULT_BONDING_TABLE.get(method, AssemblyFlow.W2W)
            assert d2w.bond_yield < w2w.bond_yield

    def test_lakefield_anchor_yields(self):
        """DESIGN.md §5: micro D2W 0.96, W2W 0.97 reproduce Sec. 4.2."""
        micro_d2w = DEFAULT_BONDING_TABLE.get(
            BondingMethod.MICRO_BUMP, AssemblyFlow.D2W
        )
        micro_w2w = DEFAULT_BONDING_TABLE.get(
            BondingMethod.MICRO_BUMP, AssemblyFlow.W2W
        )
        assert micro_d2w.bond_yield == pytest.approx(0.96)
        assert micro_w2w.bond_yield == pytest.approx(0.97)

    def test_c4_is_cheapest(self):
        """Mature flip-chip reflow costs far less than advanced bonding."""
        c4 = DEFAULT_BONDING_TABLE.get(BondingMethod.C4, AssemblyFlow.CHIP_LAST)
        hybrid = DEFAULT_BONDING_TABLE.get(BondingMethod.HYBRID, AssemblyFlow.D2W)
        micro = DEFAULT_BONDING_TABLE.get(
            BondingMethod.MICRO_BUMP, AssemblyFlow.D2W
        )
        assert c4.epa_kwh_per_cm2 < micro.epa_kwh_per_cm2
        assert c4.epa_kwh_per_cm2 < hybrid.epa_kwh_per_cm2

    def test_bad_yield_rejected(self):
        with pytest.raises(ParameterError):
            BondingProcess(BondingMethod.HYBRID, AssemblyFlow.D2W, 1.0, 1.5)

    def test_bad_epa_rejected(self):
        with pytest.raises(ParameterError):
            BondingProcess(BondingMethod.HYBRID, AssemblyFlow.D2W, 9.0, 0.95)

    def test_override_isolated(self):
        table = BondingTable()
        modified = table.with_process_override(
            BondingMethod.HYBRID, AssemblyFlow.D2W, bond_yield=0.5
        )
        assert modified.get(
            BondingMethod.HYBRID, AssemblyFlow.D2W
        ).bond_yield == 0.5
        assert table.get(
            BondingMethod.HYBRID, AssemblyFlow.D2W
        ).bond_yield != 0.5

    def test_register_duplicate_rejected(self):
        table = BondingTable()
        with pytest.raises(ParameterError):
            table.register(table.get(BondingMethod.C4, AssemblyFlow.D2W))


class TestPackagingTable:
    def test_builtin_classes(self):
        for name in ("fcbga", "server_mcm", "pop_mobile", "fowlp"):
            assert DEFAULT_PACKAGING_TABLE.get(name) is not None

    def test_unknown_class_raises(self):
        with pytest.raises(UnknownTechnologyError):
            DEFAULT_PACKAGING_TABLE.get("wirebond_dip")

    def test_linear_area_model(self):
        package = PackageClass("test", 0.05, 2.0, area_margin_mm2=10.0)
        assert package.package_area_mm2(100.0) == pytest.approx(210.0)

    def test_scale_at_least_one(self):
        """Table 2: s_package ≥ 1."""
        with pytest.raises(ParameterError):
            PackageClass("bad", 0.05, 0.9)

    def test_epyc_package_calibration(self):
        """server_mcm scale maps EPYC silicon to its SP3 body (Sec. 4.1)."""
        package = DEFAULT_PACKAGING_TABLE.get("server_mcm")
        silicon = 4 * 74.0 + 416.0
        assert package.package_area_mm2(silicon) == pytest.approx(
            58.5 * 75.4, rel=0.01
        )

    def test_packaging_cpa_reproduces_epyc_3_47kg(self):
        """CPA × SP3 area ≈ the paper's 3.47 kg packaging footprint."""
        package = DEFAULT_PACKAGING_TABLE.get("server_mcm")
        kg = package.cpa_kg_per_cm2 * (58.5 * 75.4) / 100.0
        assert kg == pytest.approx(3.47, rel=0.01)

    def test_negative_area_rejected(self):
        with pytest.raises(ParameterError):
            DEFAULT_PACKAGING_TABLE.get("fcbga").package_area_mm2(-1.0)

    def test_override_isolated(self):
        table = PackagingTable()
        modified = table.with_class_override("fcbga", area_scale=9.0)
        assert modified.get("fcbga").area_scale == 9.0
        assert table.get("fcbga").area_scale != 9.0


class TestSubstrateParameters:
    def test_defaults_in_table2_ranges(self):
        sub = SubstrateParameters()
        assert sub.si_interposer_scale >= 1.0
        assert sub.emib_scale >= 1.0
        assert sub.rdl_scale >= 1.0
        assert 0.5 <= sub.die_gap_mm <= 2.0

    def test_scale_lookup(self):
        sub = SubstrateParameters()
        assert sub.scale_for(SubstrateKind.SILICON_INTERPOSER) == (
            sub.si_interposer_scale
        )
        assert sub.scale_for(SubstrateKind.EMIB_BRIDGE) == sub.emib_scale
        assert sub.scale_for(SubstrateKind.RDL) == sub.rdl_scale

    def test_organic_has_no_scale(self):
        with pytest.raises(ParameterError):
            SubstrateParameters().scale_for(SubstrateKind.ORGANIC)

    def test_scale_below_one_rejected(self):
        with pytest.raises(ParameterError):
            SubstrateParameters(si_interposer_scale=0.5)

    def test_die_gap_out_of_range_rejected(self):
        with pytest.raises(ParameterError):
            SubstrateParameters(die_gap_mm=10.0)

    def test_bad_yield_rejected(self):
        with pytest.raises(ParameterError):
            SubstrateParameters(rdl_yield=0.0)

    def test_override(self):
        sub = SubstrateParameters().with_overrides(die_gap_mm=2.0)
        assert sub.die_gap_mm == 2.0

    def test_rdl_spans_package(self):
        """Sec. 5.1: InFO substrates are large — scale ≫ EMIB's bridge."""
        sub = SubstrateParameters()
        assert sub.rdl_scale > 5 * sub.emib_scale / 2
        assert sub.rdl_yield < 0.95
