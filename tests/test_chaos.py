"""Chaos suite: fault-injected HTTP scenarios, end to end.

The service-level acceptance scenarios of the resilience PR:

* an overloaded server sheds with **503 + Retry-After**, and the
  client's circuit breaker opens on the shed streak and recovers after
  the cool-down;
* a request that overruns its ``X-Carbon3D-Deadline-Ms`` budget answers
  a **typed 504 payload** (``EvaluationTimeout`` with ``budget_s`` /
  ``elapsed_s``);
* ``/healthz`` splits into liveness (always 200) and readiness (503
  while draining), both unauthenticated;
* a **corrupted store file** across a restart is quarantined aside to
  ``.corrupt`` and the answer recomputed, bit-identical;
* ``carbon3d serve`` under **SIGTERM drains gracefully**: in-flight
  requests finish, their results land in the store, exit code 0 —
  driven through a real subprocess armed via ``CARBON3D_FAULT_PLAN``
  and the ``--fault-plan`` flag.

Run separately from tier-1 as the CI ``chaos`` job.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.model import CarbonModel
from repro.core.operational import Workload
from repro.io.designs import design_from_dict
from repro.resilience import CircuitBreaker, CircuitOpenError
from repro.service import ServiceClient, ServiceError, make_server

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


def design_payload(name="chaos_chip", gates=17e9) -> dict:
    return {
        "name": name,
        "integration": "hybrid_3d",
        "stacking": "f2f",
        "assembly": "d2w",
        "package": {"class": "fcbga"},
        "throughput_tops": 254.0,
        "dies": [
            {"name": "top", "node": "7nm", "gate_count": gates / 2,
             "workload_share": 0.5},
            {"name": "bottom", "node": "7nm", "gate_count": gates / 2,
             "workload_share": 0.5},
        ],
    }


def start_server(**kwargs):
    server = make_server(**kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return server, thread


def stop_server(server, thread):
    server.close()
    thread.join(timeout=10.0)


SLOW_COMPUTE_PLAN = {
    "name": "slow-compute",
    "rules": [{"site": "dispatcher.compute", "action": "delay",
               "delay_s": 0.4, "times": None}],
}


class TestOverloadShedding:
    def test_shed_answers_503_with_retry_after(self):
        server, thread = start_server(
            max_inflight=1, queue_wait_s=0.02, retry_after_s=1.0,
            faults=SLOW_COMPUTE_PLAN,
        )
        try:
            slow = ServiceClient(server.url, retries=0)
            fast = ServiceClient(server.url, retries=0)
            background = threading.Thread(
                target=lambda: slow.evaluate(design_payload("occupant")),
            )
            background.start()
            time.sleep(0.1)  # let the slow request claim the one slot
            with pytest.raises(ServiceError) as exc:
                fast.evaluate(design_payload("shed_me"))
            background.join(timeout=10.0)
            assert exc.value.status == 503
            assert exc.value.retry_after_s is not None
            assert exc.value.retry_after_s >= 1.0
            assert exc.value.error_type == "OverloadedError"
            assert server.shed_requests >= 1
            # Sheds are refusals, not failures: the dispatcher never saw
            # the request, so its error counter stays untouched.
            assert server.dispatcher.stats.errors == 0
            stats = server.stats_dict()["service"]
            assert stats["shed_requests"] >= 1
            assert stats["max_inflight"] == 1
        finally:
            stop_server(server, thread)

    def test_breaker_opens_on_shed_streak_and_recovers(self):
        server, thread = start_server(
            max_inflight=1, queue_wait_s=0.02, retry_after_s=1.0,
            faults=SLOW_COMPUTE_PLAN,
        )
        try:
            now = [0.0]
            breaker = CircuitBreaker(
                failure_threshold=1, cooldown_s=0.5, clock=lambda: now[0]
            )
            slow = ServiceClient(server.url, retries=0)
            client = ServiceClient(server.url, retries=0, breaker=breaker)
            background = threading.Thread(
                target=lambda: slow.evaluate(design_payload("occupant")),
            )
            background.start()
            time.sleep(0.1)
            with pytest.raises(ServiceError):
                client.evaluate(design_payload("breaker_probe"))
            # The 503 opened the breaker; the next call fails fast
            # without touching the socket.
            assert breaker.state == "open"
            with pytest.raises(CircuitOpenError):
                client.evaluate(design_payload("breaker_probe"))
            background.join(timeout=10.0)  # server is idle again
            # Past the cool-down (Retry-After extended it to 1s), the
            # half-open probe goes through and closes the breaker.
            now[0] = 2.0
            envelope = client.evaluate(design_payload("breaker_probe"))
            assert envelope["result"]["total_kg"] > 0
            assert breaker.state == "closed"
        finally:
            stop_server(server, thread)


class TestDeadlines:
    def test_deadline_overrun_answers_typed_504(self):
        server, thread = start_server(faults=SLOW_COMPUTE_PLAN)
        try:
            client = ServiceClient(server.url, deadline_ms=100)
            with pytest.raises(ServiceError) as exc:
                client.evaluate(design_payload())
            assert exc.value.status == 504
            assert exc.value.error_type == "EvaluationTimeout"
            assert exc.value.payload["budget_s"] == pytest.approx(0.1)
            assert exc.value.payload["elapsed_s"] >= 0.1
        finally:
            stop_server(server, thread)

    def test_generous_deadline_header_is_invisible(self):
        server, thread = start_server()
        try:
            with_deadline = ServiceClient(server.url, deadline_ms=60_000)
            bare = ServiceClient(server.url)
            first = with_deadline.evaluate(design_payload())
            second = bare.evaluate(design_payload())
            assert first["result"] == second["result"]
        finally:
            stop_server(server, thread)

    def test_malformed_deadline_header_is_a_400(self):
        server, thread = start_server()
        try:
            request = urllib.request.Request(
                server.url + "/evaluate",
                data=json.dumps({
                    "schema": 1, "type": "evaluate",
                    "design": design_payload(),
                }).encode("utf-8"),
                headers={"Content-Type": "application/json",
                         "X-Carbon3D-Deadline-Ms": "soon"},
                method="POST",
            )
            with pytest.raises(urllib.error.HTTPError) as exc:
                urllib.request.urlopen(request, timeout=10)
            assert exc.value.code == 400
        finally:
            stop_server(server, thread)


class TestHealthSplit:
    def test_liveness_and_readiness_endpoints(self):
        server, thread = start_server(token="sekrit")
        try:
            client = ServiceClient(server.url)  # deliberately tokenless
            live = client._request("GET", "/healthz/live")["result"]
            ready = client._request("GET", "/healthz/ready")["result"]
            assert live["status"] == "alive"
            assert ready["status"] == "ready"
            health = client.healthz()
            assert health["status"] == "ok"
            assert "/healthz/live" in health["endpoints"]
        finally:
            stop_server(server, thread)

    def test_readiness_goes_503_while_draining_liveness_stays_up(self):
        server, thread = start_server()
        try:
            client = ServiceClient(server.url, retries=0)
            server.draining = True
            live = client._request("GET", "/healthz/live")["result"]
            assert live["status"] == "alive"
            with pytest.raises(ServiceError) as exc:
                client._request("GET", "/healthz/ready")
            assert exc.value.status == 503
            with pytest.raises(ServiceError) as exc:
                client.evaluate(design_payload())  # POSTs shed too
            assert exc.value.status == 503
            server.draining = False
            ready = client._request("GET", "/healthz/ready")["result"]
            assert ready["status"] == "ready"
        finally:
            stop_server(server, thread)


class TestStoreCorruptionOverHTTP:
    def test_corrupt_store_recomputes_and_quarantines(self, tmp_path):
        store_path = tmp_path / "store.sqlite3"
        server, thread = start_server(store_path=str(store_path))
        try:
            reference = ServiceClient(server.url).evaluate(
                design_payload()
            )["result"]
        finally:
            stop_server(server, thread)

        store_path.write_bytes(b"\x00garbage, not sqlite\x00" * 128)

        server, thread = start_server(store_path=str(store_path))
        try:
            envelope = ServiceClient(server.url).evaluate(design_payload())
        finally:
            stop_server(server, thread)
        assert envelope["cache"] == "computed"  # rebuilt store was empty
        assert envelope["result"] == reference  # bit-identical recompute
        corpses = list(tmp_path.glob("*.corrupt*"))
        assert corpses, "the corrupt database file was not quarantined"
        direct = CarbonModel(
            design_from_dict(design_payload()), fab_location="taiwan"
        ).evaluate(Workload.autonomous_vehicle())
        assert envelope["result"] == json.loads(json.dumps(direct.to_dict()))


def _serve_subprocess(tmp_path, extra_args=(), env_plan=None):
    """Spawn ``carbon3d serve`` on a free port; return (proc, url)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(REPO, "src")
    env["PYTHONUNBUFFERED"] = "1"
    if env_plan is not None:
        env["CARBON3D_FAULT_PLAN"] = json.dumps(env_plan)
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro.cli", "serve", "--port", "0",
         "--store", str(tmp_path / "served_store.sqlite3"), *extra_args],
        stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True, env=env, cwd=REPO,
    )
    url = None
    deadline = time.monotonic() + 30.0
    while time.monotonic() < deadline:
        line = proc.stdout.readline()
        if not line:
            break
        if "listening on" in line:
            url = line.strip().rsplit(" ", 1)[-1]
            break
    if url is None:
        proc.kill()
        raise RuntimeError("server subprocess never announced its URL")
    # Wait for readiness (the banner prints before serve_forever runs).
    while time.monotonic() < deadline:
        try:
            with urllib.request.urlopen(url + "/healthz/live", timeout=1):
                break
        except OSError:
            time.sleep(0.05)
    return proc, url


@pytest.mark.skipif(sys.platform == "win32", reason="POSIX signals")
class TestGracefulDrain:
    def test_sigterm_finishes_inflight_and_persists(self, tmp_path):
        """Satellite: SIGTERM mid-request → the slow batch finishes, its
        result lands in the store, and the process exits 0."""
        proc, url = _serve_subprocess(tmp_path, env_plan={
            "name": "slow-serve",
            "rules": [{"site": "dispatcher.compute", "action": "delay",
                       "delay_s": 1.0, "times": None}],
        })
        outcome = {}

        def slow_request():
            client = ServiceClient(url, timeout=60.0, retries=0)
            outcome["envelope"] = client.evaluate(design_payload("drainee"))

        worker = threading.Thread(target=slow_request)
        worker.start()
        time.sleep(0.4)  # the request is mid-delay inside the dispatcher
        proc.send_signal(signal.SIGTERM)
        worker.join(timeout=30.0)
        output = proc.stdout.read()
        assert proc.wait(timeout=30.0) == 0
        assert "drained" in output
        # The in-flight request was answered, not dropped.
        assert outcome["envelope"]["result"]["total_kg"] > 0
        # And its computed result was persisted before the store closed.
        from repro.service.store import ResultStore

        with ResultStore(str(tmp_path / "served_store.sqlite3")) as store:
            assert store.stats()["entries"] == 1

    def test_fault_plan_flag_arms_the_server(self, tmp_path):
        plan = {
            "name": "flaky-front-door",
            "rules": [{"site": "server.request",
                       "message": "injected front-door fault"}],
        }
        proc, url = _serve_subprocess(
            tmp_path,
            extra_args=["--fault-plan", json.dumps(plan),
                        "--max-inflight", "7"],
        )
        try:
            client = ServiceClient(url, retries=0)
            with pytest.raises(ServiceError) as exc:
                client.evaluate(design_payload())  # the one armed fault
            assert "injected front-door fault" in str(exc.value)
            assert exc.value.status == 400
            envelope = client.evaluate(design_payload())  # rule spent
            assert envelope["result"]["total_kg"] > 0
            assert client.stats()["service"]["max_inflight"] == 7
        finally:
            proc.send_signal(signal.SIGTERM)
            output = proc.stdout.read()
            assert proc.wait(timeout=30.0) == 0
        assert "flaky-front-door" in output  # the startup banner names it
