"""Paper-conformance and cross-consistency tests.

These pin the remaining structural facts of the paper that no other file
covers: the full DRIVE golden column for the older generations, the
internal consistency between study-level and direct decision metrics,
design-level monotonicities across parameter axes, and renderer edge
cases.
"""

import math

import pytest

from repro import (
    CarbonModel,
    ChipDesign,
    ParameterSet,
    Workload,
    decision_metrics,
)
from repro.core.metrics import format_decision_table
from repro.core.report import format_report_table
from repro.studies.decision import table5_study
from repro.studies.drive import drive_2d_design, drive_design

PARAMS = ParameterSet.default()
WL = Workload.autonomous_vehicle()
RTOL = 0.005


class TestGoldenOlderGenerations:
    """Pin the PX2/XAVIER/THOR 2D columns (ORIN is pinned elsewhere)."""

    EXPECTED_2D = {
        "PX2": (301.74, 46.39),
        "XAVIER": (173.79, 34.79),
        "THOR": (133.91, 2.78),
    }

    @pytest.mark.parametrize("device", sorted(EXPECTED_2D))
    def test_2d_columns(self, device):
        report = CarbonModel(
            drive_2d_design(device), PARAMS, "taiwan"
        ).evaluate(WL)
        emb, op = self.EXPECTED_2D[device]
        assert report.embodied_kg == pytest.approx(emb, rel=RTOL)
        assert report.operational_kg == pytest.approx(op, rel=RTOL)

    def test_embodied_tracks_die_size_across_generations(self):
        """PX2's huge 16 nm die complement dominates ORIN's 7 nm die."""
        px2 = CarbonModel(drive_2d_design("PX2"), PARAMS).embodied()
        orin = CarbonModel(drive_2d_design("ORIN"), PARAMS).embodied()
        assert px2.total_kg > 10.0 * orin.total_kg


class TestStudyVsDirectMetrics:
    """table5_study must agree with hand-built decision_metrics calls."""

    def test_same_numbers_both_paths(self):
        study = table5_study()
        baseline = CarbonModel(
            drive_2d_design("ORIN"), PARAMS, "taiwan"
        ).evaluate(WL)
        direct_alt = CarbonModel(
            drive_design("ORIN", "Hybrid"), PARAMS, "taiwan"
        ).evaluate(WL)
        direct = decision_metrics(baseline, direct_alt)
        from_study = study.row("Hybrid").metrics
        assert direct.embodied_save_ratio == pytest.approx(
            from_study.embodied_save_ratio
        )
        assert direct.overall_save_ratio == pytest.approx(
            from_study.overall_save_ratio
        )
        assert direct.tr_years == pytest.approx(from_study.tr_years)

    def test_baseline_consistency(self):
        study = table5_study()
        assert study.baseline.embodied_kg == pytest.approx(16.96, rel=RTOL)


class TestDesignLevelMonotonicity:
    def test_embodied_monotone_in_wafer_diameter(self, orin_2d):
        totals = [
            CarbonModel(
                orin_2d, PARAMS.with_wafer_diameter(d)
            ).embodied().total_kg
            for d in (200.0, 300.0, 450.0)
        ]
        assert totals[0] > totals[1] > totals[2]

    def test_operational_monotone_in_use_ci(self, orin_2d):
        model = CarbonModel(orin_2d, PARAMS)
        kgs = [
            model.operational(
                Workload("w", 1e9, use_location=ci)
            ).total_kg
            for ci in (30.0, 300.0, 700.0)
        ]
        assert kgs[0] < kgs[1] < kgs[2]

    def test_embodied_monotone_in_defect_density(self, orin_2d):
        totals = [
            CarbonModel(
                orin_2d,
                PARAMS.with_node_override("7nm", defect_density_per_cm2=d0),
            ).embodied().total_kg
            for d0 in (0.05, 0.139, 0.30)
        ]
        assert totals[0] < totals[1] < totals[2]

    def test_bandwidth_monotone_in_io_density(self, orin_2d):
        emib = ChipDesign.homogeneous_split(orin_2d, "emib")
        ratios = [
            CarbonModel(
                emib,
                PARAMS.with_integration_override(
                    "emib", io_density_per_mm_per_layer=density
                ),
            ).bandwidth().ratio
            for density in (200.0, 350.0, 500.0)
        ]
        assert ratios[0] < ratios[1] < ratios[2]

    def test_m3d_footprint_shrinks_with_gate_area_factor(self, orin_2d):
        m3d = ChipDesign.homogeneous_split(orin_2d, "m3d")
        tight = CarbonModel(
            m3d,
            PARAMS.with_integration_override("m3d", gate_area_factor=0.7),
        ).resolved().m3d_stack.footprint_mm2
        loose = CarbonModel(
            m3d,
            PARAMS.with_integration_override("m3d", gate_area_factor=0.95),
        ).resolved().m3d_stack.footprint_mm2
        assert tight < loose


class TestRenderersEdgeCases:
    def test_decision_table_never_row(self, orin_2d):
        base = CarbonModel(orin_2d, PARAMS).evaluate(WL)
        si = CarbonModel(
            ChipDesign.homogeneous_split(orin_2d, "si_interposer"), PARAMS
        ).evaluate(WL)
        metrics = decision_metrics(base, si)
        text = format_decision_table([metrics])
        assert "inf" in text
        assert "no" in text

    def test_report_table_handles_long_names(self, orin_2d):
        long_named = orin_2d.with_overrides(
            name="a_very_long_design_name_that_exceeds_the_column_width"
        )
        report = CarbonModel(long_named, PARAMS).evaluate()
        table = format_report_table([report])
        # Name truncated to the column, table stays aligned.
        lines = table.splitlines()
        assert len(lines[-1]) <= len(lines[0]) + 2

    def test_report_render_without_bandwidth_section(self, orin_2d):
        text = CarbonModel(orin_2d, PARAMS).evaluate().render()
        assert "bandwidth" not in text  # unconstrained 2D design


class TestSecFourClaims:
    """The two Sec. 4 modeling-difference claims, as direct assertions."""

    def test_packaging_area_based_vs_fixed(self):
        """3D-Carbon's packaging scales with area; ACT+'s cannot."""
        from repro.baselines import act_plus_estimate

        small = ChipDesign.planar_2d("s", "7nm", area_mm2=50.0)
        large = ChipDesign.planar_2d("l", "7nm", area_mm2=500.0)
        ci = PARAMS.grid("taiwan").kg_co2_per_kwh
        ours_small = CarbonModel(small, PARAMS).embodied().packaging_kg
        ours_large = CarbonModel(large, PARAMS).embodied().packaging_kg
        assert ours_large > 5.0 * ours_small
        act_small = act_plus_estimate(small, ci, PARAMS).packaging_kg
        act_large = act_plus_estimate(large, ci, PARAMS).packaging_kg
        assert act_small == act_large

    def test_beol_configurations_differentiate_dies(self):
        """Same area, different routing demand → different carbon."""
        ci = PARAMS.grid("taiwan").kg_co2_per_kwh
        dense = ChipDesign.planar_2d("dense", "7nm", gate_count=2.7e9)
        sparse_die = dense.dies[0].with_overrides(beol_layers=6)
        sparse = dense.with_overrides(name="sparse", dies=(sparse_die,))
        dense_kg = CarbonModel(dense, PARAMS, ci * 1000).embodied().die_kg
        sparse_kg = CarbonModel(sparse, PARAMS, ci * 1000).embodied().die_kg
        assert sparse_kg < dense_kg


class TestDecisionLifetimeSensitivity:
    def test_emib_choice_flips_beyond_tc(self, orin_2d):
        """Choosing EMIB is right at 10 years but wrong past T_c."""
        base = CarbonModel(orin_2d, PARAMS).evaluate(WL)
        emib = CarbonModel(
            ChipDesign.homogeneous_split(orin_2d, "emib"), PARAMS
        ).evaluate(WL)
        metrics_10 = decision_metrics(base, emib, lifetime_years=10.0)
        assert metrics_10.choose_recommended
        beyond = metrics_10.tc_years + 5.0
        metrics_beyond = decision_metrics(base, emib, lifetime_years=beyond)
        assert not metrics_beyond.choose_recommended

    def test_m3d_replacement_flips_beyond_tr(self, orin_2d):
        base = CarbonModel(orin_2d, PARAMS).evaluate(WL)
        m3d = CarbonModel(
            ChipDesign.homogeneous_split(orin_2d, "m3d"), PARAMS
        ).evaluate(WL)
        metrics = decision_metrics(base, m3d, lifetime_years=10.0)
        assert not metrics.replace_recommended
        assert math.isfinite(metrics.tr_years)
        long_life = decision_metrics(
            base, m3d, lifetime_years=metrics.tr_years + 5.0
        )
        assert long_life.replace_recommended
