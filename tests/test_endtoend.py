"""End-to-end integration tests across module boundaries."""

import json

import pytest

import repro
from repro import (
    CarbonModel,
    CarbonModelError,
    ChipDesign,
    DesignError,
    InvalidDesignError,
    ParameterError,
    ParameterSet,
    UnknownTechnologyError,
    Workload,
)
from repro.baselines import act_plus_estimate, first_order_estimate, lca_estimate
from repro.cli import main
from repro.config.loader import load_parameters, save_parameters
from repro.io import design_to_dict, report_row, save_design
from repro.studies.products import ryzen_5800x3d_design
from repro.viz import stacked_bars

PARAMS = ParameterSet.default()
WL = Workload.autonomous_vehicle()


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert getattr(repro, name) is not None, name

    def test_error_hierarchy(self):
        for exc in (DesignError, ParameterError, InvalidDesignError,
                    UnknownTechnologyError):
            assert issubclass(exc, CarbonModelError)

    def test_subpackages_import(self):
        import repro.analysis
        import repro.baselines
        import repro.floorplan
        import repro.io
        import repro.lifecycle
        import repro.perf
        import repro.power
        import repro.rent
        import repro.studies
        import repro.viz


class TestJsonToCliToApi:
    def test_cli_matches_api(self, tmp_path, capsys, orin_2d):
        """The CLI's JSON output equals the direct API evaluation."""
        path = tmp_path / "orin.json"
        save_design(orin_2d, path)
        assert main(["evaluate", str(path), "--json"]) == 0
        cli_data = json.loads(capsys.readouterr().out)
        api = CarbonModel(orin_2d, PARAMS).evaluate(WL)
        assert cli_data["embodied_kg"] == pytest.approx(api.embodied_kg)
        assert cli_data["operational_kg"] == pytest.approx(
            api.operational_kg
        )
        assert cli_data["total_kg"] == pytest.approx(api.total_kg)

    def test_serialized_split_design_evaluates_identically(self, orin_2d):
        split = ChipDesign.homogeneous_split(orin_2d, "emib")
        clone = repro.io.design_from_dict(design_to_dict(split))
        a = CarbonModel(split, PARAMS).evaluate(WL)
        b = CarbonModel(clone, PARAMS).evaluate(WL)
        assert a.total_kg == pytest.approx(b.total_kg)
        assert a.valid == b.valid


class TestCalibrationFileFlow:
    def test_saved_calibration_drives_studies(self, tmp_path, orin_2d):
        """Modify → save → load → evaluate reproduces the modification."""
        modified = PARAMS.with_node_override(
            "7nm", defect_density_per_cm2=0.30
        )
        path = tmp_path / "cal.json"
        save_parameters(modified, path)
        restored = load_parameters(path)
        worse = CarbonModel(orin_2d, restored).embodied().total_kg
        baseline = CarbonModel(orin_2d, PARAMS).embodied().total_kg
        assert worse > baseline


class TestCrossModelConsistency:
    """All four models rank a design family consistently where they agree."""

    def test_every_model_sees_bigger_silicon_as_worse(self):
        small = [("7nm", 100.0)]
        large = [("7nm", 400.0)]
        ci = PARAMS.grid("taiwan").kg_co2_per_kwh
        assert (lca_estimate(large, PARAMS).total_kg
                > lca_estimate(small, PARAMS).total_kg)
        assert (first_order_estimate(400.0).total_kg
                > first_order_estimate(100.0).total_kg)
        small_d = ChipDesign.planar_2d("s", "7nm", area_mm2=100.0)
        large_d = ChipDesign.planar_2d("l", "7nm", area_mm2=400.0)
        assert (act_plus_estimate(large_d, ci, PARAMS).total_kg
                > act_plus_estimate(small_d, ci, PARAMS).total_kg)
        assert (CarbonModel(large_d, PARAMS).embodied().total_kg
                > CarbonModel(small_d, PARAMS).embodied().total_kg)

    def test_3d_carbon_sees_stacking_nuances_baselines_miss(self):
        """The headline modeling claim, end to end."""
        from repro.config.integration import AssemblyFlow
        from repro.studies.validation import lakefield_design

        ci = PARAMS.grid("taiwan").kg_co2_per_kwh
        d2w = lakefield_design(AssemblyFlow.D2W)
        w2w = lakefield_design(AssemblyFlow.W2W)
        ours_delta = (
            CarbonModel(w2w, PARAMS).embodied().total_kg
            - CarbonModel(d2w, PARAMS).embodied().total_kg
        )
        act_delta = (
            act_plus_estimate(w2w, ci, PARAMS).total_kg
            - act_plus_estimate(d2w, ci, PARAMS).total_kg
        )
        assert ours_delta > 0.1
        assert abs(act_delta) < 1e-9


class TestReportPipelines:
    def test_study_to_rows_to_viz(self, orin_2d):
        """Reports flow through io and viz without loss."""
        reports = [
            CarbonModel(orin_2d, PARAMS).evaluate(WL),
            CarbonModel(
                ChipDesign.homogeneous_split(orin_2d, "m3d"), PARAMS
            ).evaluate(WL),
        ]
        rows = [report_row(r) for r in reports]
        chart = stacked_bars(reports)
        for row, report in zip(rows, reports):
            assert row["total_kg"] == pytest.approx(report.total_kg)
            assert report.design_name in chart

    def test_product_design_full_pipeline(self):
        """A Table 1 product: evaluate, serialize, re-evaluate, render."""
        design = ryzen_5800x3d_design()
        report = CarbonModel(design, PARAMS).evaluate()
        clone_report = CarbonModel(
            repro.io.design_from_dict(design_to_dict(design)), PARAMS
        ).evaluate()
        assert report.total_kg == pytest.approx(clone_report.total_kg)
        assert "Ryzen7_5800X3D" in report.render()


class TestWorkloadVariants:
    def test_same_total_work_same_carbon(self, orin_2d):
        """Only total ops matter for compute energy, not the activity mix."""
        slow = Workload.from_activity("slow", 50.0, 2.0, 10.0)
        fast = Workload.from_activity("fast", 100.0, 1.0, 10.0)
        assert slow.total_tera_ops == pytest.approx(fast.total_tera_ops)
        model = CarbonModel(orin_2d, PARAMS)
        assert model.operational(slow).total_kg == pytest.approx(
            model.operational(fast).total_kg
        )

    def test_lifetime_scales_decision_rates_not_totals(self, orin_2d):
        """Same work over a longer life: same carbon, lower annual rate."""
        short = Workload("w", 1e9, lifetime_years=5.0)
        long = Workload("w", 1e9, lifetime_years=10.0)
        model = CarbonModel(orin_2d, PARAMS)
        a = model.operational(short)
        b = model.operational(long)
        assert a.total_kg == pytest.approx(b.total_kg)
        assert a.annual_kg == pytest.approx(2.0 * b.annual_kg)
