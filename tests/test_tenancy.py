"""Multi-tenant control plane: tokens, namespaces, quotas, usage.

The tentpole guarantees under test:

* **Tokens.** The SQLite registry issues/revokes/rotates named, hashed
  tokens; a second connection (another process, by construction) sees
  every mutation; the legacy shared secret seeds idempotently; auth
  enforcement is monotonic — revoking the last token locks down.
* **Namespaces.** The anonymous namespace keeps the pre-tenancy store
  digests bit-for-bit (local/service parity, v3 adoption); named
  tenants hash to disjoint keys, so two tenants never share a store
  row for the same design.
* **Quotas.** Token buckets and ledger-backed absolute ceilings reject
  with a typed 429 + ``Retry-After`` — breaker-neutral on the client,
  unlike the overload 503.
* **Usage.** Per-tenant counters write through the store, so totals
  agree across every fleet worker and survive which worker answers
  ``GET /usage``.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import urllib.error
import urllib.request

import pytest

from repro.cli import main as cli_main
from repro.resilience.breaker import CircuitBreaker
from repro.service import ServiceClient, ServiceError, make_server
from repro.service.fleet import ServiceFleet
from repro.service.store import ResultStore, content_key
from repro.tenancy import (
    ANONYMOUS_TENANT,
    QuotaExceededError,
    QuotaManager,
    TenantContext,
    TenantQuota,
    TokenBucket,
    TokenRegistry,
    UsageLedger,
    namespace_key,
    tenant_scope,
)


def design_payload(name="tenant_chip", gates=17e9) -> dict:
    return {
        "name": name,
        "integration": "hybrid_3d",
        "stacking": "f2f",
        "assembly": "d2w",
        "package": {"class": "fcbga"},
        "throughput_tops": 254.0,
        "dies": [
            {"name": "top", "node": "7nm", "gate_count": gates / 2,
             "workload_share": 0.5},
            {"name": "bottom", "node": "7nm", "gate_count": gates / 2,
             "workload_share": 0.5},
        ],
    }


class TestTokenRegistry:
    def test_issue_and_resolve(self, tmp_path):
        registry = TokenRegistry(str(tmp_path / "tk.sqlite3"))
        try:
            secret, record = registry.issue(
                "ci-bot", "acme", scopes=("admin",),
                quota=TenantQuota(rate_per_s=10.0),
            )
            assert secret.startswith("c3d_")
            resolved = registry.resolve(secret)
            assert resolved is not None
            assert resolved.tenant == "acme"
            assert resolved.scopes == ("admin",)
            assert resolved.quota.rate_per_s == 10.0
            assert resolved.id == record.id
            assert registry.resolve("c3d_ffffffff_nope") is None
            assert registry.resolve("garbage") is None
            assert registry.resolve("") is None
        finally:
            registry.close()

    def test_secret_is_never_stored(self, tmp_path):
        path = str(tmp_path / "tk.sqlite3")
        registry = TokenRegistry(path)
        secret, _ = registry.issue("ci-bot", "acme")
        registry.close()
        blob = (tmp_path / "tk.sqlite3").read_bytes()
        # The random half of the secret must not appear in the file.
        assert secret.split("_", 2)[2].encode() not in blob

    def test_revoke_by_name_and_reissue(self, tmp_path):
        registry = TokenRegistry(str(tmp_path / "tk.sqlite3"))
        try:
            secret, _ = registry.issue("ci-bot", "acme")
            with pytest.raises(ValueError, match="already exists"):
                registry.issue("ci-bot", "other")
            revoked = registry.revoke("ci-bot")
            assert not revoked.active
            assert registry.resolve(secret) is None
            # The name frees up for a fresh token once revoked.
            secret2, record2 = registry.issue("ci-bot", "acme")
            assert registry.resolve(secret2).id == record2.id
            with pytest.raises(KeyError):
                registry.revoke("never-existed")
        finally:
            registry.close()

    def test_rotate_kills_old_secret_in_place(self, tmp_path):
        registry = TokenRegistry(str(tmp_path / "tk.sqlite3"))
        try:
            old_secret, record = registry.issue(
                "edge", "acme", quota=TenantQuota(max_requests=5)
            )
            new_secret, rotated = registry.rotate("edge")
            assert rotated.id == record.id
            assert rotated.tenant == "acme"
            assert rotated.quota.max_requests == 5
            assert rotated.rotated is not None
            assert registry.resolve(old_secret) is None
            assert registry.resolve(new_secret).id == record.id
        finally:
            registry.close()

    def test_second_connection_sees_mutations(self, tmp_path):
        """The fleet contract: workers and the admin CLI share one file."""
        path = str(tmp_path / "tk.sqlite3")
        admin = TokenRegistry(path)
        worker = TokenRegistry(path)
        try:
            secret, _ = admin.issue("late-join", "acme")
            assert worker.resolve(secret) is not None
            admin.revoke("late-join")
            assert worker.resolve(secret) is None
        finally:
            admin.close()
            worker.close()

    def test_shared_secret_seeding_is_idempotent(self, tmp_path):
        """N racing fleet workers converge on one identical legacy row."""
        path = str(tmp_path / "tk.sqlite3")
        first = TokenRegistry(path)
        second = TokenRegistry(path)
        try:
            a = first.ensure_shared_secret("open-sesame")
            b = second.ensure_shared_secret("open-sesame")
            assert a.id == b.id
            assert a.tenant == ANONYMOUS_TENANT
            assert len(first.list()) == 1
            # Legacy secrets carry no embedded id: the scan path.
            assert second.resolve("open-sesame").id == a.id
        finally:
            first.close()
            second.close()

    def test_enforcement_is_monotonic(self, tmp_path):
        registry = TokenRegistry(str(tmp_path / "tk.sqlite3"))
        try:
            assert not registry.enforcing()
            registry.issue("only", "acme")
            assert registry.enforcing()
            registry.revoke("only")
            # Revoking the last token locks down; it never falls open.
            assert registry.enforcing()
        finally:
            registry.close()

    def test_format_version_mismatch_refuses(self, tmp_path):
        path = str(tmp_path / "tk.sqlite3")
        TokenRegistry(path).close()
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value = '999' WHERE key = 'format_version'"
        )
        conn.commit()
        conn.close()
        with pytest.raises(RuntimeError, match="format 999"):
            TokenRegistry(path)


class TestNamespaceKeys:
    def test_anonymous_matches_pre_tenancy_key(self):
        value = ("evaluate", "fingerprint-text")
        assert namespace_key(value, ANONYMOUS_TENANT) == content_key(value)
        # No active context ⇒ anonymous.
        assert namespace_key(value) == content_key(value)

    def test_named_tenants_are_disjoint(self):
        value = ("evaluate", "fingerprint-text")
        acme = namespace_key(value, "acme")
        globex = namespace_key(value, "globex")
        anon = namespace_key(value, ANONYMOUS_TENANT)
        assert len({acme, globex, anon}) == 3
        # Deterministic per (tenant, value).
        assert namespace_key(value, "acme") == acme

    def test_context_scope_selects_the_namespace(self):
        value = ("evaluate", "fingerprint-text")
        with tenant_scope(TenantContext(tenant="acme")):
            assert namespace_key(value) == namespace_key(value, "acme")
        assert namespace_key(value) == content_key(value)


class TestQuota:
    def test_bucket_burst_then_refill(self):
        clock = [0.0]
        bucket = TokenBucket(10.0, 20.0, clock=lambda: clock[0])
        ok, _ = bucket.try_acquire(20)
        assert ok
        ok, wait = bucket.try_acquire(5)
        assert not ok
        assert wait == pytest.approx(0.5)
        clock[0] += 0.5
        ok, _ = bucket.try_acquire(5)
        assert ok

    def test_oversized_charge_clamps_to_capacity(self):
        clock = [0.0]
        bucket = TokenBucket(10.0, 10.0, clock=lambda: clock[0])
        ok, _ = bucket.try_acquire(1_000_000)
        assert ok  # drains the bucket instead of rejecting forever
        ok, _ = bucket.try_acquire(1)
        assert not ok

    def test_quota_round_trip_and_unknown_field(self):
        quota = TenantQuota(rate_per_s=5.0, max_points=100)
        assert TenantQuota.from_dict(quota.to_dict()) == quota
        assert TenantQuota().unlimited
        with pytest.raises(ValueError, match="unknown quota fields"):
            TenantQuota.from_dict({"requests_per_day": 1})

    def test_absolute_request_ceiling_via_ledger(self):
        ledger = UsageLedger()
        ledger.record("acme", requests=3)
        manager = QuotaManager()
        quota = TenantQuota(max_requests=3)
        with pytest.raises(QuotaExceededError) as info:
            manager.admit("acme", quota, 1, usage=ledger)
        assert info.value.reason == "requests"
        assert info.value.retry_after_s >= 60.0
        # Another tenant with the same quota sails through.
        manager.admit("globex", quota, 1, usage=ledger)

    def test_rate_rejection_reason(self):
        clock = [0.0]
        manager = QuotaManager(clock=lambda: clock[0])
        quota = TenantQuota(rate_per_s=1.0, burst=1.0)
        manager.admit("acme", quota, 1)
        with pytest.raises(QuotaExceededError) as info:
            manager.admit("acme", quota, 1)
        assert info.value.reason == "rate"
        assert 0 < info.value.retry_after_s <= 1.0

    def test_unlimited_quota_never_rejects(self):
        manager = QuotaManager()
        for _ in range(100):
            manager.admit("acme", None, 10_000)
            manager.admit("acme", TenantQuota(), 10_000)


class TestUsageLedger:
    def test_local_mode_accumulates(self):
        ledger = UsageLedger()
        ledger.record("acme", requests=1, points=3)
        ledger.record("acme", points=2, bytes_out=100)
        assert ledger.total("acme", "points") == 5
        totals = ledger.totals("acme")
        assert totals["requests"] == 1
        assert totals["errors"] == 0
        with pytest.raises(ValueError, match="unknown usage fields"):
            ledger.record("acme", elephants=1)

    def test_write_through_aggregates_across_connections(self, tmp_path):
        """Two store handles on one file = two fleet workers."""
        path = str(tmp_path / "store.sqlite3")
        store_a = ResultStore(path)
        store_b = ResultStore(path)
        try:
            ledger_a = UsageLedger(store_a)
            ledger_b = UsageLedger(store_b)
            ledger_a.record("acme", requests=2, points=7)
            ledger_b.record("acme", requests=1, points=1)
            ledger_b.record("globex", requests=4)
            for ledger in (ledger_a, ledger_b):
                assert ledger.total("acme", "requests") == 3
                assert ledger.total("acme", "points") == 8
                assert ledger.all_totals()["globex"]["requests"] == 4
        finally:
            store_a.close()
            store_b.close()


@pytest.fixture()
def tenant_service(tmp_path):
    """A server enforcing a two-tenant registry on a persistent store."""
    registry = TokenRegistry(str(tmp_path / "tokens.sqlite3"))
    admin_secret, _ = registry.issue("acme-edge", "acme", scopes=("admin",))
    metered_secret, _ = registry.issue(
        "globex-ci", "globex", quota=TenantQuota(max_requests=2)
    )
    server = make_server(
        store_path=str(tmp_path / "store.sqlite3"), token_registry=registry
    )
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, admin_secret, metered_secret
    finally:
        server.close()
        thread.join(timeout=5.0)
        registry.close()


class TestServerTenancy:
    def test_missing_or_bad_token_is_401(self, tenant_service):
        server, _, _ = tenant_service
        for token in (None, "c3d_ffffffff_wrong"):
            with ServiceClient(server.url, token=token, retries=0) as client:
                with pytest.raises(ServiceError) as info:
                    client.evaluate(design_payload())
                assert info.value.status == 401
                assert info.value.error_type == "AuthError"

    def test_health_and_metrics_stay_open(self, tenant_service):
        server, _, _ = tenant_service
        with ServiceClient(server.url, retries=0) as client:
            health = client.healthz()
        assert health["auth"] is True
        assert health["tenancy"] is True
        assert "/usage" in health["endpoints"]
        with urllib.request.urlopen(f"{server.url}/metrics") as resp:
            assert resp.status == 200

    def test_tenants_get_isolated_store_entries(self, tenant_service):
        """Same design, two tenants ⇒ two computes, two store rows."""
        server, admin_secret, metered_secret = tenant_service
        with ServiceClient(server.url, token=admin_secret) as acme:
            assert acme.evaluate(design_payload())["cache"] == "computed"
            assert acme.evaluate(design_payload())["cache"] == "store"
        with ServiceClient(server.url, token=metered_secret) as globex:
            # A shared namespace would answer "store" here.
            assert globex.evaluate(design_payload())["cache"] == "computed"

    def test_usage_scoped_to_tenant_admin_sees_all(self, tenant_service):
        server, admin_secret, metered_secret = tenant_service
        with ServiceClient(server.url, token=admin_secret) as acme:
            acme.evaluate(design_payload())
            report = acme.usage()
        assert report["tenant"] == "acme"
        assert report["usage"]["requests"] == 1
        assert report["usage"]["computed"] == 1
        assert "acme" in report["tenants"]  # admin scope
        with ServiceClient(server.url, token=metered_secret) as globex:
            globex.evaluate(design_payload())
            report = globex.usage()
        assert report["tenant"] == "globex"
        assert "tenants" not in report  # no admin scope
        # The body reflects work flushed before this /usage request.
        assert report["usage"]["requests"] == 1
        assert report["usage"]["bytes_out"] > 0

    def test_quota_exhaustion_is_typed_429(self, tenant_service):
        server, admin_secret, metered_secret = tenant_service
        with ServiceClient(
            server.url, token=metered_secret, retries=0
        ) as globex:
            globex.evaluate(design_payload())
            globex.usage()  # /usage is billed too: 2 of 2 used
            with pytest.raises(ServiceError) as info:
                globex.evaluate(design_payload())
            assert info.value.status == 429
            assert info.value.error_type == "QuotaExceededError"
            assert info.value.retry_after_s >= 60.0
            assert info.value.payload["retry_after_s"] >= 60.0
        # The other tenant is untouched by globex's exhaustion.
        with ServiceClient(server.url, token=admin_secret, retries=0) as acme:
            acme.evaluate(design_payload())
        # Rejections are billed as quota_rejected, not errors/requests.
        usage = server.dispatcher.usage.totals("globex")
        assert usage["requests"] == 2
        assert usage["quota_rejected"] >= 1
        assert usage["errors"] == 0

    def test_429_is_breaker_neutral_503_is_not(self, tenant_service):
        """The satellite pin: quota rejections never trip the breaker."""
        server, _, metered_secret = tenant_service
        breaker = CircuitBreaker(failure_threshold=1, cooldown_s=60.0)
        with ServiceClient(
            server.url, token=metered_secret, retries=0, breaker=breaker
        ) as globex:
            globex.evaluate(design_payload())
            globex.evaluate(design_payload(gates=18e9))
            for _ in range(3):
                with pytest.raises(ServiceError) as info:
                    globex.evaluate(design_payload())
                assert info.value.status == 429
            assert breaker.state == CircuitBreaker.CLOSED
            # Sanity: one transport failure would open this breaker.
            breaker.record_failure()
            assert breaker.state != CircuitBreaker.CLOSED

    def test_client_retries_429_after_retry_after(self, tenant_service):
        """A refillable rate rejection heals within the retry loop."""
        server, admin_secret, _ = tenant_service
        secret, _ = server.tokens.issue(
            "burst", "burst", quota=TenantQuota(rate_per_s=50.0, burst=1.0)
        )
        with ServiceClient(
            server.url, token=secret, retries=2, backoff_s=0.0
        ) as client:
            # Burst capacity 1: back-to-back singles only succeed if the
            # client waits out Retry-After (~20ms) and resends.
            assert client.evaluate(design_payload())["result"]
            assert client.evaluate(design_payload())["result"]

    def test_metrics_carry_tenant_labels(self, tenant_service):
        server, admin_secret, metered_secret = tenant_service
        with ServiceClient(server.url, token=admin_secret) as acme:
            acme.evaluate(design_payload())
        with urllib.request.urlopen(f"{server.url}/metrics") as resp:
            text = resp.read().decode()
        assert 'carbon3d_tenant_requests_total{tenant="acme"} 1' in text
        assert 'carbon3d_tenant_points_total{tenant="acme"} 1' in text

    def test_stats_includes_tenant_breakdown(self, tenant_service):
        server, admin_secret, _ = tenant_service
        with ServiceClient(server.url, token=admin_secret) as acme:
            acme.evaluate(design_payload())
            stats = acme.stats()
        assert stats["tenants"]["acme"]["points"] == 1


class TestLegacySharedSecret:
    def test_token_kwarg_still_guards_and_runs_anonymous(self, tmp_path):
        server = make_server(
            store_path=str(tmp_path / "store.sqlite3"), token="open-sesame"
        )
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with ServiceClient(server.url, retries=0) as bare:
                with pytest.raises(ServiceError) as info:
                    bare.evaluate(design_payload())
                assert info.value.status == 401
            with ServiceClient(server.url, token="open-sesame") as client:
                assert client.evaluate(design_payload())["cache"] == "computed"
                report = client.usage()
            assert report["tenant"] == ANONYMOUS_TENANT
            assert report["usage"]["requests"] == 1
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_open_server_needs_no_token(self, tmp_path):
        server = make_server(store_path=str(tmp_path / "store.sqlite3"))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            with ServiceClient(server.url) as client:
                assert client.evaluate(design_payload())["cache"] == "computed"
                report = client.usage()
            assert report["tenant"] == ANONYMOUS_TENANT
            # An open server has no auth boundary: all totals visible.
            assert ANONYMOUS_TENANT in report["tenants"]
            health = client.healthz()
            assert health["auth"] is False
        finally:
            server.close()
            thread.join(timeout=5.0)


class TestStoreMigration:
    def _rewrite_version(self, path: str, version: str) -> None:
        conn = sqlite3.connect(path)
        conn.execute(
            "UPDATE meta SET value = ? WHERE key = 'format_version'",
            (version,),
        )
        conn.commit()
        conn.close()

    def test_v3_store_is_adopted_into_anonymous_namespace(self, tmp_path):
        path = str(tmp_path / "store.sqlite3")
        store = ResultStore(path)
        key = content_key(("evaluate", "pre-tenancy-fingerprint"))
        store.put(key, '"cached-result"')
        store.close()
        self._rewrite_version(path, "3")

        store = ResultStore(path)
        try:
            assert store.adopted == "3"
            # The pre-tenancy row serves the anonymous namespace...
            assert store.get(key) == '"cached-result"'
            # ...whose key is exactly what anonymous requests compute.
            assert namespace_key(
                ("evaluate", "pre-tenancy-fingerprint"), ANONYMOUS_TENANT
            ) == key
            # Named tenants hash elsewhere: no wrong-tenant serves.
            assert store.get(namespace_key(
                ("evaluate", "pre-tenancy-fingerprint"), "acme"
            )) is None
        finally:
            store.close()

    def test_pre_v3_store_is_wiped(self, tmp_path):
        path = str(tmp_path / "store.sqlite3")
        store = ResultStore(path)
        key = content_key(("evaluate", "ancient-fingerprint"))
        store.put(key, '"stale"')
        store.close()
        self._rewrite_version(path, "2")

        store = ResultStore(path)
        try:
            assert store.adopted is None
            assert store.get(key) is None
        finally:
            store.close()

    def test_adopted_store_serves_anonymous_hits_end_to_end(self, tmp_path):
        """Warm a pre-tenancy store, reopen under v4, hit it over HTTP."""
        path = str(tmp_path / "store.sqlite3")
        server = make_server(store_path=path)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        with ServiceClient(server.url) as client:
            assert client.evaluate(design_payload())["cache"] == "computed"
        server.close()
        thread.join(timeout=5.0)
        self._rewrite_version(path, "3")

        server = make_server(store_path=path)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            assert server.store.adopted == "3"
            with ServiceClient(server.url) as client:
                assert client.evaluate(design_payload())["cache"] == "store"
        finally:
            server.close()
            thread.join(timeout=5.0)


class TestFleetTenancy:
    """Two forked workers, one registry file, one usage ledger."""

    @staticmethod
    def _issue(capsys, tokens_path: str, *args: str) -> str:
        """Issue a token through the admin CLI; return the secret."""
        assert cli_main(
            ["tokens", "--tokens", tokens_path, "issue", *args, "--json"]
        ) == 0
        return json.loads(capsys.readouterr().out)["secret"]

    @staticmethod
    def _request(url: str, token: str, path: str, payload: "dict | None"):
        """One fresh-connection exchange → (status, body, headers).

        Fresh connections (no keep-alive pool) let consecutive requests
        land on either forked worker, which is exactly what the
        fleet-agreement assertions want to exercise.
        """
        data = None
        if payload is not None:
            data = json.dumps(dict(payload, schema=1)).encode()
        request = urllib.request.Request(
            f"{url}{path}", data=data,
            headers={
                "Content-Type": "application/json",
                "X-Carbon3D-Token": token,
                "Connection": "close",
            },
        )
        try:
            with urllib.request.urlopen(request, timeout=30) as resp:
                return resp.status, json.load(resp), dict(resp.headers)
        except urllib.error.HTTPError as error:
            body = json.loads(error.read().decode())
            return error.code, body, dict(error.headers)

    def test_cli_issued_tokens_quota_and_usage_across_workers(
        self, tmp_path, capsys
    ):
        tokens_path = str(tmp_path / "tokens.sqlite3")
        acme = self._issue(
            capsys, tokens_path, "acme-edge", "--tenant", "acme",
            "--scopes", "admin",
        )
        globex = self._issue(
            capsys, tokens_path, "globex-ci", "--tenant", "globex",
            "--max-requests", "3",
        )
        fleet = ServiceFleet(
            workers=2, store_path=str(tmp_path / "fleet.sqlite3"),
            tokens_path=tokens_path, poll_interval_s=0.05,
        )
        fleet.start()
        try:
            evaluate = {
                "type": "evaluate", "design": design_payload(),
                "workload": "av",
            }
            # A CLI-issued token is accepted on every fresh connection
            # (requests spread over both forked workers).
            tags = []
            for _ in range(4):
                status, body, _ = self._request(
                    fleet.url, acme, "/evaluate", evaluate
                )
                assert status == 200
                tags.append(body["cache"])
            # Exactly one compute fleet-wide, the rest store hits.
            assert tags[0] == "computed"
            assert tags.count("computed") == 1

            # Same design, other tenant: isolated namespace ⇒ its own
            # compute, whichever worker serves it.
            status, body, _ = self._request(
                fleet.url, globex, "/evaluate", evaluate
            )
            assert status == 200
            assert body["cache"] == "computed"

            # The absolute quota is ledger-backed, so it binds across
            # workers: globex used 1 of 3 requests; two more succeed,
            # then a typed 429 + Retry-After — while acme sails on.
            for _ in range(2):
                status, _, _ = self._request(
                    fleet.url, globex, "/evaluate", evaluate
                )
                assert status == 200
            status, body, headers = self._request(
                fleet.url, globex, "/evaluate", evaluate
            )
            assert status == 429
            assert body["error"]["type"] == "QuotaExceededError"
            assert float(headers["Retry-After"]) >= 60.0
            status, _, _ = self._request(
                fleet.url, acme, "/evaluate", evaluate
            )
            assert status == 200

            # Usage totals agree no matter which worker answers.
            answers = []
            for _ in range(4):
                status, body, _ = self._request(
                    fleet.url, acme, "/usage", None
                )
                assert status == 200
                answers.append(body["result"]["tenants"]["globex"])
            assert all(answer == answers[0] for answer in answers)
            assert answers[0]["requests"] == 3
            assert answers[0]["quota_rejected"] == 1
        finally:
            fleet.close()
