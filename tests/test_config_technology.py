"""Process-node database tests (Table 2's foundry parameters)."""

import pytest

from repro.config.technology import (
    DEFAULT_TECHNOLOGY_TABLE,
    ProcessNode,
    TechnologyTable,
)
from repro.errors import ParameterError, UnknownTechnologyError


def node(name: str) -> ProcessNode:
    return DEFAULT_TECHNOLOGY_TABLE.get(name)


class TestTableLookup:
    def test_all_paper_nodes_present(self):
        """Table 2: process range 3–28 nm (plus interposer extras)."""
        for name in ("3nm", "5nm", "7nm", "10nm", "12nm", "14nm", "16nm",
                     "20nm", "22nm", "28nm"):
            assert name in DEFAULT_TECHNOLOGY_TABLE

    def test_flexible_spellings(self):
        table = DEFAULT_TECHNOLOGY_TABLE
        assert table.get("7nm") is table.get("7 nm")
        assert table.get(7) is table.get("7nm")
        assert table.get(7.0) is table.get("7")

    def test_unknown_node_raises(self):
        with pytest.raises(UnknownTechnologyError):
            DEFAULT_TECHNOLOGY_TABLE.get("1nm")

    def test_contains(self):
        assert "7nm" in DEFAULT_TECHNOLOGY_TABLE
        assert "9nm" not in DEFAULT_TECHNOLOGY_TABLE

    def test_iteration_and_len(self):
        names = [n.name for n in DEFAULT_TECHNOLOGY_TABLE]
        assert len(names) == len(DEFAULT_TECHNOLOGY_TABLE)
        assert len(set(names)) == len(names)

    def test_get_passthrough(self):
        record = node("7nm")
        assert DEFAULT_TECHNOLOGY_TABLE.get(record) is record


class TestParameterRanges:
    """Defaults must respect the published Table 2 ranges."""

    def test_epa_range(self):
        for n in DEFAULT_TECHNOLOGY_TABLE:
            assert 0.3 <= n.epa_kwh_per_cm2 <= 2.75

    def test_gpa_mpa_range(self):
        for n in DEFAULT_TECHNOLOGY_TABLE:
            assert 0.0 < n.gpa_kg_per_cm2 <= 0.5
            assert 0.0 < n.mpa_kg_per_cm2 <= 0.5

    def test_rent_exponent_range(self):
        for n in DEFAULT_TECHNOLOGY_TABLE:
            assert 0.6 <= n.rent_exponent <= 0.8

    def test_fanout_range(self):
        for n in DEFAULT_TECHNOLOGY_TABLE:
            assert 1.0 <= n.fanout <= 5.0

    def test_tsv_diameter_range(self):
        """Table 2: D_TSV 0.3–25 µm."""
        for n in DEFAULT_TECHNOLOGY_TABLE:
            assert 0.3 <= n.tsv_diameter_um <= 25.0

    def test_miv_below_0_6_um(self):
        """MIVs are < 0.6 µm (Sec. 2.1.1)."""
        for n in DEFAULT_TECHNOLOGY_TABLE:
            assert n.miv_diameter_um <= 0.6

    def test_beta_range(self):
        """β 450–850 (Table 2) for logic nodes."""
        for n in DEFAULT_TECHNOLOGY_TABLE:
            assert 450.0 <= n.beta <= 850.0


class TestMonotonicTrends:
    """Finer nodes are more carbon-intensive and defect-prone."""

    ORDER = ["28nm", "22nm", "20nm", "16nm", "14nm", "12nm", "10nm",
             "7nm", "5nm", "3nm"]

    def test_epa_non_decreasing_towards_finer_nodes(self):
        values = [node(n).epa_kwh_per_cm2 for n in self.ORDER]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_defect_density_non_decreasing(self):
        values = [node(n).defect_density_per_cm2 for n in self.ORDER]
        assert all(a <= b for a, b in zip(values, values[1:]))

    def test_max_beol_non_decreasing(self):
        values = [node(n).max_beol_layers for n in self.ORDER]
        assert all(a <= b for a, b in zip(values, values[1:]))


class TestDerivedQuantities:
    def test_wire_pitch_is_3_6_lambda(self):
        assert node("7nm").wire_pitch_nm == pytest.approx(3.6 * 7.0)

    def test_gate_area_orin_calibration(self):
        """17 B gates at 7 nm ≈ 458 mm² (NVIDIA ORIN die size)."""
        area_mm2 = 17e9 * node("7nm").gate_area_um2 / 1e6
        assert area_mm2 == pytest.approx(458.0, rel=0.01)

    def test_epa_split_reassembles(self):
        n = node("7nm")
        reassembled = (
            n.epa_feol_kwh_per_cm2()
            + n.max_beol_layers * n.epa_per_beol_layer_kwh_per_cm2()
        )
        assert reassembled == pytest.approx(n.epa_kwh_per_cm2)

    def test_gpa_split_reassembles(self):
        n = node("14nm")
        reassembled = (
            n.gpa_feol_kg_per_cm2()
            + n.max_beol_layers * n.gpa_per_beol_layer_kg_per_cm2()
        )
        assert reassembled == pytest.approx(n.gpa_kg_per_cm2)

    def test_interposer_node_is_beol_only_cheap(self):
        """A passive interposer has no FEOL: far cheaper than logic."""
        assert (node("interposer").epa_kwh_per_cm2
                < node("28nm").epa_kwh_per_cm2)


class TestValidationAndOverrides:
    def test_out_of_range_epa_rejected(self):
        with pytest.raises(ParameterError):
            node("7nm").with_overrides(epa_kwh_per_cm2=100.0)

    def test_bad_rent_exponent_rejected(self):
        with pytest.raises(ParameterError):
            node("7nm").with_overrides(rent_exponent=1.5)

    def test_zero_beol_rejected(self):
        with pytest.raises(ParameterError):
            node("7nm").with_overrides(max_beol_layers=0)

    def test_override_returns_new_record(self):
        original = node("7nm")
        modified = original.with_overrides(defect_density_per_cm2=0.2)
        assert modified.defect_density_per_cm2 == 0.2
        assert original.defect_density_per_cm2 != 0.2

    def test_table_override_is_isolated(self):
        table = TechnologyTable()
        modified = table.with_node_override("7nm", defect_density_per_cm2=0.3)
        assert modified.get("7nm").defect_density_per_cm2 == 0.3
        assert table.get("7nm").defect_density_per_cm2 != 0.3

    def test_register_duplicate_rejected(self):
        table = TechnologyTable()
        with pytest.raises(ParameterError):
            table.register(table.get("7nm"))

    def test_register_custom_node(self):
        table = TechnologyTable()
        custom = table.get("7nm").with_overrides(beta=600.0)
        table.register(
            ProcessNode(
                name="7nm_custom", feature_nm=7.0, beta=600.0,
                epa_kwh_per_cm2=1.52, gpa_kg_per_cm2=0.18,
                mpa_kg_per_cm2=0.5, defect_density_per_cm2=0.139,
                alpha=10.0, max_beol_layers=13,
            )
        )
        assert "7nm_custom" in table
        assert custom.beta == 600.0
