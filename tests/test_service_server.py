"""End-to-end service tests: HTTP round-trips, restart persistence.

The acceptance scenario of the service PR lives here: submitting the
CLI's documented design JSON over HTTP returns a report bit-identical to
``CarbonModel.evaluate``, and killing/restarting the server serves the
same request from the persistent store (hits increment, nothing
re-resolves).
"""

from __future__ import annotations

import json
import threading
from concurrent.futures import ThreadPoolExecutor

import pytest

from repro.core.model import CarbonModel
from repro.core.operational import Workload
from repro.io.designs import design_from_dict
from repro.service import ServiceClient, ServiceError, make_server


def design_payload(name="cli_chip", gates=17e9) -> dict:
    """The design JSON schema the CLI documents."""
    return {
        "name": name,
        "integration": "hybrid_3d",
        "stacking": "f2f",
        "assembly": "d2w",
        "package": {"class": "fcbga"},
        "throughput_tops": 254.0,
        "dies": [
            {"name": "top", "node": "7nm", "gate_count": gates / 2,
             "workload_share": 0.5},
            {"name": "bottom", "node": "7nm", "gate_count": gates / 2,
             "workload_share": 0.5},
        ],
    }


@pytest.fixture()
def service(tmp_path):
    """A running server (persistent store in tmp) + client, torn down after."""
    server = make_server(store_path=str(tmp_path / "store.sqlite3"))
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server, ServiceClient(server.url)
    finally:
        server.close()
        thread.join(timeout=5.0)


class TestRoundTrip:
    def test_evaluate_bit_identical_to_carbon_model(self, service):
        _, client = service
        envelope = client.evaluate(design_payload())
        reference = CarbonModel(
            design_from_dict(design_payload()), fab_location="taiwan"
        ).evaluate(Workload.autonomous_vehicle())
        # JSON round-trip the reference exactly as the wire does.
        assert envelope["result"] == json.loads(
            json.dumps(reference.to_dict())
        )
        assert envelope["cache"] == "computed"

    def test_repeat_served_from_store(self, service):
        _, client = service
        first = client.evaluate(design_payload())
        second = client.evaluate(design_payload())
        assert second["cache"] == "store"
        assert second["result"] == first["result"]

    def test_workload_none(self, service):
        _, client = service
        envelope = client.evaluate(design_payload(), workload="none")
        assert "operational_kg" not in envelope["result"]

    def test_fab_location_changes_result(self, service):
        _, client = service
        taiwan = client.evaluate(design_payload())["result"]
        iceland = client.evaluate(
            design_payload(), fab_location="iceland"
        )["result"]
        assert iceland["embodied_kg"] < taiwan["embodied_kg"]

    def test_healthz(self, service):
        _, client = service
        health = client.healthz()
        assert health["status"] == "ok"
        assert "/evaluate" in health["endpoints"]

    def test_stats_counts_layers(self, service):
        _, client = service
        client.evaluate(design_payload())
        client.evaluate(design_payload())
        stats = client.stats()
        assert stats["dispatcher"]["computed"] == 1
        assert stats["store"]["hits"] == 1
        assert stats["engine"]["points_evaluated"] == 1


class TestRestartPersistence:
    def test_cold_restart_serves_from_store(self, tmp_path):
        """The PR's acceptance criterion, end to end."""
        store_path = str(tmp_path / "store.sqlite3")

        server = make_server(store_path=store_path)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(server.url)
        first = client.evaluate(design_payload())
        assert first["cache"] == "computed"
        server.close()
        thread.join(timeout=5.0)

        # Kill → restart on the same store file: fresh engine, warm store.
        server = make_server(store_path=store_path)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(server.url)
        try:
            second = client.evaluate(design_payload())
            assert second["cache"] == "store"
            assert second["result"] == first["result"]   # bit-identical
            stats = client.stats()
            assert stats["store"]["hits"] == 1           # hit incremented
            assert stats["engine"]["resolve_misses"] == 0  # no re-resolve
            assert stats["engine"]["points_evaluated"] == 0
        finally:
            server.close()
            thread.join(timeout=5.0)


class TestBatchAndSweep:
    def test_batch_dedup_and_order(self, service):
        _, client = service
        points = [
            {"design": design_payload("a"), "label": "p0"},
            {"design": design_payload("b")},
            {"design": design_payload("a"), "label": "p2"},  # duplicate of p0
        ]
        envelope = client.batch(points)
        rows = envelope["result"]
        assert [row["label"] for row in rows] == ["p0", None, "p2"]
        assert rows[0]["report"] == rows[2]["report"]
        stats = client.stats()
        assert stats["dispatcher"]["deduplicated"] == 1
        assert stats["dispatcher"]["computed"] == 2

    def test_sweep_grid(self, service):
        _, client = service
        reference = {
            "name": "ref", "throughput_tops": 254.0,
            "dies": [{"name": "d", "node": "7nm", "gate_count": 17e9,
                      "efficiency_tops_per_w": 2.74}],
        }
        envelope = client.sweep(
            reference, integrations=["2d", "hybrid_3d"],
            fab_locations=["taiwan", "iceland"],
        )
        rows = envelope["result"]
        assert len(rows) == 4
        assert rows[0]["label"] == "2d@taiwan"
        assert {row["report"]["integration"] for row in rows} == {
            "2d", "hybrid_3d",
        }

    def test_montecarlo_summary_cached(self, service):
        _, client = service
        first = client.montecarlo(design_payload(), samples=40)
        assert first["cache"] == "computed"
        assert first["result"]["samples"] == 40
        assert first["result"]["mean_kg"] > 0
        second = client.montecarlo(design_payload(), samples=40)
        assert second["cache"] == "store"
        assert second["result"] == first["result"]
        # A different seed is a different content address.
        third = client.montecarlo(design_payload(), samples=40, seed=7)
        assert third["cache"] == "computed"


class TestCoalescing:
    def test_concurrent_identical_points_compute_once(self, tmp_path):
        server = make_server(store_path=None)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        client = ServiceClient(server.url)
        try:
            with ThreadPoolExecutor(max_workers=8) as pool:
                envelopes = list(pool.map(
                    lambda _: client.evaluate(design_payload()), range(8)
                ))
            results = [e["result"] for e in envelopes]
            assert all(result == results[0] for result in results)
            # Without a store every response is computed or coalesced;
            # the engine only ever saw one distinct point.
            assert server.dispatcher.evaluator.stats.resolve_misses == 1
        finally:
            server.close()
            thread.join(timeout=5.0)


class TestErrors:
    def test_malformed_json_is_400_schema_error(self, service):
        server, _ = service
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            server.url + "/evaluate", data=b"{not json",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 400
        payload = json.loads(excinfo.value.read())
        assert payload["error"]["type"] == "SchemaError"

    def test_bad_design_value_is_typed_error(self, service):
        _, client = service
        bad = design_payload()
        bad["stacking"] = "sideways"
        with pytest.raises(ServiceError) as excinfo:
            client.evaluate(bad)
        assert excinfo.value.error_type == "DesignError"
        assert excinfo.value.status == 400

    def test_unknown_node_is_typed_error(self, service):
        _, client = service
        bad = design_payload()
        bad["dies"][0]["node"] = "9nm"
        with pytest.raises(ServiceError) as excinfo:
            client.evaluate(bad)
        assert excinfo.value.status == 400

    def test_unknown_route_is_404(self, service):
        server, _ = service
        import urllib.error
        import urllib.request

        request = urllib.request.Request(
            server.url + "/nope", data=b"{}",
            headers={"Content-Type": "application/json"}, method="POST",
        )
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            urllib.request.urlopen(request, timeout=10)
        assert excinfo.value.code == 404

    def test_close_before_serve_does_not_deadlock(self):
        server = make_server()
        server.close()                      # never entered serve_forever

    def test_unreachable_server_raises_service_error(self):
        client = ServiceClient("http://127.0.0.1:9", timeout=2.0)
        with pytest.raises(ServiceError, match="cannot reach"):
            client.healthz()


class TestDispatcherParamsPinning:
    def test_caller_evaluator_with_other_params_cannot_poison_store(self):
        """Content keys fingerprint the dispatcher's params, so compute
        must run under those same params even on a shared evaluator."""
        from repro.config.parameters import DEFAULT_PARAMETERS
        from repro.engine import BatchEvaluator
        from repro.service.dispatcher import Dispatcher
        from repro.service.schema import parse_evaluate_request
        from repro.service.store import ResultStore

        other = DEFAULT_PARAMETERS.with_node_override(
            "7nm", defect_density_per_cm2=0.5
        )
        dispatcher = Dispatcher(
            store=ResultStore(":memory:"),
            evaluator=BatchEvaluator(params=other),
        )
        request = parse_evaluate_request({
            "schema": 1, "type": "evaluate", "design": design_payload(),
        })
        result, _ = dispatcher.evaluate(request)
        reference = CarbonModel(
            design_from_dict(design_payload()), fab_location="taiwan"
        ).evaluate(Workload.autonomous_vehicle())
        assert result == json.loads(json.dumps(reference.to_dict()))

    def test_plugin_evaluators_rejected(self):
        from repro.engine import BatchEvaluator
        from repro.errors import ParameterError
        from repro.service.dispatcher import Dispatcher

        with pytest.raises(ParameterError, match="plugin"):
            Dispatcher(
                evaluator=BatchEvaluator(efficiency_plugin=lambda *a: None)
            )


class TestBackendRouting:
    """The backend dimension end to end: routing, store keys, errors."""

    def test_baseline_backend_round_trip(self, service):
        from repro.pipeline import get_backend

        _, client = service
        envelope = client.evaluate(design_payload(), backend="act")
        direct = get_backend("act").evaluate(
            design_from_dict(design_payload()),
            fab_location="taiwan",
            workload=Workload.autonomous_vehicle(),
        )
        assert envelope["result"] == json.loads(
            json.dumps(direct.to_dict())
        )
        assert envelope["result"]["backend"] == "act"

    def test_store_keys_differ_per_backend(self, service):
        _, client = service
        first = client.evaluate(design_payload(), backend="act")
        other = client.evaluate(design_payload(), backend="first_order")
        assert first["cache"] == other["cache"] == "computed"
        assert first["result"]["total_kg"] != other["result"]["total_kg"]
        # Same backend again: served from the persistent store.
        again = client.evaluate(design_payload(), backend="act")
        assert again["cache"] == "store"
        assert again["result"] == first["result"]

    def test_default_payload_shape_unchanged(self, service):
        """No backend field → the classic CarbonModel payload (no tag)."""
        _, client = service
        envelope = client.evaluate(design_payload())
        assert "backend" not in envelope["result"]

    def test_unknown_backend_is_400_typed_payload(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.evaluate(design_payload(), backend="gabi")
        assert excinfo.value.status == 400
        assert excinfo.value.error_type == "BackendError"
        assert excinfo.value.payload["field"] == "backend"

    def test_sweep_with_backend(self, service):
        _, client = service
        design = {
            "name": "flat", "integration": "2d",
            "package": {"class": "fcbga"}, "throughput_tops": 254.0,
            "dies": [{"name": "d", "node": "7nm", "gate_count": 17e9,
                      "workload_share": 1.0}],
        }
        envelope = client.sweep(
            design, integrations=["2d", "mcm"], backend="lca"
        )
        assert [e["report"]["backend"] for e in envelope["result"]] \
            == ["lca", "lca"]

    def test_healthz_lists_backends(self, service):
        _, client = service
        assert client.healthz()["backends"] == [
            "repro3d", "act", "act_plus", "lca", "first_order"
        ]


class TestMonteCarloSamples:
    def test_return_samples_round_trips_through_store(self, tmp_path):
        from repro.analysis.uncertainty import monte_carlo

        store = str(tmp_path / "store.sqlite3")
        reference = monte_carlo(
            design_from_dict(design_payload()),
            workload=Workload.autonomous_vehicle(),
            samples=24, seed=7,
        )

        def one_pass():
            server = make_server(store_path=store)
            thread = threading.Thread(
                target=server.serve_forever, daemon=True
            )
            thread.start()
            try:
                client = ServiceClient(server.url)
                return client.montecarlo(
                    design_payload(), samples=24, seed=7,
                    return_samples=True,
                )
            finally:
                server.close()
                thread.join(timeout=5.0)

        cold = one_pass()
        warm = one_pass()  # restarted server: must come from the store
        assert cold["cache"] == "computed" and warm["cache"] == "store"
        assert cold["result"] == warm["result"]
        assert cold["result"]["samples_kg"] == list(reference.samples_kg)

    def test_summary_and_samples_are_distinct_entries(self, service):
        _, client = service
        summary = client.montecarlo(design_payload(), samples=16, seed=3)
        full = client.montecarlo(
            design_payload(), samples=16, seed=3, return_samples=True
        )
        assert "samples_kg" not in summary["result"]
        assert len(full["result"]["samples_kg"]) == 16
        # A stored summary must never serve a samples request: both were
        # computed, under different content keys.
        assert summary["cache"] == full["cache"] == "computed"
        for key in ("mean_kg", "std_kg", "p95_kg"):
            assert summary["result"][key] == full["result"][key]

    def test_montecarlo_backend_prices_draws_under_that_model(self, service):
        _, client = service
        act = client.montecarlo(
            design_payload(), samples=16, seed=3, backend="act"
        )["result"]
        repro = client.montecarlo(
            design_payload(), samples=16, seed=3
        )["result"]
        assert act["backend"] == "act"
        assert act["mean_kg"] != repro["mean_kg"]


class TestCompareRoute:
    def test_compare_matches_local_study(self, service):
        from repro.studies.validation import compare_backends

        _, client = service
        result = client.compare(design_payload())["result"]
        local = compare_backends(
            design_from_dict(design_payload()), fab_location="taiwan"
        )
        assert [row["backend"] for row in result["backends"]] == [
            entry.backend for entry in local.reports
        ]
        for row, entry in zip(result["backends"], local.reports):
            assert row["report"]["total_kg"] == entry.total_kg
        assert "uncertainty" not in result["backends"][0]

    def test_compare_subset_preserves_order(self, service):
        _, client = service
        result = client.compare(
            design_payload(), backends=["lca", "act"]
        )["result"]
        assert [row["backend"] for row in result["backends"]] == ["lca", "act"]

    def test_compare_with_draws_bands_per_backend(self, service):
        _, client = service
        result = client.compare(
            design_payload(), backends=["repro3d", "act"], draws=16, seed=5
        )["result"]
        bands = {
            row["backend"]: row["uncertainty"] for row in result["backends"]
        }
        assert bands["repro3d"]["samples"] == 16
        # Each backend drew from its own factor set: distinct bands.
        assert bands["repro3d"]["p50_kg"] != bands["act"]["p50_kg"]
        reference = client.montecarlo(
            design_payload(), workload="none", samples=16, seed=5,
            backend="act",
        )["result"]
        assert bands["act"]["p50_kg"] == reference["p50_kg"]

    def test_compare_bands_served_from_store_on_repeat(self, service):
        _, client = service
        first = client.compare(
            design_payload(), backends=["lca"], draws=12
        )["result"]
        again = client.compare(
            design_payload(), backends=["lca"], draws=12
        )["result"]
        assert first["backends"][0]["uncertainty_cache"] == "computed"
        assert again["backends"][0]["uncertainty_cache"] == "store"
        assert (
            first["backends"][0]["uncertainty"]
            == again["backends"][0]["uncertainty"]
        )

    def test_compare_shares_store_with_montecarlo_route(self, service):
        _, client = service
        client.montecarlo(
            design_payload(), workload="none", samples=12, seed=7,
            backend="lca",
        )
        result = client.compare(
            design_payload(), backends=["lca"], draws=12, seed=7
        )["result"]
        assert result["backends"][0]["uncertainty_cache"] == "store"

    def test_compare_unknown_backend_is_400(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            client.compare(design_payload(), backends=["gabi2024"])
        assert excinfo.value.status == 400

    def test_compare_rejects_single_draw(self, service):
        _, client = service
        with pytest.raises(ServiceError, match="draws"):
            client.compare(design_payload(), draws=1)


def reference_payload() -> dict:
    """A single-die 2D reference (sweeps need one to split)."""
    return {
        "name": "stream_soc",
        "integration": "2d",
        "package": {"class": "fcbga"},
        "throughput_tops": 254.0,
        "dies": [{"name": "die", "node": "7nm", "gate_count": 17e9,
                  "workload_share": 1.0}],
    }


class TestStreaming:
    def test_stream_sweep_order_and_store_parity(self, service):
        _, client = service
        entries = list(client.stream_sweep(
            reference_payload(), integrations=["2d", "hybrid_3d", "mcm"],
            workload="none",
        ))
        assert [entry["index"] for entry in entries] == [0, 1, 2]
        assert [entry["cache"] for entry in entries] == ["computed"] * 3
        # The enveloped route now serves the very same reports from the
        # store the stream fed as each point finished.
        enveloped = client.sweep(
            reference_payload(), integrations=["2d", "hybrid_3d", "mcm"],
            workload="none",
        )["result"]
        assert [row["cache"] for row in enveloped] == ["store"] * 3
        assert [row["report"] for row in enveloped] == \
            [entry["report"] for entry in entries]

    def test_stream_batch_dedups_like_enveloped(self, service):
        _, client = service
        points = [{"design": design_payload()},
                  {"design": design_payload()}]
        entries = list(client.stream_batch(points))
        assert [entry["cache"] for entry in entries] == \
            ["computed", "computed"]
        assert entries[0]["report"] == entries[1]["report"]

    def test_stream_flag_false_keeps_envelope(self, service):
        _, client = service
        envelope = client.submit_payload({
            "type": "batch", "stream": False,
            "points": [{"design": design_payload()}],
        })
        assert envelope["ok"] is True
        assert isinstance(envelope["result"], list)

    def test_stream_invalid_request_is_typed_400(self, service):
        _, client = service
        with pytest.raises(ServiceError) as excinfo:
            list(client.stream_payload({
                "type": "batch", "stream": "yes", "points": [],
            }))
        assert excinfo.value.status == 400


class TestTornadoRoute:
    def test_tornado_sorted_and_stored(self, service):
        _, client = service
        first = client.tornado(design_payload(), workload="none")
        swings = [abs(f["swing_kg"]) for f in first["result"]["factors"]]
        assert swings == sorted(swings, reverse=True)
        assert first["cache"] == "computed"
        again = client.tornado(design_payload(), workload="none")
        assert again["cache"] == "store"
        assert again["result"] == first["result"]

    def test_tornado_backend_factor_sets_differ(self, service):
        _, client = service
        ours = client.tornado(design_payload(), workload="none")["result"]
        act = client.tornado(
            design_payload(), workload="none", backend="act"
        )["result"]
        assert act["backend"] == "act"
        assert {f["factor"] for f in act["factors"]} != \
            {f["factor"] for f in ours["factors"]}

    def test_tornado_matches_in_process_study(self, service):
        _, client = service
        from repro.analysis.sensitivity import tornado

        served = client.tornado(design_payload(), workload="none")["result"]
        local = tornado(design_from_dict(design_payload()), workload=None)
        assert [f["factor"] for f in served["factors"]] == \
            [r.factor for r in local]
        assert served["factors"][0]["swing_kg"] == \
            pytest.approx(local[0].swing_kg)
