"""Case-study framework tests (validation, DRIVE, Table 5, sweeps)."""

import pytest

from repro import ParameterSet, Workload
from repro.errors import ParameterError
from repro.studies.decision import TABLE5_OPTIONS, table5_study
from repro.studies.drive import (
    FIG5_OPTIONS,
    drive_2d_design,
    drive_design,
    drive_study,
)
from repro.studies.sweep import (
    format_sweep,
    sweep_die_counts,
    sweep_fab_locations,
    sweep_integrations,
    sweep_wafer_diameters,
)
from repro.studies.validation import (
    epyc_2d_equivalent_design,
    epyc_7452_design,
    lakefield_design,
)

PARAMS = ParameterSet.default()


class TestValidationDesigns:
    def test_epyc_structure(self):
        design = epyc_7452_design()
        assert design.die_count == 5
        assert design.integration == "mcm"
        nodes = {die.node for die in design.dies}
        assert nodes == {"7nm", "14nm"}
        design.validate(PARAMS)

    def test_epyc_package_area(self):
        assert epyc_7452_design().package.area_mm2 == pytest.approx(
            58.5 * 75.4
        )

    def test_epyc_2d_equivalent_total_area(self):
        design = epyc_2d_equivalent_design()
        assert design.dies[0].area_mm2 == pytest.approx(4 * 74.0 + 416.0)

    def test_lakefield_structure(self):
        design = lakefield_design()
        assert design.die_count == 2
        assert design.integration == "micro_3d"
        assert design.dies[0].area_mm2 == 92.0  # base die at the bottom
        assert design.dies[1].area_mm2 == 82.0
        design.validate(PARAMS)


class TestDriveDesigns:
    def test_2d_design_from_table4(self):
        design = drive_2d_design("ORIN")
        assert design.dies[0].gate_count == 17e9
        assert design.throughput_tops == 254.0
        assert design.dies[0].node == "7nm"

    def test_unknown_device_rejected(self):
        with pytest.raises(ParameterError):
            drive_2d_design("PEGASUS")

    def test_option_produces_validating_design(self):
        for label, _, _ in FIG5_OPTIONS:
            design = drive_design("ORIN", label, "homogeneous")
            design.validate(PARAMS)

    def test_unknown_option_rejected(self):
        with pytest.raises(ParameterError):
            drive_design("ORIN", "CoWoS-Z")

    def test_unknown_approach_rejected(self):
        with pytest.raises(ParameterError):
            drive_design("ORIN", "EMIB", approach="diagonal")

    def test_info_flavours_differ(self):
        chip_first = drive_design("ORIN", "InFO_1")
        chip_last = drive_design("ORIN", "InFO_2")
        assert chip_first.assembly != chip_last.assembly

    def test_heterogeneous_uses_28nm(self):
        design = drive_design("ORIN", "Hybrid", "heterogeneous")
        assert {die.node for die in design.dies} == {"7nm", "28nm"}


class TestDriveStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return drive_study("homogeneous", devices=["ORIN"])

    def test_grid_shape(self, study):
        assert len(study.cells) == len(FIG5_OPTIONS)
        assert study.devices() == ["ORIN"]

    def test_cell_lookup(self, study):
        cell = study.cell("ORIN", "2D")
        assert cell.report.integration == "2d"

    def test_missing_cell_raises(self, study):
        with pytest.raises(ParameterError):
            study.cell("ORIN", "CoWoS")

    def test_table_renders(self, study):
        table = study.format_table()
        assert "Fig. 5" in table
        assert "ORIN" in table
        assert "NO" in table  # MCM/InFO invalid

    def test_custom_workload(self):
        light = Workload.from_activity("light", 10.0, 0.1, 10.0)
        study = drive_study("homogeneous", workload=light, devices=["ORIN"])
        heavy = drive_study("homogeneous", devices=["ORIN"])
        assert (study.cell("ORIN", "2D").report.operational_kg
                < heavy.cell("ORIN", "2D").report.operational_kg)


class TestTable5Study:
    @pytest.fixture(scope="class")
    def result(self):
        return table5_study()

    def test_all_options_present(self, result):
        assert {row.option for row in result.rows} == set(TABLE5_OPTIONS)

    def test_all_alternatives_valid(self, result):
        """Table 5 only contains the five valid designs."""
        for row in result.rows:
            assert row.report.valid, row.option

    def test_baseline_is_2d(self, result):
        assert result.baseline.integration == "2d"

    def test_unknown_row_raises(self, result):
        with pytest.raises(KeyError):
            result.row("CoWoS")

    def test_table_renders(self, result):
        text = result.format_table()
        assert "Tc (y)" in text and "Tr (y)" in text


class TestSweeps:
    def test_integration_sweep_covers_all(self, orin_2d):
        points = sweep_integrations(orin_2d)
        assert len(points) == 8
        assert points[0].label == "2d"

    def test_integration_sweep_subset(self, orin_2d):
        points = sweep_integrations(orin_2d, ["2d", "m3d"])
        assert [p.label for p in points] == ["2d", "m3d"]

    def test_die_count_sweep_monotone_labels(self, orin_2d):
        points = sweep_die_counts(orin_2d, "mcm", [2, 3, 4])
        assert [p.label for p in points] == ["2 dies", "3 dies", "4 dies"]

    def test_die_count_respects_max_dies(self, orin_2d):
        points = sweep_die_counts(orin_2d, "m3d", [2, 3, 4])
        assert len(points) == 1  # M3D caps at 2 tiers

    def test_die_count_rejects_2d(self, orin_2d):
        with pytest.raises(ParameterError):
            sweep_die_counts(orin_2d, "2d")

    def test_wafer_sweep_monotone(self, orin_2d):
        points = sweep_wafer_diameters(orin_2d, [200.0, 300.0, 450.0])
        totals = [p.report.embodied_kg for p in points]
        assert totals[0] > totals[1] > totals[2]

    def test_fab_location_sweep_monotone(self, orin_2d):
        points = sweep_fab_locations(orin_2d, ["iceland", "taiwan", "india"])
        totals = [p.report.embodied_kg for p in points]
        assert totals[0] < totals[1] < totals[2]

    def test_format_sweep(self, orin_2d):
        text = format_sweep(
            sweep_wafer_diameters(orin_2d, [300.0]), title="wafer"
        )
        assert "wafer" in text and "300 mm" in text


class TestEngineRoutedStudies:
    """drive_study / table5_study route through BatchEvaluator — the
    results must stay bit-identical to the per-design CarbonModel path."""

    def test_drive_study_matches_scalar_path(self):
        from repro.core.model import CarbonModel
        from repro.studies.drive import FIG5_OPTIONS, drive_design

        workload = Workload.autonomous_vehicle()
        result = drive_study(approach="homogeneous", devices=["ORIN"])
        assert len(result.cells) == len(FIG5_OPTIONS)
        for cell in result.cells:
            design = drive_design("ORIN", cell.option, "homogeneous")
            reference = CarbonModel(design, fab_location="taiwan").evaluate(
                workload
            )
            assert cell.report == reference

    def test_drive_study_shares_an_external_evaluator(self):
        from repro.engine import BatchEvaluator

        evaluator = BatchEvaluator()
        first = drive_study(approach="homogeneous", devices=["ORIN"],
                            evaluator=evaluator)
        points_after_first = evaluator.stats.points_evaluated
        second = drive_study(approach="homogeneous", devices=["ORIN"],
                             evaluator=evaluator)
        # The repeat is served entirely from the evaluator's memos.
        assert evaluator.stats.resolve_misses <= points_after_first
        assert [c.report for c in second.cells] == [
            c.report for c in first.cells
        ]

    def test_table5_matches_scalar_path(self):
        from repro.core.model import CarbonModel
        from repro.studies.decision import TABLE5_OPTIONS, table5_study
        from repro.studies.drive import drive_design

        workload = Workload.autonomous_vehicle()
        result = table5_study()
        baseline = CarbonModel(
            drive_design("ORIN", "2D"), fab_location="taiwan"
        ).evaluate(workload)
        assert result.baseline == baseline
        assert len(result.rows) == len(TABLE5_OPTIONS)
        for row in result.rows:
            design = drive_design("ORIN", row.option, approach="homogeneous")
            reference = CarbonModel(design, fab_location="taiwan").evaluate(
                workload
            )
            assert row.report == reference
