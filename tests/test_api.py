"""The Session/Study facade: location transparency, streaming, auth.

The acceptance bar of the facade PR lives here: every study kind
(evaluate / batch / sweep / monte_carlo / compare / tornado) produces
**bit-identical payloads** through ``Session(executor="local")`` and
``Session(executor="service")``, and ``StudyHandle.partial()`` streams
batch/sweep points from the service as they finish — order- and
completeness-tested — plus the shared-secret token auth paths and the
client's bounded-backoff retry behaviour.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.api import Result, ResultSet, Session, StudyError, StudySpec
from repro.core.design import ChipDesign
from repro.errors import ParameterError
from repro.service import ServiceClient, ServiceError, make_server


def reference_design() -> ChipDesign:
    return ChipDesign.planar_2d(
        "api_soc_2d", node="7nm", gate_count=17e9, throughput_tops=254.0,
        efficiency_tops_per_w=2.74,
    )


def stacked_design() -> ChipDesign:
    return ChipDesign.homogeneous_split(reference_design(), "hybrid_3d")


def all_study_specs() -> "dict[str, StudySpec]":
    """One spec per study kind (small draw counts: these run twice)."""
    reference = reference_design()
    stacked = stacked_design()
    return {
        "evaluate": StudySpec.evaluate(stacked, label="hybrid"),
        "batch": StudySpec.batch(
            [stacked, reference, stacked]  # duplicate → dedup parity too
        ),
        "sweep": StudySpec.sweep(
            reference, integrations=["2d", "hybrid_3d", "mcm"],
            fab_locations=["taiwan", "iceland"], workload="none",
        ),
        "monte_carlo": StudySpec.monte_carlo(
            stacked, samples=16, return_samples=True
        ),
        "compare": StudySpec.compare(
            stacked, backends=["repro3d", "act", "lca"], draws=8
        ),
        "tornado": StudySpec.tornado(stacked, workload="none"),
        "optimize": StudySpec.optimize(
            reference, integrations=["hybrid_3d", "mcm"], die_counts=[2],
            wafer_diameters_mm=[300.0, 450.0],
            fab_locations=["taiwan", "iceland"],
            max_configs=24, chunk=10, seed=11,
        ),
    }


@pytest.fixture()
def service_session():
    """A running (fresh) server and a Session speaking to it."""
    server = make_server()
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield Session(executor="service", url=server.url)
    finally:
        server.close()
        thread.join(timeout=5.0)


class TestStudySpec:
    def test_payload_round_trip_every_kind(self):
        for kind, spec in all_study_specs().items():
            payload = spec.to_payload()
            assert StudySpec.from_payload(payload) == spec, kind
            # Wire payloads are pure JSON.
            assert json.loads(json.dumps(payload)) == payload, kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ParameterError, match="unknown study kind"):
            StudySpec(kind="voodoo")
        with pytest.raises(ParameterError, match="unknown study payload"):
            StudySpec.from_payload({"type": "voodoo"})

    def test_batch_points_accept_designs_records_and_specs(self):
        stacked = stacked_design()
        spec = StudySpec.batch([
            stacked,
            {"design": {"name": "x"}, "workload": "none"},
            StudySpec.evaluate(stacked, label="pt", backend="act"),
        ])
        assert len(spec.points) == 3
        assert spec.points[1]["workload"] == "none"
        assert spec.points[2]["backend"] == "act"
        with pytest.raises(ParameterError, match="at least one point"):
            StudySpec.batch([])

    def test_default_backend_fills_only_unset(self):
        stacked = stacked_design()
        spec = StudySpec.evaluate(stacked).with_default_backend("act")
        assert spec.backend == "act"
        explicit = StudySpec.evaluate(stacked, backend="lca")
        assert explicit.with_default_backend("act").backend == "lca"
        batch = StudySpec.batch(
            [stacked, StudySpec.evaluate(stacked, backend="lca")]
        ).with_default_backend("act")
        assert [point.get("backend") for point in batch.points] == \
            ["act", "lca"]
        compare = StudySpec.compare(stacked)
        assert compare.with_default_backend("act") is compare


class TestLocalServiceParity:
    def test_every_study_kind_bit_identical(self, service_session):
        """The PR's acceptance criterion, end to end."""
        local = Session()
        for kind, spec in all_study_specs().items():
            local_payload = local.run(spec).to_payload()
            served_payload = service_session.run(spec).to_payload()
            assert local_payload == served_payload, kind

    def test_streamed_and_enveloped_sweep_agree(self, service_session):
        spec = all_study_specs()["sweep"]
        streamed = service_session.submit(spec).result()
        local = Session().run(spec)
        assert streamed.to_payload() == local.to_payload()

    def test_streamed_and_enveloped_optimize_agree(self, service_session):
        """The tentpole's wire parity: the NDJSON ``/optimize`` stream's
        final snapshot assembles to the very payload the envelope
        returns, and both match the local engine bit for bit."""
        spec = all_study_specs()["optimize"]
        local = Session().run(spec).to_payload()
        handle = service_session.submit(spec)
        snapshots = [r.to_payload() for r in handle.partial()]
        assert handle.result().to_payload() == local
        assert service_session.run(spec).to_payload() == local
        # One running-front snapshot per evaluated chunk, cumulative.
        assert [s["chunk"] for s in snapshots] == list(
            range(1, local["chunks"] + 1)
        )
        assert snapshots[-1]["front"] == local["front"]

    def test_schema_errors_are_location_transparent(self, service_session):
        from repro.io.designs import design_to_dict

        payload = {"schema": 1, "type": "montecarlo",
                   "design": design_to_dict(stacked_design()), "samples": 1}
        local_error = service_error = None
        try:
            Session().run(payload)
        except Exception as error:
            local_error = error
        try:
            service_session.run(payload)
        except Exception as error:
            service_error = error
        # Same typed complaint either way (the service wraps it in a
        # ServiceError carrying the original type name).
        assert "samples" in str(local_error)
        assert "samples" in str(service_error)
        assert type(local_error).__name__ == service_error.error_type


class TestSessionResults:
    def test_result_accessors(self):
        session = Session()
        point = session.evaluate(stacked_design())
        assert point.total_kg == pytest.approx(
            point.embodied_kg + point.operational_kg
        )
        assert point.valid is True
        assert point["integration"] == "hybrid_3d"
        assert point.get("missing", 42) == 42
        assert "kg CO2e" in point.summary()

    def test_resultset_access_by_label_and_index(self):
        session = Session()
        result = session.sweep(
            reference_design(), integrations=["2d", "mcm"], workload="none"
        )
        assert len(result) == 2
        assert result.labels == ["2d@taiwan", "mcm@taiwan"]
        assert result["mcm@taiwan"].payload == result[1].payload
        with pytest.raises(KeyError):
            result["nope"]
        assert all(total > 0 for total in result.totals_kg)

    def test_session_default_backend(self):
        session = Session(backend="act")
        report = session.evaluate(stacked_design(), workload="none")
        assert report["backend"] == "act"

    def test_monte_carlo_return_samples(self):
        session = Session()
        result = session.monte_carlo(
            stacked_design(), samples=16, return_samples=True
        )
        assert len(result["samples_kg"]) == 16

    def test_local_session_rejects_service_arguments(self):
        with pytest.raises(ParameterError, match="service"):
            Session(url="http://example.invalid")
        with pytest.raises(ParameterError, match="local"):
            Session(executor="service", store_path="x.sqlite3")
        with pytest.raises(ParameterError, match="executor"):
            Session(executor="carrier-pigeon")

    def test_service_session_has_no_native_path(self, service_session):
        with pytest.raises(ParameterError, match="local"):
            service_session.report(stacked_design())
        with pytest.raises(ParameterError, match="local"):
            _ = service_session.evaluator

    def test_sync_run_of_stream_spec_returns_envelope(
        self, service_session
    ):
        """A ``stream: true`` spec run synchronously must not choke on
        NDJSON — ``run()`` strips the transport flag (submit streams)."""
        payload = StudySpec.batch([stacked_design()]).to_payload()
        payload["stream"] = True
        result = service_session.run(payload)
        assert isinstance(result, ResultSet)
        assert len(result) == 1

    def test_concurrent_submits_share_one_dispatcher(self, tmp_path):
        session = Session(store_path=str(tmp_path / "store.sqlite3"))
        handles = [
            session.submit(StudySpec.batch([stacked_design()]))
            for _ in range(4)
        ]
        for handle in handles:
            assert len(handle.result()) == 1
        # The lazy-init race guard: every worker thread must have landed
        # on the same dispatcher (and the same store handle).
        assert session.dispatcher.stats.requests == 4

    def test_service_session_rejects_client_plus_url(self, service_session):
        with pytest.raises(ParameterError, match="not both"):
            Session(executor="service", client=service_session.client,
                    url="http://other.invalid")

    def test_local_store_serves_across_sessions(self, tmp_path):
        store = str(tmp_path / "store.sqlite3")
        with Session(store_path=store) as first:
            a = first.evaluate(stacked_design())
            assert a.cache == "computed"
        with Session(store_path=store) as second:
            b = second.evaluate(stacked_design())
        assert b.cache == "store"
        assert b.to_payload() == a.to_payload()


class TestStudyHandle:
    def test_partial_streams_in_order_local_and_service(
        self, service_session
    ):
        spec = StudySpec.sweep(
            reference_design(),
            integrations=["2d", "hybrid_3d", "mcm", "emib"],
            workload="none",
        )
        for session in (Session(), service_session):
            handle = session.submit(spec)
            seen = list(handle.partial())
            assert [point.index for point in seen] == [0, 1, 2, 3]
            assert [point.label for point in seen] == [
                "2d@taiwan", "hybrid_3d@taiwan", "mcm@taiwan", "emib@taiwan",
            ]
            result = handle.result()
            assert handle.done()
            assert isinstance(result, ResultSet)
            assert [r.payload for r in result] == \
                [p.payload for p in seen]

    def test_partial_complete_after_done(self):
        session = Session()
        handle = session.submit(StudySpec.batch(
            [stacked_design(), reference_design()]
        ))
        handle.result()  # wait for completion first
        replay = list(handle.partial())  # late iterator sees everything
        assert len(replay) == 2
        assert all(isinstance(point, Result) for point in replay)

    def test_single_result_kinds_yield_once(self):
        session = Session()
        handle = session.submit(StudySpec.monte_carlo(
            stacked_design(), samples=8
        ))
        values = list(handle.partial())
        assert len(values) == 1
        assert values[0].payload == handle.result().payload

    def test_failed_study_raises_study_error(self):
        session = Session()
        handle = session.submit({
            "schema": 1, "type": "evaluate",
            "design": {"name": "broken", "integration": "warp_drive",
                       "dies": []},
        })
        with pytest.raises(StudyError):
            handle.result()
        with pytest.raises(StudyError):
            list(handle.partial())
        assert handle.done()

    def test_result_timeout(self):
        session = Session()
        handle = session.submit(StudySpec.monte_carlo(
            stacked_design(), samples=512
        ))
        with pytest.raises(TimeoutError):
            handle.result(timeout=0.0)
        assert handle.result(timeout=60.0) is not None


class TestTokenAuth:
    @pytest.fixture()
    def secured(self):
        server = make_server(token="hunter2")
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            yield server
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_missing_token_is_typed_401(self, secured):
        session = Session(executor="service", url=secured.url)
        with pytest.raises(ServiceError) as excinfo:
            session.evaluate(stacked_design())
        assert excinfo.value.status == 401
        assert excinfo.value.error_type == "AuthError"

    def test_wrong_token_is_401_and_stats_protected(self, secured):
        client = ServiceClient(secured.url, token="*******")
        with pytest.raises(ServiceError) as excinfo:
            client.stats()
        assert excinfo.value.status == 401

    def test_healthz_stays_open(self, secured):
        health = ServiceClient(secured.url).healthz()
        assert health["status"] == "ok"
        assert health["auth"] is True

    def test_matching_token_serves_every_kind(self, secured):
        session = Session(executor="service", url=secured.url,
                          token="hunter2")
        local = Session()
        spec = StudySpec.evaluate(stacked_design())
        assert session.run(spec).to_payload() == local.run(spec).to_payload()
        # Streaming passes the token too.
        handle = session.submit(StudySpec.batch([stacked_design()]))
        assert len(list(handle.partial())) == 1


class TestClientRetries:
    def _flaky_send(self, monkeypatch, failures: "list[Exception]"):
        """Patch the transport seam to raise queued failures, then pass."""
        calls = {"n": 0}
        real = ServiceClient._send

        def fake(self, conn, method, path, body, headers):
            calls["n"] += 1
            if failures:
                raise failures.pop(0)
            return real(self, conn, method, path, body, headers)

        monkeypatch.setattr(ServiceClient, "_send", fake)
        return calls

    def test_get_retries_any_transport_error(
        self, service_session, monkeypatch
    ):
        client = service_session.client
        client.backoff_s = 0.001
        calls = self._flaky_send(monkeypatch, [
            OSError("temporarily unreachable"),
            ConnectionRefusedError("refused"),
        ])
        assert client.healthz()["status"] == "ok"
        assert calls["n"] == 3

    def test_post_retries_connection_refused_only(
        self, service_session, monkeypatch
    ):
        client = service_session.client
        client.backoff_s = 0.001
        calls = self._flaky_send(monkeypatch, [
            ConnectionRefusedError("warming up"),
        ])
        envelope = client.evaluate(stacked_design())
        assert envelope["result"]["total_kg"] > 0
        assert calls["n"] == 2

        calls = self._flaky_send(monkeypatch, [
            OSError("mid-flight failure"),
        ])
        with pytest.raises(ServiceError, match="cannot reach"):
            client.evaluate(stacked_design())
        assert calls["n"] == 1  # a non-refused POST must not resend

    def test_retry_budget_is_bounded(self, monkeypatch):
        client = ServiceClient("http://127.0.0.1:9", retries=2,
                               backoff_s=0.001)
        calls = self._flaky_send(monkeypatch, [
            ConnectionRefusedError("down") for _ in range(10)
        ])
        with pytest.raises(ServiceError, match="cannot reach"):
            client.evaluate(stacked_design())
        assert calls["n"] == 3  # first try + 2 retries, then give up

    def test_stale_pooled_socket_reconnects_free(self, service_session):
        """A server-closed keep-alive socket costs no retry attempt."""
        import socket as socket_mod

        client = service_session.client
        assert client.healthz()["status"] == "ok"  # park a pooled conn
        assert len(client.pool._idle) >= 1
        # Sever the pooled socket the way a restarting server would:
        # shutdown makes the next reuse fail with a stale-socket error
        # (broken pipe / empty status line), not a fresh-connect error.
        for conn in client.pool._idle:
            if conn.sock is not None:
                conn.sock.shutdown(socket_mod.SHUT_RDWR)
        before = client.retries
        client.retries = 0  # stale-socket recovery must not need retries
        try:
            envelope = client.evaluate(stacked_design())
        finally:
            client.retries = before
        assert envelope["result"]["total_kg"] > 0

    def test_keep_alive_reuses_one_connection(self, service_session):
        client = service_session.client
        client.healthz()
        assert len(client.pool._idle) == 1
        conn = client.pool._idle[0]
        client.healthz()
        assert client.pool._idle == [conn]  # same socket, round-tripped
