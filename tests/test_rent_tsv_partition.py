"""TSV-count and gate-partitioning tests."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ParameterError
from repro.rent.partition import (
    GatePartition,
    heterogeneous_partitions,
    homogeneous_partitions,
    partition_gate_total,
)
from repro.rent.tsv import (
    bisection_terminal_count,
    f2b_tsv_count,
    f2f_tsv_count,
    miv_area_mm2,
    rent_terminal_count,
    tsv_area_mm2,
)


class TestRentTerminals:
    def test_power_law(self):
        assert rent_terminal_count(1e6, 0.6, 4.0) == pytest.approx(
            4.0 * 1e6**0.6
        )

    def test_monotone_in_gate_count(self):
        assert rent_terminal_count(1e8, 0.6) > rent_terminal_count(1e6, 0.6)

    def test_rejects_bad_exponent(self):
        with pytest.raises(ParameterError):
            rent_terminal_count(1e6, 1.2)

    def test_rejects_zero_gates(self):
        with pytest.raises(ParameterError):
            rent_terminal_count(0, 0.6)

    def test_bisection_is_half_block_terminals(self):
        assert bisection_terminal_count(1e6, 0.6) == pytest.approx(
            rent_terminal_count(5e5, 0.6)
        )


class TestTsvCounts:
    def test_f2b_uses_rent(self):
        assert f2b_tsv_count(1e9, 0.62) == pytest.approx(
            rent_terminal_count(1e9, 0.62)
        )

    def test_f2f_uses_io_count(self):
        assert f2f_tsv_count(3000.0) == 3000.0

    def test_f2f_default(self):
        assert f2f_tsv_count() > 0

    def test_f2f_far_fewer_than_f2b(self):
        """F2F only needs external-I/O TSVs (Sec. 3.2.1)."""
        assert f2f_tsv_count() < f2b_tsv_count(1e9, 0.62) / 10.0

    def test_f2f_rejects_negative(self):
        with pytest.raises(ParameterError):
            f2f_tsv_count(-1.0)


class TestTsvArea:
    def test_keepout_square(self):
        # 1000 TSVs of 10 µm at 2.5× keep-out: 1000 · 25² µm² = 0.625 mm²
        assert tsv_area_mm2(1000, 10.0, 2.5) == pytest.approx(0.625)

    def test_zero_count(self):
        assert tsv_area_mm2(0, 5.0) == 0.0

    def test_larger_tsv_more_area(self):
        assert tsv_area_mm2(100, 25.0) > tsv_area_mm2(100, 0.3)

    def test_rejects_sub_unity_keepout(self):
        with pytest.raises(ParameterError):
            tsv_area_mm2(100, 5.0, 0.5)

    def test_miv_negligible_vs_tsv(self):
        """MIVs (<0.6 µm) consume ~1000× less area than 10 µm TSVs."""
        assert miv_area_mm2(1e6, 0.5) < tsv_area_mm2(1e6, 10.0) / 100.0

    def test_miv_rejects_large_via(self):
        with pytest.raises(ParameterError):
            miv_area_mm2(100, 5.0)


class TestPartitions:
    def test_homogeneous_two_way(self):
        parts = homogeneous_partitions(10e9, 2)
        assert len(parts) == 2
        assert all(p.gate_count == 5e9 for p in parts)
        assert sum(p.workload_share for p in parts) == pytest.approx(1.0)

    def test_homogeneous_conserves_gates(self):
        parts = homogeneous_partitions(17e9, 3)
        assert partition_gate_total(parts) == pytest.approx(17e9)

    def test_homogeneous_rejects_single(self):
        with pytest.raises(ParameterError):
            homogeneous_partitions(1e9, 1)

    def test_heterogeneous_structure(self):
        logic, memory = heterogeneous_partitions(10e9, 0.2)
        assert logic.gate_count == pytest.approx(8e9)
        assert memory.gate_count == pytest.approx(2e9)
        assert memory.is_memory and not logic.is_memory
        assert logic.workload_share == 1.0
        assert memory.workload_share == 0.0

    def test_heterogeneous_conserves_gates(self):
        parts = heterogeneous_partitions(17e9, 0.15)
        assert partition_gate_total(parts) == pytest.approx(17e9)

    def test_heterogeneous_memory_must_be_minority(self):
        """The paper's memory die is smaller than the logic die."""
        with pytest.raises(ParameterError):
            heterogeneous_partitions(1e9, 0.6)

    def test_partition_validation(self):
        with pytest.raises(ParameterError):
            GatePartition(-1.0, 0.5)
        with pytest.raises(ParameterError):
            GatePartition(1e9, 1.5)

    @given(
        gates=st.floats(min_value=1e6, max_value=1e11),
        n=st.integers(min_value=2, max_value=8),
    )
    @settings(max_examples=100, deadline=None)
    def test_homogeneous_conservation_property(self, gates, n):
        parts = homogeneous_partitions(gates, n)
        assert partition_gate_total(parts) == pytest.approx(gates)
        assert sum(p.workload_share for p in parts) == pytest.approx(1.0)

    @given(
        gates=st.floats(min_value=1e6, max_value=1e11),
        frac=st.floats(min_value=0.01, max_value=0.49),
    )
    @settings(max_examples=100, deadline=None)
    def test_heterogeneous_conservation_property(self, gates, frac):
        parts = heterogeneous_partitions(gates, frac)
        assert partition_gate_total(parts) == pytest.approx(gates)
