"""CLI tests (argument parsing, JSON schema, study subcommands)."""

import json

import pytest

from repro.cli import build_parser, design_from_dict, main


@pytest.fixture()
def design_json(tmp_path):
    data = {
        "name": "cli_chip",
        "integration": "hybrid_3d",
        "stacking": "f2f",
        "assembly": "d2w",
        "package": {"class": "fcbga"},
        "throughput_tops": 254.0,
        "dies": [
            {"name": "top", "node": "7nm", "gate_count": 8.5e9,
             "workload_share": 0.5, "efficiency_tops_per_w": 2.74},
            {"name": "bottom", "node": "7nm", "gate_count": 8.5e9,
             "workload_share": 0.5, "efficiency_tops_per_w": 2.74},
        ],
    }
    path = tmp_path / "design.json"
    path.write_text(json.dumps(data))
    return path


class TestDesignFromDict:
    def test_full_schema(self, design_json):
        data = json.loads(design_json.read_text())
        design = design_from_dict(data)
        assert design.name == "cli_chip"
        assert design.die_count == 2
        assert design.integration == "hybrid_3d"

    def test_minimal_2d(self):
        design = design_from_dict(
            {"name": "mini", "dies": [{"name": "d", "node": "7nm",
                                       "area_mm2": 100.0}]}
        )
        assert design.integration == "2d"
        assert design.dies[0].area_mm2 == 100.0


class TestCommands:
    def test_evaluate_text(self, design_json, capsys):
        assert main(["evaluate", str(design_json)]) == 0
        out = capsys.readouterr().out
        assert "cli_chip" in out
        assert "total" in out

    def test_evaluate_json(self, design_json, capsys):
        assert main(["evaluate", str(design_json), "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        assert data["design"] == "cli_chip"
        assert data["valid"] is True

    def test_evaluate_without_workload(self, design_json, capsys):
        assert main(
            ["evaluate", str(design_json), "--workload", "none", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        assert "operational" not in data

    def test_validate_epyc(self, capsys):
        assert main(["validate-epyc"]) == 0
        out = capsys.readouterr().out
        assert "EPYC" in out and "LCA" in out and "ACT+" in out

    def test_validate_lakefield(self, capsys):
        assert main(["validate-lakefield"]) == 0
        out = capsys.readouterr().out
        assert "89.3%" in out and "W2W" in out

    def test_table5(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out
        assert "M3D" in out

    def test_nodes(self, capsys):
        assert main(["nodes"]) == 0
        assert "7nm" in capsys.readouterr().out

    def test_technologies(self, capsys):
        assert main(["technologies"]) == 0
        out = capsys.readouterr().out
        assert "si_interposer" in out

    def test_fab_location_flag(self, design_json, capsys):
        assert main(
            ["--fab-location", "iceland", "evaluate", str(design_json),
             "--json"]
        ) == 0
        clean = json.loads(capsys.readouterr().out)["embodied_kg"]
        assert main(["evaluate", str(design_json), "--json"]) == 0
        default = json.loads(capsys.readouterr().out)["embodied_kg"]
        assert clean < default

    def test_error_reported(self, tmp_path, capsys):
        bad = tmp_path / "bad.json"
        bad.write_text(json.dumps({"name": "x", "dies": [
            {"name": "d", "node": "9nm", "area_mm2": 10.0}]}))
        assert main(["evaluate", str(bad)]) == 1
        assert "error" in capsys.readouterr().err

    def test_parser_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestAnalysisCommands:
    @pytest.fixture()
    def reference_json(self, tmp_path):
        data = {
            "name": "ref_2d",
            "throughput_tops": 254.0,
            "dies": [{"name": "die", "node": "7nm", "gate_count": 17e9,
                      "efficiency_tops_per_w": 2.74}],
        }
        path = tmp_path / "ref.json"
        path.write_text(json.dumps(data))
        return path

    def test_search(self, reference_json, capsys):
        assert main(["search", str(reference_json)]) == 0
        out = capsys.readouterr().out
        assert "best valid configuration: m3d" in out

    def test_sensitivity(self, design_json, capsys):
        assert main(["sensitivity", str(design_json)]) == 0
        out = capsys.readouterr().out
        assert "defect_density" in out

    def test_export_table5_csv(self, tmp_path, capsys):
        out_path = tmp_path / "t5.csv"
        assert main(["export", "table5", str(out_path)]) == 0
        content = out_path.read_text()
        assert "embodied_save_pct" in content
        assert "M3D" in content

    def test_export_drive_json(self, tmp_path, capsys):
        out_path = tmp_path / "drive.json"
        assert main(["export", "drive", str(out_path)]) == 0
        rows = json.loads(out_path.read_text())
        assert len(rows) == 36


class TestOptimizeCommand:
    ARGS = [
        "--integrations", "hybrid_3d,mcm", "--die-counts", "2",
        "--wafers", "300,450", "--locations", "taiwan,iceland",
        "--max-configs", "24", "--chunk", "10", "--seed", "11",
    ]

    def test_builtin_drive_reference_text(self, capsys):
        assert main(["optimize", "orin", *self.ARGS]) == 0
        out = capsys.readouterr().out
        assert "Pareto front — ORIN_2D" in out
        assert "total_kg min, performance_tops max, cost_mm2 min" in out
        assert "non-dominated configurations" in out

    def test_json_payload_and_stream_agree(self, capsys):
        assert main(["optimize", "orin", "--json", *self.ARGS]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["evaluated"] == 24
        assert payload["front_size"] == len(payload["front"])
        assert payload["front_size"] >= 1
        # --stream prints chunk progress to stderr; the final JSON
        # payload must be identical to the synchronous run's.
        assert main(["optimize", "orin", "--json", "--stream",
                     *self.ARGS]) == 0
        captured = capsys.readouterr()
        assert json.loads(captured.out) == payload
        assert "chunk" in captured.err

    def test_design_json_path(self, tmp_path, capsys):
        data = {
            "name": "opt_ref",
            "throughput_tops": 254.0,
            "dies": [{"name": "die", "node": "7nm", "gate_count": 17e9,
                      "efficiency_tops_per_w": 2.74}],
        }
        path = tmp_path / "ref.json"
        path.write_text(json.dumps(data))
        assert main(["optimize", str(path), *self.ARGS]) == 0
        assert "Pareto front — opt_ref" in capsys.readouterr().out

    def test_unknown_reference_is_typed_error(self, capsys):
        assert main(["optimize", "no_such_device_or_file.json"]) == 1
        assert "error:" in capsys.readouterr().err


class TestServiceCommands:
    def test_serve_parser_defaults(self):
        args = build_parser().parse_args(["serve"])
        assert args.port == 8787
        assert args.store == "carbon3d_store.sqlite3"
        assert args.no_store is False

    def test_bench_parser_service_flag(self):
        args = build_parser().parse_args(["bench", "--service"])
        assert args.service is True
        assert args.output is None

    def test_submit_roundtrip(self, design_json, tmp_path, capsys):
        import threading

        from repro.service.server import make_server

        server = make_server(store_path=str(tmp_path / "store.sqlite3"))
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            assert main(
                ["submit", str(design_json), "--url", server.url]
            ) == 0
            out = capsys.readouterr().out
            assert "cli_chip" in out
            assert "served from   : computed" in out
            # Second submission hits the persistent store.
            assert main(
                ["submit", str(design_json), "--url", server.url, "--json"]
            ) == 0
            data = json.loads(capsys.readouterr().out)
            assert data["design"] == "cli_chip"
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_submit_unreachable_is_typed_error(self, design_json, capsys):
        assert main(
            ["submit", str(design_json), "--url", "http://127.0.0.1:9",
             "--timeout", "2"]
        ) == 1
        assert "error" in capsys.readouterr().err


class TestCompareCommand:
    def test_compare_local_with_draws(self, design_json, capsys):
        assert main(["compare", str(design_json), "--draws", "12"]) == 0
        out = capsys.readouterr().out
        assert "cross-model comparison" in out
        assert "uncertainty (each backend draws its own factor set)" in out
        assert "p95" in out

    def test_compare_json_includes_bands(self, design_json, capsys):
        assert main(
            ["compare", str(design_json), "--draws", "10",
             "--backends", "repro3d,act", "--json"]
        ) == 0
        data = json.loads(capsys.readouterr().out)
        rows = data["backends"]
        assert [row["backend"] for row in rows] == ["repro3d", "act"]
        assert rows[0]["report"]["total_kg"] > 0
        assert rows[0]["uncertainty"]["samples"] == 10
        assert rows[0]["uncertainty"]["p05_kg"] < rows[0]["uncertainty"]["p95_kg"]

    def test_compare_json_shape_is_service_compatible(
        self, design_json, capsys
    ):
        """Scripts parsing `compare --json` survive adding --service."""
        import threading

        from repro.service.server import make_server

        argv = ["compare", str(design_json), "--backends", "repro3d,act",
                "--draws", "8", "--json"]
        assert main(argv) == 0
        local = json.loads(capsys.readouterr().out)
        server = make_server()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            assert main(argv + ["--service", server.url]) == 0
            served = json.loads(capsys.readouterr().out)
        finally:
            server.close()
            thread.join(timeout=5.0)
        for local_row, served_row in zip(local["backends"],
                                         served["backends"]):
            # The documented access paths agree value-for-value. (The
            # repro3d report keeps the richer classic lifecycle payload
            # server-side, so only the shared keys are compared.)
            assert local_row["backend"] == served_row["backend"]
            for key in ("embodied_kg", "total_kg"):
                assert local_row["report"][key] == served_row["report"][key]
            for key in ("samples", "base_kg", "mean_kg", "std_kg",
                        "p05_kg", "p50_kg", "p95_kg"):
                assert (
                    local_row["uncertainty"][key]
                    == served_row["uncertainty"][key]
                )

    def test_compare_service_round_trip(self, design_json, capsys):
        import threading

        from repro.service.server import make_server

        server = make_server()
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            assert main(
                ["compare", str(design_json), "--service", server.url,
                 "--backends", "repro3d,lca", "--draws", "8"]
            ) == 0
            out = capsys.readouterr().out
            assert "served by" in out
            assert "3D-Carbon" in out and "LCA" in out
            assert "p50" in out
            # --json surfaces the raw /compare payload.
            assert main(
                ["compare", str(design_json), "--service", server.url,
                 "--backends", "repro3d", "--json"]
            ) == 0
            data = json.loads(capsys.readouterr().out)
            assert data["backends"][0]["backend"] == "repro3d"
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_compare_service_unreachable_is_typed_error(
        self, design_json, capsys
    ):
        assert main(
            ["compare", str(design_json), "--service", "http://127.0.0.1:9"]
        ) == 1
        assert "error" in capsys.readouterr().err


class TestListingCommands:
    def test_backends_table(self, capsys):
        assert main(["backends"]) == 0
        out = capsys.readouterr().out
        for name in ("repro3d", "act", "act_plus", "lca", "first_order"):
            assert name in out
        assert "digest" in out

    def test_backends_json_carries_factor_digests(self, capsys):
        assert main(["backends", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        rows = {row["name"]: row for row in data["backends"]}
        assert rows["repro3d"]["operational"] is True
        assert rows["act"]["operational"] is False
        # Digests are full SHA-256 hex and shared exactly where the
        # factor sets are shared (ACT+ reuses ACT's set).
        assert len(rows["lca"]["factor_set_digest"]) == 64
        assert rows["act"]["factor_set_digest"] == \
            rows["act_plus"]["factor_set_digest"]
        assert rows["act"]["factor_set_digest"] != \
            rows["repro3d"]["factor_set_digest"]
        assert rows["repro3d"]["stages"][0] == "resolve"

    def test_studies_table_and_json(self, capsys):
        assert main(["studies"]) == 0
        out = capsys.readouterr().out
        for kind in ("evaluate", "batch", "sweep", "monte_carlo",
                     "compare", "tornado"):
            assert kind in out
        assert main(["studies", "--json"]) == 0
        data = json.loads(capsys.readouterr().out)
        kinds = {entry["kind"]: entry for entry in data["studies"]}
        assert kinds["monte_carlo"]["type"] == "montecarlo"
        assert kinds["sweep"]["route"] == "/sweep"
        assert data["schema"] == 1


class TestTokenFlow:
    def test_submit_with_token_round_trip(self, design_json, capsys):
        import threading

        from repro.service.server import make_server

        server = make_server(token="cli-secret")
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            # Wrong token: typed error, exit 1.
            assert main(
                ["submit", str(design_json), "--url", server.url,
                 "--token", "wrong"]
            ) == 1
            assert "AuthError" in capsys.readouterr().err
            # Right token: the full report comes back.
            assert main(
                ["submit", str(design_json), "--url", server.url,
                 "--token", "cli-secret"]
            ) == 0
            assert "total" in capsys.readouterr().out
            # compare --service threads the token through the facade.
            assert main(
                ["compare", str(design_json), "--service", server.url,
                 "--token", "cli-secret", "--backends", "repro3d", "--json"]
            ) == 0
            data = json.loads(capsys.readouterr().out)
            assert data["backends"][0]["backend"] == "repro3d"
        finally:
            server.close()
            thread.join(timeout=5.0)

    def test_serve_parser_accepts_token(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["serve", "--token", "s3", "--no-store"]
        )
        assert args.token == "s3"
