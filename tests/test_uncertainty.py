"""The declarative uncertainty layer: factor sets + perturbation plans.

Covers the subsystem the per-backend Monte-Carlo refactor introduced:
declarative factor specs (distributions, correlation groups, model-scoped
targets), the vectorized draw paths, each backend's own factor set (and
its distinct fingerprint), derived backends for model-scoped factors,
and bit-identical Monte-Carlo across serial/thread/process worker modes.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.sensitivity import default_factors
from repro.analysis.uncertainty import monte_carlo
from repro.baselines.first_order import first_order_estimate
from repro.baselines.lca import lca_estimate
from repro.core.design import ChipDesign
from repro.engine import BatchEvaluator
from repro.errors import BackendError, ParameterError
from repro.pipeline.registry import backend_names, get_backend
from repro.uncertainty import (
    FactorSet,
    FactorSpec,
    FactorTarget,
    PerturbationPlan,
    act_factor_set,
    draw_multipliers,
    first_order_factor_set,
    lca_factor_set,
    table2_factor_set,
)


def _spec(name="f", low=0.5, high=2.0, **kwargs) -> FactorSpec:
    target = kwargs.pop(
        "target", FactorTarget("node", ("7nm",), "epa_kwh_per_cm2")
    )
    return FactorSpec(name, low, high, target, **kwargs)


class TestFactorSpecValidation:
    def test_unknown_distribution_rejected(self):
        with pytest.raises(ParameterError, match="distribution"):
            _spec(distribution="beta")

    def test_triangular_must_straddle_one(self):
        with pytest.raises(ParameterError, match="straddle"):
            _spec(low=1.1, high=2.0)

    def test_uniform_only_needs_ordered_bounds(self):
        spec = _spec(low=1.1, high=2.0, distribution="uniform")
        assert spec.distribution == "uniform"
        with pytest.raises(ParameterError, match="low < high"):
            _spec(low=2.0, high=1.1, distribution="uniform")

    def test_model_target_has_no_params_application(self, params):
        spec = _spec(target=FactorTarget("model", ("lca",), "cpa_scale"))
        with pytest.raises(ParameterError, match="model-scoped"):
            spec.apply(params, 1.5)

    def test_target_read_scale_apply_roundtrip(self, params):
        spec = _spec()
        base = spec.target.read(params)
        perturbed = spec.apply(params, 1.25)
        assert spec.target.read(perturbed) == base * 1.25

    def test_clamp_to_one(self, params):
        target = FactorTarget(
            "integration", ("hybrid_3d",), "io_area_ratio", clamp_to_one=True
        )
        assert target.scale(0.9, 2.0) == 1.0
        assert target.scale(0.2, 2.0) == pytest.approx(0.4)


class TestFactorSetIdentity:
    def test_digest_is_stable_hex(self):
        digest = table2_factor_set().digest()
        assert digest == table2_factor_set().digest()
        assert len(digest) == 64
        int(digest, 16)

    def test_different_sets_different_digests(self):
        digests = {
            table2_factor_set().digest(),
            act_factor_set(("7nm",)).digest(),
            lca_factor_set().digest(),
            first_order_factor_set().digest(),
        }
        assert len(digests) == 4

    def test_range_change_changes_digest(self):
        loose = FactorSet("custom", (_spec(high=2.0),))
        tight = FactorSet("custom", (_spec(high=1.5),))
        assert loose.digest() != tight.digest()

    def test_coerce_wraps_lists_and_passes_sets_through(self):
        factor_set = table2_factor_set()
        assert FactorSet.coerce(factor_set) is factor_set
        wrapped = FactorSet.coerce(list(factor_set))
        assert wrapped.name == "custom"
        assert wrapped.fingerprint()[2] == factor_set.fingerprint()[2]

    def test_default_factors_shim_matches_table2(self):
        shim = default_factors(node="7nm", integration="hybrid_3d")
        table2 = list(table2_factor_set("7nm", "hybrid_3d"))
        assert [f.name for f in shim] == [f.name for f in table2]
        assert shim == table2


class TestBackendFactorSets:
    def test_every_backend_declares_a_set(self, hybrid_stack, params):
        for name in backend_names():
            factor_set = get_backend(name).factor_set(hybrid_stack, params)
            assert len(factor_set) > 0

    def test_backend_sets_have_distinct_digests(self, hybrid_stack, params):
        digests = {}
        for name in backend_names():
            digests.setdefault(
                get_backend(name).factor_set(hybrid_stack, params).digest(),
                name,
            )
        # ACT and ACT+ intentionally share one set (same parametric
        # uncertainty); everyone else declares their own.
        assert len(digests) == len(list(backend_names())) - 1

    def test_repro3d_set_is_table2(self, hybrid_stack, params):
        theirs = get_backend("repro3d").factor_set(hybrid_stack, params)
        ours = table2_factor_set(
            node=hybrid_stack.dies[0].node,
            integration=hybrid_stack.integration,
        )
        assert theirs.digest() == ours.digest()

    def test_act_set_covers_every_die_node(self, params):
        design = ChipDesign.planar_2d("epyc_ish", "14nm", area_mm2=400.0)
        names = [f.name for f in get_backend("act").factor_set(design, params)]
        assert any("14nm" in name for name in names)
        assert not any("7nm" in name for name in names)

    def test_table2_inclusion_follows_study_params(self, params):
        """Factor inclusion reads the study's own parameter set, not the
        defaults — an overridden integration spec changes the factors."""
        default_names = [f.name for f in table2_factor_set("7nm", "2d")]
        assert not any("io_area_ratio" in name for name in default_names)
        custom = params.with_integration_override("2d", io_area_ratio=0.2)
        custom_names = [
            f.name
            for f in table2_factor_set("7nm", "2d", params=custom)
        ]
        assert any("io_area_ratio" in name for name in custom_names)

    def test_repro3d_set_uses_the_designs_package_class(
        self, lakefield_like, params
    ):
        names = [
            f.name
            for f in get_backend("repro3d").factor_set(lakefield_like, params)
        ]
        assert "packaging_cpa[pop_mobile]" in names
        assert "packaging_cpa[fcbga]" not in names


class TestDraws:
    def test_plain_triangular_matches_legacy_broadcast(self):
        factors = list(table2_factor_set())
        drawn = draw_multipliers(factors, 40, seed=7)
        rng = np.random.default_rng(7)
        lows = np.array([f.low for f in factors])
        highs = np.array([f.high for f in factors])
        shape = (40, len(factors))
        legacy = rng.triangular(
            np.broadcast_to(lows, shape), 1.0, np.broadcast_to(highs, shape)
        )
        assert np.array_equal(drawn, legacy)

    def test_seed_reproducible(self):
        factors = act_factor_set(("7nm", "14nm"))
        assert np.array_equal(
            draw_multipliers(factors, 30, seed=3),
            draw_multipliers(factors, 30, seed=3),
        )
        assert not np.array_equal(
            draw_multipliers(factors, 30, seed=3),
            draw_multipliers(factors, 30, seed=4),
        )

    def test_correlated_factors_move_together(self):
        factors = act_factor_set(("7nm", "14nm", "28nm"))
        drawn = draw_multipliers(factors, 200, seed=11)
        by_name = {
            factor.name: drawn[:, index]
            for index, factor in enumerate(factors)
        }
        # Same group + same bounds/distribution → identical columns.
        assert np.array_equal(
            by_name["fab_energy_epa[7nm]"], by_name["fab_energy_epa[14nm]"]
        )
        assert np.array_equal(
            by_name["fab_gas_gpa[7nm]"], by_name["fab_gas_gpa[28nm]"]
        )
        # Different groups, and ungrouped factors, draw independently.
        assert not np.array_equal(
            by_name["fab_energy_epa[7nm]"], by_name["fab_gas_gpa[7nm]"]
        )
        assert not np.array_equal(
            by_name["raw_material_mpa[7nm]"], by_name["raw_material_mpa[14nm]"]
        )

    def test_correlated_group_shares_quantile_not_value(self):
        wide = _spec("wide", 0.5, 2.0, group="g")
        narrow = _spec("narrow", 0.9, 1.1, group="g")
        drawn = draw_multipliers([wide, narrow], 300, seed=5)
        # Perfect rank correlation: sorting one column sorts the other.
        assert np.array_equal(
            np.argsort(drawn[:, 0], kind="stable"),
            np.argsort(drawn[:, 1], kind="stable"),
        )
        assert drawn[:, 1].min() >= 0.9
        assert drawn[:, 1].max() <= 1.1

    def test_pinned_triangular_factor_in_mixed_set(self):
        """low == high == 1.0 passes validation; the inverse-CDF path
        must yield a constant column, not divide by the zero span."""
        pinned = _spec("pinned", 1.0, 1.0)
        uniform = _spec("u", 0.8, 1.2, distribution="uniform")
        drawn = draw_multipliers([pinned, uniform], 50, seed=1)
        assert np.all(drawn[:, 0] == 1.0)
        assert drawn[:, 1].min() >= 0.8

    def test_uniform_bounds_and_shape(self):
        spec = _spec(low=1.2, high=1.8, distribution="uniform")
        drawn = draw_multipliers([spec], 500, seed=9)[:, 0]
        assert drawn.min() >= 1.2
        assert drawn.max() <= 1.8
        assert abs(drawn.mean() - 1.5) < 0.02

    def test_lognormal_median_and_quantiles(self):
        spec = _spec(low=0.5, high=2.0, distribution="lognormal")
        drawn = draw_multipliers([spec], 4000, seed=13)[:, 0]
        assert abs(np.median(drawn) - 1.0) < 0.03
        # ~5% of draws beyond each quantile bound, by construction.
        assert 0.02 < np.mean(drawn < 0.5) < 0.08
        assert 0.02 < np.mean(drawn > 2.0) < 0.08


class TestPerturbationPlan:
    def test_fingerprint_matches_factor_set(self, params):
        plan = PerturbationPlan(table2_factor_set(), params)
        assert plan.digest() == table2_factor_set().digest()

    def test_model_factors_split_from_params_factors(self, params):
        plan = PerturbationPlan(lca_factor_set(), params)
        assert plan.has_model_factors
        row = [1.3, 1.7]
        assert plan.model_multipliers(row) == {"cpa_scale": 1.3}
        perturbed = plan.perturbed(row)
        assert (
            perturbed.node("14nm").defect_density_per_cm2
            == params.node("14nm").defect_density_per_cm2 * 1.7
        )

    def test_plan_without_model_factors_returns_none(self, params):
        plan = PerturbationPlan(table2_factor_set(), params)
        assert not plan.has_model_factors
        assert plan.model_multipliers([1.0] * len(plan.factors)) is None

    def test_duplicate_model_targets_rejected(self, params):
        """Two factors on one backend constant would silently collapse
        last-wins in the overrides dict — refuse at compile time."""
        duplicated = FactorSet("dup", (
            _spec("a", target=FactorTarget("model", ("lca",), "cpa_scale")),
            _spec("b", target=FactorTarget("model", ("lca",), "cpa_scale")),
        ))
        with pytest.raises(ParameterError, match="cpa_scale"):
            PerturbationPlan(duplicated, params)

    def test_model_only_set_keeps_base_params_identity(self, params):
        plan = PerturbationPlan(first_order_factor_set(), params)
        assert plan.perturbed([1.3, 0.8]) is params

    def test_lognormal_tail_row_falls_back_to_sequential(self, params):
        spec = _spec(low=0.5, high=2.0, distribution="lognormal")
        plan = PerturbationPlan([spec], params)
        base = params.node("7nm").epa_kwh_per_cm2
        # 2.4 is beyond the validated [low, high] quantile range.
        perturbed = plan.perturbed([2.4])
        assert perturbed.node("7nm").epa_kwh_per_cm2 == base * 2.4


class TestModelScopedBackends:
    def test_base_backend_rejects_model_multipliers(self):
        with pytest.raises(BackendError, match="no model-constant"):
            get_backend("repro3d").with_model_multipliers({"nope": 1.1})

    def test_unknown_constant_fails_loudly(self):
        with pytest.raises(BackendError, match="typo"):
            get_backend("lca").with_model_multipliers({"typo": 1.1})
        with pytest.raises(BackendError, match="typo"):
            get_backend("first_order").with_model_multipliers({"typo": 1.1})

    def test_empty_multipliers_return_self(self):
        backend = get_backend("lca")
        assert backend.with_model_multipliers({}) is backend

    def test_lca_cpa_scale_scales_the_database(self, small_2d, params):
        evaluator = BatchEvaluator(params=params)
        derived = get_backend("lca").with_model_multipliers(
            {"cpa_scale": 1.5}
        )
        scaled = evaluator.backend_total_kg(small_2d, derived, params=params)
        direct = lca_estimate(
            [("14nm", 100.0)], params, monolithic=True, cpa_scale=1.5
        )
        assert scaled == direct.total_kg

    def test_first_order_constants_scale(self, small_2d, params):
        evaluator = BatchEvaluator(params=params)
        derived = get_backend("first_order").with_model_multipliers(
            {"kg_per_cm2": 2.0, "packaging_kg": 0.5}
        )
        scaled = evaluator.backend_total_kg(small_2d, derived, params=params)
        from repro.baselines.first_order import (
            FIRST_ORDER_KG_PER_CM2,
            FIRST_ORDER_PACKAGING_KG,
        )

        direct = first_order_estimate(
            100.0,
            kg_per_cm2=FIRST_ORDER_KG_PER_CM2 * 2.0,
            packaging_kg=FIRST_ORDER_PACKAGING_KG * 0.5,
        )
        assert scaled == direct.total_kg

    def test_lca_cpa_scale_validation(self, params):
        with pytest.raises(ParameterError, match="cpa_scale"):
            lca_estimate([("14nm", 100.0)], params, cpa_scale=0.0)

    def test_lca_memo_sees_yield_node_perturbation(self, params):
        """LCA prices yield at 14 nm whatever the design's nodes — the
        memo key must pin that record, or a perturbed defect density on
        a non-14nm design serves the stale base estimate."""
        from repro.analysis.sensitivity import tornado

        design = ChipDesign.planar_2d("seven", "7nm", area_mm2=100.0)
        evaluator = BatchEvaluator(params=params)
        base = evaluator.backend_total_kg(design, "lca", params=params)
        doubled = params.with_node_override(
            "14nm",
            defect_density_per_cm2=(
                params.node("14nm").defect_density_per_cm2 * 2.0
            ),
        )
        perturbed = evaluator.backend_total_kg(design, "lca", params=doubled)
        fresh = BatchEvaluator(params=doubled).backend_total_kg(
            design, "lca", params=doubled
        )
        assert perturbed == fresh
        assert perturbed != base
        # And through the default tornado path the factor set enables:
        swings = {
            entry.factor: entry.swing_kg
            for entry in tornado(design, backend="lca", params=params)
        }
        assert swings["defect_density[14nm]"] != 0.0


class TestPerBackendMonteCarlo:
    def test_each_backend_produces_a_band(self, hybrid_stack):
        evaluator = BatchEvaluator()
        results = {
            name: monte_carlo(
                hybrid_stack, samples=20, seed=2, evaluator=evaluator,
                backend=name,
            )
            for name in backend_names()
        }
        for name, result in results.items():
            assert result.n == 20
            assert result.std_kg > 0.0, name
        samples = {r.samples_kg for r in results.values()}
        # Every model draws its own distribution; ACT and ACT+ share one
        # factor set and coincide exactly on a 3D design (the 2.5D cost
        # factor never engages), so they may collapse to one entry.
        assert len(samples) >= len(results) - 1
        assert results["repro3d"].samples_kg != results["act"].samples_kg

    def test_backend_band_brackets_backend_base(self, hybrid_stack):
        evaluator = BatchEvaluator()
        for name in ("act", "lca", "first_order"):
            result = monte_carlo(
                hybrid_stack, samples=40, seed=6, evaluator=evaluator,
                backend=name,
            )
            base = evaluator.backend_total_kg(hybrid_stack, name)
            assert result.base_kg == base
            assert result.p05 < base < result.p95

    def test_model_scoped_draws_reproducible(self, hybrid_stack):
        first = monte_carlo(hybrid_stack, samples=15, seed=4, backend="lca")
        second = monte_carlo(hybrid_stack, samples=15, seed=4, backend="lca")
        assert first.samples_kg == second.samples_kg

    def test_scalar_reference_rejects_model_scoped_factors(
        self, hybrid_stack
    ):
        """The CarbonModel-only reference cannot price backend constants —
        it must refuse loudly rather than draw factors it never applies."""
        from repro.analysis.uncertainty import _monte_carlo_scalar

        with pytest.raises(ParameterError, match="model-scoped"):
            _monte_carlo_scalar(
                hybrid_stack, factors=lca_factor_set(), samples=5
            )


class TestMonteCarloWorkerModes:
    def test_serial_thread_process_bit_identical(self, hybrid_stack):
        serial = monte_carlo(hybrid_stack, samples=24, seed=8, chunk_size=6)
        threaded = monte_carlo(
            hybrid_stack, samples=24, seed=8, chunk_size=6, workers=2
        )
        forked = monte_carlo(
            hybrid_stack, samples=24, seed=8, chunk_size=6,
            workers=2, worker_mode="process",
        )
        assert serial.samples_kg == threaded.samples_kg
        assert serial.samples_kg == forked.samples_kg

    def test_worker_modes_with_model_scoped_factors(self, hybrid_stack):
        serial = monte_carlo(
            hybrid_stack, samples=16, seed=9, chunk_size=4, backend="lca"
        )
        forked = monte_carlo(
            hybrid_stack, samples=16, seed=9, chunk_size=4, backend="lca",
            workers=2, worker_mode="process",
        )
        assert serial.samples_kg == forked.samples_kg
