"""Operational-carbon tests (Sec. 3.3, Eq. 16–17)."""

import math

import pytest

from repro import ChipDesign, ParameterSet, Workload
from repro.core.bandwidth import evaluate_bandwidth
from repro.core.operational import operational_carbon
from repro.core.resolve import resolve_design
from repro.errors import DesignError

PARAMS = ParameterSet.default()


def run(design, workload=None, params=PARAMS):
    workload = workload or Workload.autonomous_vehicle()
    resolved = resolve_design(design, params)
    bandwidth = evaluate_bandwidth(resolved, params)
    return operational_carbon(resolved, params, workload, bandwidth)


class TestWorkload:
    def test_from_activity(self):
        wl = Workload.from_activity("w", 100.0, 1.0, 10.0)
        # 100 TOPS × 3600 s × 365.25 d × 10 y
        assert wl.total_tera_ops == pytest.approx(100.0 * 3600 * 365.25 * 10)

    def test_av_defaults(self):
        wl = Workload.autonomous_vehicle()
        assert wl.lifetime_years == 10.0
        assert wl.use_location == "renewable_charging"
        assert wl.total_tera_ops > 0

    def test_rejects_non_positive_work(self):
        with pytest.raises(DesignError):
            Workload("w", 0.0)

    def test_rejects_bad_lifetime(self):
        with pytest.raises(DesignError):
            Workload("w", 1.0, lifetime_years=0.0)

    def test_rejects_bad_activity(self):
        with pytest.raises(DesignError):
            Workload.from_activity("w", -1.0, 1.0)


class TestEq16:
    def test_orin_2d_energy(self, orin_2d):
        """Fixed work / efficiency: ORIN at 2.74 TOPS/W."""
        wl = Workload.autonomous_vehicle()
        report = run(orin_2d, wl)
        expected_kwh = wl.total_tera_ops / 2.74 / 3.6e6
        assert report.compute_energy_kwh == pytest.approx(expected_kwh)
        assert report.io_energy_kwh == 0.0

    def test_carbon_is_ci_times_energy(self, orin_2d):
        report = run(orin_2d)
        assert report.total_kg == pytest.approx(
            report.use_ci_kg_per_kwh * report.total_energy_kwh
        )

    def test_cleaner_grid_less_carbon(self, orin_2d):
        wl_dirty = Workload.from_activity("d", 254.0, 0.75, use_location="india")
        wl_clean = Workload.from_activity("c", 254.0, 0.75, use_location="iceland")
        assert run(orin_2d, wl_dirty).total_kg > run(orin_2d, wl_clean).total_kg

    def test_more_efficient_die_less_carbon(self):
        slow = ChipDesign.planar_2d(
            "slow", "16nm", gate_count=15.3e9, throughput_tops=24.0,
            efficiency_tops_per_w=0.75,
        )
        fast = ChipDesign.planar_2d(
            "fast", "5nm", gate_count=77e9, throughput_tops=2000.0,
            efficiency_tops_per_w=12.5,
        )
        assert run(fast).total_kg < run(slow).total_kg

    def test_annual_rate(self, orin_2d):
        report = run(orin_2d)
        assert report.annual_kg == pytest.approx(report.total_kg / 10.0)


class TestEq17IoPower:
    def test_25d_pays_io_energy(self, emib_assembly):
        report = run(emib_assembly)
        assert report.io_energy_kwh > 0

    def test_micro_3d_pays_io_energy(self, orin_2d):
        micro = ChipDesign.homogeneous_split(orin_2d, "micro_3d")
        assert run(micro).io_energy_kwh > 0

    def test_hybrid_and_m3d_do_not(self, hybrid_stack, m3d_stack):
        """Sec. 3.3: only 2.5D and micro-bump 3D include P_IO."""
        assert run(hybrid_stack).io_energy_kwh == 0.0
        assert run(m3d_stack).io_energy_kwh == 0.0

    def test_io_energy_scales_with_energy_per_bit(self, orin_2d):
        mcm = run(ChipDesign.homogeneous_split(orin_2d, "mcm"))
        emib = run(ChipDesign.homogeneous_split(orin_2d, "emib"))
        # MCM SerDes: 1000 fJ/bit vs EMIB's 150 fJ/bit.
        assert mcm.io_energy_kwh == pytest.approx(
            emib.io_energy_kwh * 1000.0 / 150.0
        )

    def test_interconnect_saving_applies(self, orin_2d, m3d_stack):
        """κ: M3D computes the same work with less energy (Kim DAC'21)."""
        base = run(orin_2d).compute_energy_kwh
        m3d = run(m3d_stack).compute_energy_kwh
        assert m3d == pytest.approx(base * (1.0 - 0.082), rel=1e-6)

    def test_degradation_stretches_compute_energy(self, orin_2d):
        """Bandwidth-starved 2.5D designs stall (Sec. 5.1)."""
        emib = ChipDesign.homogeneous_split(orin_2d, "emib")
        resolved = resolve_design(emib, PARAMS)
        bandwidth = evaluate_bandwidth(resolved, PARAMS)
        assert bandwidth.degradation > 0
        report = operational_carbon(
            resolved, PARAMS, Workload.autonomous_vehicle(), bandwidth
        )
        base = run(orin_2d).compute_energy_kwh
        assert report.compute_energy_kwh > base


class TestPerDieAccounting:
    def test_shares_partition_energy(self, hybrid_stack):
        report = run(hybrid_stack)
        shares = [r.workload_share for r in report.per_die]
        assert sum(shares) == pytest.approx(1.0)
        assert all(s == pytest.approx(0.5) for s in shares)

    def test_zero_share_die_consumes_nothing(self, lakefield_like):
        design = lakefield_like.with_overrides(throughput_tops=10.0)
        report = run(design)
        base_record = next(r for r in report.per_die if r.name == "base")
        assert base_record.energy_kwh == 0.0
        assert math.isnan(base_record.efficiency_tops_per_w)

    def test_no_share_at_all_rejected(self):
        from repro.core.design import Die

        design = ChipDesign(
            name="idle",
            dies=(Die("a", "7nm", gate_count=1e9, workload_share=0.0),),
            integration="2d",
        )
        with pytest.raises(DesignError):
            run(design)

    def test_runtime_reported_with_capacity(self, orin_2d):
        report = run(orin_2d)
        wl = Workload.autonomous_vehicle()
        assert report.runtime_hours == pytest.approx(
            wl.total_tera_ops / 254.0 / 3600.0
        )
        assert report.average_power_w == pytest.approx(
            254.0 / 2.74, rel=1e-6
        )

    def test_runtime_none_without_capacity(self, small_2d):
        wl = Workload("tiny", 1e6, lifetime_years=1.0)
        report = run(small_2d, wl)
        assert report.runtime_hours is None
        assert report.average_power_w is None

    def test_surveyed_fallback(self):
        """Dies without explicit efficiency use the node survey."""
        design = ChipDesign.planar_2d("plain", "7nm", gate_count=1e9)
        report = run(design, Workload("w", 1e9, lifetime_years=1.0))
        assert report.per_die[0].efficiency_tops_per_w == pytest.approx(2.74)
