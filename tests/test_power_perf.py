"""Power plug-in and performance-substrate tests."""

import pytest

from repro import ChipDesign, ParameterSet
from repro.core.resolve import resolve_design
from repro.errors import ParameterError, UnknownTechnologyError
from repro.perf.degradation import (
    degradation,
    runtime_stretch,
    throughput_factor,
)
from repro.perf.requirements import (
    AV_PERCEPTION_LAYERS,
    DnnLayer,
    network_traffic_intensity,
    onchip_bandwidth_tb_s,
)
from repro.power.dnn import AnalyticalDnnPlugin
from repro.power.plugin import CallablePlugin, PluginRegistry
from repro.power.surveyed import SurveyedEfficiencyPlugin

PARAMS = ParameterSet.default()


def resolved_die(name="ORIN_2D", node="7nm", efficiency=None):
    design = ChipDesign.planar_2d(
        f"{name}", node, gate_count=1e9, efficiency_tops_per_w=efficiency
    )
    return resolve_design(design, PARAMS).dies[0]


class TestSurveyedPlugin:
    def test_die_override_wins(self):
        plugin = SurveyedEfficiencyPlugin()
        die = resolved_die(efficiency=5.0)
        assert plugin.efficiency_tops_per_w(die) == 5.0

    def test_device_name_match(self):
        plugin = SurveyedEfficiencyPlugin()
        die = resolved_die(name="THOR_2D", node="5nm")
        assert plugin.efficiency_tops_per_w(die) == 12.5

    def test_node_fallback(self):
        plugin = SurveyedEfficiencyPlugin()
        die = resolved_die(name="anon", node="28nm")
        assert plugin.efficiency_tops_per_w(die) == pytest.approx(0.4)


class TestDnnPlugin:
    def test_energy_scales_with_feature_size(self):
        plugin = AnalyticalDnnPlugin()
        assert plugin.energy_per_op_pj(14.0) == pytest.approx(
            4.0 * plugin.energy_per_op_pj(7.0)
        )

    def test_efficiency_improves_with_scaling(self):
        plugin = AnalyticalDnnPlugin()
        old = plugin.efficiency_tops_per_w(resolved_die(name="a", node="28nm"))
        new = plugin.efficiency_tops_per_w(resolved_die(name="b", node="7nm"))
        assert new > old

    def test_memory_intensity_costs_energy(self):
        light = AnalyticalDnnPlugin(bytes_per_op=0.0)
        heavy = AnalyticalDnnPlugin(bytes_per_op=0.5)
        die = resolved_die(name="c")
        assert (heavy.efficiency_tops_per_w(die)
                < light.efficiency_tops_per_w(die))

    def test_7nm_in_survey_ballpark(self):
        """The analytical model lands near the surveyed 7 nm TOPS/W."""
        plugin = AnalyticalDnnPlugin()
        eff = plugin.efficiency_tops_per_w(resolved_die(name="d"))
        assert 1.0 < eff < 10.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            AnalyticalDnnPlugin(bytes_per_op=-1.0)
        with pytest.raises(ParameterError):
            AnalyticalDnnPlugin().energy_per_op_pj(0.0)


class TestRegistry:
    def test_register_and_get(self):
        registry = PluginRegistry()
        registry.register(SurveyedEfficiencyPlugin())
        assert registry.get("surveyed").name == "surveyed"
        assert "surveyed" in registry.names()

    def test_duplicate_rejected(self):
        registry = PluginRegistry()
        registry.register(SurveyedEfficiencyPlugin())
        with pytest.raises(ParameterError):
            registry.register(SurveyedEfficiencyPlugin())

    def test_unknown_raises(self):
        with pytest.raises(UnknownTechnologyError):
            PluginRegistry().get("mcpat")

    def test_callable_adapter(self):
        plugin = CallablePlugin("fixed", lambda die: 3.0)
        assert plugin.efficiency_tops_per_w(resolved_die(name="e")) == 3.0

    def test_callable_rejects_non_positive(self):
        plugin = CallablePlugin("broken", lambda die: 0.0)
        with pytest.raises(ParameterError):
            plugin.efficiency_tops_per_w(resolved_die(name="f"))


class TestDegradationCurve:
    def test_anchor(self):
        """MCM-GPU: half bandwidth → 20 % throughput loss."""
        assert throughput_factor(0.5) == pytest.approx(0.80)
        assert degradation(0.5) == pytest.approx(0.20)

    def test_no_loss_above_one(self):
        assert throughput_factor(1.0) == 1.0
        assert throughput_factor(2.5) == 1.0

    def test_monotone_nonincreasing(self):
        ratios = [1.0, 0.8, 0.6, 0.4, 0.2, 0.05, 0.0]
        factors = [throughput_factor(r) for r in ratios]
        assert all(a >= b for a, b in zip(factors, factors[1:]))

    def test_roofline_floor_near_zero(self):
        """Throughput tracks bandwidth when fully bandwidth-bound."""
        assert throughput_factor(0.1) >= 0.1 * 0.8 - 1e-12
        assert throughput_factor(0.0) == 0.0

    def test_runtime_stretch(self):
        assert runtime_stretch(1.0) == 1.0
        assert runtime_stretch(0.5) == pytest.approx(1.25)
        assert runtime_stretch(0.0) == float("inf")

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            throughput_factor(-0.1)
        with pytest.raises(ParameterError):
            throughput_factor(0.5, anchor_ratio=1.5)


class TestRequirements:
    def test_onchip_bandwidth_units(self):
        """254 TOPS × 0.13 B/op = 33 TB/s."""
        assert onchip_bandwidth_tb_s(254.0, 0.13) == pytest.approx(33.02)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ParameterError):
            onchip_bandwidth_tb_s(0.0, 0.13)
        with pytest.raises(ParameterError):
            onchip_bandwidth_tb_s(254.0, 0.0)

    def test_layer_bytes_per_op(self):
        layer = DnnLayer("l", macs=1e9, onchip_bytes=4e8)
        assert layer.bytes_per_op == pytest.approx(0.2)

    def test_av_network_matches_calibrated_constant(self):
        """The bundled AV backbone justifies the 0.13 B/op default."""
        intensity = network_traffic_intensity(list(AV_PERCEPTION_LAYERS))
        assert intensity == pytest.approx(
            PARAMS.bandwidth.traffic_bytes_per_op, rel=0.12
        )

    def test_bad_layer_rejected(self):
        with pytest.raises(ParameterError):
            DnnLayer("bad", macs=0.0, onchip_bytes=1.0)

    def test_empty_network_rejected(self):
        with pytest.raises(ParameterError):
            network_traffic_intensity([])
