"""Cross-cutting property-based tests on the full model.

These exercise the whole pipeline (resolve → embodied → bandwidth →
operational) over randomized designs and parameter variations, asserting
the physical invariants any carbon model must satisfy.
"""

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro import CarbonModel, ChipDesign, ParameterSet, Workload
from repro.config.integration import AssemblyFlow, StackingStyle
from repro.core.design import Die

PARAMS = ParameterSet.default()
WL = Workload.autonomous_vehicle()

NODES = ["28nm", "16nm", "14nm", "12nm", "10nm", "7nm", "5nm"]
SPLITTABLE = ["micro_3d", "hybrid_3d", "m3d", "mcm", "info", "emib",
              "si_interposer"]

#: Keep generated designs manufacturable: a 2D die (or a 2.5D assembly's
#: interposer) must still fit the wafer, so cap the 2D-equivalent area.
MAX_2D_AREA_MM2 = 1500.0


def assume_manufacturable(gates: float, node: str) -> None:
    area = gates * PARAMS.node(node).gate_area_um2 / 1e6
    assume(area <= MAX_2D_AREA_MM2)


def reference_design(gates, node, tops):
    return ChipDesign.planar_2d(
        "ref", node, gate_count=gates, throughput_tops=tops,
        efficiency_tops_per_w=2.0,
    )


class TestLifecycleInvariants:
    @given(
        gates=st.floats(min_value=5e8, max_value=4e10),
        node=st.sampled_from(NODES),
        integration=st.sampled_from(SPLITTABLE),
    )
    @settings(max_examples=60, deadline=None)
    def test_all_components_non_negative(self, gates, node, integration):
        assume_manufacturable(gates, node)
        design = ChipDesign.homogeneous_split(
            reference_design(gates, node, 100.0), integration
        )
        report = CarbonModel(design, PARAMS).evaluate(WL)
        for component, kg in report.embodied.breakdown().items():
            assert kg >= 0.0, component
        assert report.operational_kg >= 0.0
        assert report.total_kg == pytest.approx(
            report.embodied_kg + report.operational_kg
        )

    @given(
        gates=st.floats(min_value=5e8, max_value=4e10),
        node=st.sampled_from(NODES),
    )
    @settings(max_examples=40, deadline=None)
    def test_embodied_monotone_in_gate_count(self, gates, node):
        assume_manufacturable(gates * 1.5, node)
        small = CarbonModel(
            reference_design(gates, node, 100.0), PARAMS
        ).embodied()
        large = CarbonModel(
            reference_design(gates * 1.5, node, 100.0), PARAMS
        ).embodied()
        assert large.total_kg > small.total_kg

    @given(
        gates=st.floats(min_value=5e8, max_value=4e10),
        integration=st.sampled_from(SPLITTABLE),
        ci_a=st.floats(min_value=0.03, max_value=0.7),
        ci_b=st.floats(min_value=0.03, max_value=0.7),
    )
    @settings(max_examples=40, deadline=None)
    def test_embodied_monotone_in_fab_ci(self, gates, integration, ci_a, ci_b):
        assume_manufacturable(gates, "7nm")
        lo, hi = sorted((ci_a, ci_b))
        design = ChipDesign.homogeneous_split(
            reference_design(gates, "7nm", 100.0), integration
        )
        clean = CarbonModel(design, PARAMS, lo * 1000.0).embodied()
        dirty = CarbonModel(design, PARAMS, hi * 1000.0).embodied()
        assert clean.total_kg <= dirty.total_kg + 1e-9

    @given(gates=st.floats(min_value=5e8, max_value=4e10))
    @settings(max_examples=30, deadline=None)
    def test_m3d_always_cheapest_embodied(self, gates):
        """M3D's footprint halving dominates every bonded option."""
        assume_manufacturable(gates, "7nm")
        reference = reference_design(gates, "7nm", 100.0)
        reports = {
            name: CarbonModel(
                ChipDesign.homogeneous_split(reference, name), PARAMS
            ).embodied().total_kg
            for name in ("m3d", "hybrid_3d", "micro_3d")
        }
        assert reports["m3d"] < reports["hybrid_3d"]
        assert reports["m3d"] < reports["micro_3d"]

    @given(
        gates=st.floats(min_value=5e8, max_value=4e10),
        work_a=st.floats(min_value=1e8, max_value=1e10),
        work_b=st.floats(min_value=1e8, max_value=1e10),
    )
    @settings(max_examples=40, deadline=None)
    def test_operational_monotone_in_work(self, gates, work_a, work_b):
        assume_manufacturable(gates, "7nm")
        lo, hi = sorted((work_a, work_b))
        design = reference_design(gates, "7nm", 100.0)
        model = CarbonModel(design, PARAMS)
        light = model.evaluate(Workload("light", lo)).operational_kg
        heavy = model.evaluate(Workload("heavy", hi)).operational_kg
        assert light <= heavy + 1e-9


class TestYieldPipelineInvariants:
    @given(
        gates=st.floats(min_value=5e8, max_value=4e10),
        node=st.sampled_from(NODES),
        integration=st.sampled_from(SPLITTABLE),
    )
    @settings(max_examples=60, deadline=None)
    def test_effective_yields_in_unit_interval(self, gates, node, integration):
        assume_manufacturable(gates, node)
        design = ChipDesign.homogeneous_split(
            reference_design(gates, node, 100.0), integration
        )
        resolved = CarbonModel(design, PARAMS).resolved()
        for y in resolved.stack_yields.per_die:
            assert 0.0 < y <= 1.0
        for y in resolved.stack_yields.per_bond:
            assert 0.0 < y <= 1.0

    @given(
        area=st.floats(min_value=20.0, max_value=600.0),
        flow=st.sampled_from([AssemblyFlow.D2W, AssemblyFlow.W2W]),
    )
    @settings(max_examples=40, deadline=None)
    def test_stack_design_evaluates(self, area, flow):
        design = ChipDesign(
            name="stack",
            dies=(
                Die("bottom", "14nm", area_mm2=area, workload_share=0.5),
                Die("top", "7nm", area_mm2=area * 0.9, workload_share=0.5),
            ),
            integration="micro_3d",
            stacking=StackingStyle.F2F,
            assembly=flow,
        )
        report = CarbonModel(design, PARAMS).evaluate()
        assert report.embodied_kg > 0


class TestBandwidthInvariants:
    @given(
        tops=st.floats(min_value=5.0, max_value=3000.0),
        gates=st.floats(min_value=5e8, max_value=6e10),
        tech=st.sampled_from(["mcm", "info", "emib", "si_interposer"]),
    )
    @settings(max_examples=60, deadline=None)
    def test_ratio_and_degradation_consistent(self, tops, gates, tech):
        assume_manufacturable(gates, "7nm")
        design = ChipDesign.homogeneous_split(
            reference_design(gates, "7nm", tops), tech
        )
        bw = CarbonModel(design, PARAMS).bandwidth()
        assert bw.constrained
        assert bw.achieved_tb_s > 0
        assert 0.0 <= bw.degradation <= 1.0
        if bw.ratio >= 1.0:
            assert bw.degradation == 0.0
        if bw.ratio < PARAMS.bandwidth.invalid_bw_ratio:
            assert not bw.valid
        else:
            assert bw.valid

    @given(gates=st.floats(min_value=5e8, max_value=6e10))
    @settings(max_examples=30, deadline=None)
    def test_higher_requirement_never_improves_validity(self, gates):
        assume_manufacturable(gates, "7nm")
        low = ChipDesign.homogeneous_split(
            reference_design(gates, "7nm", 20.0), "emib"
        )
        high = ChipDesign.homogeneous_split(
            reference_design(gates, "7nm", 2000.0), "emib"
        )
        bw_low = CarbonModel(low, PARAMS).bandwidth()
        bw_high = CarbonModel(high, PARAMS).bandwidth()
        assert bw_high.ratio <= bw_low.ratio
        if not bw_low.valid:
            assert not bw_high.valid
