"""Headline reproduction assertions against the paper's published numbers.

Every tolerance here is a *reproduction band*: the substrate is a
calibrated analytical model, so shapes (who wins, signs, orderings,
valid/invalid structure) are asserted tightly while absolute ratios get
a few percentage points of slack. EXPERIMENTS.md records the exact
measured values next to the paper's.
"""

import math

import pytest

from repro import Workload
from repro.core.metrics import ChoiceRegime
from repro.studies.decision import PAPER_TABLE5, table5_study
from repro.studies.drive import drive_study
from repro.studies.validation import epyc_validation, lakefield_validation


@pytest.fixture(scope="module")
def epyc():
    return epyc_validation()


@pytest.fixture(scope="module")
def lakefield():
    return lakefield_validation()


@pytest.fixture(scope="module")
def table5():
    return table5_study()


@pytest.fixture(scope="module")
def fig5a():
    return drive_study("homogeneous")


@pytest.fixture(scope="module")
def fig5b():
    return drive_study("heterogeneous")


class TestFig4aEpyc:
    def test_lca_highest(self, epyc):
        """Sec. 4.1: LCA reports higher emissions than 3D-Carbon and ACT+."""
        assert epyc.lca.total_kg > epyc.carbon_3d.total_kg
        assert epyc.lca.total_kg > epyc.act_plus.total_kg

    def test_2d_adjusted_discrepancy_4_4_percent(self, epyc):
        """Paper: ≈ 4.4 % gap between LCA and 2D-adjusted 3D-Carbon."""
        assert epyc.lca_vs_2d_discrepancy == pytest.approx(0.044, abs=0.02)

    def test_packaging_3_47_vs_0_15(self, epyc):
        """Paper: 3D-Carbon packaging 3.47 kg vs ACT+'s fixed 0.15 kg."""
        assert epyc.carbon_3d.packaging_kg == pytest.approx(3.47, abs=0.05)
        assert epyc.act_plus.packaging_kg == pytest.approx(0.15)

    def test_ccds_use_fewer_beol_layers_than_max(self, epyc):
        """Sec. 4.1: BEOL-aware carbon for CPU dies with fewer layers."""
        ccd = next(
            r for r in epyc.carbon_3d.die.records if r.name.startswith("ccd")
        )
        assert ccd.beol_layers < 13.0


class TestFig4bLakefield:
    def test_d2w_yield_anchors(self, lakefield):
        """Sec. 4.2: logic 89.3 %, memory 88.4 % in D2W."""
        assert lakefield.d2w_logic_yield == pytest.approx(0.893, abs=0.003)
        assert lakefield.d2w_memory_yield == pytest.approx(0.884, abs=0.003)

    def test_w2w_yield_anchor(self, lakefield):
        """Sec. 4.2: both dies yield 79.7 % in W2W."""
        assert lakefield.w2w_yield == pytest.approx(0.797, abs=0.003)

    def test_lca_underestimates(self, lakefield):
        """Sec. 4.2: GaBi's 14 nm assumption underestimates 3D-Carbon."""
        assert lakefield.lca.total_kg < lakefield.carbon_3d_d2w.total_kg

    def test_d2w_cheaper_than_w2w(self, lakefield):
        assert (lakefield.carbon_3d_d2w.total_kg
                < lakefield.carbon_3d_w2w.total_kg)

    def test_act_plus_flow_blind(self, lakefield):
        """ACT+ treats 3D as 2D: one number for both flows, below both."""
        assert lakefield.act_plus.total_kg < lakefield.carbon_3d_d2w.total_kg


class TestTable5:
    def test_embodied_save_ratios(self, table5):
        """All five save ratios within a few points of the paper."""
        for option, expected in PAPER_TABLE5.items():
            measured = table5.row(option).metrics.embodied_save_ratio * 100
            assert measured == pytest.approx(
                expected["embodied_save"], abs=4.0
            ), option

    def test_overall_save_ratios(self, table5):
        for option, expected in PAPER_TABLE5.items():
            measured = table5.row(option).metrics.overall_save_ratio * 100
            assert measured == pytest.approx(
                expected["overall_save"], abs=5.0
            ), option

    def test_savings_ordering(self, table5):
        """M3D > Hybrid > Micro > EMIB > 0 > Si_int (paper's ordering)."""
        save = {
            option: table5.row(option).metrics.embodied_save_ratio
            for option in PAPER_TABLE5
        }
        assert (save["M3D"] > save["Hybrid"] > save["Micro"]
                > save["EMIB"] > 0.0 > save["Si_int"])

    def test_tc_structure(self, table5):
        """Paper: T_c finite for EMIB/Micro, ∞ for Si_int, >0 for 3D."""
        assert (table5.row("EMIB").metrics.regime
                is ChoiceRegime.BETTER_UNTIL_TC)
        assert 5.0 < table5.row("EMIB").metrics.tc_years < 25.0
        assert (table5.row("Micro").metrics.regime
                is ChoiceRegime.BETTER_UNTIL_TC)
        assert 15.0 < table5.row("Micro").metrics.tc_years < 45.0
        assert math.isinf(table5.row("Si_int").metrics.tc_years)
        for option in ("Hybrid", "M3D"):
            assert (table5.row(option).metrics.regime
                    is ChoiceRegime.ALWAYS_BETTER)

    def test_tr_structure(self, table5):
        """Paper: T_r = ∞ for EMIB/Si/Micro; >75 Hybrid; >19 M3D."""
        for option in ("EMIB", "Si_int", "Micro"):
            assert math.isinf(table5.row(option).metrics.tr_years), option
        assert table5.row("Hybrid").metrics.tr_years > 75.0
        assert table5.row("M3D").metrics.tr_years > 19.0

    def test_10_year_lifetime_decisions(self, table5):
        """Sec. 5.2: choose EMIB + all three 3D; never replace."""
        for option in ("EMIB", "Micro", "Hybrid", "M3D"):
            assert table5.row(option).metrics.choose_recommended, option
        assert not table5.row("Si_int").metrics.choose_recommended
        for option in PAPER_TABLE5:
            assert not table5.row(option).metrics.replace_recommended, option


class TestFig5Validity:
    def test_orin_invalid_options(self, fig5a):
        """Sec. 5.2: exactly MCM, InFO_1, InFO_2 are invalid for ORIN."""
        invalid = {
            cell.option
            for cell in fig5a.cells
            if cell.device == "ORIN" and not cell.valid
        }
        assert invalid == {"MCM", "InFO_1", "InFO_2"}

    def test_thor_all_25d_invalid(self, fig5a):
        """Sec. 5.1: none of the four 2.5D options satisfy THOR."""
        for option in ("MCM", "InFO_1", "InFO_2", "EMIB", "Si_int"):
            assert not fig5a.cell("THOR", option).valid, option
        for option in ("2D", "Micro", "Hybrid", "M3D"):
            assert fig5a.cell("THOR", option).valid, option

    def test_early_generations_all_valid(self, fig5a):
        for device in ("PX2", "XAVIER"):
            for option in ("MCM", "InFO_1", "InFO_2", "EMIB", "Si_int"):
                assert fig5a.cell(device, option).valid, (device, option)

    def test_operational_decreases_over_generations(self, fig5a):
        """Sec. 5.1: efficiency growth shrinks operational carbon."""
        ops = [
            fig5a.cell(device, "2D").report.operational_kg
            for device in ("PX2", "XAVIER", "ORIN", "THOR")
        ]
        assert all(a > b for a, b in zip(ops, ops[1:]))

    def test_25d_operational_above_3d(self, fig5a):
        """Sec. 5.1: 2.5D operational exceeds 2D/3D (I/O + degradation)."""
        for device in ("PX2", "XAVIER", "ORIN"):
            two_d = fig5a.cell(device, "2D").report.operational_kg
            emib = fig5a.cell(device, "EMIB").report.operational_kg
            hybrid = fig5a.cell(device, "Hybrid").report.operational_kg
            assert emib > two_d
            assert emib > hybrid

    def test_info_and_si_increase_embodied_for_orin(self, fig5a):
        """Sec. 5.1: InFO/Si-interposer raise embodied carbon (substrates)."""
        two_d = fig5a.cell("ORIN", "2D").report.embodied_kg
        assert fig5a.cell("ORIN", "Si_int").report.embodied_kg > two_d
        assert fig5a.cell("ORIN", "InFO_1").report.embodied_kg > two_d

    def test_3d_reduces_embodied_everywhere(self, fig5a):
        for device in ("PX2", "XAVIER", "ORIN", "THOR"):
            two_d = fig5a.cell(device, "2D").report.embodied_kg
            for option in ("Micro", "Hybrid", "M3D"):
                assert (fig5a.cell(device, option).report.embodied_kg
                        < two_d), (device, option)

    def test_m3d_is_best_embodied(self, fig5a):
        for device in ("PX2", "XAVIER", "ORIN", "THOR"):
            cells = [
                c for c in fig5a.cells if c.device == device
            ]
            best = min(cells, key=lambda c: c.report.embodied_kg)
            assert best.option == "M3D", device


class TestFig5Heterogeneous:
    def test_hetero_saves_less_than_homog(self, fig5a, fig5b):
        """Sec. 5.1: the heterogeneous approach introduces lesser saving."""
        for option in ("Hybrid", "M3D"):
            homog = fig5a.cell("ORIN", option).report.embodied_kg
            hetero = fig5b.cell("ORIN", option).report.embodied_kg
            assert hetero > homog, option

    def test_hetero_memory_die_on_28nm(self, fig5b):
        report = fig5b.cell("ORIN", "Hybrid").report
        nodes = {r.node for r in report.embodied.die.records}
        assert "28nm" in nodes and "7nm" in nodes

    def test_hetero_m3d_still_saves(self, fig5b):
        two_d = fig5b.cell("ORIN", "2D").report.embodied_kg
        assert fig5b.cell("ORIN", "M3D").report.embodied_kg < two_d
