"""Die area estimation (Eq. 7–9).

``A_die = A_gate + A_TSV + A_IO`` where

* ``A_gate = N_g · β · λ²`` (Eq. 8), scaled by the integration technology's
  ``gate_area_factor`` (repeater savings from shorter wires) and, for
  memory dies, by the node's SRAM density factor;
* ``A_TSV`` (3D only) depends on the stacking style: Rent's-rule TSV count
  for F2B, external-I/O count for F2F (Sec. 3.2.1);
* ``A_IO = γ · A_gate`` (Eq. 9) for micro-bump 3D and 2.5D technologies,
  whose coarse connections need explicit driver macros.

Dies specified by explicit area skip the estimation (die-photo areas
already include every overhead) but still get an equivalent gate count for
the wirelength/BEOL model.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..config.integration import IntegrationSpec, StackingStyle
from ..config.technology import ProcessNode
from ..errors import DesignError
from ..rent import tsv as tsv_model
from ..units import um2_to_mm2
from .design import Die, DieKind


@dataclass(frozen=True)
class AreaBreakdown:
    """Resolved area of one die (all mm²)."""

    gate_area_mm2: float
    tsv_area_mm2: float
    io_area_mm2: float
    #: Equivalent 2D gate count (input or derived from the area).
    gate_count: float

    @cached_property
    def total_mm2(self) -> float:
        return self.gate_area_mm2 + self.tsv_area_mm2 + self.io_area_mm2


def gate_area_mm2(
    gate_count: float,
    node: ProcessNode,
    kind: DieKind = DieKind.LOGIC,
    gate_area_factor: float = 1.0,
) -> float:
    """Eq. 8: A_gate = N_g·β·λ², with kind- and integration-scaling."""
    if gate_count <= 0:
        raise DesignError(f"gate count must be positive, got {gate_count}")
    per_gate_um2 = node.gate_area_um2
    if kind is DieKind.MEMORY:
        per_gate_um2 *= node.sram_density_factor
    return um2_to_mm2(gate_count * per_gate_um2 * gate_area_factor)


def equivalent_gate_count(
    area_mm2: float, node: ProcessNode, kind: DieKind = DieKind.LOGIC
) -> float:
    """Inverse of Eq. 8 for area-specified dies (BEOL model needs N_g)."""
    if area_mm2 <= 0:
        raise DesignError(f"area must be positive, got {area_mm2}")
    per_gate_um2 = node.gate_area_um2
    if kind is DieKind.MEMORY:
        per_gate_um2 *= node.sram_density_factor
    return area_mm2 / um2_to_mm2(per_gate_um2)


def tsv_area_for_die(
    gate_count: float,
    node: ProcessNode,
    spec: IntegrationSpec,
    stacking: StackingStyle,
    is_top_die: bool,
) -> float:
    """A_TSV of Eq. 7 for one die of a 3D stack (mm²).

    The top die of a stack needs no TSVs of its own (signals exit through
    the dies below); M3D uses MIVs instead, which are negligible but still
    modeled for completeness.
    """
    if not spec.is_3d:
        return 0.0
    if spec.name == "m3d":
        if is_top_die:
            return 0.0
        miv_count = tsv_model.rent_terminal_count(gate_count, node.rent_exponent)
        return tsv_model.miv_area_mm2(miv_count, node.miv_diameter_um)
    if is_top_die:
        return 0.0
    if stacking is StackingStyle.F2B:
        count = tsv_model.f2b_tsv_count(gate_count, node.rent_exponent)
    else:
        count = tsv_model.f2f_tsv_count()
    return tsv_model.tsv_area_mm2(count, node.tsv_diameter_um)


def io_driver_area_mm2(gate_area: float, spec: IntegrationSpec) -> float:
    """Eq. 9: A_IO = γ · A_gate for coarse-pitch interfaces."""
    if gate_area < 0:
        raise DesignError(f"gate area must be >= 0, got {gate_area}")
    return spec.io_area_ratio * gate_area


def resolve_area(
    die: Die,
    node: ProcessNode,
    spec: IntegrationSpec,
    stacking: StackingStyle,
    is_top_die: bool,
) -> AreaBreakdown:
    """Full Eq. 7 area breakdown for one die."""
    if die.area_mm2 is not None:
        # Measured areas are final: overheads are already inside them.
        return AreaBreakdown(
            gate_area_mm2=die.area_mm2,
            tsv_area_mm2=0.0,
            io_area_mm2=0.0,
            gate_count=equivalent_gate_count(die.area_mm2, node, die.kind),
        )
    assert die.gate_count is not None  # enforced by Die.__post_init__
    gate = gate_area_mm2(die.gate_count, node, die.kind, spec.gate_area_factor)
    tsv = tsv_area_for_die(die.gate_count, node, spec, stacking, is_top_die)
    io = io_driver_area_mm2(gate, spec)
    return AreaBreakdown(
        gate_area_mm2=gate,
        tsv_area_mm2=tsv,
        io_area_mm2=io,
        gate_count=die.gate_count,
    )
