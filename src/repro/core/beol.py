"""BEOL metal-layer-count estimation (Eq. 10).

``N_BEOL = N_fan · ω · N_g · L̄ / (η · A_die)`` (Stow ISVLSI'16) with

* ``N_fan`` — average fan-out (node parameter, Table 2: 1–5);
* ``ω = 3.6λ`` — routable wire pitch;
* ``L̄`` — average wirelength from the Davis distribution
  (:mod:`repro.rent.davis`), converted to physical units with the gate
  pitch √(A/N);
* ``η`` — router/wiring efficiency.

The estimate is clamped to the node's manufacturable range, then reduced by
the integration technology's ``beol_layers_saved`` (fine-pitch vertical
connections replace top global metal, Kim DAC'21). Reducing metal layers is
one of the paper's key embodied-carbon levers (Sec. 3.2.1), so the value is
kept fractional — carbon scales continuously with routing demand — while a
``rounded`` convenience is provided for reporting.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config.technology import ProcessNode
from ..errors import DesignError
from ..rent.davis import average_wirelength_mm

#: No manufacturable process has fewer metal layers than this.
MIN_BEOL_LAYERS = 2.0


@dataclass(frozen=True)
class BeolEstimate:
    """Estimated metal stack for one die."""

    layers: float
    raw_layers: float           # before clamping/savings
    average_wirelength_mm: float
    clamped_at_max: bool

    @property
    def rounded(self) -> int:
        return int(round(self.layers))


def estimate_beol_layers(
    gate_count: float,
    die_area_mm2: float,
    node: ProcessNode,
    layers_saved: int = 0,
    override: int | None = None,
) -> BeolEstimate:
    """Eq. 10 with clamping; ``override`` short-circuits the estimate."""
    if die_area_mm2 <= 0:
        raise DesignError(f"die area must be positive, got {die_area_mm2}")
    if gate_count < 4:
        raise DesignError(
            f"BEOL estimation needs >= 4 gates, got {gate_count}"
        )
    if override is not None:
        if override < 1:
            raise DesignError(f"BEOL override must be >= 1, got {override}")
        return BeolEstimate(
            layers=float(override),
            raw_layers=float(override),
            average_wirelength_mm=math.nan,
            clamped_at_max=False,
        )

    avg_wl_mm = average_wirelength_mm(
        gate_count, node.rent_exponent, die_area_mm2
    )
    wire_pitch_mm = node.wire_pitch_nm * 1.0e-6
    raw = (
        node.fanout * wire_pitch_mm * gate_count * avg_wl_mm
        / (node.wiring_efficiency * die_area_mm2)
    )
    clamped = min(raw, float(node.max_beol_layers))
    layers = max(MIN_BEOL_LAYERS, clamped - float(layers_saved))
    return BeolEstimate(
        layers=layers,
        raw_layers=raw,
        average_wirelength_mm=avg_wl_mm,
        clamped_at_max=raw > node.max_beol_layers,
    )
