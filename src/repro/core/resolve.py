"""Design resolution: from the user description to computable quantities.

:func:`resolve_design` expands a :class:`~repro.core.design.ChipDesign`
into a :class:`ResolvedDesign` carrying, for every die: the node record,
the Eq. 7 area breakdown, the Eq. 10 BEOL estimate, and the raw Eq. 15
yield — plus assembly-level results: the Table 3 effective yields, the
2.5D floorplan with its Eq. 14 adjacency lengths, the substrate area, and
(for M3D) the merged sequential die. Every downstream carbon calculator
consumes this one structure, so the expensive wirelength math runs once.

Batch studies pass a :class:`ResolveCache`: the structural parts of a
resolution (area breakdown, BEOL estimate, floorplan, validation) depend
only on a small slice of the node record, so perturbing e.g. the defect
density or fab energy between Monte-Carlo draws re-prices yields without
re-running the wirelength pipeline.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.integration import (
    AssemblyFlow,
    BondingMethod,
    IntegrationSpec,
    SubstrateKind,
)
from ..caching import EvictionPolicy, LRUCache
from ..config.parameters import ParameterSet
from ..config.technology import ProcessNode
from ..errors import DesignError
from ..floorplan import Floorplan, place_dies, total_adjacent_length_mm
from .area import AreaBreakdown, resolve_area
from .beol import BeolEstimate, estimate_beol_layers
from .design import ChipDesign, Die
from .yield_model import (
    StackYields,
    die_yield,
    three_d_stack_yields,
    two_five_d_yields,
)


@dataclass(frozen=True)
class ResolvedDie:
    """One die with every derived quantity the carbon model needs."""

    die: Die
    node: ProcessNode
    area: AreaBreakdown
    beol: BeolEstimate
    raw_yield: float

    @property
    def name(self) -> str:
        return self.die.name

    @property
    def area_mm2(self) -> float:
        return self.area.total_mm2

    @property
    def edge_mm(self) -> float:
        """Edge length of the (square-modeled) die, for Eq. 17–18."""
        return self.area_mm2**0.5


@dataclass(frozen=True)
class M3DStack:
    """The merged sequential die of a monolithic-3D design."""

    footprint_mm2: float
    tier_layers: tuple[float, ...]
    tier_nodes: tuple[ProcessNode, ...]
    raw_yield: float


@dataclass(frozen=True)
class SubstrateGeometry:
    """Resolved 2.5D substrate: kind, area, raw yield."""

    kind: SubstrateKind
    area_mm2: float
    raw_yield: float
    adjacent_length_mm: float


@dataclass(frozen=True)
class ResolvedDesign:
    """Everything derived from a design under one parameter set."""

    design: ChipDesign
    spec: IntegrationSpec
    dies: tuple[ResolvedDie, ...]
    stack_yields: StackYields
    floorplan: Floorplan | None = None
    substrate: SubstrateGeometry | None = None
    m3d_stack: M3DStack | None = None

    @property
    def total_die_area_mm2(self) -> float:
        return sum(d.area_mm2 for d in self.dies)

    @property
    def max_die_area_mm2(self) -> float:
        return max(d.area_mm2 for d in self.dies)

    @property
    def is_m3d(self) -> bool:
        return self.m3d_stack is not None


def structure_node_key(node: ProcessNode) -> tuple:
    """The node fields the area/BEOL estimation reads — nothing else.

    Perturbing any *other* field (defect density, EPA/GPA/MPA, alpha, BEOL
    carbon split) cannot change the Eq. 7–10 structure of a die, which is
    what makes the :class:`ResolveCache` effective across Monte-Carlo
    draws and sensitivity sweeps.
    """
    return (
        node.feature_nm,
        node.beta,
        node.sram_density_factor,
        node.rent_exponent,
        node.fanout,
        node.wiring_efficiency,
        node.max_beol_layers,
        node.tsv_diameter_um,
        node.miv_diameter_um,
    )


class ResolveCache:
    """Memo store for the structural (parameter-stable) parts of resolution.

    Three layers, all keyed by value (every record involved is a frozen
    dataclass and therefore hashable):

    * ``die_structure`` — ``(die, spec, stacking, is_top, node-structure)``
      → ``(AreaBreakdown, BeolEstimate)``; the Davis wirelength math runs
      once per distinct key across a whole study;
    * ``floorplans`` — ``(areas, gap, names)`` → :class:`Floorplan`;
    * ``validations`` — ``(design, spec, nodes)`` → the validated spec.

    Every layer is a bounded :class:`repro.caching.LRUCache` sharing one
    :class:`repro.caching.EvictionPolicy`: studies whose every point
    carries a distinct key (e.g. Monte-Carlo draws perturbing a spec
    field) recycle the least-recently-used entries instead of growing
    without limit — and, unlike a stop-inserting bound, recent keys keep
    hitting however long the evaluator lives.

    Yields are *not* cached here: they are cheap and depend on the very
    fields (defect density, bond yield) studies most often perturb.
    """

    def __init__(
        self, limit: int = 4096, policy: "EvictionPolicy | None" = None
    ) -> None:
        #: The shared eviction policy (``limit`` is the compact spelling).
        self.policy = policy if policy is not None else EvictionPolicy(limit)
        self.die_structure = LRUCache(self.policy)
        self.floorplans = LRUCache(self.policy)
        self.validations = LRUCache(self.policy)
        self.hits = 0
        self.misses = 0
        #: Last (design, spec) validated — batch loops hammer one design
        #: with thousands of parameter draws, so an identity check beats
        #: re-hashing the design every call.
        self.last_validation: "tuple | None" = None
        #: id(die) → (die, spec, stacking, is_top, node key, area, beol):
        #: the identity-checked fast row in front of ``die_structure``
        #: (entries pin their die/spec, so ids cannot be recycled while
        #: present).
        self.die_fast = LRUCache(self.policy)

    @property
    def limit(self) -> int:
        return self.policy.max_entries

    def clear(self) -> None:
        self.die_structure.clear()
        self.floorplans.clear()
        self.validations.clear()
        self.hits = 0
        self.misses = 0
        self.last_validation = None
        self.die_fast.clear()


def _resolve_die(
    die: Die,
    params: ParameterSet,
    spec: IntegrationSpec,
    design: ChipDesign,
    is_top_die: bool,
    cache: "ResolveCache | None" = None,
) -> ResolvedDie:
    node = params.node(die.node)
    structure = None
    skey = None
    nkey = None
    if cache is not None:
        nkey = structure_node_key(node)
        fast = cache.die_fast.get(id(die))
        if (
            fast is not None
            and fast[0] is die
            and fast[1] is spec
            and fast[2] is design.stacking
            and fast[3] == is_top_die
            and fast[4] == nkey
        ):
            structure = (fast[5], fast[6])
            cache.hits += 1
        else:
            skey = (die, spec, design.stacking, is_top_die, nkey)
            structure = cache.die_structure.get(skey)
            if structure is not None:
                cache.hits += 1
    if structure is None:
        area = resolve_area(die, node, spec, design.stacking, is_top_die)
        beol = estimate_beol_layers(
            gate_count=area.gate_count,
            die_area_mm2=area.total_mm2,
            node=node,
            layers_saved=spec.beol_layers_saved,
            override=die.beol_layers,
        )
        if cache is not None:
            cache.die_structure[skey] = (area, beol)
            cache.misses += 1
    else:
        area, beol = structure
    if cache is not None and skey is not None:
        cache.die_fast[id(die)] = (
            die, spec, design.stacking, is_top_die, nkey, area, beol
        )
    if die.yield_override is not None:
        raw = die.yield_override
    else:
        raw = die_yield(
            area.total_mm2, node.defect_density_per_cm2, node.alpha
        )
    return ResolvedDie(die=die, node=node, area=area, beol=beol, raw_yield=raw)


def _resolve_m3d(
    dies: tuple[ResolvedDie, ...], params: ParameterSet
) -> M3DStack:
    footprint = max(d.area_mm2 for d in dies)
    worst_d0 = max(d.node.defect_density_per_cm2 for d in dies)
    alpha = dies[0].node.alpha
    raw = die_yield(
        footprint, worst_d0 * params.m3d.defect_density_factor, alpha
    )
    return M3DStack(
        footprint_mm2=footprint,
        tier_layers=tuple(d.beol.layers for d in dies),
        tier_nodes=tuple(d.node for d in dies),
        raw_yield=raw,
    )


def _resolve_substrate(
    resolved_dies: tuple[ResolvedDie, ...],
    floorplan: Floorplan,
    spec: IntegrationSpec,
    params: ParameterSet,
) -> SubstrateGeometry | None:
    kind = spec.substrate
    sub = params.substrate
    adjacent = total_adjacent_length_mm(floorplan)
    if kind is SubstrateKind.NONE or kind is SubstrateKind.ORGANIC:
        # MCM's organic substrate is part of the package (Sec. 3.2.3); its
        # attach yield still matters, so report geometry-free yield only.
        if kind is SubstrateKind.ORGANIC:
            return SubstrateGeometry(
                kind=kind,
                area_mm2=0.0,
                raw_yield=sub.organic_yield,
                adjacent_length_mm=adjacent,
            )
        return None
    total_die_area = sum(d.area_mm2 for d in resolved_dies)
    if kind is SubstrateKind.SILICON_INTERPOSER:
        area = sub.si_interposer_scale * total_die_area          # Eq. 13
        node = params.node(sub.silicon_node)
        raw = die_yield(area, node.defect_density_per_cm2, node.alpha)
    elif kind is SubstrateKind.EMIB_BRIDGE:
        area = sub.emib_scale * sub.die_gap_mm * adjacent        # Eq. 14
        node = params.node(sub.silicon_node)
        raw = die_yield(area, node.defect_density_per_cm2, node.alpha)
    elif kind is SubstrateKind.RDL:
        area = sub.rdl_scale * sub.die_gap_mm * adjacent         # Eq. 14
        raw = sub.rdl_yield
    else:  # pragma: no cover - enum is exhaustive
        raise DesignError(f"unhandled substrate kind {kind}")
    if area <= 0:
        raise DesignError(
            "2.5D substrate area resolved to zero — floorplan has no "
            "adjacent dies"
        )
    return SubstrateGeometry(
        kind=kind, area_mm2=area, raw_yield=raw, adjacent_length_mm=adjacent
    )


def resolve_design(
    design: ChipDesign,
    params: ParameterSet,
    cache: "ResolveCache | None" = None,
) -> ResolvedDesign:
    """Expand a design into all derived quantities (validates first).

    ``cache`` (optional) memoizes the structural sub-results — see
    :class:`ResolveCache`. Results are identical with or without one.
    """
    if cache is None:
        spec = design.validate(params)
    else:
        # Validation reads only the design structure, the integration spec
        # and the *existence* of the die nodes — the latter is re-proved by
        # the node lookups below on every call, so (design, spec) suffices.
        spec = params.integration_spec(design.integration)
        last = cache.last_validation
        if last is None or last[0] is not design or last[1] is not spec:
            vkey = (design, spec)
            if vkey not in cache.validations:
                design.validate(params)
                cache.validations[vkey] = spec
            cache.last_validation = vkey
    n = design.die_count
    resolved = tuple([
        _resolve_die(
            die, params, spec, design, is_top_die=(i == n - 1), cache=cache
        )
        for i, die in enumerate(design.dies)
    ])

    if spec.is_2d:
        yields = StackYields(
            per_die=(resolved[0].raw_yield,), per_bond=()
        )
        return ResolvedDesign(design, spec, resolved, yields)

    if spec.name == "m3d":
        stack = _resolve_m3d(resolved, params)
        yields = StackYields(per_die=(stack.raw_yield,), per_bond=())
        return ResolvedDesign(design, spec, resolved, yields, m3d_stack=stack)

    if spec.is_3d:
        bond = params.bonding.get(spec.bonding, design.assembly)
        yields = three_d_stack_yields(
            [d.raw_yield for d in resolved], bond.bond_yield, design.assembly
        )
        return ResolvedDesign(design, spec, resolved, yields)

    # 2.5D: floorplan, substrate, Table 3 bottom half.
    areas = [d.area_mm2 for d in resolved]
    names = [d.name for d in resolved]
    floorplan = None
    fkey = None
    if cache is not None:
        fkey = (tuple(areas), params.substrate.die_gap_mm, tuple(names))
        floorplan = cache.floorplans.get(fkey)
    if floorplan is None:
        floorplan = place_dies(
            areas, die_gap_mm=params.substrate.die_gap_mm, names=names
        )
        if cache is not None:
            cache.floorplans[fkey] = floorplan
    substrate = _resolve_substrate(resolved, floorplan, spec, params)
    substrate_yield = (
        substrate.raw_yield if substrate is not None
        else params.substrate.organic_yield
    )
    bond = params.bonding.get(BondingMethod.C4, design.assembly)
    yields = two_five_d_yields(
        [d.raw_yield for d in resolved],
        substrate_yield,
        bond.bond_yield,
        design.assembly,
    )
    return ResolvedDesign(
        design, spec, resolved, yields,
        floorplan=floorplan, substrate=substrate,
    )
