"""Lifecycle report: the combined output object of the tool (Fig. 3 right).

:class:`LifecycleReport` bundles the embodied breakdown (Eq. 3), the
operational result (Eq. 16), and the bandwidth check (Sec. 3.4), with
serialization (``to_dict``) and a plain-text rendering used by the CLI and
the benchmark harness.
"""

from __future__ import annotations

from dataclasses import dataclass

from .bandwidth import BandwidthResult
from .embodied import EmbodiedReport
from .operational import OperationalReport


@dataclass(frozen=True)
class LifecycleReport:
    """Total life-cycle carbon of one design (Eq. 1)."""

    design_name: str
    integration: str
    embodied: EmbodiedReport
    bandwidth: BandwidthResult
    operational: OperationalReport | None = None

    @property
    def embodied_kg(self) -> float:
        return self.embodied.total_kg

    @property
    def operational_kg(self) -> float:
        return self.operational.total_kg if self.operational else 0.0

    @property
    def total_kg(self) -> float:
        """Eq. 1: C_total = C_operational + C_emb."""
        return self.embodied_kg + self.operational_kg

    @property
    def valid(self) -> bool:
        """False when the Sec. 3.4 bandwidth constraint is violated."""
        return self.bandwidth.valid

    def to_dict(self) -> dict:
        """JSON-ready representation (stable key ordering)."""
        data: dict = {
            "design": self.design_name,
            "integration": self.integration,
            "valid": self.valid,
            "embodied_kg": self.embodied_kg,
            "embodied_breakdown_kg": self.embodied.breakdown(),
            "per_die": [
                {
                    "name": r.name,
                    "node": r.node,
                    "area_mm2": r.die_area_mm2,
                    "beol_layers": r.beol_layers,
                    "yield": r.effective_yield,
                    "carbon_kg": r.carbon_kg,
                }
                for r in self.embodied.die.records
            ],
            "bandwidth": {
                "constrained": self.bandwidth.constrained,
                "required_tb_s": self.bandwidth.required_tb_s,
                "achieved_tb_s": self.bandwidth.achieved_tb_s,
                "ratio": self.bandwidth.ratio,
                "degradation": self.bandwidth.degradation,
            },
            "total_kg": self.total_kg,
        }
        if self.operational is not None:
            data["operational_kg"] = self.operational.total_kg
            data["operational"] = {
                "workload": self.operational.workload_name,
                "compute_energy_kwh": self.operational.compute_energy_kwh,
                "io_energy_kwh": self.operational.io_energy_kwh,
                "lifetime_years": self.operational.lifetime_years,
                "use_ci_kg_per_kwh": self.operational.use_ci_kg_per_kwh,
            }
        return data

    def render(self) -> str:
        """Human-readable multi-line summary."""
        lines = [
            f"design        : {self.design_name}",
            f"integration   : {self.integration}",
            f"valid         : {'yes' if self.valid else 'NO (bandwidth)'}",
            f"embodied      : {self.embodied_kg:9.3f} kg CO2e",
        ]
        for component, kg in self.embodied.breakdown().items():
            lines.append(f"  - {component:<11}: {kg:9.3f} kg CO2e")
        if self.operational is not None:
            lines.append(
                f"operational   : {self.operational.total_kg:9.3f} kg CO2e "
                f"({self.operational.workload_name}, "
                f"{self.operational.lifetime_years:g} y)"
            )
        if self.bandwidth.constrained:
            lines.append(
                f"bandwidth     : {self.bandwidth.achieved_tb_s:8.2f} / "
                f"{self.bandwidth.required_tb_s:8.2f} TB/s "
                f"(deg {self.bandwidth.degradation * 100:.1f}%)"
            )
        lines.append(f"total         : {self.total_kg:9.3f} kg CO2e")
        return "\n".join(lines)


def format_report_table(
    reports: "list[LifecycleReport]", title: str = ""
) -> str:
    """Fixed-width comparison table across designs (Fig. 5-style rows)."""
    header = (
        f"{'design':<34} {'integ.':<14} {'die':>8} {'bond':>7} {'pkg':>7} "
        f"{'subst':>7} {'emb':>8} {'oper':>8} {'total':>8} {'valid':>6}"
    )
    lines = []
    if title:
        lines.append(title)
    lines.append(header)
    lines.append("-" * len(header))
    for report in reports:
        b = report.embodied.breakdown()
        lines.append(
            f"{report.design_name:<34.34} {report.integration:<14} "
            f"{b['die']:8.2f} {b['bonding']:7.2f} {b['packaging']:7.2f} "
            f"{b['interposer']:7.2f} {report.embodied_kg:8.2f} "
            f"{report.operational_kg:8.2f} {report.total_kg:8.2f} "
            f"{'yes' if report.valid else 'NO':>6}"
        )
    return "\n".join(lines)
