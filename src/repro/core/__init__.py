"""Core 3D-Carbon model: Eq. 2–18 of the paper."""

from .area import AreaBreakdown, equivalent_gate_count, gate_area_mm2, resolve_area
from .bandwidth import (
    BandwidthResult,
    degradation_from_ratio,
    evaluate_bandwidth,
    io_lane_count,
)
from .beol import MIN_BEOL_LAYERS, BeolEstimate, estimate_beol_layers
from .bonding_carbon import BondingCarbonResult, BondRecord, bonding_carbon
from .design import ChipDesign, Die, DieKind, PackageSpec
from .die_carbon import DieCarbonRecord, DieCarbonResult, die_manufacturing_carbon
from .dpw import (
    dies_per_wafer,
    edge_loss_fraction,
    effective_area_per_die_mm2,
)
from .embodied import EmbodiedReport, embodied_carbon
from .interposer_carbon import InterposerCarbonResult, interposer_carbon
from .metrics import (
    ChoiceRegime,
    DecisionMetrics,
    decision_metrics,
    format_decision_table,
)
from .model import CarbonModel, evaluate_design
from .operational import (
    DieOperationalRecord,
    OperationalReport,
    SuiteOperationalReport,
    Workload,
    WorkloadSuite,
    operational_carbon,
    operational_carbon_suite,
)
from .packaging_carbon import (
    PackagingCarbonResult,
    package_base_area_mm2,
    packaging_carbon,
)
from .report import LifecycleReport, format_report_table
from .resolve import (
    M3DStack,
    ResolvedDesign,
    ResolvedDie,
    SubstrateGeometry,
    resolve_design,
)
from .wafer import (
    WaferCarbonBreakdown,
    m3d_wafer_carbon_per_cm2,
    wafer_carbon_kg,
    wafer_carbon_per_cm2,
)
from .yield_model import (
    StackYields,
    die_yield,
    three_d_stack_yields,
    two_five_d_yields,
)

__all__ = [
    "AreaBreakdown",
    "BandwidthResult",
    "BeolEstimate",
    "BondRecord",
    "BondingCarbonResult",
    "CarbonModel",
    "ChipDesign",
    "ChoiceRegime",
    "DecisionMetrics",
    "Die",
    "DieCarbonRecord",
    "DieCarbonResult",
    "DieKind",
    "DieOperationalRecord",
    "EmbodiedReport",
    "InterposerCarbonResult",
    "LifecycleReport",
    "M3DStack",
    "MIN_BEOL_LAYERS",
    "OperationalReport",
    "PackageSpec",
    "PackagingCarbonResult",
    "ResolvedDesign",
    "ResolvedDie",
    "StackYields",
    "SubstrateGeometry",
    "WaferCarbonBreakdown",
    "SuiteOperationalReport",
    "Workload",
    "WorkloadSuite",
    "bonding_carbon",
    "operational_carbon_suite",
    "decision_metrics",
    "degradation_from_ratio",
    "die_manufacturing_carbon",
    "die_yield",
    "dies_per_wafer",
    "edge_loss_fraction",
    "effective_area_per_die_mm2",
    "embodied_carbon",
    "equivalent_gate_count",
    "estimate_beol_layers",
    "evaluate_bandwidth",
    "evaluate_design",
    "format_decision_table",
    "format_report_table",
    "gate_area_mm2",
    "interposer_carbon",
    "io_lane_count",
    "m3d_wafer_carbon_per_cm2",
    "operational_carbon",
    "package_base_area_mm2",
    "packaging_carbon",
    "resolve_area",
    "resolve_design",
    "three_d_stack_yields",
    "two_five_d_yields",
    "wafer_carbon_kg",
    "wafer_carbon_per_cm2",
]
