"""I/O bandwidth constraint (Sec. 3.4, Eq. 18).

2.5D ICs replace on-chip wires with off-die interfaces; the paper requires
them to sustain the on-chip bandwidth of their 2D counterpart. Per die,

    BW = N_I/O · BW_per_I/O            (Eq. 18)
    N_I/O = L_edge · D_pitch · N_BEOL  (the N_pitch of Eq. 17)

and the assembly's link bandwidth is limited by its weakest die interface.
Following MCM-GPU (Arunkumar ISCA'17), throughput degrades by 20 % when
the interface provides half of the on-chip bandwidth; below that ratio the
fixed-throughput requirement cannot be met and the design is *invalid*.
3D ICs are assumed to match on-chip bandwidth (fine vertical pitch), so
the constraint binds only for 2.5D technologies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.parameters import ParameterSet
from ..units import gbps_to_bits_per_s, terabytes_per_s
from .resolve import ResolvedDesign, ResolvedDie


@dataclass(frozen=True)
class BandwidthResult:
    """Outcome of the Sec. 3.4 check for one design."""

    constrained: bool            # False for 2D/3D (matches on-chip BW)
    required_tb_s: float
    achieved_tb_s: float
    ratio: float                 # achieved / required (1.0 when unconstrained)
    degradation: float           # throughput loss fraction
    valid: bool
    io_lanes_per_die: tuple[float, ...] = ()

    @property
    def runtime_stretch(self) -> float:
        """Fixed-work runtime multiplier 1/(1−degradation)."""
        return 1.0 / (1.0 - self.degradation) if self.degradation < 1.0 else float("inf")


_UNCONSTRAINED = BandwidthResult(
    constrained=False,
    required_tb_s=0.0,
    achieved_tb_s=0.0,
    ratio=1.0,
    degradation=0.0,
    valid=True,
)


def io_lane_count(rdie: ResolvedDie, spec_density_per_mm_per_layer: float) -> float:
    """N_pitch of Eq. 17: die edge × linear I/O density × BEOL layers."""
    return (
        rdie.edge_mm * spec_density_per_mm_per_layer * rdie.beol.layers
    )


def degradation_from_ratio(ratio: float, params: ParameterSet) -> float:
    """Linear MCM-GPU degradation model through (1, 0) and (0.5, 20 %)."""
    bw = params.bandwidth
    if ratio >= 1.0:
        return 0.0
    slope = bw.degradation_at_half_bw / (1.0 - bw.invalid_bw_ratio)
    return min(1.0, (1.0 - ratio) * slope)


def evaluate_bandwidth(
    resolved: ResolvedDesign, params: ParameterSet
) -> BandwidthResult:
    """Run the Sec. 3.4 constraint for a resolved design."""
    spec = resolved.spec
    bw = params.bandwidth
    if (
        not bw.enabled
        or spec.bandwidth_matches_2d
        or resolved.design.throughput_tops is None
    ):
        return _UNCONSTRAINED

    # Required: the 2D counterpart's on-chip bandwidth (TB/s); TOPS ×
    # bytes/op = 1e12 byte/s = 1 TB/s per unit product.
    required = resolved.design.throughput_tops * bw.traffic_bytes_per_op

    lanes = tuple(
        io_lane_count(rdie, spec.io_density_per_mm_per_layer)
        for rdie in resolved.dies
    )
    per_die_tb_s = [
        terabytes_per_s(n * gbps_to_bits_per_s(spec.data_rate_gbps))
        for n in lanes
    ]
    achieved = min(per_die_tb_s)
    ratio = achieved / required if required > 0 else 1.0
    degradation = degradation_from_ratio(ratio, params)
    return BandwidthResult(
        constrained=True,
        required_tb_s=required,
        achieved_tb_s=achieved,
        ratio=ratio,
        degradation=degradation,
        valid=ratio >= bw.invalid_bw_ratio,
        io_lanes_per_die=lanes,
    )
