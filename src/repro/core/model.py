"""Top-level façade: :class:`CarbonModel` (the whole of Fig. 3).

Wraps design resolution, embodied carbon (Eq. 3), the bandwidth constraint
(Sec. 3.4), operational carbon (Eq. 16), and lifecycle assembly (Eq. 1)
behind one object::

    model = CarbonModel(design, fab_location="taiwan")
    report = model.evaluate(Workload.autonomous_vehicle())

Resolution is cached, so calling ``embodied()`` and ``operational()``
separately costs one wirelength evaluation, not two. Operational results
are memoized per workload (Eq. 16 is deterministic given the resolved
design), so ``evaluate(w)`` followed by ``operational(w)`` — or a suite
containing ``w`` — computes Eq. 16 once per distinct workload.

For whole *studies* (sweeps, Monte-Carlo, search) use
:class:`repro.engine.BatchEvaluator`, which additionally shares work
across designs and parameter sets.
"""

from __future__ import annotations

from ..config.parameters import DEFAULT_PARAMETERS, ParameterSet
from .bandwidth import BandwidthResult, evaluate_bandwidth
from .design import ChipDesign
from .embodied import EmbodiedReport, embodied_carbon
from .operational import (
    OperationalReport,
    SuiteOperationalReport,
    Workload,
    WorkloadSuite,
    operational_carbon,
)
from .report import LifecycleReport
from .resolve import ResolvedDesign, resolve_design


class CarbonModel:
    """3D-Carbon evaluation of one hardware design."""

    def __init__(
        self,
        design: ChipDesign,
        params: ParameterSet | None = None,
        fab_location: "str | float" = "taiwan",
        efficiency_plugin=None,
    ) -> None:
        self.design = design
        self.params = params if params is not None else DEFAULT_PARAMETERS
        self.efficiency_plugin = efficiency_plugin
        self._fab_grid = self.params.grid(fab_location)
        self._resolved: ResolvedDesign | None = None
        self._embodied: EmbodiedReport | None = None
        self._bandwidth: BandwidthResult | None = None
        self._operational: dict[Workload, OperationalReport] = {}

    @property
    def fab_ci_kg_per_kwh(self) -> float:
        """CI_emb — the manufacturing grid's carbon intensity."""
        return self._fab_grid.kg_co2_per_kwh

    def resolved(self) -> ResolvedDesign:
        """The design with all derived quantities (cached)."""
        if self._resolved is None:
            self._resolved = resolve_design(self.design, self.params)
        return self._resolved

    def embodied(self) -> EmbodiedReport:
        """Eq. 3 embodied breakdown (cached)."""
        if self._embodied is None:
            self._embodied = embodied_carbon(
                self.resolved(), self.params, self.fab_ci_kg_per_kwh
            )
        return self._embodied

    def bandwidth(self) -> BandwidthResult:
        """Sec. 3.4 bandwidth check (cached)."""
        if self._bandwidth is None:
            self._bandwidth = evaluate_bandwidth(self.resolved(), self.params)
        return self._bandwidth

    def operational(self, workload: Workload) -> OperationalReport:
        """Eq. 16 operational carbon under ``workload`` (cached per workload)."""
        cached = self._operational.get(workload)
        if cached is None:
            cached = operational_carbon(
                self.resolved(), self.params, workload, self.bandwidth(),
                self.efficiency_plugin,
            )
            self._operational[workload] = cached
        return cached

    def operational_suite(self, suite: WorkloadSuite) -> SuiteOperationalReport:
        """Eq. 16's Σ_k over a multi-application suite.

        Routed through the per-workload cache, so a suite sharing
        workloads with earlier ``operational()``/``evaluate()`` calls does
        not recompute them.
        """
        return SuiteOperationalReport(
            design_name=self.design.name,
            suite_name=suite.name,
            lifetime_years=suite.lifetime_years,
            per_workload=tuple(
                self.operational(workload) for workload in suite.workloads
            ),
        )

    def evaluate(self, workload: Workload | None = None) -> LifecycleReport:
        """Full lifecycle report; operational only when a workload is given."""
        operational = (
            self.operational(workload) if workload is not None else None
        )
        return LifecycleReport(
            design_name=self.design.name,
            integration=self.resolved().spec.name,
            embodied=self.embodied(),
            bandwidth=self.bandwidth(),
            operational=operational,
        )


def evaluate_design(
    design: ChipDesign,
    workload: Workload | None = None,
    params: ParameterSet | None = None,
    fab_location: "str | float" = "taiwan",
) -> LifecycleReport:
    """One-shot convenience wrapper around :class:`CarbonModel`."""
    return CarbonModel(design, params, fab_location).evaluate(workload)
