"""Top-level façade: :class:`CarbonModel` (the whole of Fig. 3).

Wraps design resolution, embodied carbon (Eq. 3), the bandwidth constraint
(Sec. 3.4), operational carbon (Eq. 16), and lifecycle assembly (Eq. 1)
behind one object::

    model = CarbonModel(design, fab_location="taiwan")
    report = model.evaluate(Workload.autonomous_vehicle())

Since the pipeline refactor the model is a thin scalar driver over the
``repro3d`` :class:`repro.pipeline.backends.Repro3DBackend`: every part
accessor (:meth:`resolved`, :meth:`embodied`, :meth:`bandwidth`,
:meth:`operational`) runs the corresponding explicit pipeline stage, and
an instance memo keyed on the stage fingerprints preserves the old
caching behaviour — resolution happens once, Eq. 16 once per distinct
workload — while guaranteeing the exact stage functions (and therefore
bit-identical numbers) of every other consumer of the backend protocol.

For whole *studies* (sweeps, Monte-Carlo, search) use
:class:`repro.engine.BatchEvaluator`, which additionally shares work
across designs and parameter sets.
"""

from __future__ import annotations

from ..config.parameters import DEFAULT_PARAMETERS, ParameterSet
from ..pipeline.backends import Repro3DBackend
from ..pipeline.stage import EvalContext, PipelineRun
from .bandwidth import BandwidthResult
from .design import ChipDesign
from .embodied import EmbodiedReport
from .operational import (
    OperationalReport,
    SuiteOperationalReport,
    Workload,
    WorkloadSuite,
)
from .report import LifecycleReport
from .resolve import ResolvedDesign


class CarbonModel:
    """3D-Carbon evaluation of one hardware design."""

    def __init__(
        self,
        design: ChipDesign,
        params: ParameterSet | None = None,
        fab_location: "str | float" = "taiwan",
        efficiency_plugin=None,
    ) -> None:
        self.design = design
        self.params = params if params is not None else DEFAULT_PARAMETERS
        self.fab_location = fab_location
        self.efficiency_plugin = efficiency_plugin
        self._fab_grid = self.params.grid(fab_location)
        self.backend = Repro3DBackend(efficiency_plugin=efficiency_plugin)
        #: Stage memo shared by every run of this model — keyed on the
        #: stage fingerprints, so ``evaluate(w)`` after ``embodied()``
        #: reuses the resolution and an ``operational_suite`` sharing
        #: workloads with earlier calls computes Eq. 16 once each.
        self._memo: dict = {}

    @property
    def fab_ci_kg_per_kwh(self) -> float:
        """CI_emb — the manufacturing grid's carbon intensity."""
        return self._fab_grid.kg_co2_per_kwh

    def _run(self, workload: Workload | None) -> PipelineRun:
        ctx = EvalContext(
            design=self.design,
            params=self.params,
            fab_location=self.fab_location,
            ci_fab=self.fab_ci_kg_per_kwh,
            workload=workload,
        )
        return PipelineRun(self.backend, ctx, memo=self._memo)

    def resolved(self) -> ResolvedDesign:
        """The design with all derived quantities (cached)."""
        return self._run(None).output("resolve")

    def embodied(self) -> EmbodiedReport:
        """Eq. 3 embodied breakdown (cached)."""
        return self._run(None).output("embodied")

    def bandwidth(self) -> BandwidthResult:
        """Sec. 3.4 bandwidth check (cached)."""
        return self._run(None).output("bandwidth")

    def operational(self, workload: Workload) -> OperationalReport:
        """Eq. 16 operational carbon under ``workload`` (cached per workload)."""
        return self._run(workload).output("operational")

    def operational_suite(self, suite: WorkloadSuite) -> SuiteOperationalReport:
        """Eq. 16's Σ_k over a multi-application suite.

        Routed through the stage memo, so a suite sharing workloads with
        earlier ``operational()``/``evaluate()`` calls does not recompute
        them.
        """
        return SuiteOperationalReport(
            design_name=self.design.name,
            suite_name=suite.name,
            lifetime_years=suite.lifetime_years,
            per_workload=tuple(
                self.operational(workload) for workload in suite.workloads
            ),
        )

    def evaluate(self, workload: Workload | None = None) -> LifecycleReport:
        """Full lifecycle report; operational only when a workload is given."""
        return self._run(workload).result()


def evaluate_design(
    design: ChipDesign,
    workload: Workload | None = None,
    params: ParameterSet | None = None,
    fab_location: "str | float" = "taiwan",
) -> LifecycleReport:
    """One-shot convenience wrapper around :class:`CarbonModel`."""
    return CarbonModel(design, params, fab_location).evaluate(workload)
