"""2.5D substrate carbon: RDL / EMIB / silicon interposer (Eq. 13–14).

Silicon substrates (interposer, EMIB bridge) are "modeled similarly to die
carbon" (Sec. 3.2.4): BEOL-only wafer carbon on the dedicated interposer
node, divided by interposer-per-wafer (Eq. 5) and the Table 3 effective
substrate yield. InFO's RDL uses the per-area RDL characterization
``CPA_RDL`` instead (panel-level build-up, not a processed silicon wafer).
MCM's organic substrate is part of the package (zero here).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.integration import SubstrateKind
from ..config.parameters import ParameterSet
from ..units import mm2_to_cm2
from .dpw import effective_area_per_die_mm2
from .resolve import ResolvedDesign
from .wafer import wafer_carbon_per_cm2


@dataclass(frozen=True)
class InterposerCarbonResult:
    """Eq. 13–14 output (zero for designs without a priced substrate)."""

    kind: SubstrateKind
    area_mm2: float
    effective_yield: float
    carbon_kg: float


_NO_SUBSTRATE = InterposerCarbonResult(
    kind=SubstrateKind.NONE, area_mm2=0.0, effective_yield=1.0, carbon_kg=0.0
)


def interposer_carbon_kg(
    resolved: ResolvedDesign,
    params: ParameterSet,
    ci_fab_kg_per_kwh: float,
) -> float:
    """C_int total only — the record-free twin of :func:`interposer_carbon`.

    Keep the arithmetic in sync with the record builder; the equivalence
    tests pin the two paths to bit-identical totals.
    """
    substrate = resolved.substrate
    if substrate is None or substrate.kind is SubstrateKind.ORGANIC:
        return 0.0
    eff_yield = resolved.stack_yields.substrate
    if eff_yield is None:
        eff_yield = substrate.raw_yield
    if substrate.kind is SubstrateKind.RDL:
        return (
            params.substrate.rdl_cpa_kg_per_cm2
            * mm2_to_cm2(substrate.area_mm2)
            / eff_yield
        )
    node = params.node(params.substrate.silicon_node)
    breakdown = wafer_carbon_per_cm2(
        node,
        ci_fab_kg_per_kwh,
        beol_layers=float(node.max_beol_layers),
        beol_aware=params.beol_aware,
    )
    eff_area = effective_area_per_die_mm2(
        params.substrate.wafer_diameter_mm, substrate.area_mm2
    )
    return breakdown.total_kg_per_cm2 * mm2_to_cm2(eff_area) / eff_yield


def interposer_carbon(
    resolved: ResolvedDesign,
    params: ParameterSet,
    ci_fab_kg_per_kwh: float,
) -> InterposerCarbonResult:
    """C_int of Eq. 3 for the design's substrate (if any)."""
    substrate = resolved.substrate
    if substrate is None or substrate.kind is SubstrateKind.ORGANIC:
        return _NO_SUBSTRATE

    eff_yield = resolved.stack_yields.substrate
    if eff_yield is None:
        eff_yield = substrate.raw_yield

    if substrate.kind is SubstrateKind.RDL:
        carbon = (
            params.substrate.rdl_cpa_kg_per_cm2
            * mm2_to_cm2(substrate.area_mm2)
            / eff_yield
        )
        return InterposerCarbonResult(
            kind=substrate.kind,
            area_mm2=substrate.area_mm2,
            effective_yield=eff_yield,
            carbon_kg=carbon,
        )

    # Silicon interposer or EMIB bridge: priced like a (BEOL-only) die.
    node = params.node(params.substrate.silicon_node)
    breakdown = wafer_carbon_per_cm2(
        node,
        ci_fab_kg_per_kwh,
        beol_layers=float(node.max_beol_layers),
        beol_aware=params.beol_aware,
    )
    eff_area = effective_area_per_die_mm2(
        params.substrate.wafer_diameter_mm, substrate.area_mm2
    )
    carbon = breakdown.total_kg_per_cm2 * mm2_to_cm2(eff_area) / eff_yield
    return InterposerCarbonResult(
        kind=substrate.kind,
        area_mm2=substrate.area_mm2,
        effective_yield=eff_yield,
        carbon_kg=carbon,
    )
