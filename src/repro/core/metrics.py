"""Sustainable decision-making metrics (Sec. 2.2.2, Eq. 2).

Indifference point and breakeven time, following GreenChip (Kline et al.,
SUSCOM'19), generalized to signed embodied/operational deltas:

* **Choosing** a 3D/2.5D IC over a 2D IC for a new deployment:
  ``T_c = (C_emb^3D − C_emb^2D) / (CI_use · (P^2D − P^3D))`` — with a
  fixed workload, the denominator is the *annual operational-carbon
  difference*. Four regimes exist depending on the signs of the embodied
  delta and the operational savings rate.
* **Replacing** an already-deployed 2D IC (its embodied carbon is sunk):
  ``T_r = C_emb^3D / (CI_use · (P^2D − P^3D))`` — the new chip's full
  embodied cost must be amortized by operational savings; infinite when
  the alternative does not save operational carbon.

Both are compared against the device's (remaining) lifetime ``T_life``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from ..errors import InvalidDesignError, ParameterError
from .report import LifecycleReport


class ChoiceRegime(str, Enum):
    """Sign structure of the choosing decision."""

    ALWAYS_BETTER = "always"        # saves embodied AND operational
    BETTER_UNTIL_TC = "until_tc"    # saves embodied, costs operational
    BETTER_AFTER_TC = "after_tc"    # costs embodied, saves operational
    NEVER_BETTER = "never"          # costs both


@dataclass(frozen=True)
class DecisionMetrics:
    """Eq. 2 outputs for one (2D baseline, 3D/2.5D alternative) pair."""

    baseline_name: str
    alternative_name: str
    lifetime_years: float
    embodied_delta_kg: float          # C_emb_alt − C_emb_base
    annual_op_savings_kg: float       # (C_op_base − C_op_alt) / lifetime
    embodied_save_ratio: float        # 1 − C_emb_alt / C_emb_base
    overall_save_ratio: float         # 1 − C_total_alt / C_total_base
    tc_years: float
    tr_years: float
    regime: ChoiceRegime

    @property
    def choose_recommended(self) -> bool:
        """Should a new deployment pick the alternative? (Sec. 5.2 rule)."""
        if self.regime is ChoiceRegime.ALWAYS_BETTER:
            return True
        if self.regime is ChoiceRegime.NEVER_BETTER:
            return False
        if self.regime is ChoiceRegime.BETTER_UNTIL_TC:
            return self.lifetime_years <= self.tc_years
        return self.lifetime_years >= self.tc_years

    @property
    def replace_recommended(self) -> bool:
        """Should an installed 2D baseline be replaced mid-life?"""
        return self.tr_years < self.lifetime_years


def decision_metrics(
    baseline: LifecycleReport,
    alternative: LifecycleReport,
    lifetime_years: float | None = None,
) -> DecisionMetrics:
    """Compute T_c/T_r and save ratios for an alternative vs a baseline.

    Both reports need operational results over the same workload; the
    alternative must satisfy the bandwidth constraint (the paper excludes
    invalid designs from Table 5).
    """
    if baseline.operational is None or alternative.operational is None:
        raise ParameterError(
            "decision metrics need operational results on both reports"
        )
    if not alternative.valid:
        raise InvalidDesignError(
            f"{alternative.design_name} violates the bandwidth constraint; "
            f"the paper classifies it invalid (Sec. 3.4)"
        )
    if lifetime_years is None:
        lifetime_years = baseline.operational.lifetime_years
    if lifetime_years <= 0:
        raise ParameterError("lifetime must be positive")

    emb_delta = alternative.embodied_kg - baseline.embodied_kg
    op_savings_rate = (
        baseline.operational.total_kg - alternative.operational.total_kg
    ) / baseline.operational.lifetime_years

    if emb_delta <= 0 and op_savings_rate >= 0:
        regime = ChoiceRegime.ALWAYS_BETTER
        tc = 0.0
    elif emb_delta <= 0 and op_savings_rate < 0:
        regime = ChoiceRegime.BETTER_UNTIL_TC
        tc = emb_delta / op_savings_rate  # both negative → positive years
    elif emb_delta > 0 and op_savings_rate > 0:
        regime = ChoiceRegime.BETTER_AFTER_TC
        tc = emb_delta / op_savings_rate
    else:
        regime = ChoiceRegime.NEVER_BETTER
        tc = math.inf

    tr = (
        alternative.embodied_kg / op_savings_rate
        if op_savings_rate > 0
        else math.inf
    )

    emb_save = (
        1.0 - alternative.embodied_kg / baseline.embodied_kg
        if baseline.embodied_kg > 0
        else 0.0
    )
    overall_save = (
        1.0 - alternative.total_kg / baseline.total_kg
        if baseline.total_kg > 0
        else 0.0
    )

    return DecisionMetrics(
        baseline_name=baseline.design_name,
        alternative_name=alternative.design_name,
        lifetime_years=lifetime_years,
        embodied_delta_kg=emb_delta,
        annual_op_savings_kg=op_savings_rate,
        embodied_save_ratio=emb_save,
        overall_save_ratio=overall_save,
        tc_years=tc,
        tr_years=tr,
        regime=regime,
    )


def format_decision_table(metrics: "list[DecisionMetrics]") -> str:
    """Table 5-style text rendering."""
    header = (
        f"{'alternative':<34} {'emb save':>9} {'ovr save':>9} "
        f"{'Tc (y)':>8} {'Tr (y)':>8} {'choose':>7} {'replace':>8}"
    )
    lines = [header, "-" * len(header)]
    for m in metrics:
        tc = "inf" if math.isinf(m.tc_years) else (
            ">0" if m.regime is ChoiceRegime.ALWAYS_BETTER
            else f"{m.tc_years:.1f}"
        )
        tr = "inf" if math.isinf(m.tr_years) else f"{m.tr_years:.1f}"
        lines.append(
            f"{m.alternative_name:<34.34} {m.embodied_save_ratio * 100:8.2f}% "
            f"{m.overall_save_ratio * 100:8.2f}% {tc:>8} {tr:>8} "
            f"{'yes' if m.choose_recommended else 'no':>7} "
            f"{'yes' if m.replace_recommended else 'no':>8}"
        )
    return "\n".join(lines)
