"""Die manufacturing carbon (Eq. 4).

``C_die = Σ_i C_wafer_i / DPW_i · 1/Y_die_i`` — per die: the BEOL-aware
wafer carbon (Eq. 6) divided across the dies on the wafer (Eq. 5), divided
by the Table 3 effective yield. Monolithic 3D prices one merged sequential
die on the tier footprint instead.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.parameters import ParameterSet
from ..units import mm2_to_cm2
from .dpw import effective_area_per_die_mm2
from .resolve import ResolvedDesign
from .wafer import m3d_wafer_carbon_per_cm2, wafer_carbon_per_cm2


@dataclass(frozen=True)
class DieCarbonRecord:
    """Manufacturing carbon of one die (or one M3D merged die)."""

    name: str
    node: str
    die_area_mm2: float
    effective_wafer_area_mm2: float  # A_wafer / DPW share
    beol_layers: float
    carbon_per_cm2: float            # BEOL-aware Eq. 6 per-area carbon
    effective_yield: float           # Table 3 composed yield
    carbon_kg: float


@dataclass(frozen=True)
class DieCarbonResult:
    """Eq. 4 total with per-die records."""

    records: tuple[DieCarbonRecord, ...]

    @property
    def total_kg(self) -> float:
        return sum(r.carbon_kg for r in self.records)


def die_manufacturing_carbon(
    resolved: ResolvedDesign,
    params: ParameterSet,
    ci_fab_kg_per_kwh: float,
) -> DieCarbonResult:
    """Eq. 4 over all dies of the design."""
    if resolved.is_m3d:
        return _m3d_die_carbon(resolved, params, ci_fab_kg_per_kwh)

    records = []
    for rdie, eff_yield in zip(resolved.dies, resolved.stack_yields.per_die):
        breakdown = wafer_carbon_per_cm2(
            rdie.node,
            ci_fab_kg_per_kwh,
            beol_layers=rdie.beol.layers,
            beol_aware=params.beol_aware,
        )
        eff_area = effective_area_per_die_mm2(
            params.wafer_diameter_mm, rdie.area_mm2
        )
        carbon = (
            breakdown.total_kg_per_cm2 * mm2_to_cm2(eff_area) / eff_yield
        )
        records.append(
            DieCarbonRecord(
                name=rdie.name,
                node=rdie.node.name,
                die_area_mm2=rdie.area_mm2,
                effective_wafer_area_mm2=eff_area,
                beol_layers=rdie.beol.layers,
                carbon_per_cm2=breakdown.total_kg_per_cm2,
                effective_yield=eff_yield,
                carbon_kg=carbon,
            )
        )
    return DieCarbonResult(records=tuple(records))


def die_carbon_total_kg(
    resolved: ResolvedDesign,
    params: ParameterSet,
    ci_fab_kg_per_kwh: float,
) -> float:
    """Eq. 4 total only — the record-free twin of
    :func:`die_manufacturing_carbon`.

    Keep the arithmetic line-for-line in sync with the record builder
    (same expressions, same summation order): batch studies take this
    path per Monte-Carlo draw, and the equivalence tests pin the two
    paths to bit-identical totals.
    """
    if resolved.is_m3d:
        return _m3d_die_carbon(
            resolved, params, ci_fab_kg_per_kwh
        ).total_kg
    total = 0.0
    for rdie, eff_yield in zip(resolved.dies, resolved.stack_yields.per_die):
        breakdown = wafer_carbon_per_cm2(
            rdie.node,
            ci_fab_kg_per_kwh,
            beol_layers=rdie.beol.layers,
            beol_aware=params.beol_aware,
        )
        eff_area = effective_area_per_die_mm2(
            params.wafer_diameter_mm, rdie.area_mm2
        )
        total += (
            breakdown.total_kg_per_cm2 * mm2_to_cm2(eff_area) / eff_yield
        )
    return total


def _m3d_die_carbon(
    resolved: ResolvedDesign,
    params: ParameterSet,
    ci_fab_kg_per_kwh: float,
) -> DieCarbonResult:
    stack = resolved.m3d_stack
    assert stack is not None
    breakdown = m3d_wafer_carbon_per_cm2(
        tiers=list(zip(stack.tier_nodes, stack.tier_layers)),
        ci_fab_kg_per_kwh=ci_fab_kg_per_kwh,
        m3d=params.m3d,
        beol_aware=params.beol_aware,
    )
    eff_area = effective_area_per_die_mm2(
        params.wafer_diameter_mm, stack.footprint_mm2
    )
    eff_yield = resolved.stack_yields.per_die[0]
    carbon = breakdown.total_kg_per_cm2 * mm2_to_cm2(eff_area) / eff_yield
    record = DieCarbonRecord(
        name=f"{resolved.design.name}_m3d_stack",
        node="+".join(node.name for node in stack.tier_nodes),
        die_area_mm2=stack.footprint_mm2,
        effective_wafer_area_mm2=eff_area,
        beol_layers=sum(stack.tier_layers),
        carbon_per_cm2=breakdown.total_kg_per_cm2,
        effective_yield=eff_yield,
        carbon_kg=carbon,
    )
    return DieCarbonResult(records=(record,))
