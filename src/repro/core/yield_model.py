"""Yield models: Eq. 15 and the stacking compositions of Table 3.

The raw die/substrate yield follows the negative-binomial distribution of
the Chiplet Actuary model (Feng DAC'22):

    y = (1 + A·D₀/α)^(−α)

with area ``A`` in cm², defect density ``D₀`` in 1/cm², and clustering
parameter ``α``. On top of it, Table 3 composes *effective* yields that
account for when defects become detectable:

* **3D D2W** — dies are tested before stacking (known good die), but die i
  must additionally survive the N−i bonding steps that happen after it is
  placed: ``Y_die_i = y_die_i · y_bond^(N−i)``.
* **3D W2W** — wafers are bonded blind, so every die inherits the whole
  stack's fate: ``Y_die_i = Π_j y_die_j · y_bond^(N−1)`` (identical for the
  bonding yield column: bonding energy is wasted on stacks that were
  already dead).
* **2.5D chip-first** — dies are embedded before the substrate is built, so
  a substrate loss kills them: ``Y_die_i = y_die_i · y_substrate``; there
  is no separate bond step (``Y_bond = 1``).
* **2.5D chip-last** — dies are attached to a finished substrate; any of
  the N bond steps failing scraps the populated assembly:
  ``Y_die_i = y_die_i · Π_j y_bond_j``, and the substrate also divides by
  the bond product.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..config.integration import AssemblyFlow
from ..errors import DesignError, ParameterError
from ..units import mm2_to_cm2


def die_yield(
    area_mm2: float, defect_density_per_cm2: float, alpha: float
) -> float:
    """Eq. 15: negative-binomial yield of one die."""
    if area_mm2 <= 0:
        raise ParameterError(f"die area must be positive, got {area_mm2}")
    if defect_density_per_cm2 < 0:
        raise ParameterError(
            f"defect density must be >= 0, got {defect_density_per_cm2}"
        )
    if alpha <= 0:
        raise ParameterError(f"alpha must be positive, got {alpha}")
    area_cm2 = mm2_to_cm2(area_mm2)
    return (1.0 + area_cm2 * defect_density_per_cm2 / alpha) ** (-alpha)


@dataclass(frozen=True)
class StackYields:
    """Effective yields after Table 3 composition.

    ``per_die[i]`` divides die i's manufacturing carbon in Eq. 4;
    ``per_bond[i]`` divides bond step i's carbon in Eq. 11 (3D stacks have
    N−1 steps, 2.5D assemblies N die-attach steps); ``substrate`` divides
    the interposer/RDL carbon in the 2.5D models.
    """

    per_die: tuple[float, ...]
    per_bond: tuple[float, ...]
    substrate: float | None = None

    def __post_init__(self) -> None:
        for label, values in (("die", self.per_die), ("bond", self.per_bond)):
            for y in values:
                if not 0.0 < y <= 1.0:
                    raise ParameterError(
                        f"effective {label} yield {y} outside (0, 1]"
                    )
        if self.substrate is not None and not 0.0 < self.substrate <= 1.0:
            raise ParameterError(
                f"effective substrate yield {self.substrate} outside (0, 1]"
            )

    @property
    def worst_die(self) -> float:
        return min(self.per_die)


def _check_yields(label: str, values: list[float]) -> None:
    for y in values:
        if not 0.0 < y <= 1.0:
            raise ParameterError(f"{label} yield {y} outside (0, 1]")


def three_d_stack_yields(
    die_yields: list[float], bond_yield: float, flow: AssemblyFlow
) -> StackYields:
    """Table 3 (top half): effective yields of an N-die 3D stack."""
    n = len(die_yields)
    if n < 2:
        raise DesignError(f"a 3D stack needs >= 2 dies, got {n}")
    _check_yields("die", die_yields)
    _check_yields("bond", [bond_yield])

    if flow is AssemblyFlow.D2W:
        per_die = tuple(
            y * bond_yield ** (n - i) for i, y in enumerate(die_yields, start=1)
        )
        per_bond = tuple(bond_yield ** (n - i) for i in range(1, n))
        return StackYields(per_die=per_die, per_bond=per_bond)

    if flow is AssemblyFlow.W2W:
        stack = math.prod(die_yields) * bond_yield ** (n - 1)
        return StackYields(
            per_die=tuple(stack for _ in die_yields),
            per_bond=tuple(stack for _ in range(n - 1)),
        )

    raise DesignError(f"3D stacks use D2W or W2W assembly, got {flow.value}")


def two_five_d_yields(
    die_yields: list[float],
    substrate_yield: float,
    bond_yield: float,
    flow: AssemblyFlow,
) -> StackYields:
    """Table 3 (bottom half): effective yields of a 2.5D assembly."""
    n = len(die_yields)
    if n < 2:
        raise DesignError(f"a 2.5D assembly needs >= 2 dies, got {n}")
    _check_yields("die", die_yields)
    _check_yields("substrate", [substrate_yield])
    _check_yields("bond", [bond_yield])

    if flow is AssemblyFlow.CHIP_FIRST:
        per_die = tuple(y * substrate_yield for y in die_yields)
        return StackYields(
            per_die=per_die,
            per_bond=tuple(1.0 for _ in range(n)),
            substrate=substrate_yield,
        )

    if flow is AssemblyFlow.CHIP_LAST:
        bond_product = bond_yield**n
        per_die = tuple(y * bond_product for y in die_yields)
        return StackYields(
            per_die=per_die,
            per_bond=tuple(bond_product for _ in range(n)),
            substrate=substrate_yield * bond_product,
        )

    raise DesignError(
        f"2.5D assemblies use chip-first or chip-last, got {flow.value}"
    )
