"""Dies-per-wafer geometry (Eq. 5).

``DPW = π·(d/2)²/A − π·d/√(2·A)`` for wafer diameter ``d`` and die area
``A`` (Stow ISVLSI'16): gross dies by area minus the partial dies lost on
the wafer circumference. The same formula prices interposers
(interposer-per-wafer, Sec. 3.2.1).
"""

from __future__ import annotations

import math
from functools import lru_cache

from ..errors import DesignError, ParameterError
from ..units import wafer_area_mm2


@lru_cache(maxsize=8192)
def dies_per_wafer(wafer_diameter_mm: float, die_area_mm2: float) -> float:
    """Eq. 5: number of whole dies on one wafer.

    Raises :class:`DesignError` when the die is so large that the formula
    yields less than one die per wafer (the design cannot be manufactured
    on this wafer size).

    Memoized: the formula is pure in its two floats and batch studies
    price the same (wafer, die-area) pair for every draw or grid point.
    """
    if wafer_diameter_mm <= 0:
        raise ParameterError(
            f"wafer diameter must be positive, got {wafer_diameter_mm}"
        )
    if die_area_mm2 <= 0:
        raise ParameterError(f"die area must be positive, got {die_area_mm2}")
    gross = wafer_area_mm2(wafer_diameter_mm) / die_area_mm2
    edge_loss = math.pi * wafer_diameter_mm / math.sqrt(2.0 * die_area_mm2)
    dpw = gross - edge_loss
    if dpw < 1.0:
        raise DesignError(
            f"die of {die_area_mm2:.0f} mm² does not fit a "
            f"{wafer_diameter_mm:.0f} mm wafer (DPW = {dpw:.2f})"
        )
    return dpw


def effective_area_per_die_mm2(
    wafer_diameter_mm: float, die_area_mm2: float
) -> float:
    """Wafer area charged to each die: A_wafer / DPW (mm²).

    Always exceeds the die area because circumference losses are shared
    across the good dies — the quantity that multiplies the per-area wafer
    carbon in Eq. 4.
    """
    dpw = dies_per_wafer(wafer_diameter_mm, die_area_mm2)
    return wafer_area_mm2(wafer_diameter_mm) / dpw


def edge_loss_fraction(wafer_diameter_mm: float, die_area_mm2: float) -> float:
    """Fraction of the wafer lost to partial edge dies, in [0, 1)."""
    dpw = dies_per_wafer(wafer_diameter_mm, die_area_mm2)
    used = dpw * die_area_mm2
    return 1.0 - used / wafer_area_mm2(wafer_diameter_mm)
