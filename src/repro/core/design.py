"""Hardware-design description objects (the user input of Fig. 3).

A :class:`ChipDesign` is the complete description 3D-Carbon consumes:

* one or more :class:`Die` records — each with a process node and either a
  2D gate count (``N_2D_g``, the Eq. 8 path) or an explicit area (the
  validation studies use published die sizes);
* the integration technology (one of the Table 1 options, by name);
* the stacking style (F2F/F2B) and assembly flow (D2W/W2W or
  chip-first/chip-last) where the technology offers a choice;
* the package class (and optionally a fixed package area, for validation
  against products with known packages).

Die ordering convention: ``dies[0]`` is the bottom die / base tier
(die 1 of Table 3), ``dies[-1]`` the top die (die N). For 2.5D designs the
order only matters for floorplanning determinism.

Factory helpers build the paper's hypothetical designs from a 2D reference
(`homogeneous` and `heterogeneous` splits of Sec. 5).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from enum import Enum

from ..config.integration import (
    AssemblyFlow,
    IntegrationFamily,
    IntegrationSpec,
    StackingStyle,
)
from ..config.parameters import ParameterSet
from ..errors import DesignError
from ..rent.partition import heterogeneous_partitions, homogeneous_partitions


class DieKind(str, Enum):
    """Functional role of a die; memory dies use SRAM-density area scaling."""

    LOGIC = "logic"
    MEMORY = "memory"
    IO = "io"


@dataclass(frozen=True)
class Die:
    """One die (or M3D tier) of the design.

    Exactly one of ``gate_count`` / ``area_mm2`` must be provided: gate
    counts follow the Eq. 7–9 area-estimation path; explicit areas are used
    verbatim (assumed to already include TSV/I/O overheads, as die-photo
    measurements do).
    """

    name: str
    node: str
    gate_count: float | None = None
    area_mm2: float | None = None
    kind: DieKind = DieKind.LOGIC
    #: Share of the fixed-throughput workload this die computes (Eq. 17).
    workload_share: float = 1.0
    #: Optional override of the estimated BEOL layer count (Table 2 input).
    beol_layers: int | None = None
    #: Optional override of the Eq. 15 die yield.
    yield_override: float | None = None
    #: Optional per-die energy efficiency (TOPS/W); falls back to the
    #: device survey of :mod:`repro.config.power` when absent.
    efficiency_tops_per_w: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise DesignError("die needs a non-empty name")
        if (self.gate_count is None) == (self.area_mm2 is None):
            raise DesignError(
                f"die {self.name!r}: specify exactly one of gate_count or "
                f"area_mm2"
            )
        if self.gate_count is not None and self.gate_count <= 0:
            raise DesignError(f"die {self.name!r}: gate count must be positive")
        if self.area_mm2 is not None and self.area_mm2 <= 0:
            raise DesignError(f"die {self.name!r}: area must be positive")
        if not 0.0 <= self.workload_share <= 1.0:
            raise DesignError(
                f"die {self.name!r}: workload share must lie in [0, 1]"
            )
        if self.beol_layers is not None and self.beol_layers < 1:
            raise DesignError(f"die {self.name!r}: beol_layers must be >= 1")
        if self.yield_override is not None and not 0.0 < self.yield_override <= 1.0:
            raise DesignError(
                f"die {self.name!r}: yield override must lie in (0, 1]"
            )
        if (
            self.efficiency_tops_per_w is not None
            and self.efficiency_tops_per_w <= 0
        ):
            raise DesignError(
                f"die {self.name!r}: efficiency must be positive"
            )

    def with_overrides(self, **overrides) -> "Die":
        return replace(self, **overrides)


@dataclass(frozen=True)
class PackageSpec:
    """Package selection: a class name plus an optional fixed area."""

    package_class: str = "fcbga"
    area_mm2: float | None = None

    def __post_init__(self) -> None:
        if self.area_mm2 is not None and self.area_mm2 <= 0:
            raise DesignError("package area override must be positive")


@dataclass(frozen=True)
class ChipDesign:
    """A complete 2D/3D/2.5D hardware design (Fig. 3 user input)."""

    name: str
    dies: tuple[Die, ...]
    integration: str = "2d"
    stacking: StackingStyle = StackingStyle.NA
    assembly: AssemblyFlow = AssemblyFlow.NA
    package: PackageSpec = field(default_factory=PackageSpec)
    #: Advertised 2D-counterpart throughput (TOPS); drives the Sec. 3.4
    #: bandwidth requirement and the Eq. 17 fixed-throughput power.
    throughput_tops: float | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise DesignError("design needs a non-empty name")
        if not self.dies:
            raise DesignError(f"design {self.name!r} has no dies")
        names = [die.name for die in self.dies]
        if len(set(names)) != len(names):
            raise DesignError(f"design {self.name!r}: duplicate die names")
        if self.throughput_tops is not None and self.throughput_tops <= 0:
            raise DesignError(
                f"design {self.name!r}: throughput must be positive"
            )

    # -- validation against a parameter set ---------------------------------

    def validate(self, params: ParameterSet) -> IntegrationSpec:
        """Cross-check the design against the integration database.

        Returns the resolved :class:`IntegrationSpec`. Raises
        :class:`DesignError` for structural violations (die counts, stacking
        or assembly styles the technology does not offer).
        """
        spec = params.integration_spec(self.integration)
        n = len(self.dies)
        if spec.is_2d and n != 1:
            raise DesignError(
                f"{self.name}: 2D designs have exactly one die, got {n}"
            )
        if not spec.is_2d and n < 2:
            raise DesignError(
                f"{self.name}: {spec.name} integrates >= 2 dies, got {n}"
            )
        if spec.max_dies is not None and n > spec.max_dies:
            raise DesignError(
                f"{self.name}: {spec.name} supports at most {spec.max_dies} "
                f"dies/tiers (Table 1), got {n}"
            )
        if spec.is_3d:
            if self.stacking not in spec.allowed_stacking:
                allowed = ", ".join(s.value for s in spec.allowed_stacking)
                raise DesignError(
                    f"{self.name}: {spec.name} supports stacking {allowed}, "
                    f"got {self.stacking.value}"
                )
            if (
                spec.allowed_assembly != (AssemblyFlow.NA,)
                and self.assembly not in spec.allowed_assembly
            ):
                allowed = ", ".join(a.value for a in spec.allowed_assembly)
                raise DesignError(
                    f"{self.name}: {spec.name} supports assembly {allowed}, "
                    f"got {self.assembly.value}"
                )
        if spec.is_2_5d and self.assembly not in spec.allowed_assembly:
            allowed = ", ".join(a.value for a in spec.allowed_assembly)
            raise DesignError(
                f"{self.name}: {spec.name} supports assembly {allowed}, "
                f"got {self.assembly.value}"
            )
        # Hybrid-bonding F2F stacks two dies (Table 1).
        if (
            spec.name == "hybrid_3d"
            and self.stacking is StackingStyle.F2F
            and n > 2
        ):
            raise DesignError(
                f"{self.name}: hybrid F2F stacking is limited to 2 dies "
                f"(Table 1), got {n}"
            )
        for die in self.dies:
            params.node(die.node)  # raises UnknownTechnologyError if absent
        return spec

    @property
    def die_count(self) -> int:
        return len(self.dies)

    def with_overrides(self, **overrides) -> "ChipDesign":
        return replace(self, **overrides)

    # -- factories -----------------------------------------------------------

    @classmethod
    def planar_2d(
        cls,
        name: str,
        node: str,
        gate_count: float | None = None,
        area_mm2: float | None = None,
        package_class: str = "fcbga",
        package_area_mm2: float | None = None,
        throughput_tops: float | None = None,
        efficiency_tops_per_w: float | None = None,
    ) -> "ChipDesign":
        """A 2D monolithic reference design."""
        die = Die(
            name=f"{name}_die",
            node=node,
            gate_count=gate_count,
            area_mm2=area_mm2,
            efficiency_tops_per_w=efficiency_tops_per_w,
        )
        return cls(
            name=name,
            dies=(die,),
            integration="2d",
            package=PackageSpec(package_class, package_area_mm2),
            throughput_tops=throughput_tops,
        )

    @classmethod
    def homogeneous_split(
        cls,
        reference: "ChipDesign",
        integration: str,
        n_dies: int = 2,
        stacking: StackingStyle = StackingStyle.F2F,
        assembly: AssemblyFlow = AssemblyFlow.D2W,
    ) -> "ChipDesign":
        """Sec. 5 homogeneous approach: split a 2D IC into similar dies.

        The 3D designs of the case study use F2F with D2W stacking; 2.5D
        designs take the flow from the integration spec's first allowed
        assembly when the given one does not apply.
        """
        die0 = _single_die(reference)
        if die0.gate_count is None:
            raise DesignError(
                "homogeneous_split needs a gate-count-specified 2D reference"
            )
        partitions = homogeneous_partitions(die0.gate_count, n_dies)
        dies = tuple(
            die0.with_overrides(
                name=f"{reference.name}_{integration}_d{i}",
                gate_count=part.gate_count,
                workload_share=part.workload_share,
            )
            for i, part in enumerate(partitions)
        )
        return _derived_design(
            reference, dies, integration, stacking, assembly,
            suffix=f"{integration}_homog",
        )

    @classmethod
    def heterogeneous_split(
        cls,
        reference: "ChipDesign",
        integration: str,
        memory_node: str = "28nm",
        memory_fraction: float = 0.15,
        stacking: StackingStyle = StackingStyle.F2F,
        assembly: AssemblyFlow = AssemblyFlow.D2W,
    ) -> "ChipDesign":
        """Sec. 5 heterogeneous approach: memory/I/O on an older node."""
        die0 = _single_die(reference)
        if die0.gate_count is None:
            raise DesignError(
                "heterogeneous_split needs a gate-count-specified 2D reference"
            )
        logic, memory = heterogeneous_partitions(die0.gate_count, memory_fraction)
        logic_die = die0.with_overrides(
            name=f"{reference.name}_{integration}_logic",
            gate_count=logic.gate_count,
            workload_share=logic.workload_share,
        )
        memory_die = die0.with_overrides(
            name=f"{reference.name}_{integration}_mem",
            node=memory_node,
            gate_count=memory.gate_count,
            workload_share=memory.workload_share,
            kind=DieKind.MEMORY,
        )
        # Memory/base die goes on the bottom (Lakefield-style), logic on top.
        return _derived_design(
            reference, (memory_die, logic_die), integration, stacking,
            assembly, suffix=f"{integration}_hetero",
        )


def _single_die(reference: ChipDesign) -> Die:
    if reference.die_count != 1:
        raise DesignError(
            f"split factories need a single-die 2D reference, "
            f"{reference.name!r} has {reference.die_count}"
        )
    return reference.dies[0]


def _derived_design(
    reference: ChipDesign,
    dies: tuple[Die, ...],
    integration: str,
    stacking: StackingStyle,
    assembly: AssemblyFlow,
    suffix: str,
) -> ChipDesign:
    """Common tail of the split factories: fix flows per family."""
    from ..config.parameters import DEFAULT_PARAMETERS

    spec = DEFAULT_PARAMETERS.integration_spec(integration)
    if spec.is_2d:
        raise DesignError("cannot split a 2D reference into a 2D design")
    if spec.is_2_5d:
        stacking = StackingStyle.NA
        if assembly not in spec.allowed_assembly:
            assembly = spec.allowed_assembly[0]
    if spec.name == "m3d":
        stacking = StackingStyle.F2B
        assembly = AssemblyFlow.NA
    return ChipDesign(
        name=f"{reference.name}_{suffix}",
        dies=dies,
        integration=spec.name,
        stacking=stacking,
        assembly=assembly,
        package=reference.package,
        throughput_tops=reference.throughput_tops,
    )
