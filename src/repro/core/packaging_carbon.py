"""Packaging carbon (Eq. 12).

``C_packaging = CPA_packaging · A_package`` with the package area from the
linear empirical model of the selected package class (Sec. 3.2.3):

* 2D — the single die's area is the base;
* 3D — the *largest* die (the stack footprint) is the base;
* 2.5D — the *total* die area is the base (the assembly spreads out);
* monolithic 3D — the merged footprint.

A design may also pin the package area explicitly (validation studies use
the published package sizes).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.parameters import ParameterSet
from ..units import mm2_to_cm2
from .resolve import ResolvedDesign


@dataclass(frozen=True)
class PackagingCarbonResult:
    """Eq. 12 output."""

    package_class: str
    base_area_mm2: float
    package_area_mm2: float
    cpa_kg_per_cm2: float
    carbon_kg: float


def package_base_area_mm2(resolved: ResolvedDesign) -> float:
    """The area the empirical package model scales from (Sec. 3.2.3)."""
    if resolved.is_m3d:
        assert resolved.m3d_stack is not None
        return resolved.m3d_stack.footprint_mm2
    spec = resolved.spec
    if spec.is_3d:
        return resolved.max_die_area_mm2
    if spec.is_2_5d:
        return resolved.total_die_area_mm2
    return resolved.dies[0].area_mm2


def packaging_carbon_kg(
    resolved: ResolvedDesign, params: ParameterSet
) -> float:
    """Eq. 12 total only — the record-free twin of :func:`packaging_carbon`.

    Keep the arithmetic in sync with the record builder; the equivalence
    tests pin the two paths to bit-identical totals.
    """
    package = params.packaging.get(resolved.design.package.package_class)
    base = package_base_area_mm2(resolved)
    override = resolved.design.package.area_mm2
    area = override if override is not None else package.package_area_mm2(base)
    return package.cpa_kg_per_cm2 * mm2_to_cm2(area)


def packaging_carbon(
    resolved: ResolvedDesign, params: ParameterSet
) -> PackagingCarbonResult:
    """Eq. 12 for the whole design."""
    package = params.packaging.get(resolved.design.package.package_class)
    base = package_base_area_mm2(resolved)
    override = resolved.design.package.area_mm2
    area = override if override is not None else package.package_area_mm2(base)
    carbon = package.cpa_kg_per_cm2 * mm2_to_cm2(area)
    return PackagingCarbonResult(
        package_class=package.name,
        base_area_mm2=base,
        package_area_mm2=area,
        cpa_kg_per_cm2=package.cpa_kg_per_cm2,
        carbon_kg=carbon,
    )
