"""Embodied-carbon orchestration (Eq. 3).

``C_emb = C_die + C_bonding + C_packaging + C_int`` — this module resolves
the design once and runs the four component calculators, returning an
:class:`EmbodiedReport` with the full breakdown the paper's Fig. 4/5 bars
are built from.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.parameters import ParameterSet
from .bonding_carbon import (
    BondingCarbonResult,
    bonding_carbon,
    bonding_carbon_total_kg,
)
from .design import ChipDesign
from .die_carbon import (
    DieCarbonResult,
    die_carbon_total_kg,
    die_manufacturing_carbon,
)
from .interposer_carbon import (
    InterposerCarbonResult,
    interposer_carbon,
    interposer_carbon_kg,
)
from .packaging_carbon import (
    PackagingCarbonResult,
    packaging_carbon,
    packaging_carbon_kg,
)
from .resolve import ResolvedDesign, resolve_design


@dataclass(frozen=True)
class EmbodiedReport:
    """Eq. 3 breakdown for one design."""

    design_name: str
    integration: str
    die: DieCarbonResult
    bonding: BondingCarbonResult
    packaging: PackagingCarbonResult
    interposer: InterposerCarbonResult

    @property
    def die_kg(self) -> float:
        return self.die.total_kg

    @property
    def bonding_kg(self) -> float:
        return self.bonding.total_kg

    @property
    def packaging_kg(self) -> float:
        return self.packaging.carbon_kg

    @property
    def interposer_kg(self) -> float:
        return self.interposer.carbon_kg

    @property
    def total_kg(self) -> float:
        return (
            self.die_kg + self.bonding_kg + self.packaging_kg
            + self.interposer_kg
        )

    def breakdown(self) -> dict[str, float]:
        """Component → kg CO₂ mapping (sums to ``total_kg``)."""
        return {
            "die": self.die_kg,
            "bonding": self.bonding_kg,
            "packaging": self.packaging_kg,
            "interposer": self.interposer_kg,
        }


def embodied_total_kg(
    resolved: ResolvedDesign,
    params: ParameterSet,
    ci_fab_kg_per_kwh: float,
) -> float:
    """Eq. 3 total only, via the record-free component twins.

    Summation order matches ``EmbodiedReport.total_kg`` exactly
    (die + bonding + packaging + interposer); the equivalence tests pin
    this to the record-building path bit for bit.
    """
    return (
        die_carbon_total_kg(resolved, params, ci_fab_kg_per_kwh)
        + bonding_carbon_total_kg(resolved, params, ci_fab_kg_per_kwh)
        + packaging_carbon_kg(resolved, params)
        + interposer_carbon_kg(resolved, params, ci_fab_kg_per_kwh)
    )


def embodied_carbon(
    design: "ChipDesign | ResolvedDesign",
    params: ParameterSet,
    ci_fab_kg_per_kwh: float,
) -> EmbodiedReport:
    """Eq. 3: full embodied carbon of a design.

    Accepts either a raw :class:`ChipDesign` (resolved internally) or an
    already-resolved design (to share resolution with the operational and
    bandwidth models).
    """
    resolved = (
        design
        if isinstance(design, ResolvedDesign)
        else resolve_design(design, params)
    )
    return EmbodiedReport(
        design_name=resolved.design.name,
        integration=resolved.spec.name,
        die=die_manufacturing_carbon(resolved, params, ci_fab_kg_per_kwh),
        bonding=bonding_carbon(resolved, params, ci_fab_kg_per_kwh),
        packaging=packaging_carbon(resolved, params),
        interposer=interposer_carbon(resolved, params, ci_fab_kg_per_kwh),
    )
