"""Bonding carbon (Eq. 11).

``C_bonding = Σ CI_emb · EPA_bond · A_die_i / Y_bonding_i`` where the EPA
and the effective yield depend on the bonding method (C4 / micro-bump /
hybrid) and assembly flow (D2W / W2W or chip-first / chip-last):

* 3D stacks of N dies perform N−1 inter-die bonds (Eq. 11's sum bound);
  bond i attaches die i+1 onto die i and is charged die i's area;
* 2.5D assemblies attach each of the N dies to the substrate with C4
  bumps, so N die-attach steps are charged;
* 2D designs and monolithic 3D (sequential manufacturing) have no bonds.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.integration import BondingMethod
from ..config.parameters import ParameterSet
from ..units import mm2_to_cm2
from .resolve import ResolvedDesign


@dataclass(frozen=True)
class BondRecord:
    """One bonding step."""

    step: str
    method: str
    area_mm2: float
    epa_kwh_per_cm2: float
    effective_yield: float
    carbon_kg: float


@dataclass(frozen=True)
class BondingCarbonResult:
    """Eq. 11 total with per-step records."""

    records: tuple[BondRecord, ...]

    @property
    def total_kg(self) -> float:
        return sum(r.carbon_kg for r in self.records)


def bonding_carbon_total_kg(
    resolved: ResolvedDesign,
    params: ParameterSet,
    ci_fab_kg_per_kwh: float,
) -> float:
    """Eq. 11 total only — the record-free twin of :func:`bonding_carbon`.

    Keep the arithmetic line-for-line in sync with the record builder
    (same expressions, same summation order); the equivalence tests pin
    the two paths to bit-identical totals.
    """
    spec = resolved.spec
    if spec.is_2d or resolved.is_m3d:
        return 0.0
    design = resolved.design
    total = 0.0
    if spec.is_3d:
        process = params.bonding.get(spec.bonding, design.assembly)
        for i in range(len(resolved.dies) - 1):
            total += (
                ci_fab_kg_per_kwh
                * process.epa_kwh_per_cm2
                * mm2_to_cm2(resolved.dies[i].area_mm2)
                / resolved.stack_yields.per_bond[i]
            )
        return total
    process = params.bonding.get(BondingMethod.C4, design.assembly)
    for rdie, eff_yield in zip(resolved.dies, resolved.stack_yields.per_bond):
        total += (
            ci_fab_kg_per_kwh
            * process.epa_kwh_per_cm2
            * mm2_to_cm2(rdie.area_mm2)
            / eff_yield
        )
    return total


def bonding_carbon(
    resolved: ResolvedDesign,
    params: ParameterSet,
    ci_fab_kg_per_kwh: float,
) -> BondingCarbonResult:
    """Eq. 11 for the whole design."""
    spec = resolved.spec
    if spec.is_2d or resolved.is_m3d:
        return BondingCarbonResult(records=())

    design = resolved.design
    records: list[BondRecord] = []

    if spec.is_3d:
        process = params.bonding.get(spec.bonding, design.assembly)
        # N-1 bonds; bond i joins die i+1 onto die i, charged A_die_i.
        for i in range(len(resolved.dies) - 1):
            area = resolved.dies[i].area_mm2
            eff_yield = resolved.stack_yields.per_bond[i]
            carbon = (
                ci_fab_kg_per_kwh
                * process.epa_kwh_per_cm2
                * mm2_to_cm2(area)
                / eff_yield
            )
            records.append(
                BondRecord(
                    step=f"bond_{resolved.dies[i].name}"
                         f"__{resolved.dies[i + 1].name}",
                    method=f"{spec.bonding.value}/{design.assembly.value}",
                    area_mm2=area,
                    epa_kwh_per_cm2=process.epa_kwh_per_cm2,
                    effective_yield=eff_yield,
                    carbon_kg=carbon,
                )
            )
        return BondingCarbonResult(records=tuple(records))

    # 2.5D: N die-attach steps onto the substrate.
    process = params.bonding.get(BondingMethod.C4, design.assembly)
    for rdie, eff_yield in zip(resolved.dies, resolved.stack_yields.per_bond):
        carbon = (
            ci_fab_kg_per_kwh
            * process.epa_kwh_per_cm2
            * mm2_to_cm2(rdie.area_mm2)
            / eff_yield
        )
        records.append(
            BondRecord(
                step=f"attach_{rdie.name}",
                method=f"c4/{design.assembly.value}",
                area_mm2=rdie.area_mm2,
                epa_kwh_per_cm2=process.epa_kwh_per_cm2,
                effective_yield=eff_yield,
                carbon_kg=carbon,
            )
        )
    return BondingCarbonResult(records=tuple(records))
