"""Operational carbon (Sec. 3.3, Eq. 16–17).

The paper adopts the fixed-workload accounting common to autonomous-vehicle
studies (Sudhakar IEEE Micro'23): a *fixed total amount of computation*
(the application's operations over the device lifetime) is priced at each
die's energy efficiency:

    C_operational = Σ_k CI_use · P_app_k · T_app_k            (Eq. 16)
    P_app = Σ_i (Th_app / Eff_die_i + P_IO_i)                 (Eq. 17)

For a fixed workload, ``P·T`` reduces to energy: compute energy is
``ops / Eff`` — which is why newer, more efficient generations emit *less*
operational carbon (Sec. 5.1) — plus the I/O interface energy of coarse
interfaces (2.5D and micro-bump 3D pay ``E_bit`` per cross-die bit,
Sec. 3.3), minus the interconnect-power saving κ of fine-pitch 3D
integration. Bandwidth-starved 2.5D designs stall, burning static power:
compute energy stretches by the Sec. 3.4 degradation factor.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property

from ..config.parameters import ParameterSet
from ..config.power import surveyed_efficiency
from ..errors import DesignError
from ..units import grams_per_kwh
from .bandwidth import BandwidthResult
from .resolve import ResolvedDesign

#: J per kWh, used to convert ops/efficiency into kWh.
_J_PER_KWH = 3.6e6


@dataclass(frozen=True)
class Workload:
    """A fixed-computation workload over the device lifetime.

    ``total_tera_ops`` is the total number of tera-operations executed over
    ``lifetime_years`` (1 Tera-op = 1e12 operations). ``use_location``
    resolves through the grid table (a name or a raw g CO₂/kWh value).
    """

    name: str
    total_tera_ops: float
    use_location: "str | float" = "renewable_charging"
    lifetime_years: float = 10.0

    def __post_init__(self) -> None:
        if self.total_tera_ops <= 0:
            raise DesignError("workload must perform positive work")
        if self.lifetime_years <= 0:
            raise DesignError("workload lifetime must be positive")

    @classmethod
    def from_activity(
        cls,
        name: str,
        throughput_tops: float,
        hours_per_day: float,
        lifetime_years: float = 10.0,
        use_location: "str | float" = "renewable_charging",
    ) -> "Workload":
        """Build a fixed workload from an activity pattern.

        ``throughput_tops`` is the sustained processing rate of the
        reference pipeline while active; total work is rate × active time.
        """
        if throughput_tops <= 0 or hours_per_day <= 0:
            raise DesignError("activity parameters must be positive")
        seconds = hours_per_day * 3600.0 * 365.25 * lifetime_years
        return cls(
            name=name,
            total_tera_ops=throughput_tops * seconds,
            use_location=use_location,
            lifetime_years=lifetime_years,
        )

    @classmethod
    def autonomous_vehicle(cls) -> "Workload":
        """The Sec. 5 AV case-study workload.

        An ORIN-class perception pipeline (254 TOPS sustained) active
        0.75 h/day over the 10-year vehicle life (Sudhakar IEEE Micro'23),
        charged on a renewable-leaning grid (50 g CO₂/kWh).
        """
        return cls.from_activity(
            name="av_perception",
            throughput_tops=254.0,
            hours_per_day=0.75,
            lifetime_years=10.0,
            use_location="renewable_charging",
        )


@dataclass(frozen=True)
class WorkloadSuite:
    """Several applications sharing one device (the Σ_k of Eq. 16).

    The paper's operational model sums over applications with their own
    run times; a suite aggregates per-application :class:`Workload`
    records. The lifetime is shared (the device's), taken as the maximum
    across members.
    """

    name: str
    workloads: tuple[Workload, ...]

    def __post_init__(self) -> None:
        if not self.workloads:
            raise DesignError("a workload suite needs at least one workload")

    @property
    def lifetime_years(self) -> float:
        return max(w.lifetime_years for w in self.workloads)


@dataclass(frozen=True)
class DieOperationalRecord:
    """Compute energy attribution for one die."""

    name: str
    workload_share: float
    efficiency_tops_per_w: float
    energy_kwh: float


@dataclass(frozen=True)
class OperationalReport:
    """Eq. 16 result for one design under one workload."""

    design_name: str
    workload_name: str
    lifetime_years: float
    use_ci_kg_per_kwh: float
    compute_energy_kwh: float
    io_energy_kwh: float
    degradation: float
    per_die: tuple[DieOperationalRecord, ...]
    runtime_hours: float | None

    @cached_property
    def total_energy_kwh(self) -> float:
        return self.compute_energy_kwh + self.io_energy_kwh

    @cached_property
    def total_kg(self) -> float:
        return self.use_ci_kg_per_kwh * self.total_energy_kwh

    @property
    def annual_kg(self) -> float:
        return self.total_kg / self.lifetime_years

    @property
    def average_power_w(self) -> float | None:
        """Mean power while active (Eq. 17 view of the same energy)."""
        if self.runtime_hours is None or self.runtime_hours <= 0:
            return None
        return self.total_energy_kwh / self.runtime_hours * 1000.0


def _die_efficiency(rdie, efficiency_plugin=None) -> float:
    if efficiency_plugin is not None:
        return efficiency_plugin.efficiency_tops_per_w(rdie)
    if rdie.die.efficiency_tops_per_w is not None:
        return rdie.die.efficiency_tops_per_w
    return surveyed_efficiency(rdie.node.name)


def operational_carbon(
    resolved: ResolvedDesign,
    params: ParameterSet,
    workload: Workload,
    bandwidth: BandwidthResult,
    efficiency_plugin=None,
) -> OperationalReport:
    """Eq. 16–17 for a resolved design and a fixed workload.

    ``efficiency_plugin`` optionally injects a
    :class:`repro.power.plugin.PowerPlugin` (Fig. 3's "operational power
    estimation plug-ins"); without one, per-die overrides and the
    surveyed tables apply.
    """
    spec = resolved.spec
    grid = params.grid(workload.use_location)

    shares = [rdie.die.workload_share for rdie in resolved.dies]
    share_total = sum(shares)
    if share_total <= 0:
        raise DesignError(
            f"{resolved.design.name}: no die carries workload share"
        )

    stretch = bandwidth.runtime_stretch
    kappa = spec.interconnect_power_saving
    per_die: list[DieOperationalRecord] = []
    compute_kwh = 0.0
    for rdie, share in zip(resolved.dies, shares):
        if share == 0.0:
            per_die.append(
                DieOperationalRecord(rdie.name, 0.0, float("nan"), 0.0)
            )
            continue
        eff = _die_efficiency(rdie, efficiency_plugin)
        tera_ops = workload.total_tera_ops * share / share_total
        energy_kwh = (
            tera_ops / eff / _J_PER_KWH * (1.0 - kappa) * stretch
        )
        compute_kwh += energy_kwh
        per_die.append(
            DieOperationalRecord(rdie.name, share / share_total, eff, energy_kwh)
        )

    io_kwh = 0.0
    if spec.io_power_counted:
        bw = params.bandwidth
        traffic_bits = (
            workload.total_tera_ops
            * 1.0e12
            * bw.traffic_bytes_per_op
            * bw.io_traffic_fraction
            * 8.0
        )
        io_kwh = spec.energy_per_bit_fj * 1.0e-15 * traffic_bits / _J_PER_KWH

    runtime_hours = None
    capacity = resolved.design.throughput_tops
    if capacity is not None:
        effective = capacity * (1.0 - bandwidth.degradation)
        if effective > 0:
            runtime_hours = workload.total_tera_ops / effective / 3600.0

    return OperationalReport(
        design_name=resolved.design.name,
        workload_name=workload.name,
        lifetime_years=workload.lifetime_years,
        use_ci_kg_per_kwh=grid.kg_co2_per_kwh,
        compute_energy_kwh=compute_kwh,
        io_energy_kwh=io_kwh,
        degradation=bandwidth.degradation,
        per_die=tuple(per_die),
        runtime_hours=runtime_hours,
    )


@dataclass(frozen=True)
class SuiteOperationalReport:
    """Aggregated Eq. 16 over a :class:`WorkloadSuite` (the Σ_k)."""

    design_name: str
    suite_name: str
    lifetime_years: float
    per_workload: tuple[OperationalReport, ...]

    @property
    def total_kg(self) -> float:
        return sum(r.total_kg for r in self.per_workload)

    @property
    def total_energy_kwh(self) -> float:
        return sum(r.total_energy_kwh for r in self.per_workload)

    @property
    def annual_kg(self) -> float:
        return self.total_kg / self.lifetime_years


def operational_carbon_suite(
    resolved: ResolvedDesign,
    params: ParameterSet,
    suite: WorkloadSuite,
    bandwidth: BandwidthResult,
    efficiency_plugin=None,
) -> SuiteOperationalReport:
    """Eq. 16's Σ_k: one device running several applications.

    Each application keeps its own use-location carbon intensity (a
    vehicle charged in different regions, or a device split between
    grid-backed and solar duty), and the per-application reports remain
    inspectable.
    """
    reports = tuple(
        operational_carbon(
            resolved, params, workload, bandwidth, efficiency_plugin
        )
        for workload in suite.workloads
    )
    return SuiteOperationalReport(
        design_name=resolved.design.name,
        suite_name=suite.name,
        lifetime_years=suite.lifetime_years,
        per_workload=reports,
    )
