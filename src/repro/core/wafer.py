"""Per-wafer manufacturing carbon (Eq. 6), BEOL-aware.

``C_wafer = (CI_emb · EPA + GPA + MPA) · A_wafer`` with EPA/GPA optionally
re-assembled from their FEOL and per-metal-layer components so that dies
with shallower metal stacks emit less (the 3D-Carbon refinement the paper
highlights against ACT+ in Sec. 4.1).

Monolithic 3D wafers are priced by :func:`m3d_wafer_carbon_per_cm2`:
every tier pays a (discounted) FEOL pass and its own metal stack, plus an
ILD deposition per inter-tier interface, all on a single wafer footprint
with the raw-material footprint (MPA) charged once.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.m3d import M3DParameters
from ..config.technology import ProcessNode
from ..errors import ParameterError
from ..units import mm2_to_cm2


@dataclass(frozen=True)
class WaferCarbonBreakdown:
    """Per-cm² carbon components of one wafer flavour (kg CO₂/cm²)."""

    energy_kg_per_cm2: float
    gas_kg_per_cm2: float
    material_kg_per_cm2: float

    @property
    def total_kg_per_cm2(self) -> float:
        return (
            self.energy_kg_per_cm2
            + self.gas_kg_per_cm2
            + self.material_kg_per_cm2
        )


def wafer_carbon_per_cm2(
    node: ProcessNode,
    ci_fab_kg_per_kwh: float,
    beol_layers: float | None = None,
    beol_aware: bool = True,
) -> WaferCarbonBreakdown:
    """Eq. 6 per unit area, optionally scaled to the actual metal count."""
    if ci_fab_kg_per_kwh < 0:
        raise ParameterError("fab carbon intensity must be >= 0")
    if beol_layers is not None and beol_layers < 0:
        raise ParameterError("BEOL layer count must be >= 0")

    if not beol_aware or beol_layers is None:
        epa = node.epa_kwh_per_cm2
        gpa = node.gpa_kg_per_cm2
    else:
        # The FEOL + per-layer split of the ProcessNode helper methods,
        # inlined term-for-term (same float expressions, fewer calls).
        fraction = node.beol_carbon_fraction
        epa = node.epa_kwh_per_cm2 * (1.0 - fraction) + beol_layers * (
            node.epa_kwh_per_cm2 * fraction / node.max_beol_layers
        )
        gpa = node.gpa_kg_per_cm2 * (1.0 - fraction) + beol_layers * (
            node.gpa_kg_per_cm2 * fraction / node.max_beol_layers
        )
    return WaferCarbonBreakdown(
        energy_kg_per_cm2=ci_fab_kg_per_kwh * epa,
        gas_kg_per_cm2=gpa,
        material_kg_per_cm2=node.mpa_kg_per_cm2,
    )


def m3d_wafer_carbon_per_cm2(
    tiers: "list[tuple[ProcessNode, float]]",
    ci_fab_kg_per_kwh: float,
    m3d: M3DParameters,
    beol_aware: bool = True,
) -> WaferCarbonBreakdown:
    """Sequential-manufacturing variant of Eq. 6 for M3D (per footprint cm²).

    ``tiers`` lists ``(node, beol_layers)`` from bottom to top; tier 0 pays
    a full FEOL pass, every further tier pays ``feol_overhead`` of its own
    node's FEOL plus one ILD interface. The raw wafer material (MPA) is
    charged once, for the bottom tier's substrate.
    """
    if ci_fab_kg_per_kwh < 0:
        raise ParameterError("fab carbon intensity must be >= 0")
    n_tiers = len(tiers)
    if n_tiers < 2:
        raise ParameterError(f"M3D needs >= 2 tiers, got {n_tiers}")
    if n_tiers > m3d.max_tiers:
        raise ParameterError(
            f"M3D supports at most {m3d.max_tiers} tiers, got {n_tiers}"
        )
    if any(layers < 0 for _, layers in tiers):
        raise ParameterError("BEOL layer counts must be >= 0")

    epa = 0.0
    gpa = 0.0
    for index, (node, layers) in enumerate(tiers):
        feol_share = 1.0 if index == 0 else m3d.feol_overhead
        if beol_aware:
            epa += (
                node.epa_feol_kwh_per_cm2() * feol_share
                + layers * node.epa_per_beol_layer_kwh_per_cm2()
            )
            gpa += (
                node.gpa_feol_kg_per_cm2() * feol_share
                + layers * node.gpa_per_beol_layer_kg_per_cm2()
            )
        else:
            # Without BEOL awareness, charge full per-tier wafer processing.
            epa += node.epa_kwh_per_cm2 * feol_share
            gpa += node.gpa_kg_per_cm2 * feol_share
    epa += (n_tiers - 1) * m3d.ild_epa_kwh_per_cm2
    return WaferCarbonBreakdown(
        energy_kg_per_cm2=ci_fab_kg_per_kwh * epa,
        gas_kg_per_cm2=gpa,
        material_kg_per_cm2=tiers[0][0].mpa_kg_per_cm2,
    )


def wafer_carbon_kg(
    breakdown: WaferCarbonBreakdown, wafer_area_mm2: float
) -> float:
    """Eq. 6: total wafer carbon = per-area carbon × wafer area."""
    if wafer_area_mm2 <= 0:
        raise ParameterError("wafer area must be positive")
    return breakdown.total_kg_per_cm2 * mm2_to_cm2(wafer_area_mm2)
