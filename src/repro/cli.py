"""Command-line interface: ``carbon3d`` (or ``python -m repro.cli``).

Sub-commands mirror the paper's artifacts:

* ``evaluate DESIGN.json`` — run 3D-Carbon on a JSON design description;
* ``validate-epyc`` / ``validate-lakefield`` — the Fig. 4 comparisons;
* ``drive --approach homogeneous|heterogeneous`` — the Fig. 5 grid;
* ``table5`` — the Sec. 5.2 decision table;
* ``bench`` — naive-vs-engine perf benches (writes ``BENCH_engine.json``);
* ``nodes`` / ``technologies`` — inspect the parameter databases.

The JSON design schema matches :class:`repro.core.design.ChipDesign`::

    {
      "name": "my_chip",
      "integration": "hybrid_3d",
      "stacking": "f2f",
      "assembly": "d2w",
      "package": {"class": "fcbga"},
      "throughput_tops": 254,
      "dies": [
        {"name": "top", "node": "7nm", "gate_count": 8.5e9,
         "workload_share": 0.5},
        {"name": "bottom", "node": "7nm", "gate_count": 8.5e9,
         "workload_share": 0.5}
      ]
    }
"""

from __future__ import annotations

import argparse
import json
import sys

from .analysis.optimizer import search_configurations
from .analysis.sensitivity import format_tornado, tornado
from .config.parameters import DEFAULT_PARAMETERS
from .core.model import CarbonModel
from .core.operational import Workload
from .errors import CarbonModelError
from .io.designs import design_from_dict
from .io.results import drive_study_rows, table5_rows, write_csv, write_json
from .studies.decision import table5_study
from .studies.drive import drive_study
from .studies.validation import epyc_validation, lakefield_validation


def _cmd_evaluate(args: argparse.Namespace) -> int:
    with open(args.design, encoding="utf-8") as handle:
        data = json.load(handle)
    design = design_from_dict(data)
    workload = None
    if args.workload == "av":
        workload = Workload.autonomous_vehicle()
    elif args.workload == "none":
        workload = None
    model = CarbonModel(design, fab_location=args.fab_location)
    report = model.evaluate(workload)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0


def _cmd_validate_epyc(args: argparse.Namespace) -> int:
    result = epyc_validation(fab_location=args.fab_location)
    print("Fig. 4(a) — EPYC 7452 embodied carbon (kg CO2e)")
    for model, die_kg, pkg_kg, total_kg in result.rows():
        print(f"  {model:<12} die={die_kg:7.2f} pkg={pkg_kg:6.2f} "
              f"total={total_kg:7.2f}")
    print(f"  LCA vs 2D-adjusted 3D-Carbon discrepancy: "
          f"{result.lca_vs_2d_discrepancy * 100:.1f}% (paper: ~4.4%)")
    return 0


def _cmd_validate_lakefield(args: argparse.Namespace) -> int:
    result = lakefield_validation(fab_location=args.fab_location)
    print("Fig. 4(b) — Lakefield embodied carbon (kg CO2e)")
    for model, total_kg in result.rows():
        print(f"  {model:<18} {total_kg:6.3f}")
    print(f"  D2W yields: logic {result.d2w_logic_yield * 100:.1f}% "
          f"(paper 89.3%), memory {result.d2w_memory_yield * 100:.1f}% "
          f"(paper 88.4%); W2W {result.w2w_yield * 100:.1f}% (paper 79.7%)")
    return 0


def _cmd_drive(args: argparse.Namespace) -> int:
    result = drive_study(approach=args.approach, fab_location=args.fab_location)
    print(result.format_table())
    return 0


def _cmd_table5(args: argparse.Namespace) -> int:
    result = table5_study(fab_location=args.fab_location)
    print("Table 5 — choosing/replacing DRIVE ORIN 2D with 3D/2.5D ICs")
    print(result.format_table())
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    with open(args.design, encoding="utf-8") as handle:
        reference = design_from_dict(json.load(handle))
    result = search_configurations(
        reference, Workload.autonomous_vehicle(),
        fab_location=args.fab_location,
    )
    print(result.format_table())
    if result.best is not None:
        print(f"\nbest valid configuration: {result.best.label} "
              f"({result.best.total_kg:.2f} kg CO2e)")
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    with open(args.design, encoding="utf-8") as handle:
        design = design_from_dict(json.load(handle))
    results = tornado(
        design, workload=Workload.autonomous_vehicle(),
        fab_location=args.fab_location,
    )
    print(format_tornado(results))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    if args.study == "drive":
        rows = drive_study_rows(
            drive_study(args.approach, fab_location=args.fab_location)
        )
    else:
        rows = table5_rows(table5_study(fab_location=args.fab_location))
    if args.output.endswith(".json"):
        write_json(rows, args.output)
    else:
        write_csv(rows, args.output)
    print(f"wrote {len(rows)} rows to {args.output}")
    return 0


def _cmd_bench(args: argparse.Namespace) -> int:
    from .engine.bench import format_benches, run_benches

    result = run_benches(
        output_path=args.output, samples=args.samples, repeats=args.repeats
    )
    print(format_benches(result))
    print(f"wrote {args.output}")
    return 0


def _cmd_nodes(_: argparse.Namespace) -> int:
    print(f"{'node':<12} {'λ (nm)':>7} {'EPA':>6} {'GPA':>6} {'MPA':>6} "
          f"{'D0':>6} {'maxBEOL':>8}")
    for node in DEFAULT_PARAMETERS.technology:
        print(
            f"{node.name:<12} {node.feature_nm:7.1f} "
            f"{node.epa_kwh_per_cm2:6.2f} {node.gpa_kg_per_cm2:6.2f} "
            f"{node.mpa_kg_per_cm2:6.2f} {node.defect_density_per_cm2:6.3f} "
            f"{node.max_beol_layers:8d}"
        )
    return 0


def _cmd_technologies(_: argparse.Namespace) -> int:
    print(f"{'technology':<15} {'family':>6} {'bond':>7} {'Gbps':>6} "
          f"{'fJ/bit':>7} {'IO/mm/ly':>9}")
    for spec in DEFAULT_PARAMETERS.integration:
        print(
            f"{spec.name:<15} {spec.family.value:>6} {spec.bonding.value:>7} "
            f"{spec.data_rate_gbps:6.1f} {spec.energy_per_bit_fj:7.0f} "
            f"{spec.io_density_per_mm_per_layer:9.1f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="carbon3d",
        description="3D-Carbon: carbon modeling for 3D/2.5D ICs (DAC'24)",
    )
    parser.add_argument(
        "--fab-location",
        default="taiwan",
        help="manufacturing grid (name or g CO2/kWh; default: taiwan)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_eval = sub.add_parser("evaluate", help="evaluate a JSON design")
    p_eval.add_argument("design", help="path to the design JSON file")
    p_eval.add_argument(
        "--workload",
        choices=("av", "none"),
        default="av",
        help="operational workload (default: the AV case-study workload)",
    )
    p_eval.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    p_eval.set_defaults(func=_cmd_evaluate)

    sub.add_parser(
        "validate-epyc", help="Fig. 4(a) EPYC 7452 validation"
    ).set_defaults(func=_cmd_validate_epyc)
    sub.add_parser(
        "validate-lakefield", help="Fig. 4(b) Lakefield validation"
    ).set_defaults(func=_cmd_validate_lakefield)

    p_drive = sub.add_parser("drive", help="Fig. 5 NVIDIA DRIVE study")
    p_drive.add_argument(
        "--approach",
        choices=("homogeneous", "heterogeneous"),
        default="homogeneous",
    )
    p_drive.set_defaults(func=_cmd_drive)

    sub.add_parser("table5", help="Sec. 5.2 decision table").set_defaults(
        func=_cmd_table5
    )

    p_search = sub.add_parser(
        "search", help="find the lowest-carbon valid configuration"
    )
    p_search.add_argument("design", help="path to a 2D reference JSON design")
    p_search.set_defaults(func=_cmd_search)

    p_sens = sub.add_parser(
        "sensitivity", help="one-at-a-time tornado study for a design"
    )
    p_sens.add_argument("design", help="path to the design JSON file")
    p_sens.set_defaults(func=_cmd_sensitivity)

    p_export = sub.add_parser(
        "export", help="export a study's rows to CSV/JSON"
    )
    p_export.add_argument("study", choices=("drive", "table5"))
    p_export.add_argument("output", help="output path (.csv or .json)")
    p_export.add_argument(
        "--approach",
        choices=("homogeneous", "heterogeneous"),
        default="homogeneous",
    )
    p_export.set_defaults(func=_cmd_export)
    p_bench = sub.add_parser(
        "bench",
        help="engine perf benches (naive vs batch engine) → BENCH_engine.json",
    )
    p_bench.add_argument("--output", default="BENCH_engine.json")
    p_bench.add_argument("--samples", type=int, default=500)
    p_bench.add_argument("--repeats", type=int, default=3)
    p_bench.set_defaults(func=_cmd_bench)
    sub.add_parser("nodes", help="list process nodes").set_defaults(
        func=_cmd_nodes
    )
    sub.add_parser(
        "technologies", help="list integration technologies"
    ).set_defaults(func=_cmd_technologies)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CarbonModelError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
