"""Command-line interface: ``carbon3d`` (or ``python -m repro.cli``).

Sub-commands mirror the paper's artifacts:

* ``evaluate DESIGN.json`` — run 3D-Carbon on a JSON design description;
* ``validate-epyc`` / ``validate-lakefield`` — the Fig. 4 comparisons;
* ``drive --approach homogeneous|heterogeneous`` — the Fig. 5 grid;
* ``table5`` — the Sec. 5.2 decision table;
* ``optimize`` — vectorized Pareto search over the integration ×
  die-count × wafer × grid design space (the ``/optimize`` study;
  ``--stream`` prints a running front snapshot per evaluated chunk);
* ``bench`` — naive-vs-engine perf benches (writes ``BENCH_engine.json``;
  with ``--service``, the warm-vs-cold store throughput bench →
  ``BENCH_service.json``);
* ``serve`` — run the carbon-as-a-service HTTP server (persistent
  content-addressed result store; ``--tokens`` for the multi-tenant
  token registry, ``--token`` for legacy shared-secret auth;
  see :mod:`repro.service`);
* ``tokens issue|revoke|list|rotate`` — administer the multi-tenant
  token registry (named, hashed API tokens with per-tenant quotas;
  see :mod:`repro.tenancy`);
* ``usage`` — a tenant's usage counters from a running server
  (``GET /usage``; admin tokens see every tenant);
* ``submit`` — send a design JSON to a running server over HTTP (via
  the :class:`repro.api.Session` facade);
* ``trace`` — run a study locally under a trace and print its span tree
  with per-stage self-times (see :mod:`repro.obs`);
* ``backends`` — list registered carbon backends with their factor-set
  digests (``--json`` for machines);
* ``studies`` — list the StudySpec study kinds every entry point speaks;
* ``nodes`` / ``technologies`` — inspect the parameter databases.

The JSON design schema matches :class:`repro.core.design.ChipDesign`::

    {
      "name": "my_chip",
      "integration": "hybrid_3d",
      "stacking": "f2f",
      "assembly": "d2w",
      "package": {"class": "fcbga"},
      "throughput_tops": 254,
      "dies": [
        {"name": "top", "node": "7nm", "gate_count": 8.5e9,
         "workload_share": 0.5},
        {"name": "bottom", "node": "7nm", "gate_count": 8.5e9,
         "workload_share": 0.5}
      ]
    }
"""

from __future__ import annotations

import argparse
import json
import sys

from .analysis.optimizer import search_configurations
from .analysis.sensitivity import format_tornado, tornado
from .config.parameters import DEFAULT_PARAMETERS
from .core.model import CarbonModel
from .core.operational import Workload
from .errors import CarbonModelError
from .io.designs import design_from_dict
from .io.results import drive_study_rows, table5_rows, write_csv, write_json
from .studies.decision import table5_study
from .studies.drive import drive_study
from .studies.validation import (
    compare_backends,
    epyc_7452_design,
    epyc_validation,
    lakefield_design,
    lakefield_validation,
)


def _cmd_evaluate(args: argparse.Namespace) -> int:
    with open(args.design, encoding="utf-8") as handle:
        data = json.load(handle)
    design = design_from_dict(data)
    workload = None
    if args.workload == "av":
        workload = Workload.autonomous_vehicle()
    elif args.workload == "none":
        workload = None
    model = CarbonModel(design, fab_location=args.fab_location)
    report = model.evaluate(workload)
    if args.json:
        print(json.dumps(report.to_dict(), indent=2))
    else:
        print(report.render())
    return 0


def _cmd_validate_epyc(args: argparse.Namespace) -> int:
    result = epyc_validation(fab_location=args.fab_location)
    print("Fig. 4(a) — EPYC 7452 embodied carbon (kg CO2e)")
    for model, die_kg, pkg_kg, total_kg in result.rows():
        print(f"  {model:<12} die={die_kg:7.2f} pkg={pkg_kg:6.2f} "
              f"total={total_kg:7.2f}")
    print(f"  LCA vs 2D-adjusted 3D-Carbon discrepancy: "
          f"{result.lca_vs_2d_discrepancy * 100:.1f}% (paper: ~4.4%)")
    return 0


def _cmd_validate_lakefield(args: argparse.Namespace) -> int:
    result = lakefield_validation(fab_location=args.fab_location)
    print("Fig. 4(b) — Lakefield embodied carbon (kg CO2e)")
    for model, total_kg in result.rows():
        print(f"  {model:<18} {total_kg:6.3f}")
    print(f"  D2W yields: logic {result.d2w_logic_yield * 100:.1f}% "
          f"(paper 89.3%), memory {result.d2w_memory_yield * 100:.1f}% "
          f"(paper 88.4%); W2W {result.w2w_yield * 100:.1f}% (paper 79.7%)")
    return 0


def _session_for_args(args: argparse.Namespace):
    """The Session the command runs through: local, or --service URL."""
    from .api import Session

    service = getattr(args, "service", None)
    if service is not None:
        return Session(
            executor="service",
            url=service,
            token=getattr(args, "token", None),
        )
    return Session(fab_location=args.fab_location)


def _cmd_compare(args: argparse.Namespace) -> int:
    """Sec. 4-style cross-model table: one batched engine call.

    ``--json`` routes through the :class:`repro.api.Session` facade —
    the exact ``/compare`` payload whether computed locally or by
    ``--service URL`` (the location-transparency the facade pins).
    """
    if args.design == "epyc":
        design = epyc_7452_design()
    elif args.design == "lakefield":
        design = lakefield_design()
    else:
        with open(args.design, encoding="utf-8") as handle:
            design = design_from_dict(json.load(handle))
    backends = None
    if args.backends is not None:
        backends = [name.strip() for name in args.backends.split(",") if name.strip()]

    if args.json or args.service is not None:
        session = _session_for_args(args)
        result = session.compare(
            design,
            backends=backends,
            workload=args.workload,
            fab_location=args.fab_location if args.service else None,
            draws=args.draws,
            seed=args.seed,
        )
        if args.json:
            print(json.dumps(result.to_payload(), indent=2))
            return 0
        payload = result.to_payload()
        print(f"cross-model comparison — {payload['design']} "
              f"(served by {args.service})")
        for row in payload["backends"]:
            report = row["report"]
            line = (f"  {row['label']:<14.14} total {report['total_kg']:9.2f} "
                    f"kg CO2e [{row['cache']}]")
            uncertainty = row.get("uncertainty")
            if uncertainty:
                line += (f"  p05 {uncertainty['p05_kg']:9.2f}  "
                         f"p50 {uncertainty['p50_kg']:9.2f}  "
                         f"p95 {uncertainty['p95_kg']:9.2f}")
            print(line)
        return 0

    workload = (
        Workload.autonomous_vehicle() if args.workload == "av" else None
    )
    result = compare_backends(
        design, backends=backends, workload=workload,
        fab_location=args.fab_location, draws=args.draws, seed=args.seed,
    )
    print(result.format_table())
    return 0


def _cmd_drive(args: argparse.Namespace) -> int:
    result = drive_study(approach=args.approach, fab_location=args.fab_location)
    print(result.format_table())
    return 0


def _cmd_table5(args: argparse.Namespace) -> int:
    result = table5_study(fab_location=args.fab_location)
    print("Table 5 — choosing/replacing DRIVE ORIN 2D with 3D/2.5D ICs")
    print(result.format_table())
    return 0


def _cmd_search(args: argparse.Namespace) -> int:
    with open(args.design, encoding="utf-8") as handle:
        reference = design_from_dict(json.load(handle))
    result = search_configurations(
        reference, Workload.autonomous_vehicle(),
        fab_location=args.fab_location,
    )
    print(result.format_table())
    if result.best is not None:
        print(f"\nbest valid configuration: {result.best.label} "
              f"({result.best.total_kg:.2f} kg CO2e)")
    return 0


def _optimize_reference(name: str):
    """The optimize reference design: a DRIVE device name or a JSON path.

    The grid needs a single-die 2D reference with a gate count (splits
    re-partition the gates), so the built-ins are the Table 4 DRIVE
    rows rather than the multi-die validation designs.
    """
    from .studies.drive import NVIDIA_DRIVE_SERIES, drive_2d_design

    if name.lower() in (d.name.lower() for d in NVIDIA_DRIVE_SERIES):
        return drive_2d_design(name)
    with open(name, encoding="utf-8") as handle:
        return design_from_dict(json.load(handle))


def _axis_list(text: "str | None", coerce=None) -> "list | None":
    """Comma-separated axis override → list (None passes the default)."""
    if text is None:
        return None
    items = [item.strip() for item in text.split(",") if item.strip()]
    if coerce is not None:
        items = [coerce(item) for item in items]
    return items


def _location_value(text: str) -> "str | float":
    """A fab location axis entry: grid name, or raw g CO2/kWh number."""
    try:
        return float(text)
    except ValueError:
        return text


def _cmd_optimize(args: argparse.Namespace) -> int:
    """Vectorized Pareto search through the Session facade.

    Local by default; ``--service URL`` sends the same wire payload to
    ``POST /optimize`` — the returned front is bit-identical either way.
    """
    from .api import StudySpec

    reference = _optimize_reference(args.design)
    spec = StudySpec.optimize(
        reference,
        workload=args.workload,
        integrations=_axis_list(args.integrations),
        die_counts=_axis_list(args.die_counts, int),
        wafer_diameters_mm=_axis_list(args.wafers, float),
        fab_locations=_axis_list(args.locations, _location_value),
        max_configs=args.max_configs,
        chunk=args.chunk,
        seed=args.seed,
    )
    with _session_for_args(args) as session:
        if args.stream:
            handle = session.submit(spec)
            for snapshot in handle.partial():
                if snapshot.kind != "front":
                    continue
                entry = snapshot.payload
                print(
                    f"  chunk {entry['chunk']:>4d}  evaluated "
                    f"{entry['evaluated']:>9,d}  errors "
                    f"{entry['errors']:>6,d}  front {entry['front_size']:>4d}",
                    file=sys.stderr, flush=True,
                )
            result = handle.result()
        else:
            result = session.run(spec)
    payload = result.to_payload()
    if args.json:
        print(json.dumps(payload, indent=2))
        return 0
    print(
        f"Pareto front — {payload['design']} "
        f"({payload['evaluated']:,} configurations, "
        f"{payload['errors']:,} invalid, {payload['chunks']} chunks)"
    )
    objectives = ", ".join(
        f"{name} {goal}" for name, goal in payload["objectives"].items()
    )
    print(f"objectives: {objectives}")
    header = (f"{'label':<34} {'wafer':>6} {'location':<10} "
              f"{'total kg':>9} {'perf TOPS':>9} {'cost mm2':>9}")
    print(header)
    print("-" * len(header))
    for point in payload["front"]:
        location = point["fab_location"]
        if isinstance(location, float):
            location = f"{location:g}g"
        print(
            f"{point['label']:<34.34} {point['wafer_diameter_mm']:>6.0f} "
            f"{location:<10.10} {point['total_kg']:>9.2f} "
            f"{point['performance_tops']:>9.1f} {point['cost_mm2']:>9.1f}"
        )
    print(f"{payload['front_size']} non-dominated configurations")
    return 0


def _cmd_sensitivity(args: argparse.Namespace) -> int:
    with open(args.design, encoding="utf-8") as handle:
        design = design_from_dict(json.load(handle))
    results = tornado(
        design, workload=Workload.autonomous_vehicle(),
        fab_location=args.fab_location,
    )
    print(format_tornado(results))
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    if args.study == "drive":
        rows = drive_study_rows(
            drive_study(args.approach, fab_location=args.fab_location)
        )
    else:
        rows = table5_rows(table5_study(fab_location=args.fab_location))
    if args.output.endswith(".json"):
        write_json(rows, args.output)
    else:
        write_csv(rows, args.output)
    print(f"wrote {len(rows)} rows to {args.output}")
    return 0


def run_bench_cli(
    service: bool,
    output: "str | None" = None,
    samples: "int | None" = None,
    repeats: int = 3,
    write: bool = True,
) -> "tuple[str, str]":
    """Run the engine or service bench; return (summary text, output path).

    The single implementation behind ``carbon3d bench`` and
    ``benchmarks/perf_report.py`` — defaults (500 MC draws / 400 service
    draws, ``BENCH_engine.json`` / ``BENCH_service.json``) live only
    here. ``write=False`` runs the bench without touching the BENCH
    files (the CI smoke run uses this so a throttled runner's numbers
    never pollute the perf trajectory).
    """
    if service:
        from .service.bench import format_service_bench, run_service_bench

        output = output if output else "BENCH_service.json"
        result = run_service_bench(
            output_path=output if write else None,
            samples=samples if samples is not None else 400,
            repeats=repeats,
        )
        return format_service_bench(result), output if write else "(not written)"
    from .engine.bench import format_benches, run_benches

    output = output if output else "BENCH_engine.json"
    result = run_benches(
        output_path=output if write else None,
        samples=samples if samples is not None else 500,
        repeats=repeats,
    )
    return format_benches(result), output if write else "(not written)"


def _cmd_bench(args: argparse.Namespace) -> int:
    text, output = run_bench_cli(
        args.service, args.output, args.samples, args.repeats
    )
    print(text)
    print(f"wrote {output}")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import signal
    import threading

    from .resilience import FaultPlan, install_plan
    from .service.fleet import ServiceFleet, resolve_worker_count
    from .service.server import make_server, serve_forever

    faults = None
    if args.fault_plan is not None:
        # The CLI plan goes into the process-global injector so every
        # layer (engine, store, dispatcher, server) sees the same rules
        # — exactly what CARBON3D_FAULT_PLAN does for subprocess tests.
        faults = install_plan(FaultPlan.coerce(args.fault_plan))
    store_path = None if args.no_store else args.store
    workers = resolve_worker_count(getattr(args, "workers", 1))
    store_text = store_path if store_path else "(in-memory only)"
    tokens_path = getattr(args, "tokens", None)
    if args.token:
        print("note: --token is the legacy shared secret; prefer a "
              "--tokens registry with named per-tenant tokens "
              "(carbon3d tokens issue)", file=sys.stderr, flush=True)

    def _banner(url: str) -> None:
        print(f"carbon3d service listening on {url}", flush=True)
        print(f"  store   : {store_text}", flush=True)
        if workers > 1:
            print(f"  workers : {workers} pre-forked processes", flush=True)
        if tokens_path:
            auth_text = f"token registry {tokens_path}"
        elif args.token:
            auth_text = "X-Carbon3D-Token required (legacy shared secret)"
        else:
            auth_text = "open"
        print(f"  auth    : {auth_text}", flush=True)
        print("  routes  : /evaluate /batch /sweep /montecarlo /compare "
              "/tornado /optimize /healthz /healthz/live /healthz/ready "
              "/stats /metrics /usage",
              flush=True)

    if workers > 1:
        # Pre-forked fleet: the parent binds, forks, supervises;
        # SIGTERM/SIGINT fan out to the workers' own graceful drains.
        if args.fault_plan is not None:
            # Workers re-arm from the environment after fork (the
            # parent-installed injector object does not cross exec-less
            # forks coherently for per-rule counters).
            import os as _os

            _os.environ["CARBON3D_FAULT_PLAN"] = args.fault_plan
        fleet = ServiceFleet(
            host=args.host,
            port=args.port,
            workers=workers,
            fab_location=args.fab_location,
            store_path=store_path,
            max_entries=args.max_entries,
            verbose=args.verbose,
            token=args.token,
            tokens_path=tokens_path,
            max_inflight=args.max_inflight,
            drain_timeout_s=args.drain_timeout,
            log_json=args.log_json,
        )
        fleet.drain_timeout_s = args.drain_timeout + 5.0
        fleet.start()

        def _stop(signum, frame):  # pragma: no cover - via subprocess
            fleet.request_stop()

        signal.signal(signal.SIGTERM, _stop)
        signal.signal(signal.SIGINT, _stop)
        _banner(fleet.url)
        fleet.wait()
        fleet.close()
        print("carbon3d fleet drained; exiting", flush=True)
        return 0

    server = make_server(
        host=args.host,
        port=args.port,
        fab_location=args.fab_location,
        store_path=store_path,
        max_entries=args.max_entries,
        verbose=args.verbose,
        token=args.token,
        tokens_path=tokens_path,
        max_inflight=args.max_inflight,
        drain_timeout_s=args.drain_timeout,
        faults=faults,
        log_json=args.log_json,
    )

    def _drain(signum, frame):  # pragma: no cover - exercised via subprocess
        # shutdown() blocks until the serve loop exits and must not run
        # on the serving (main) thread — hand it to a helper; the
        # serve_forever() finally then drains in-flight work via close().
        threading.Thread(
            target=server.shutdown, name="carbon3d-drain", daemon=True
        ).start()

    signal.signal(signal.SIGTERM, _drain)
    _banner(server.url)
    if server.faults.active:
        print(f"  faults  : {server.faults.describe()}", flush=True)
    serve_forever(server)
    print("carbon3d service drained; exiting", flush=True)
    return 0


def _cmd_loadgen(args: argparse.Namespace) -> int:
    from .service.loadgen import (
        format_fleet_bench,
        run_fleet_bench,
        run_load,
    )

    keep_alive = not args.no_keep_alive
    if args.url is not None:
        result = run_load(
            args.url,
            requests_n=args.requests,
            concurrency=args.concurrency,
            distinct=args.distinct,
            keep_alive=keep_alive,
            token=args.token,
        )
        result.pop("digests", None)  # per-design hashes, noise on stdout
        if args.json:
            print(json.dumps(result, indent=2))
        else:
            print(
                f"loadgen      {result['completed']}/{result['requests']} "
                f"requests × {result['concurrency']} clients: "
                f"{result['rps']:.0f} rps "
                f"(p50 {result['p50_ms']:.1f}ms p99 {result['p99_ms']:.1f}ms, "
                f"keep_alive={result['keep_alive']})"
            )
        return 1 if result["errors"] else 0

    try:
        worker_counts = [
            int(part) for part in args.workers_list.split(",") if part.strip()
        ]
    except ValueError:
        print(f"error: --workers-list must be comma-separated integers, "
              f"got {args.workers_list!r}", file=sys.stderr)
        return 2
    output = None if args.no_output else args.output
    result = run_fleet_bench(
        output_path=output,
        worker_counts=worker_counts,
        requests_n=args.requests,
        concurrency=args.concurrency,
        distinct=args.distinct,
        keep_alive=keep_alive,
    )
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(format_fleet_bench(result))
        if output:
            print(f"\nwrote {output}")
    return 0


def _format_stamp(stamp: "float | None") -> str:
    import time as _time

    if stamp is None:
        return "-"
    return _time.strftime("%Y-%m-%d %H:%M", _time.localtime(stamp))


def _cmd_tokens(args: argparse.Namespace) -> int:
    """Administer the token registry file (no server required).

    The registry is the same SQLite file every fleet worker reads, so a
    token issued here is honored by a running fleet on its next request
    — and a revocation takes effect just as immediately.
    """
    from .tenancy import TenantQuota, TokenRegistry

    registry = TokenRegistry(args.tokens)
    try:
        if args.tokens_command == "issue":
            quota = None
            limits = (args.rate, args.burst, args.max_requests,
                      args.max_points)
            if any(value is not None for value in limits):
                quota = TenantQuota(
                    rate_per_s=args.rate,
                    burst=args.burst,
                    max_requests=args.max_requests,
                    max_points=args.max_points,
                )
            scopes = tuple(_axis_list(args.scopes) or ())
            tenant = args.tenant if args.tenant else args.name
            secret, record = registry.issue(
                args.name, tenant, scopes=scopes, quota=quota
            )
            if args.json:
                print(json.dumps(
                    {"secret": secret, **record.to_dict()}, indent=2
                ))
                return 0
            print(f"token   : {secret}")
            print(f"id      : {record.id}")
            print(f"name    : {record.name}")
            print(f"tenant  : {record.tenant}")
            if record.scopes:
                print(f"scopes  : {','.join(record.scopes)}")
            if record.quota is not None:
                print(f"quota   : {json.dumps(record.quota.to_dict())}")
            print("store the token now — the secret is never shown again")
            return 0
        if args.tokens_command == "revoke":
            record = registry.revoke(args.ident)
            print(f"revoked {record.name} (id {record.id}, "
                  f"tenant {record.tenant})")
            return 0
        if args.tokens_command == "rotate":
            secret, record = registry.rotate(args.ident)
            if args.json:
                print(json.dumps(
                    {"secret": secret, **record.to_dict()}, indent=2
                ))
                return 0
            print(f"token   : {secret}")
            print(f"rotated : {record.name} (id {record.id}, "
                  f"tenant {record.tenant}) — the old secret is dead")
            return 0
        records = registry.list(include_revoked=args.all)
        if args.json:
            print(json.dumps(
                [record.to_dict() for record in records], indent=2
            ))
            return 0
        header = (f"{'id':<10} {'name':<24} {'tenant':<16} {'state':<8} "
                  f"{'created':<17} scopes")
        print(header)
        print("-" * len(header))
        for record in records:
            state = "active" if record.active else "revoked"
            print(
                f"{record.id:<10} {record.name:<24.24} "
                f"{record.tenant:<16.16} {state:<8} "
                f"{_format_stamp(record.created):<17} "
                f"{','.join(record.scopes)}"
            )
        print(f"{len(records)} tokens in {args.tokens}")
        return 0
    except (KeyError, ValueError) as error:
        message = error.args[0] if error.args else error
        print(f"error: {message}", file=sys.stderr)
        return 1
    finally:
        registry.close()


def _cmd_usage(args: argparse.Namespace) -> int:
    """A tenant's usage counters from a running server (GET /usage)."""
    from .service.client import ServiceClient

    with ServiceClient(
        args.url, timeout=args.timeout, token=args.token
    ) as client:
        result = client.usage()
    if args.json:
        print(json.dumps(result, indent=2))
        return 0

    def _counters(usage: dict) -> str:
        return "  ".join(f"{name}={value}" for name, value in usage.items())

    print(f"tenant {result['tenant']}")
    print(f"  {_counters(result['usage'])}")
    tenants = result.get("tenants")
    if tenants:
        print("all tenants:")
        for tenant, usage in tenants.items():
            print(f"  {tenant:<16} {_counters(usage)}")
    return 0


def _cmd_submit(args: argparse.Namespace) -> int:
    """Send one design to a running server, through the Session facade."""
    from .api import Session

    with open(args.design, encoding="utf-8") as handle:
        design = json.load(handle)
    session = Session(
        executor="service", url=args.url, timeout=args.timeout,
        token=args.token,
    )
    workload = "none" if args.workload == "none" else "av"
    point = session.evaluate(design, workload=workload, backend=args.backend)
    result = point.to_payload()
    if args.json:
        print(json.dumps(result, indent=2))
    else:
        print(f"design        : {result['design']}")
        print(f"integration   : {result['integration']}")
        print(f"valid         : {'yes' if result['valid'] else 'NO (bandwidth)'}")
        print(f"embodied      : {result['embodied_kg']:9.3f} kg CO2e")
        if "operational_kg" in result:
            print(f"operational   : {result['operational_kg']:9.3f} kg CO2e")
        print(f"total         : {result['total_kg']:9.3f} kg CO2e")
        print(f"served from   : {point.cache or 'computed'}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    """Run a study locally under a trace; print its span tree.

    The study file is either a full wire payload (with ``"type"``) or a
    bare design JSON, which is wrapped as an evaluate study. Every
    pipeline stage, memo lookup, store access, and dispatcher call the
    study touched shows up as a span with total and self time.
    """
    from .api import Session, StudySpec
    from .obs import trace as obs_trace

    with open(args.study, encoding="utf-8") as handle:
        payload = json.load(handle)
    if "type" in payload:
        study = StudySpec.from_payload(payload)
    else:
        study = StudySpec.evaluate(payload, workload=args.workload)
    with Session(fab_location=args.fab_location) as session:
        with obs_trace.trace(f"carbon3d trace {study.kind}") as root:
            session.run(study)
        spans = obs_trace.collector.spans(root.trace_id)
    print(f"trace {root.trace_id} — {study.kind} study, "
          f"{len(spans)} spans")
    print(obs_trace.render_tree(spans))
    breakdown = obs_trace.stage_breakdown(spans)
    if breakdown:
        print(f"{'span':<28} {'count':>5} {'total ms':>9} {'self ms':>9}")
        for name, entry in sorted(
            breakdown.items(), key=lambda item: -item[1]["self_s"]
        ):
            print(
                f"{name:<28.28} {entry['count']:>5d} "
                f"{entry['total_s'] * 1e3:>9.3f} "
                f"{entry['self_s'] * 1e3:>9.3f}"
            )
    return 0


def _cmd_backends(args: argparse.Namespace) -> int:
    """List registered carbon backends (with factor-set digests).

    Factor sets are design-dependent (per-node intensity tables, package
    class); the digests here are pinned to the documented reference
    design — a 7 nm planar 2D SoC — so two invocations (or two machines)
    can compare them.
    """
    from .core.design import ChipDesign
    from .pipeline.registry import backend_names, get_backend

    reference = ChipDesign.planar_2d(
        "reference", node="7nm", gate_count=17e9, throughput_tops=254.0
    )
    rows = []
    for name in backend_names():
        backend = get_backend(name)
        factor_set = backend.factor_set(reference, DEFAULT_PARAMETERS)
        rows.append({
            "name": name,
            "label": backend.label,
            "operational": backend.models_operational,
            "stages": [stage.name for stage in backend.stages],
            "factors": len(factor_set),
            "factor_set": factor_set.name,
            "factor_set_digest": factor_set.digest(),
        })
    if args.json:
        print(json.dumps({
            "reference_design": reference.name,
            "backends": rows,
        }, indent=2))
        return 0
    header = (f"{'name':<12} {'label':<14} {'oper':>5} {'factors':>8} "
              f"{'stages':<28} digest")
    print(header)
    print("-" * len(header))
    for row in rows:
        stages = ",".join(row["stages"])
        print(
            f"{row['name']:<12} {row['label']:<14.14} "
            f"{'yes' if row['operational'] else 'no':>5} "
            f"{row['factors']:>8d} {stages:<28.28} "
            f"{row['factor_set_digest'][:12]}"
        )
    return 0


def _cmd_studies(args: argparse.Namespace) -> int:
    """List the StudySpec vocabulary every entry point speaks."""
    from .api import STUDY_KINDS
    from .service.schema import SCHEMA_VERSION

    if args.json:
        print(json.dumps({
            "schema": SCHEMA_VERSION,
            "studies": [
                {
                    "kind": kind,
                    "type": info["wire"],
                    "route": f"/{info['wire']}",
                    "result": info["result"],
                    "summary": info["summary"],
                }
                for kind, info in STUDY_KINDS.items()
            ],
        }, indent=2))
        return 0
    header = f"{'kind':<12} {'wire type':<12} {'route':<13} {'result':<8} summary"
    print(header)
    print("-" * len(header))
    for kind, info in STUDY_KINDS.items():
        print(
            f"{kind:<12} {info['wire']:<12} {'/' + info['wire']:<13} "
            f"{info['result']:<8} {info['summary']}"
        )
    return 0


def _cmd_nodes(_: argparse.Namespace) -> int:
    print(f"{'node':<12} {'λ (nm)':>7} {'EPA':>6} {'GPA':>6} {'MPA':>6} "
          f"{'D0':>6} {'maxBEOL':>8}")
    for node in DEFAULT_PARAMETERS.technology:
        print(
            f"{node.name:<12} {node.feature_nm:7.1f} "
            f"{node.epa_kwh_per_cm2:6.2f} {node.gpa_kg_per_cm2:6.2f} "
            f"{node.mpa_kg_per_cm2:6.2f} {node.defect_density_per_cm2:6.3f} "
            f"{node.max_beol_layers:8d}"
        )
    return 0


def _cmd_technologies(_: argparse.Namespace) -> int:
    print(f"{'technology':<15} {'family':>6} {'bond':>7} {'Gbps':>6} "
          f"{'fJ/bit':>7} {'IO/mm/ly':>9}")
    for spec in DEFAULT_PARAMETERS.integration:
        print(
            f"{spec.name:<15} {spec.family.value:>6} {spec.bonding.value:>7} "
            f"{spec.data_rate_gbps:6.1f} {spec.energy_per_bit_fj:7.0f} "
            f"{spec.io_density_per_mm_per_layer:9.1f}"
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="carbon3d",
        description="3D-Carbon: carbon modeling for 3D/2.5D ICs (DAC'24)",
    )
    parser.add_argument(
        "--fab-location",
        default="taiwan",
        help="manufacturing grid (name or g CO2/kWh; default: taiwan)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p_eval = sub.add_parser("evaluate", help="evaluate a JSON design")
    p_eval.add_argument("design", help="path to the design JSON file")
    p_eval.add_argument(
        "--workload",
        choices=("av", "none"),
        default="av",
        help="operational workload (default: the AV case-study workload)",
    )
    p_eval.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    p_eval.set_defaults(func=_cmd_evaluate)

    sub.add_parser(
        "validate-epyc", help="Fig. 4(a) EPYC 7452 validation"
    ).set_defaults(func=_cmd_validate_epyc)
    sub.add_parser(
        "validate-lakefield", help="Fig. 4(b) Lakefield validation"
    ).set_defaults(func=_cmd_validate_lakefield)

    p_compare = sub.add_parser(
        "compare",
        help="Sec. 4-style cross-model table: every carbon backend on "
             "one design, in one batched engine call",
    )
    p_compare.add_argument(
        "design",
        help="design JSON path, or the built-in 'epyc' / 'lakefield'",
    )
    p_compare.add_argument(
        "--backends", default=None,
        help="comma-separated backend names (default: all registered)",
    )
    p_compare.add_argument(
        "--workload", choices=("av", "none"), default="none",
        help="operational workload for backends that model the use phase",
    )
    p_compare.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    p_compare.add_argument(
        "--draws", type=int, default=0,
        help="Monte-Carlo draws per backend (0 = no uncertainty bands); "
             "each backend draws from its own factor set",
    )
    p_compare.add_argument("--seed", type=int, default=20240623)
    p_compare.add_argument(
        "--service", default=None, metavar="URL",
        help="send the comparison to a running carbon3d service "
             "(one server-side engine batch) instead of computing locally",
    )
    p_compare.add_argument(
        "--token", default=None,
        help="shared-secret token for an authenticated --service server",
    )
    p_compare.set_defaults(func=_cmd_compare)

    p_drive = sub.add_parser("drive", help="Fig. 5 NVIDIA DRIVE study")
    p_drive.add_argument(
        "--approach",
        choices=("homogeneous", "heterogeneous"),
        default="homogeneous",
    )
    p_drive.set_defaults(func=_cmd_drive)

    sub.add_parser("table5", help="Sec. 5.2 decision table").set_defaults(
        func=_cmd_table5
    )

    p_search = sub.add_parser(
        "search", help="find the lowest-carbon valid configuration"
    )
    p_search.add_argument("design", help="path to a 2D reference JSON design")
    p_search.set_defaults(func=_cmd_search)

    p_opt = sub.add_parser(
        "optimize",
        help="vectorized Pareto search over integration × die-count × "
             "wafer × grid axes (local, or --service /optimize)",
    )
    p_opt.add_argument(
        "design",
        help="2D reference: a design JSON path, or a built-in DRIVE "
             "device name (px2, xavier, orin, thor)",
    )
    p_opt.add_argument(
        "--workload", choices=("av", "none"), default="av",
        help="operational workload priced into total_kg (default: av)",
    )
    p_opt.add_argument(
        "--integrations", default=None, metavar="LIST",
        help="comma-separated integration axis (default: the case-study "
             "seven; see `carbon3d technologies`)",
    )
    p_opt.add_argument(
        "--die-counts", default=None, metavar="LIST",
        help="comma-separated die-count axis for split variants "
             "(default: 2,3,4)",
    )
    p_opt.add_argument(
        "--wafers", default=None, metavar="LIST",
        help="comma-separated wafer diameters in mm (default: 200,300,450)",
    )
    p_opt.add_argument(
        "--locations", default=None, metavar="LIST",
        help="comma-separated fab grids (names or g CO2/kWh numbers; "
             "default: the session's --fab-location)",
    )
    p_opt.add_argument(
        "--max-configs", type=int, default=None,
        help="evaluate only the first N sampled configurations",
    )
    p_opt.add_argument(
        "--chunk", type=int, default=None,
        help="evaluation chunk size (default: 25000)",
    )
    p_opt.add_argument("--seed", type=int, default=20240623)
    p_opt.add_argument(
        "--stream", action="store_true",
        help="print a running front snapshot per chunk (stderr) while "
             "the search runs",
    )
    p_opt.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    p_opt.add_argument(
        "--service", default=None, metavar="URL",
        help="run the search on a running carbon3d service "
             "(POST /optimize) instead of computing locally",
    )
    p_opt.add_argument(
        "--token", default=None,
        help="shared-secret token for an authenticated --service server",
    )
    p_opt.set_defaults(func=_cmd_optimize)

    p_sens = sub.add_parser(
        "sensitivity", help="one-at-a-time tornado study for a design"
    )
    p_sens.add_argument("design", help="path to the design JSON file")
    p_sens.set_defaults(func=_cmd_sensitivity)

    p_export = sub.add_parser(
        "export", help="export a study's rows to CSV/JSON"
    )
    p_export.add_argument("study", choices=("drive", "table5"))
    p_export.add_argument("output", help="output path (.csv or .json)")
    p_export.add_argument(
        "--approach",
        choices=("homogeneous", "heterogeneous"),
        default="homogeneous",
    )
    p_export.set_defaults(func=_cmd_export)
    p_bench = sub.add_parser(
        "bench",
        help="perf benches: engine (BENCH_engine.json) or, with "
             "--service, the service store (BENCH_service.json)",
    )
    p_bench.add_argument(
        "--output", default=None,
        help="output path (default: BENCH_engine.json / BENCH_service.json)",
    )
    p_bench.add_argument(
        "--samples", type=int, default=None,
        help="Monte-Carlo draws per MC bench/request",
    )
    p_bench.add_argument("--repeats", type=int, default=3)
    p_bench.add_argument(
        "--service", action="store_true",
        help="bench HTTP throughput warm-vs-cold store instead of the engine",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_serve = sub.add_parser(
        "serve", help="run the carbon evaluation HTTP service"
    )
    p_serve.add_argument("--host", default="127.0.0.1")
    p_serve.add_argument("--port", type=int, default=8787)
    p_serve.add_argument(
        "--store", default="carbon3d_store.sqlite3",
        help="persistent result-store path (default: carbon3d_store.sqlite3)",
    )
    p_serve.add_argument(
        "--no-store", action="store_true",
        help="serve without cross-restart persistence",
    )
    p_serve.add_argument(
        "--max-entries", type=int, default=100_000,
        help="store LRU eviction bound (entries)",
    )
    p_serve.add_argument("--verbose", action="store_true",
                         help="log every request to stderr")
    p_serve.add_argument(
        "--token", default=None,
        help="DEPRECATED legacy shared secret: required as "
             "X-Carbon3D-Token on every route except /healthz and "
             "/metrics (401 otherwise); folded into the token registry "
             "as an anonymous-tenant token — prefer --tokens with named "
             "per-tenant tokens (carbon3d tokens issue)",
    )
    p_serve.add_argument(
        "--tokens", default=None, metavar="PATH",
        help="multi-tenant token registry (SQLite; administer with "
             "carbon3d tokens); once it holds any token, every request "
             "must present a valid X-Carbon3D-Token and runs in its "
             "tenant's namespace under its tenant's quota",
    )
    p_serve.add_argument(
        "--max-inflight", type=int, default=32,
        help="admission bound: concurrent requests beyond this are shed "
             "with 503 + Retry-After (default: 32)",
    )
    p_serve.add_argument(
        "--drain-timeout", type=float, default=30.0,
        help="seconds to wait for in-flight requests on SIGTERM/close "
             "before giving up (default: 30)",
    )
    p_serve.add_argument(
        "--log-json", action="store_true",
        help="emit one JSON log line per request to stderr (trace id, "
             "route, status, duration, cache/shed flags)",
    )
    p_serve.add_argument(
        "--fault-plan", default=None, metavar="PLAN",
        help="deterministic fault-injection plan: inline JSON or a path "
             "to a JSON file (see repro.resilience.FaultPlan); armed "
             "process-wide, like the CARBON3D_FAULT_PLAN env var",
    )
    p_serve.add_argument(
        "--workers", default="1", metavar="N|auto",
        help="pre-forked worker processes sharing one listening socket "
             "(auto = usable CPUs); 1 serves single-process (default)",
    )
    p_serve.set_defaults(func=_cmd_serve)

    p_loadgen = sub.add_parser(
        "loadgen",
        help="drive concurrent keep-alive load; record p50/p99 and "
             "rps-vs-workers curves",
    )
    p_loadgen.add_argument(
        "--url", default=None,
        help="existing service to load instead of forking local fleets",
    )
    p_loadgen.add_argument(
        "--workers-list", default="1,2,4", metavar="N,N,...",
        help="fleet sizes to sweep when no --url is given (default: 1,2,4)",
    )
    p_loadgen.add_argument("--requests", type=int, default=64,
                           help="request budget per pass (default: 64)")
    p_loadgen.add_argument("--concurrency", type=int, default=8,
                           help="concurrent clients (default: 8)")
    p_loadgen.add_argument("--distinct", type=int, default=8,
                           help="distinct designs round-robined (default: 8)")
    p_loadgen.add_argument(
        "--no-keep-alive", action="store_true",
        help="reconnect per request (measures what keep-alive is worth)",
    )
    p_loadgen.add_argument(
        "--token", default=None,
        help="shared-secret token for an authenticated --url service",
    )
    p_loadgen.add_argument(
        "--output", default="BENCH_service.json",
        help="trajectory file for the fleet sweep "
             "(default: BENCH_service.json; --url mode never writes)",
    )
    p_loadgen.add_argument(
        "--no-output", action="store_true",
        help="print results without touching the trajectory file",
    )
    p_loadgen.add_argument("--json", action="store_true",
                           help="emit the full JSON result")
    p_loadgen.set_defaults(func=_cmd_loadgen)

    p_tokens = sub.add_parser(
        "tokens",
        help="administer the multi-tenant token registry "
             "(issue/revoke/list/rotate named API tokens)",
    )
    p_tokens.add_argument(
        "--tokens", default="carbon3d_tokens.sqlite3", metavar="PATH",
        help="registry path (default: carbon3d_tokens.sqlite3; point "
             "this at the file carbon3d serve --tokens uses)",
    )
    tokens_sub = p_tokens.add_subparsers(
        dest="tokens_command", required=True
    )
    t_issue = tokens_sub.add_parser(
        "issue", help="mint a named token (the secret prints once)"
    )
    t_issue.add_argument("name", help="unique-for-active-tokens name")
    t_issue.add_argument(
        "--tenant", default=None,
        help="owning tenant id (default: the token name)",
    )
    t_issue.add_argument(
        "--scopes", default=None, metavar="LIST",
        help="comma-separated scopes ('admin' sees every tenant's usage)",
    )
    t_issue.add_argument(
        "--rate", type=float, default=None, metavar="PTS_PER_S",
        help="token-bucket refill rate in points/second (unset: no rate "
             "limit)",
    )
    t_issue.add_argument(
        "--burst", type=float, default=None, metavar="PTS",
        help="token-bucket capacity in points (default: the --rate)",
    )
    t_issue.add_argument(
        "--max-requests", type=int, default=None,
        help="absolute lifetime request ceiling (429 past it)",
    )
    t_issue.add_argument(
        "--max-points", type=int, default=None,
        help="absolute lifetime evaluated-point ceiling (429 past it)",
    )
    t_issue.add_argument("--json", action="store_true",
                         help="emit the secret and record as JSON")
    t_revoke = tokens_sub.add_parser(
        "revoke", help="revoke an active token by id or name"
    )
    t_revoke.add_argument("ident", help="token id or name")
    t_rotate = tokens_sub.add_parser(
        "rotate", help="re-key a token in place (new secret prints once)"
    )
    t_rotate.add_argument("ident", help="token id or name")
    t_rotate.add_argument("--json", action="store_true",
                          help="emit the new secret and record as JSON")
    t_list = tokens_sub.add_parser("list", help="list registry tokens")
    t_list.add_argument(
        "--all", action="store_true",
        help="include revoked tokens (default: active only)",
    )
    t_list.add_argument("--json", action="store_true",
                        help="emit machine-readable JSON")
    p_tokens.set_defaults(func=_cmd_tokens)

    p_usage = sub.add_parser(
        "usage",
        help="a tenant's usage counters from a running service "
             "(GET /usage; admin tokens see every tenant)",
    )
    p_usage.add_argument("--url", default="http://127.0.0.1:8787")
    p_usage.add_argument(
        "--token", default=None,
        help="API token selecting the tenant to report on",
    )
    p_usage.add_argument("--timeout", type=float, default=10.0)
    p_usage.add_argument("--json", action="store_true",
                         help="emit machine-readable JSON")
    p_usage.set_defaults(func=_cmd_usage)

    p_submit = sub.add_parser(
        "submit", help="submit a design JSON to a running service"
    )
    p_submit.add_argument("design", help="path to the design JSON file")
    p_submit.add_argument("--url", default="http://127.0.0.1:8787")
    p_submit.add_argument(
        "--workload", choices=("av", "none"), default="av"
    )
    p_submit.add_argument("--timeout", type=float, default=60.0)
    p_submit.add_argument(
        "--backend", default=None,
        help="carbon backend to evaluate under (default: repro3d)",
    )
    p_submit.add_argument(
        "--token", default=None,
        help="token secret for an authenticated server (a registry "
        "token from `carbon3d tokens issue`, or a legacy shared secret)",
    )
    p_submit.add_argument(
        "--json", action="store_true", help="emit the full JSON report"
    )
    p_submit.set_defaults(func=_cmd_submit)

    p_trace = sub.add_parser(
        "trace",
        help="run a study locally under a trace and print the span "
             "tree with per-stage self-times",
    )
    p_trace.add_argument(
        "study",
        help="study JSON: a wire payload (with \"type\") or a bare design",
    )
    p_trace.add_argument(
        "--workload", choices=("av", "none"), default="av",
        help="workload when the file is a bare design (default: av)",
    )
    p_trace.set_defaults(func=_cmd_trace)

    p_backends = sub.add_parser(
        "backends",
        help="list registered carbon backends with factor-set digests",
    )
    p_backends.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    p_backends.set_defaults(func=_cmd_backends)

    p_studies = sub.add_parser(
        "studies",
        help="list the StudySpec study kinds (the facade/service/CLI "
             "vocabulary)",
    )
    p_studies.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    p_studies.set_defaults(func=_cmd_studies)
    sub.add_parser("nodes", help="list process nodes").set_defaults(
        func=_cmd_nodes
    )
    sub.add_parser(
        "technologies", help="list integration technologies"
    ).set_defaults(func=_cmd_technologies)
    return parser


def main(argv: "list[str] | None" = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except CarbonModelError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
