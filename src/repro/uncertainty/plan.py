"""The compiled perturbation plan: vectorized draws + fast row application.

One :class:`PerturbationPlan` turns a declarative
:class:`~repro.uncertainty.factors.FactorSet` into the two operations
every Monte-Carlo consumer needs:

* :meth:`~PerturbationPlan.draw` — **all** multipliers of a study as one
  ``(samples, n_factors)`` array. All-triangular, uncorrelated sets (the
  default Table 2 set) take the exact legacy numpy call — NumPy's
  ``Generator.triangular`` consumes one uniform per variate and fills
  broadcast output in C order, so the array is bit-identical to the
  historical per-factor scalar draw sequence. Sets with uniform or
  lognormal factors, or with correlation groups, take the general
  inverse-CDF path: one uniform per *group* per sample, mapped through
  each factor's quantile function — factors sharing a group move
  together, independent factors do not.
* :meth:`~PerturbationPlan.perturbed` — one row of multipliers applied
  to the base :class:`~repro.config.parameters.ParameterSet`. When every
  params-scoped factor carries a declarative target and no two touch the
  same field, the plan compiles one grouped override per perturbed
  record (validated once on the multiplier extremes) instead of one
  copy-on-write chain per factor; rows outside the validated range, or
  factor sets the compiler cannot prove safe, fall back to the exact
  sequential ``apply`` chain. Model-scoped factors never touch the
  parameter set — :meth:`~PerturbationPlan.model_multipliers` exposes
  their row values for
  :meth:`repro.pipeline.CarbonBackend.with_model_multipliers`.

This module subsumes the historical ``repro.engine.montecarlo.
ParameterPerturber`` (now a thin alias over :class:`PerturbationPlan`)
and the ad-hoc scalar draw in ``analysis.uncertainty`` — scalar and
batched draws now come from this one code path.
"""

from __future__ import annotations

import math

import numpy as np

from ..config.parameters import ParameterSet
from ..errors import ParameterError
from .factors import FactorSet

#: Φ⁻¹(0.95): the z-score the lognormal P05/P95 bounds are pinned to.
_Z95 = 1.6448536269514722

#: ParameterSet attribute the records of each target kind live under.
_KIND_ATTR = {
    "node": "technology",
    "bonding": "bonding",
    "packaging": "packaging",
    "integration": "integration",
    "bandwidth": "bandwidth",
}


def _norm_ppf(u: np.ndarray) -> np.ndarray:
    """Φ⁻¹ via Acklam's rational approximation (|ε| < 1.15e-9).

    scipy is not a dependency of this package; the approximation error
    is orders of magnitude below the factor-range precision it feeds.
    """
    a = (-3.969683028665376e+01, 2.209460984245205e+02,
         -2.759285104469687e+02, 1.383577518672690e+02,
         -3.066479806614716e+01, 2.506628277459239e+00)
    b = (-5.447609879822406e+01, 1.615858368580409e+02,
         -1.556989798598866e+02, 6.680131188771972e+01,
         -1.328068155288572e+01)
    c = (-7.784894002430293e-03, -3.223964580411365e-01,
         -2.400758277161838e+00, -2.549732539343734e+00,
         4.374664141464968e+00, 2.938163982698783e+00)
    d = (7.784695709041462e-03, 3.224671290700398e-01,
         2.445134137142996e+00, 3.754408661907416e+00)
    u = np.asarray(u, dtype=float)
    out = np.empty_like(u)
    p_low, p_high = 0.02425, 1.0 - 0.02425

    low = u < p_low
    high = u > p_high
    mid = ~(low | high)

    if np.any(mid):
        q = u[mid] - 0.5
        r = q * q
        out[mid] = (
            (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r
             + a[5]) * q
            / (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r
               + 1.0)
        )
    if np.any(low):
        q = np.sqrt(-2.0 * np.log(u[low]))
        out[low] = (
            (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
             + c[5])
            / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
        )
    if np.any(high):
        q = np.sqrt(-2.0 * np.log(1.0 - u[high]))
        out[high] = -(
            (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q
             + c[5])
            / ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0)
        )
    return out


def _quantile_column(factor, u: np.ndarray) -> np.ndarray:
    """One factor's multipliers from its group's uniform quantiles."""
    distribution = getattr(factor, "distribution", "triangular")
    low, high = factor.low, factor.high
    if distribution == "uniform":
        return low + u * (high - low)
    if distribution == "lognormal":
        # low/high are the P05/P95 multiplier quantiles; median sqrt(lh).
        log_low, log_high = math.log(low), math.log(high)
        mu = 0.5 * (log_low + log_high)
        sigma = (log_high - log_low) / (2.0 * _Z95)
        return np.exp(mu + sigma * _norm_ppf(u))
    # Triangular with mode 1: the standard inverse CDF. A pinned factor
    # (low == high == 1.0 passes the straddle validation) degenerates to
    # a constant column rather than a 0/0 in the cut point.
    span = high - low
    if span == 0.0:
        return np.full_like(u, low)
    cut = (1.0 - low) / span
    left = low + np.sqrt(u * span * (1.0 - low))
    right = high - np.sqrt((1.0 - u) * span * (high - 1.0))
    return np.where(u < cut, left, right)


def draw_multipliers(factors, samples: int, seed: int) -> np.ndarray:
    """All factor multipliers of a study as a ``(samples, n)`` array.

    The all-triangular, uncorrelated fast path is bit-identical to the
    legacy scalar draw sequence (one ``Generator.triangular`` broadcast
    call); any other set routes every factor through the shared
    inverse-CDF path with one uniform per correlation group per sample.
    """
    factors = list(factors)
    plain = all(
        getattr(f, "distribution", "triangular") == "triangular"
        and getattr(f, "group", None) is None
        for f in factors
    )
    rng = np.random.default_rng(seed)
    if plain:
        lows = np.array([factor.low for factor in factors], dtype=float)
        highs = np.array([factor.high for factor in factors], dtype=float)
        shape = (samples, len(lows))
        return rng.triangular(
            np.broadcast_to(lows, shape), 1.0, np.broadcast_to(highs, shape)
        )
    # One underlying uniform per correlation group (fresh column when
    # None), assigned in factor order so the draw stream is deterministic.
    group_index: "dict[str, int]" = {}
    columns: "list[int]" = []
    next_column = 0
    for factor in factors:
        group = getattr(factor, "group", None)
        if group is None:
            columns.append(next_column)
            next_column += 1
        else:
            if group not in group_index:
                group_index[group] = next_column
                next_column += 1
            columns.append(group_index[group])
    uniforms = rng.random((samples, next_column))
    out = np.empty((samples, len(factors)), dtype=float)
    for index, factor in enumerate(factors):
        out[:, index] = _quantile_column(factor, uniforms[:, columns[index]])
    return out


class PerturbationPlan:
    """Compiles a factor set into fast draw → ParameterSet application."""

    def __init__(self, factors, base: ParameterSet) -> None:
        self.factor_set = FactorSet.coerce(factors)
        self.factors = list(self.factor_set)
        self.base = base
        #: (row column, constant name) per model-scoped factor.
        self._model_columns = tuple(
            (index, factor.target.field)
            for index, factor in enumerate(self.factors)
            if getattr(factor, "target", None) is not None
            and getattr(factor.target, "kind", None) == "model"
        )
        # Model overrides are a {field: multiplier} dict — a duplicate
        # field would silently drop all but the last draw (the params
        # path detects duplicates in _compile and falls back to ordered
        # sequential application; there is no such fallback here).
        fields = [field for _, field in self._model_columns]
        if len(set(fields)) != len(fields):
            duplicates = sorted(
                {field for field in fields if fields.count(field) > 1}
            )
            raise ParameterError(
                f"factor set {self.factor_set.name!r} declares multiple "
                f"model-scoped factors for the same constant(s): "
                f"{', '.join(duplicates)}"
            )
        self._plan = self._compile()

    # -- identity -------------------------------------------------------------

    @property
    def has_model_factors(self) -> bool:
        return bool(self._model_columns)

    def fingerprint(self) -> tuple:
        """The factor set's value fingerprint (joins content keys)."""
        return self.factor_set.fingerprint()

    def digest(self) -> str:
        """SHA-256 digest of the fingerprint (per-set store identity)."""
        return self.factor_set.digest()

    # -- draws ----------------------------------------------------------------

    def draw(self, samples: int, seed: int) -> np.ndarray:
        """All multipliers of a study — see :func:`draw_multipliers`."""
        return draw_multipliers(self.factors, samples, seed)

    def model_multipliers(self, row) -> "dict[str, float] | None":
        """Model-constant multipliers of one row (None when there are none)."""
        if not self._model_columns:
            return None
        return {
            field: float(row[index]) for index, field in self._model_columns
        }

    def backend_for(self, row, backend=None):
        """The carbon backend pricing one row of draws.

        ``backend`` itself (name, instance, or None for the default)
        when the set has no model-scoped factors; otherwise a derived
        instance carrying this row's model-constant multipliers — the
        one pattern every Monte-Carlo consumer shares.
        """
        overrides = self.model_multipliers(row)
        if not overrides:
            return backend
        from ..pipeline.registry import resolve_backend

        return resolve_backend(backend).with_model_multipliers(overrides)

    # -- row application ------------------------------------------------------

    def _params_factors(self):
        """(row column, factor) for every params-scoped factor, in order."""
        model = {index for index, _ in self._model_columns}
        return [
            (index, factor) for index, factor in enumerate(self.factors)
            if index not in model
        ]

    def _compile(self):
        """One precompiled group per perturbed record; None → fall back.

        Per group: the record's class, its base ``__dict__``, and the
        (field, base value, clamp, row column, multiplier bounds) entries.
        Record validation runs here, once, on both multiplier extremes:
        every check is a per-field interval test and each scaled value is
        monotone in its multiplier, so if both extremes construct, every
        in-range draw does too — which lets :meth:`perturbed` assemble
        records without re-running ``__post_init__`` 10⁴ times. Rows with
        out-of-range multipliers (lognormal tails land here by design —
        their bounds are quantiles, not support) or factor sets the
        extremes reject take the exact sequential ``apply`` chain instead.
        """
        seen = set()
        groups: dict[tuple, list] = {}
        for index, factor in self._params_factors():
            target = getattr(factor, "target", None)
            if target is None:
                return None
            field_id = (target.kind, target.key, target.field)
            if field_id in seen:  # same field twice → order matters, bail out
                return None
            seen.add(field_id)
            groups.setdefault((target.kind, target.key), []).append(
                (target, index)
            )
        plan = []
        bounds = []
        for (kind, key), members in groups.items():
            record = members[0][0].record(self.base)
            base_fields = {
                name: getattr(record, name)
                for name in record.__dataclass_fields__
            }
            low_fields = dict(base_fields)
            high_fields = dict(base_fields)
            scaled = []
            for target, index in members:
                factor = self.factors[index]
                base_value = base_fields[target.field]
                low_fields[target.field] = target.scale(base_value, factor.low)
                high_fields[target.field] = target.scale(base_value, factor.high)
                scaled.append(
                    (target.field, base_value, target.clamp_to_one, index)
                )
                bounds.append((index, factor.low, factor.high))
            record_cls = type(record)
            try:
                record_cls(**low_fields)
                record_cls(**high_fields)
            except Exception:
                # An extreme fails the record's own validation: the grouped
                # path cannot prove every draw constructs, so fall back.
                return None
            plan.append(
                (_KIND_ATTR[kind], record_cls, base_fields, tuple(scaled))
            )
        ps_fields = {
            name: getattr(self.base, name)
            for name in self.base.__dataclass_fields__
        }
        return (plan, tuple(bounds), ps_fields)

    def _sequential(self, multipliers) -> ParameterSet:
        perturbed = self.base
        for index, factor in self._params_factors():
            perturbed = factor.apply(perturbed, float(multipliers[index]))
        return perturbed

    def sequential(self, multipliers) -> ParameterSet:
        """One row applied through the exact per-factor ``apply`` chain.

        The reference semantics the grouped fast path is validated
        against — scalar consumers (equivalence tests, the legacy
        Monte-Carlo reference) use this instead of :meth:`perturbed` to
        pin the historical behaviour.
        """
        return self._sequential(multipliers)

    def perturbed(self, multipliers) -> ParameterSet:
        """The base set with one row of multipliers applied."""
        if self._plan is None:
            return self._sequential(multipliers)
        plan, bounds, ps_fields = self._plan
        if not plan:
            # Model-only factor sets touch no ParameterSet field — keep
            # the identity-interned base so downstream fingerprint caches
            # hit on identity, not just value equality.
            return self.base
        for index, low, high in bounds:
            if not low <= multipliers[index] <= high:
                # Outside the range validated at compile time — use the
                # sequential chain, which re-validates every construction.
                return self._sequential(multipliers)

        overrides = dict(ps_fields)
        for attr, record_cls, base_fields, scaled_fields in plan:
            fields = dict(base_fields)
            for name, base_value, clamp, index in scaled_fields:
                value = base_value * float(multipliers[index])
                fields[name] = min(value, 1.0) if clamp else value
            record = object.__new__(record_cls)
            record.__dict__.update(fields)
            if attr == "bandwidth":
                overrides[attr] = record
            else:
                overrides[attr] = overrides[attr].with_record(record)
        perturbed = object.__new__(ParameterSet)
        perturbed.__dict__.update(overrides)
        return perturbed
