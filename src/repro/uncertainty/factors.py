"""Declarative uncertainty factors: targets, specs, and named factor sets.

The paper's headline claim is carbon estimates *with uncertainty* over
the Table 2 factors — and honest cross-model comparison (Sec. 4)
requires each carbon backend to carry its *own* parameter uncertainty,
the way ACT v3-style models ship their own parameter tables and
envelopes. This module is the declarative half of that layer:

* :class:`FactorTarget` — the single field a factor scales, addressed by
  (kind, key, field) into the parameter databases, plus the ``"model"``
  kind for backend-internal constants (ACT's fixed yield, the GaBi CPA
  table, the first-order intensity) that live outside
  :class:`~repro.config.parameters.ParameterSet`;
* :class:`FactorSpec` — one uncertain input: name, multiplier bounds, a
  distribution (``triangular`` / ``uniform`` / ``lognormal``) and an
  optional correlation ``group`` (factors sharing a group draw from one
  underlying quantile per sample — they move together);
* :class:`FactorSet` — a named, fingerprintable tuple of specs. The
  fingerprint (and its SHA-256 :meth:`~FactorSet.digest`) joins the
  service-store content keys, so two Monte-Carlo studies share a cached
  summary exactly when they drew from the same set;
* the built-in sets — :func:`table2_factor_set` (3D-Carbon's own, the
  exact factors ``analysis.sensitivity.default_factors`` always built)
  and the literature-grounded per-backend sets for ACT/ACT+
  (:func:`act_factor_set`), LCA reports (:func:`lca_factor_set`) and the
  first-order model (:func:`first_order_factor_set`).

The vectorized half — drawing multipliers and applying rows — lives in
:mod:`repro.uncertainty.plan`; this module stays numpy-free so the CLI
and the evaluate-only service deployments never pay the import.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Callable

from ..baselines.lca import GABI_FINEST_NODE
from ..config.integration import AssemblyFlow, BondingMethod
from ..config.parameters import DEFAULT_PARAMETERS, ParameterSet
from ..errors import ParameterError

#: A factor perturbs a ParameterSet to a given multiplier of its default.
FactorFn = Callable[[ParameterSet, float], ParameterSet]

#: Distributions a :class:`FactorSpec` may draw its multiplier from.
DISTRIBUTIONS = ("triangular", "uniform", "lognormal")

#: Target kinds that address a :class:`ParameterSet` table ("params
#: scope"); the remaining kind, ``"model"``, addresses a backend-internal
#: constant and is consumed through
#: :meth:`repro.pipeline.CarbonBackend.with_model_multipliers`.
PARAMS_KINDS = ("node", "bonding", "packaging", "integration", "bandwidth")


@dataclass(frozen=True)
class FactorTarget:
    """Declarative description of the single field a factor scales.

    ``kind`` names the parameter database ("node", "bonding", "packaging",
    "integration", "bandwidth"), ``key`` addresses the record inside it,
    ``field`` the scaled attribute. The compiled perturbation plan uses
    targets to apply a whole factor row with one override per record
    instead of one copy-on-write chain per factor, and :meth:`apply`
    derives the sequential application from the same description.

    ``kind="model"`` marks a backend-internal constant instead: ``key``
    names the owning backend, ``field`` the constant the backend's
    :meth:`~repro.pipeline.CarbonBackend.with_model_multipliers` scales.
    Model targets have no :class:`ParameterSet` application.
    """

    kind: str
    key: tuple
    field: str
    clamp_to_one: bool = False

    @property
    def is_model(self) -> bool:
        return self.kind == "model"

    def record(self, params: ParameterSet):
        """The parameter-database record this target addresses.

        The one kind → record dispatch every consumer (read, apply, the
        compiled plan) routes through.
        """
        if self.kind == "node":
            return params.node(self.key[0])
        if self.kind == "bonding":
            return params.bonding.get(self.key[0], self.key[1])
        if self.kind == "packaging":
            return params.packaging.get(self.key[0])
        if self.kind == "integration":
            return params.integration_spec(self.key[0])
        if self.kind == "bandwidth":
            return params.bandwidth
        raise ParameterError(f"unknown factor-target kind {self.kind!r}")

    def read(self, params: ParameterSet) -> float:
        """The unperturbed value of the targeted field."""
        return getattr(self.record(params), self.field)

    def scale(self, value: float, multiplier: float) -> float:
        """The perturbed value — one multiplication plus the clamp."""
        scaled = value * multiplier
        if self.clamp_to_one:
            scaled = min(scaled, 1.0)
        return scaled

    def apply(self, params: ParameterSet, multiplier: float) -> ParameterSet:
        """``params`` with this field scaled — the sequential application.

        Reads the base value, scales it (clamping where declared) and
        routes through the matching ``with_*_override`` helper — exactly
        the operations the historical per-factor closures performed, so
        derived applications stay bit-identical to them.
        """
        if self.kind == "model":
            raise ParameterError(
                f"model-scoped factor target {self.field!r} has no "
                f"ParameterSet application (it scales a backend constant)"
            )
        scaled = self.scale(self.read(params), multiplier)
        override = {self.field: scaled}
        if self.kind == "node":
            return params.with_node_override(self.key[0], **override)
        if self.kind == "bonding":
            return params.with_bonding_override(
                self.key[0], self.key[1], **override
            )
        if self.kind == "packaging":
            return params.with_packaging_override(self.key[0], **override)
        if self.kind == "integration":
            return params.with_integration_override(self.key[0], **override)
        return params.with_bandwidth(**override)

    def fingerprint(self) -> tuple:
        """Value tuple for content keys (stable across sessions)."""
        return ("target", self.kind, self.key, self.field, self.clamp_to_one)


@dataclass(frozen=True)
class FactorSpec:
    """One uncertain input, fully declarative.

    ``low``/``high`` bound the multiplier: the triangular law's support
    (mode 1), the uniform's support, or the lognormal's P05/P95
    quantiles (median ``sqrt(low·high)``). ``group`` names a correlation
    group — specs sharing a group draw from one underlying quantile per
    sample, so e.g. the fab-energy factors of two process nodes move
    together while an independent defect density does not.
    """

    name: str
    low: float
    high: float
    target: FactorTarget
    distribution: str = "triangular"
    group: "str | None" = None

    def __post_init__(self) -> None:
        if self.distribution not in DISTRIBUTIONS:
            raise ParameterError(
                f"{self.name}: distribution must be one of "
                f"{', '.join(DISTRIBUTIONS)}, got {self.distribution!r}"
            )
        if self.distribution == "triangular":
            if not 0.0 < self.low <= 1.0 <= self.high:
                raise ParameterError(
                    f"{self.name}: multipliers must straddle 1.0, "
                    f"got [{self.low}, {self.high}]"
                )
        elif not 0.0 < self.low < self.high:
            raise ParameterError(
                f"{self.name}: multiplier bounds must satisfy "
                f"0 < low < high, got [{self.low}, {self.high}]"
            )

    def apply(self, params: ParameterSet, multiplier: float) -> ParameterSet:
        """Sequential application, derived from the declarative target."""
        return self.target.apply(params, multiplier)

    def fingerprint(self) -> tuple:
        return (
            "factor", self.name, self.distribution, self.group,
            self.low, self.high, self.target.fingerprint(),
        )


def spec_fingerprint(factor) -> tuple:
    """Fingerprint of any factor-like object (specs or legacy factors).

    Legacy :class:`repro.analysis.sensitivity.SensitivityFactor` objects
    (closure-based ``apply``, optional target, implicit triangular law)
    fingerprint on the same attributes with their defaults filled in.
    """
    if isinstance(factor, FactorSpec):
        return factor.fingerprint()
    target = getattr(factor, "target", None)
    return (
        "factor",
        factor.name,
        getattr(factor, "distribution", "triangular"),
        getattr(factor, "group", None),
        factor.low,
        factor.high,
        target.fingerprint() if target is not None else None,
    )


def _canonical(value) -> str:
    """Session-stable rendering of a fingerprint for hashing.

    Covers exactly the shapes factor fingerprints are built from; the
    service store applies its own (richer) canonical encoding to the
    same tuples when they join content keys.
    """
    if value is None or isinstance(value, (bool, int, float)):
        return repr(value)
    if isinstance(value, str):
        return f"s{len(value)}:{value}"
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, (tuple, list)):
        return "(" + ",".join(_canonical(item) for item in value) + ")"
    raise ParameterError(
        f"cannot canonically encode {type(value).__name__!r} into a "
        f"factor-set digest"
    )


@dataclass(frozen=True)
class FactorSet:
    """A named, ordered, fingerprintable collection of factors.

    ``specs`` may mix :class:`FactorSpec` with legacy duck-typed factors
    (anything exposing ``name``/``low``/``high``/``apply`` and optionally
    ``target``/``distribution``/``group``) — the perturbation plan and
    the fingerprints treat both uniformly.
    """

    name: str
    specs: tuple

    def __iter__(self):
        return iter(self.specs)

    def __len__(self) -> int:
        return len(self.specs)

    def fingerprint(self) -> tuple:
        """The value tuple content keys embed: set name + every factor."""
        return (
            "factor_set",
            self.name,
            tuple(spec_fingerprint(spec) for spec in self.specs),
        )

    def digest(self) -> str:
        """SHA-256 of the fingerprint — the set's session-stable identity."""
        return hashlib.sha256(
            _canonical(self.fingerprint()).encode("utf-8")
        ).hexdigest()

    @classmethod
    def coerce(cls, factors, name: str = "custom") -> "FactorSet":
        """``factors`` as a FactorSet (lists wrap under ``name``)."""
        if isinstance(factors, cls):
            return factors
        return cls(name=name, specs=tuple(factors))


# -- built-in factor sets -----------------------------------------------------


def table2_factor_set(
    node: str = "7nm",
    integration: str = "hybrid_3d",
    package_class: str = "fcbga",
    params: "ParameterSet | None" = None,
) -> FactorSet:
    """3D-Carbon's own Table 2 factor set for a design flavour.

    Factor names, ranges, targets and order are exactly the ones
    ``analysis.sensitivity.default_factors`` has always produced — the
    equivalence tests pin the default Monte-Carlo/tornado paths built on
    this set bit-identical to the pre-refactor results. ``params``
    decides factor *inclusion* (whether the integration bonds, whether
    it spends I/O area) — pass the study's own set when it overrides
    integration specs, else the defaults decide.
    """
    params = params if params is not None else DEFAULT_PARAMETERS
    def node_factor(label, low, high, field):
        return FactorSpec(
            label, low, high, FactorTarget("node", (node,), field)
        )

    specs = [
        node_factor(
            f"defect_density[{node}]", 0.5, 2.0, "defect_density_per_cm2"
        ),
        node_factor(f"fab_energy_epa[{node}]", 0.7, 1.4, "epa_kwh_per_cm2"),
        node_factor(f"raw_material_mpa[{node}]", 0.7, 1.4, "mpa_kg_per_cm2"),
        FactorSpec(
            f"packaging_cpa[{package_class}]", 0.5, 2.0,
            FactorTarget("packaging", (package_class,), "cpa_kg_per_cm2"),
        ),
        FactorSpec(
            "traffic_bytes_per_op", 0.5, 2.0,
            FactorTarget("bandwidth", (), "traffic_bytes_per_op"),
        ),
    ]
    spec = params.integration_spec(integration)
    if spec.bonding is not BondingMethod.NONE:
        flow = AssemblyFlow.D2W if spec.is_3d else AssemblyFlow.CHIP_LAST
        specs.append(
            FactorSpec(
                f"bonding_epa[{spec.bonding.value}/{flow.value}]",
                0.5, 2.0,
                FactorTarget(
                    "bonding", (spec.bonding, flow), "epa_kwh_per_cm2"
                ),
            )
        )
        specs.append(
            FactorSpec(
                f"bond_yield[{spec.bonding.value}/{flow.value}]",
                0.95, 1.02,
                FactorTarget(
                    "bonding", (spec.bonding, flow), "bond_yield",
                    clamp_to_one=True,
                ),
            )
        )
    if spec.io_area_ratio > 0:
        specs.append(
            FactorSpec(
                f"io_area_ratio[{integration}]", 0.5, 2.0,
                FactorTarget(
                    "integration", (integration,), "io_area_ratio",
                    clamp_to_one=True,
                ),
            )
        )
    return FactorSet(name="table2", specs=tuple(specs))


def act_factor_set(nodes: "tuple[str, ...]") -> FactorSet:
    """ACT / ACT+ uncertainty: per-node EPA/GPA/MPA intensity ranges.

    ACT prices a die as ``(CI_fab·EPA + GPA + MPA)·A/Y`` with fixed
    yield, so its parametric uncertainty is exactly the per-node
    intensity table (Gupta et al. report ±30-40% spreads across fab
    surveys for all three). Fab electricity (EPA) and gas abatement
    (GPA) uncertainty come from *facility-wide* accounting, so their
    factors correlate across nodes (one correlation group each); raw
    material (MPA) spreads are per-supply-chain and stay independent.
    """
    specs = []
    for node in nodes:
        specs.append(FactorSpec(
            f"fab_energy_epa[{node}]", 0.7, 1.4,
            FactorTarget("node", (node,), "epa_kwh_per_cm2"),
            group="fab_energy",
        ))
        specs.append(FactorSpec(
            f"fab_gas_gpa[{node}]", 0.7, 1.4,
            FactorTarget("node", (node,), "gpa_kg_per_cm2"),
            group="fab_gas",
        ))
        specs.append(FactorSpec(
            f"raw_material_mpa[{node}]", 0.7, 1.4,
            FactorTarget("node", (node,), "mpa_kg_per_cm2"),
        ))
    return FactorSet(name="act", specs=tuple(specs))


def lca_factor_set() -> FactorSet:
    """LCA-report uncertainty: database CPA spread + yield-node defects.

    GaBi-style per-wafer factors are point values from proprietary fab
    surveys; published wafer LCAs at the same nodes spread roughly
    -20/+25% around them, modeled as one multiplicative ``cpa_scale``
    on the whole table (a database is internally consistent — its
    entries move together, hence a single model-scoped factor). The only
    :class:`ParameterSet` field the model reads is the 14 nm yield
    node's defect density (Table 2's 0.5-2× range).
    """
    return FactorSet(name="lca", specs=(
        FactorSpec(
            "gabi_cpa_scale", 0.8, 1.25,
            FactorTarget("model", ("lca",), "cpa_scale"),
        ),
        FactorSpec(
            f"defect_density[{GABI_FINEST_NODE}]", 0.5, 2.0,
            FactorTarget(
                "node", (GABI_FINEST_NODE,), "defect_density_per_cm2"
            ),
        ),
    ))


def first_order_factor_set() -> FactorSet:
    """First-order model uncertainty: the per-area intensity itself.

    Eeckhout's model is ``k·A + c`` with ``k`` the mid-range of published
    per-wafer LCAs — the spread of those LCAs (roughly 0.9-2.4 kg/cm²
    around the 1.5 default) *is* the model's uncertainty, plus the flat
    packaging adder's 0.5-2× range. Both are model constants, so both
    factors are model-scoped.
    """
    return FactorSet(name="first_order", specs=(
        FactorSpec(
            "silicon_kg_per_cm2", 0.6, 1.6,
            FactorTarget("model", ("first_order",), "kg_per_cm2"),
        ),
        FactorSpec(
            "packaging_kg", 0.5, 2.0,
            FactorTarget("model", ("first_order",), "packaging_kg"),
        ),
    ))
