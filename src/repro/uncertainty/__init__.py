"""Declarative uncertainty layer: factor sets behind one perturbation model.

Two halves:

* :mod:`repro.uncertainty.factors` — numpy-free declarative model:
  :class:`FactorTarget` / :class:`FactorSpec` / :class:`FactorSet` plus
  the built-in sets (3D-Carbon's Table 2 and the literature-grounded
  per-backend sets every :class:`repro.pipeline.CarbonBackend` serves
  through its ``factor_set()`` hook);
* :mod:`repro.uncertainty.plan` — the compiled, vectorized
  :class:`PerturbationPlan` every Monte-Carlo consumer (engine,
  analysis, service) draws and applies through.

The plan names resolve lazily so evaluate-only deployments never import
numpy.
"""

from .factors import (
    DISTRIBUTIONS,
    FactorSet,
    FactorSpec,
    FactorTarget,
    act_factor_set,
    first_order_factor_set,
    lca_factor_set,
    spec_fingerprint,
    table2_factor_set,
)

#: Names served from :mod:`repro.uncertainty.plan` (imports numpy).
_PLAN_EXPORTS = ("PerturbationPlan", "draw_multipliers")


def __getattr__(name: str):
    if name in _PLAN_EXPORTS:
        from . import plan

        return getattr(plan, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


__all__ = [
    "DISTRIBUTIONS",
    "FactorSet",
    "FactorSpec",
    "FactorTarget",
    "PerturbationPlan",
    "act_factor_set",
    "draw_multipliers",
    "first_order_factor_set",
    "lca_factor_set",
    "spec_fingerprint",
    "table2_factor_set",
]
