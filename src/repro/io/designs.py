"""Design serialization: :class:`ChipDesign` ↔ plain dictionaries / JSON.

The schema is the one the CLI documents::

    {
      "name": "my_chip",
      "integration": "hybrid_3d",
      "stacking": "f2f",
      "assembly": "d2w",
      "package": {"class": "fcbga", "area_mm2": null},
      "throughput_tops": 254,
      "dies": [
        {"name": "top", "node": "7nm", "gate_count": 8.5e9,
         "workload_share": 0.5}
      ]
    }

Round-trips are exact: ``design_from_dict(design_to_dict(d)) == d``.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..config.integration import AssemblyFlow, StackingStyle
from ..core.design import ChipDesign, Die, DieKind, PackageSpec
from ..errors import DesignError


def die_to_dict(die: Die) -> dict:
    """One die as a JSON-ready dictionary (defaults omitted)."""
    data: dict = {"name": die.name, "node": die.node}
    if die.gate_count is not None:
        data["gate_count"] = die.gate_count
    if die.area_mm2 is not None:
        data["area_mm2"] = die.area_mm2
    if die.kind is not DieKind.LOGIC:
        data["kind"] = die.kind.value
    if die.workload_share != 1.0:
        data["workload_share"] = die.workload_share
    if die.beol_layers is not None:
        data["beol_layers"] = die.beol_layers
    if die.yield_override is not None:
        data["yield"] = die.yield_override
    if die.efficiency_tops_per_w is not None:
        data["efficiency_tops_per_w"] = die.efficiency_tops_per_w
    return data


def _enum_member(enum_cls, value, what: str):
    """Resolve an enum spelling, reporting unknowns as a typed error.

    A bare ``StackingStyle("bogus")`` raises ``ValueError`` — a traceback
    for CLI/service callers. This converts it into the documented
    :class:`~repro.errors.DesignError` with the known spellings listed.
    """
    try:
        return enum_cls(value)
    except ValueError:
        known = ", ".join(repr(member.value) for member in enum_cls)
        raise DesignError(
            f"unknown {what} {value!r}; known: {known}"
        ) from None


def die_from_dict(data: dict) -> Die:
    """Inverse of :func:`die_to_dict`."""
    if not isinstance(data, dict):
        raise DesignError(
            f"die record must be an object, got {type(data).__name__}"
        )
    try:
        name = data["name"]
        node = data["node"]
    except KeyError as missing:
        raise DesignError(f"die record missing key {missing}") from None
    if not isinstance(name, str):
        raise DesignError(f"die name must be a string, got {name!r}")

    def number(key: str, default=None):
        value = data.get(key, default)
        if value is not None and (
            isinstance(value, bool) or not isinstance(value, (int, float))
        ):
            raise DesignError(
                f"die {name!r}: {key} must be a number, got {value!r}"
            )
        return value

    return Die(
        name=name,
        node=node,
        gate_count=number("gate_count"),
        area_mm2=number("area_mm2"),
        kind=_enum_member(DieKind, data.get("kind", "logic"), "die kind"),
        workload_share=number("workload_share", 1.0),
        beol_layers=number("beol_layers"),
        yield_override=number("yield"),
        efficiency_tops_per_w=number("efficiency_tops_per_w"),
    )


def design_to_dict(design: ChipDesign) -> dict:
    """A full design as a JSON-ready dictionary."""
    data: dict = {
        "name": design.name,
        "integration": design.integration,
        "dies": [die_to_dict(die) for die in design.dies],
    }
    if design.stacking is not StackingStyle.NA:
        data["stacking"] = design.stacking.value
    if design.assembly is not AssemblyFlow.NA:
        data["assembly"] = design.assembly.value
    package: dict = {"class": design.package.package_class}
    if design.package.area_mm2 is not None:
        package["area_mm2"] = design.package.area_mm2
    data["package"] = package
    if design.throughput_tops is not None:
        data["throughput_tops"] = design.throughput_tops
    return data


def design_from_dict(data: dict) -> ChipDesign:
    """Inverse of :func:`design_to_dict`.

    Malformed records — missing keys, wrong container types, unknown
    ``integration``/``stacking``/``assembly``/``kind`` spellings — raise
    :class:`~repro.errors.DesignError` (never a bare ``ValueError``/
    ``TypeError`` traceback), so the CLI and the service can answer with
    typed error payloads.
    """
    if not isinstance(data, dict):
        raise DesignError(
            f"design record must be an object, got {type(data).__name__}"
        )
    if "name" not in data:
        raise DesignError("design record missing 'name'")
    dies = data.get("dies")
    if not dies:
        raise DesignError("design record has no dies")
    if not isinstance(dies, (list, tuple)):
        raise DesignError(
            f"design 'dies' must be an array, got {type(dies).__name__}"
        )
    integration = data.get("integration", "2d")
    if not isinstance(integration, str) or not integration:
        raise DesignError(
            f"design 'integration' must be a technology name, "
            f"got {integration!r}"
        )
    package_data = data.get("package", {})
    if not isinstance(package_data, dict):
        raise DesignError(
            f"design 'package' must be an object, "
            f"got {type(package_data).__name__}"
        )
    return ChipDesign(
        name=data["name"],
        dies=tuple(die_from_dict(d) for d in dies),
        integration=integration,
        stacking=_enum_member(
            StackingStyle, data.get("stacking", "n/a"), "stacking style"
        ),
        assembly=_enum_member(
            AssemblyFlow, data.get("assembly", "n/a"), "assembly flow"
        ),
        package=PackageSpec(
            package_class=package_data.get("class", "fcbga"),
            area_mm2=package_data.get("area_mm2"),
        ),
        throughput_tops=data.get("throughput_tops"),
    )


def save_design(design: ChipDesign, path: "str | Path") -> None:
    """Write a design to a JSON file."""
    Path(path).write_text(
        json.dumps(design_to_dict(design), indent=2), encoding="utf-8"
    )


def load_design(path: "str | Path") -> ChipDesign:
    """Read a design from a JSON file."""
    return design_from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )
