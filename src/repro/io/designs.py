"""Design serialization: :class:`ChipDesign` ↔ plain dictionaries / JSON.

The schema is the one the CLI documents::

    {
      "name": "my_chip",
      "integration": "hybrid_3d",
      "stacking": "f2f",
      "assembly": "d2w",
      "package": {"class": "fcbga", "area_mm2": null},
      "throughput_tops": 254,
      "dies": [
        {"name": "top", "node": "7nm", "gate_count": 8.5e9,
         "workload_share": 0.5}
      ]
    }

Round-trips are exact: ``design_from_dict(design_to_dict(d)) == d``.
"""

from __future__ import annotations

import json
from pathlib import Path

from ..config.integration import AssemblyFlow, StackingStyle
from ..core.design import ChipDesign, Die, DieKind, PackageSpec
from ..errors import DesignError


def die_to_dict(die: Die) -> dict:
    """One die as a JSON-ready dictionary (defaults omitted)."""
    data: dict = {"name": die.name, "node": die.node}
    if die.gate_count is not None:
        data["gate_count"] = die.gate_count
    if die.area_mm2 is not None:
        data["area_mm2"] = die.area_mm2
    if die.kind is not DieKind.LOGIC:
        data["kind"] = die.kind.value
    if die.workload_share != 1.0:
        data["workload_share"] = die.workload_share
    if die.beol_layers is not None:
        data["beol_layers"] = die.beol_layers
    if die.yield_override is not None:
        data["yield"] = die.yield_override
    if die.efficiency_tops_per_w is not None:
        data["efficiency_tops_per_w"] = die.efficiency_tops_per_w
    return data


def die_from_dict(data: dict) -> Die:
    """Inverse of :func:`die_to_dict`."""
    try:
        name = data["name"]
        node = data["node"]
    except KeyError as missing:
        raise DesignError(f"die record missing key {missing}") from None
    return Die(
        name=name,
        node=node,
        gate_count=data.get("gate_count"),
        area_mm2=data.get("area_mm2"),
        kind=DieKind(data.get("kind", "logic")),
        workload_share=data.get("workload_share", 1.0),
        beol_layers=data.get("beol_layers"),
        yield_override=data.get("yield"),
        efficiency_tops_per_w=data.get("efficiency_tops_per_w"),
    )


def design_to_dict(design: ChipDesign) -> dict:
    """A full design as a JSON-ready dictionary."""
    data: dict = {
        "name": design.name,
        "integration": design.integration,
        "dies": [die_to_dict(die) for die in design.dies],
    }
    if design.stacking is not StackingStyle.NA:
        data["stacking"] = design.stacking.value
    if design.assembly is not AssemblyFlow.NA:
        data["assembly"] = design.assembly.value
    package: dict = {"class": design.package.package_class}
    if design.package.area_mm2 is not None:
        package["area_mm2"] = design.package.area_mm2
    data["package"] = package
    if design.throughput_tops is not None:
        data["throughput_tops"] = design.throughput_tops
    return data


def design_from_dict(data: dict) -> ChipDesign:
    """Inverse of :func:`design_to_dict`."""
    if "name" not in data:
        raise DesignError("design record missing 'name'")
    if not data.get("dies"):
        raise DesignError("design record has no dies")
    package_data = data.get("package", {})
    return ChipDesign(
        name=data["name"],
        dies=tuple(die_from_dict(d) for d in data["dies"]),
        integration=data.get("integration", "2d"),
        stacking=StackingStyle(data.get("stacking", "n/a")),
        assembly=AssemblyFlow(data.get("assembly", "n/a")),
        package=PackageSpec(
            package_class=package_data.get("class", "fcbga"),
            area_mm2=package_data.get("area_mm2"),
        ),
        throughput_tops=data.get("throughput_tops"),
    )


def save_design(design: ChipDesign, path: "str | Path") -> None:
    """Write a design to a JSON file."""
    Path(path).write_text(
        json.dumps(design_to_dict(design), indent=2), encoding="utf-8"
    )


def load_design(path: "str | Path") -> ChipDesign:
    """Read a design from a JSON file."""
    return design_from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )
