"""Result export: lifecycle reports and study grids → JSON / CSV rows.

Studies produce structured objects; downstream tooling (spreadsheets,
plotting scripts, CI dashboards) wants flat rows. This module flattens:

* one :class:`~repro.core.report.LifecycleReport` → a row dictionary;
* a Fig. 5 :class:`~repro.studies.drive.DriveStudyResult` → rows;
* a Table 5 :class:`~repro.studies.decision.Table5Result` → rows;

plus CSV/JSON writers with stable column ordering.
"""

from __future__ import annotations

import csv
import json
import math
from pathlib import Path

from ..core.report import LifecycleReport

#: Stable column order for report rows.
REPORT_COLUMNS = (
    "design", "integration", "valid",
    "die_kg", "bonding_kg", "packaging_kg", "interposer_kg",
    "embodied_kg", "operational_kg", "total_kg",
    "bandwidth_ratio", "degradation",
)


def report_row(report: LifecycleReport) -> dict:
    """Flatten a lifecycle report into one CSV-ready row."""
    breakdown = report.embodied.breakdown()
    return {
        "design": report.design_name,
        "integration": report.integration,
        "valid": report.valid,
        "die_kg": breakdown["die"],
        "bonding_kg": breakdown["bonding"],
        "packaging_kg": breakdown["packaging"],
        "interposer_kg": breakdown["interposer"],
        "embodied_kg": report.embodied_kg,
        "operational_kg": report.operational_kg,
        "total_kg": report.total_kg,
        "bandwidth_ratio": report.bandwidth.ratio,
        "degradation": report.bandwidth.degradation,
    }


def drive_study_rows(result) -> "list[dict]":
    """Rows for a Fig. 5 grid (adds device/option columns)."""
    rows = []
    for cell in result.cells:
        row = {"device": cell.device, "option": cell.option,
               "approach": result.approach}
        row.update(report_row(cell.report))
        rows.append(row)
    return rows


def table5_rows(result) -> "list[dict]":
    """Rows for the Table 5 decision study."""
    rows = []
    for entry in result.rows:
        m = entry.metrics
        rows.append({
            "option": entry.option,
            "embodied_save_pct": m.embodied_save_ratio * 100.0,
            "overall_save_pct": m.overall_save_ratio * 100.0,
            "tc_years": None if math.isinf(m.tc_years) else m.tc_years,
            "tr_years": None if math.isinf(m.tr_years) else m.tr_years,
            "regime": m.regime.value,
            "choose": m.choose_recommended,
            "replace": m.replace_recommended,
        })
    return rows


def write_csv(rows: "list[dict]", path: "str | Path") -> None:
    """Write rows to CSV with the union of keys as header."""
    if not rows:
        raise ValueError("no rows to write")
    columns: list[str] = []
    for row in rows:
        for key in row:
            if key not in columns:
                columns.append(key)
    with open(path, "w", newline="", encoding="utf-8") as handle:
        writer = csv.DictWriter(handle, fieldnames=columns)
        writer.writeheader()
        writer.writerows(rows)


def write_json(rows: "list[dict]", path: "str | Path") -> None:
    """Write rows to a JSON array file."""
    Path(path).write_text(json.dumps(rows, indent=2), encoding="utf-8")


def read_csv(path: "str | Path") -> "list[dict]":
    """Read back rows written by :func:`write_csv` (values as strings)."""
    with open(path, newline="", encoding="utf-8") as handle:
        return list(csv.DictReader(handle))


#: Most trajectory entries a BENCH file keeps (oldest evicted first).
BENCH_TRAJECTORY_LIMIT = 100


def write_bench_report(result: dict, path: "str | Path") -> dict:
    """Write a perf-bench report, *appending* to the file's trajectory.

    Earlier PRs overwrote ``BENCH_engine.json`` / ``BENCH_service.json``
    wholesale, losing the cross-PR perf history the ROADMAP asks to
    track. This writer keeps the latest result at the top level (so
    existing readers keep working) and maintains a ``trajectory`` list of
    timestamped entries: the prior file's own entries — or, for a
    pre-trajectory file, its single top-level result — plus this run.
    Unreadable prior files are treated as absent, never as fatal, and
    the history is capped at :data:`BENCH_TRAJECTORY_LIMIT` entries
    (oldest dropped) so a frequently-run bench cannot grow the file
    without bound.
    """
    import datetime

    entry = dict(result)
    entry["timestamp"] = (
        datetime.datetime.now(datetime.timezone.utc)
        .isoformat(timespec="seconds")
    )
    trajectory: "list[dict]" = []
    path = Path(path)
    if path.exists():
        try:
            previous = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, json.JSONDecodeError):
            previous = None
        if isinstance(previous, dict):
            prior = previous.get("trajectory")
            if isinstance(prior, list):
                trajectory = [e for e in prior if isinstance(e, dict)]
            elif "bench" in previous:
                # Pre-trajectory format: one bare result — keep it.
                trajectory = [dict(previous)]
        for prior_entry in trajectory:
            # Entries must always carry a timestamp so curves stay
            # comparable across PRs; a migrated pre-trajectory entry
            # never had one — stamp it with the file's own mtime (the
            # best surviving record of when that run happened).
            if "timestamp" not in prior_entry:
                prior_entry["timestamp"] = (
                    datetime.datetime.fromtimestamp(
                        path.stat().st_mtime, datetime.timezone.utc
                    ).isoformat(timespec="seconds")
                )
    trajectory.append(entry)
    payload = dict(result)
    payload["trajectory"] = trajectory[-BENCH_TRAJECTORY_LIMIT:]
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    return payload
