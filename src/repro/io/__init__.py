"""Serialization: designs ↔ JSON, results → CSV/JSON rows."""

from .designs import (
    design_from_dict,
    design_to_dict,
    die_from_dict,
    die_to_dict,
    load_design,
    save_design,
)
from .results import (
    REPORT_COLUMNS,
    drive_study_rows,
    read_csv,
    report_row,
    table5_rows,
    write_csv,
    write_json,
)

__all__ = [
    "REPORT_COLUMNS",
    "design_from_dict",
    "design_to_dict",
    "die_from_dict",
    "die_to_dict",
    "drive_study_rows",
    "load_design",
    "read_csv",
    "report_row",
    "save_design",
    "table5_rows",
    "write_csv",
    "write_json",
]
