"""3D-Carbon: analytical carbon modeling for 3D and 2.5D integrated circuits.

Reproduction of Zhao et al., "3D-Carbon: An Analytical Carbon Modeling Tool
for 3D and 2.5D Integrated Circuits" (DAC 2024). The public API follows the
paper's structure:

* design description — :class:`ChipDesign`, :class:`Die`,
  :class:`PackageSpec` (Fig. 3 user input);
* parameter databases — :class:`ParameterSet` and :mod:`repro.config`
  (Table 2);
* evaluation — :class:`CarbonModel` / :func:`evaluate_design` producing
  :class:`LifecycleReport` (Eq. 1/3/16, Sec. 3.4);
* decisions — :func:`decision_metrics` (Eq. 2, Table 5);
* baselines — :mod:`repro.baselines` (ACT, ACT+, LCA, first-order);
* backends — :mod:`repro.pipeline`: the explicit stage pipeline and the
  :class:`~repro.pipeline.CarbonBackend` registry (:func:`get_backend`,
  :func:`backend_names`, :func:`register_backend`) putting 3D-Carbon and
  every baseline behind one evaluation path;
* case studies — :mod:`repro.studies` (EPYC/Lakefield validation, NVIDIA
  DRIVE series, cross-backend comparison);
* batch evaluation — :class:`BatchEvaluator` / :class:`EvalPoint`
  (:mod:`repro.engine`).

Batch / caching architecture
----------------------------

Every multi-point study (sweeps, node scaling, Monte-Carlo uncertainty,
tornado sensitivity, configuration search) routes through the batch
engine, which memoizes the pipeline stage-by-stage on *value
fingerprints* — tuples of the frozen records a stage actually reads
(:mod:`repro.pipeline.fingerprint`):

* **resolve** (wirelength, areas, BEOL, floorplan, yields) is keyed on
  the design plus the resolve-relevant parameter slice; a
  :class:`repro.core.resolve.ResolveCache` additionally shares the
  structural sub-results, so perturbing a defect density re-prices
  yields without re-running the Davis model, whose moments are further
  ``lru_cache``-d per (gate count, Rent exponent);
* **embodied / bandwidth / operational** stages carry their own keys, so
  e.g. a fab-location sweep resolves a design exactly once and a draw
  that only touches embodied-side parameters reuses the Eq. 16 result;
* **Monte-Carlo** draws all triangular multipliers as one
  ``(samples, n_factors)`` array (bit-identical to the legacy scalar
  draw sequence), applies each row through a compiled
  :class:`repro.engine.ParameterPerturber`, and evaluates draws in
  chunks through the memoized pipeline — ``transient`` points never grow
  the caches;
* an opt-in ``workers=`` mode spreads large grids over a thread pool,
  and ``workers="process"`` over forked process workers (true, GIL-free
  parallelism, sized to the usable CPUs).

Engine results are bit-identical to the scalar :class:`CarbonModel`
path; ``python -m repro.cli bench`` times one against the other and
writes ``BENCH_engine.json``.
"""

from .config import (
    DEFAULT_PARAMETERS,
    AssemblyFlow,
    BondingMethod,
    IntegrationFamily,
    IntegrationSpec,
    ParameterSet,
    ProcessNode,
    StackingStyle,
    SubstrateKind,
)
from .core import (
    BandwidthResult,
    CarbonModel,
    ChipDesign,
    ChoiceRegime,
    DecisionMetrics,
    Die,
    DieKind,
    EmbodiedReport,
    LifecycleReport,
    OperationalReport,
    PackageSpec,
    SuiteOperationalReport,
    Workload,
    WorkloadSuite,
    decision_metrics,
    embodied_carbon,
    evaluate_design,
    format_decision_table,
    format_report_table,
)
from .errors import (
    BackendError,
    CarbonModelError,
    DesignError,
    InvalidDesignError,
    ParameterError,
    UnknownTechnologyError,
)
from .pipeline import (
    BackendReport,
    CarbonBackend,
    backend_names,
    get_backend,
    register_backend,
)

__version__ = "1.0.0"

#: Engine exports resolve lazily (PEP 562): the engine pulls in numpy for
#: its vectorized Monte-Carlo support, and core-only consumers (the CLI
#: inspection commands, embodied-only scripts) shouldn't pay that import.
_ENGINE_EXPORTS = ("BatchEvaluator", "EngineStats", "EvalPoint")

#: Facade exports resolve lazily too — :mod:`repro.api` pulls in the
#: service stack (and, through it, the engine).
_API_EXPORTS = ("Session", "StudySpec", "StudyHandle", "Result", "ResultSet")


def __getattr__(name: str):
    if name in _ENGINE_EXPORTS:
        from . import engine

        return getattr(engine, name)
    if name in _API_EXPORTS:
        from . import api

        return getattr(api, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")

__all__ = [
    "AssemblyFlow",
    "BackendError",
    "BackendReport",
    "BandwidthResult",
    "BatchEvaluator",
    "BondingMethod",
    "CarbonBackend",
    "CarbonModel",
    "CarbonModelError",
    "ChipDesign",
    "ChoiceRegime",
    "DEFAULT_PARAMETERS",
    "DecisionMetrics",
    "Die",
    "DieKind",
    "DesignError",
    "EmbodiedReport",
    "EngineStats",
    "EvalPoint",
    "IntegrationFamily",
    "IntegrationSpec",
    "InvalidDesignError",
    "LifecycleReport",
    "OperationalReport",
    "PackageSpec",
    "ParameterError",
    "ParameterSet",
    "ProcessNode",
    "Result",
    "ResultSet",
    "Session",
    "StackingStyle",
    "StudyHandle",
    "StudySpec",
    "SubstrateKind",
    "SuiteOperationalReport",
    "UnknownTechnologyError",
    "Workload",
    "WorkloadSuite",
    "backend_names",
    "decision_metrics",
    "embodied_carbon",
    "evaluate_design",
    "get_backend",
    "register_backend",
    "format_decision_table",
    "format_report_table",
    "__version__",
]
