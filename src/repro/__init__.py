"""3D-Carbon: analytical carbon modeling for 3D and 2.5D integrated circuits.

Reproduction of Zhao et al., "3D-Carbon: An Analytical Carbon Modeling Tool
for 3D and 2.5D Integrated Circuits" (DAC 2024). The public API follows the
paper's structure:

* design description — :class:`ChipDesign`, :class:`Die`,
  :class:`PackageSpec` (Fig. 3 user input);
* parameter databases — :class:`ParameterSet` and :mod:`repro.config`
  (Table 2);
* evaluation — :class:`CarbonModel` / :func:`evaluate_design` producing
  :class:`LifecycleReport` (Eq. 1/3/16, Sec. 3.4);
* decisions — :func:`decision_metrics` (Eq. 2, Table 5);
* baselines — :mod:`repro.baselines` (ACT, ACT+, LCA, first-order);
* case studies — :mod:`repro.studies` (EPYC/Lakefield validation, NVIDIA
  DRIVE series).
"""

from .config import (
    DEFAULT_PARAMETERS,
    AssemblyFlow,
    BondingMethod,
    IntegrationFamily,
    IntegrationSpec,
    ParameterSet,
    ProcessNode,
    StackingStyle,
    SubstrateKind,
)
from .core import (
    BandwidthResult,
    CarbonModel,
    ChipDesign,
    ChoiceRegime,
    DecisionMetrics,
    Die,
    DieKind,
    EmbodiedReport,
    LifecycleReport,
    OperationalReport,
    PackageSpec,
    SuiteOperationalReport,
    Workload,
    WorkloadSuite,
    decision_metrics,
    embodied_carbon,
    evaluate_design,
    format_decision_table,
    format_report_table,
)
from .errors import (
    CarbonModelError,
    DesignError,
    InvalidDesignError,
    ParameterError,
    UnknownTechnologyError,
)

__version__ = "1.0.0"

__all__ = [
    "AssemblyFlow",
    "BandwidthResult",
    "BondingMethod",
    "CarbonModel",
    "CarbonModelError",
    "ChipDesign",
    "ChoiceRegime",
    "DEFAULT_PARAMETERS",
    "DecisionMetrics",
    "Die",
    "DieKind",
    "DesignError",
    "EmbodiedReport",
    "IntegrationFamily",
    "IntegrationSpec",
    "InvalidDesignError",
    "LifecycleReport",
    "OperationalReport",
    "PackageSpec",
    "ParameterError",
    "ParameterSet",
    "ProcessNode",
    "StackingStyle",
    "SubstrateKind",
    "SuiteOperationalReport",
    "UnknownTechnologyError",
    "Workload",
    "WorkloadSuite",
    "decision_metrics",
    "embodied_carbon",
    "evaluate_design",
    "format_decision_table",
    "format_report_table",
    "__version__",
]
