"""Surveyed-efficiency power plug-in (the paper's default, Sec. 3.3).

"In the absence of specific input for Eff_die, we utilize surveyed
parameters (e.g., as in [19]) to estimate Eff_die" — this plug-in resolves
a die's efficiency from, in priority order: the die's own override, a
product-level survey entry (Table 4), or the per-node survey.
"""

from __future__ import annotations

from ..config.power import (
    DEFAULT_DEVICE_SURVEY,
    DeviceSurveyTable,
    surveyed_efficiency,
)
from ..core.resolve import ResolvedDie
from .plugin import DEFAULT_REGISTRY


class SurveyedEfficiencyPlugin:
    """Survey-based efficiency lookup."""

    name = "surveyed"

    def __init__(self, devices: DeviceSurveyTable | None = None) -> None:
        self._devices = devices if devices is not None else DEFAULT_DEVICE_SURVEY

    def efficiency_tops_per_w(self, die: ResolvedDie) -> float:
        if die.die.efficiency_tops_per_w is not None:
            return die.die.efficiency_tops_per_w
        # Product-level match: die names in the case studies embed the
        # device name (e.g. "ORIN_2D_die").
        for device in self._devices:
            if device.name.lower() in die.name.lower():
                return device.efficiency_tops_per_w
        return surveyed_efficiency(die.node.name)


DEFAULT_REGISTRY.register(SurveyedEfficiencyPlugin(), overwrite=True)
