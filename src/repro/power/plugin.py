"""Operational power plug-in protocol (Fig. 3: "operational power
estimation plug-ins").

3D-Carbon does not model microarchitectural power itself; it consumes
per-die energy efficiencies from external estimators (McPAT-monolithic,
GPU power tools) or surveyed data. A plug-in maps a resolved die to an
efficiency in TOPS/W; a registry lets studies select plug-ins by name.
"""

from __future__ import annotations

from typing import Callable, Protocol

from ..core.resolve import ResolvedDie
from ..errors import ParameterError, UnknownTechnologyError


class PowerPlugin(Protocol):
    """Anything that can rate a die's energy efficiency."""

    name: str

    def efficiency_tops_per_w(self, die: ResolvedDie) -> float:
        """Sustained energy efficiency of ``die`` (TOPS/W)."""
        ...  # pragma: no cover - protocol


class PluginRegistry:
    """Name → plug-in registry with override support."""

    def __init__(self) -> None:
        self._plugins: dict[str, PowerPlugin] = {}

    def register(self, plugin: PowerPlugin, overwrite: bool = False) -> None:
        key = plugin.name.lower()
        if key in self._plugins and not overwrite:
            raise ParameterError(f"plugin {plugin.name!r} already registered")
        self._plugins[key] = plugin

    def get(self, name: str) -> PowerPlugin:
        try:
            return self._plugins[name.lower()]
        except KeyError:
            known = ", ".join(sorted(self._plugins)) or "(none)"
            raise UnknownTechnologyError(
                f"unknown power plugin {name!r}; known: {known}"
            ) from None

    def names(self) -> list[str]:
        return list(self._plugins)

    def __len__(self) -> int:
        return len(self._plugins)


class CallablePlugin:
    """Adapter turning a plain function into a :class:`PowerPlugin`."""

    def __init__(
        self, name: str, fn: Callable[[ResolvedDie], float]
    ) -> None:
        if not name:
            raise ParameterError("plugin needs a non-empty name")
        self.name = name
        self._fn = fn

    def efficiency_tops_per_w(self, die: ResolvedDie) -> float:
        value = self._fn(die)
        if value <= 0:
            raise ParameterError(
                f"plugin {self.name!r} returned non-positive efficiency"
            )
        return value


#: Process-wide default registry (studies may build private ones).
DEFAULT_REGISTRY = PluginRegistry()
