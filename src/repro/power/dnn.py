"""Analytical DNN inference power plug-in.

A minimal bottom-up estimator for accelerator-style dies, standing in for
the heavyweight third-party tools (McPAT-monolithic et al.) the paper
plugs in. Energy per MAC scales with the square of the feature size
relative to a 7 nm reference (capacitance-dominated dynamic energy),
plus a memory-access surcharge governed by the workload's arithmetic
intensity:

    E_op = E_mac(λ) + bytes_per_op · E_byte(λ)
    Eff  = 1 / E_op   (TOPS/W == ops/s per W == 1 / (J per op) · 1e-12)
"""

from __future__ import annotations

from ..core.resolve import ResolvedDie
from ..errors import ParameterError
from .plugin import DEFAULT_REGISTRY

#: Reference energies at 7 nm (INT8 inference, survey mid-range).
REFERENCE_FEATURE_NM = 7.0
E_MAC_7NM_PJ = 0.28
E_SRAM_BYTE_7NM_PJ = 1.1


class AnalyticalDnnPlugin:
    """Feature-size-scaled DNN energy model."""

    name = "dnn"

    def __init__(self, bytes_per_op: float = 0.05) -> None:
        if bytes_per_op < 0:
            raise ParameterError("bytes_per_op must be >= 0")
        self.bytes_per_op = bytes_per_op

    def energy_per_op_pj(self, feature_nm: float) -> float:
        """Dynamic energy of one operation at the given node (pJ)."""
        if feature_nm <= 0:
            raise ParameterError("feature size must be positive")
        scale = (feature_nm / REFERENCE_FEATURE_NM) ** 2
        return (
            E_MAC_7NM_PJ * scale
            + self.bytes_per_op * E_SRAM_BYTE_7NM_PJ * scale
        )

    def efficiency_tops_per_w(self, die: ResolvedDie) -> float:
        if die.die.efficiency_tops_per_w is not None:
            return die.die.efficiency_tops_per_w
        energy_pj = self.energy_per_op_pj(die.node.feature_nm)
        # TOPS/W = 1e12 op/s per W = 1 / (J/op · 1e12) = 1 / (pJ/op).
        return 1.0 / energy_pj


DEFAULT_REGISTRY.register(AnalyticalDnnPlugin(), overwrite=True)
