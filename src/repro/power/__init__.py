"""Operational power plug-ins (Fig. 3's power-estimation interface)."""

from .dnn import AnalyticalDnnPlugin
from .plugin import (
    DEFAULT_REGISTRY,
    CallablePlugin,
    PluginRegistry,
    PowerPlugin,
)
from .surveyed import SurveyedEfficiencyPlugin

__all__ = [
    "AnalyticalDnnPlugin",
    "CallablePlugin",
    "DEFAULT_REGISTRY",
    "PluginRegistry",
    "PowerPlugin",
    "SurveyedEfficiencyPlugin",
]
