"""Adjacent-edge-length extraction for Eq. 14.

``A_RDL/EMIB = s · D_gap · Σ l_adjacent`` — the substrate area of a bridge
or routing region is proportional to the total length of die edges that
face each other across the die gap. This module measures those lengths on
a :class:`repro.floorplan.placer.Floorplan`.
"""

from __future__ import annotations

from .placer import Floorplan

#: Facing edges further apart than gap × this slack are not "adjacent";
#: the slack absorbs floating-point placement error.
_GAP_SLACK = 1.5


def adjacent_pairs(floorplan: Floorplan) -> list[tuple[str, str, float]]:
    """All adjacent die pairs with their shared facing length (mm)."""
    max_gap = floorplan.die_gap_mm * _GAP_SLACK + 1e-9
    pairs: list[tuple[str, str, float]] = []
    dies = floorplan.dies
    for i, a in enumerate(dies):
        for b in dies[i + 1:]:
            length = a.rect.facing_length(b.rect, max_gap)
            if length > 0.0:
                pairs.append((a.name, b.name, length))
    return pairs


def total_adjacent_length_mm(floorplan: Floorplan) -> float:
    """Σ l_adjacent of Eq. 14 (mm)."""
    return sum(length for _, _, length in adjacent_pairs(floorplan))
