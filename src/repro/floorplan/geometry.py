"""Rectangle geometry primitives for the 2.5D floorplanner."""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError


@dataclass(frozen=True)
class Rect:
    """Axis-aligned rectangle: lower-left corner (x, y), width, height (mm)."""

    x: float
    y: float
    width: float
    height: float

    def __post_init__(self) -> None:
        if self.width <= 0 or self.height <= 0:
            raise ParameterError(
                f"rectangle dimensions must be positive, "
                f"got {self.width}×{self.height}"
            )

    @property
    def x2(self) -> float:
        return self.x + self.width

    @property
    def y2(self) -> float:
        return self.y + self.height

    @property
    def area(self) -> float:
        return self.width * self.height

    @property
    def center(self) -> tuple[float, float]:
        return (self.x + self.width / 2.0, self.y + self.height / 2.0)

    def overlaps(self, other: "Rect", tolerance: float = 1e-9) -> bool:
        """True when the interiors intersect (touching edges don't count)."""
        return (
            self.x < other.x2 - tolerance
            and other.x < self.x2 - tolerance
            and self.y < other.y2 - tolerance
            and other.y < self.y2 - tolerance
        )

    def translated(self, dx: float, dy: float) -> "Rect":
        return Rect(self.x + dx, self.y + dy, self.width, self.height)

    def gap_to(self, other: "Rect") -> float:
        """Minimum axis-aligned gap between two rectangles (0 if touching)."""
        dx = max(other.x - self.x2, self.x - other.x2, 0.0)
        dy = max(other.y - self.y2, self.y - other.y2, 0.0)
        return math.hypot(dx, dy)

    def facing_length(self, other: "Rect", max_gap: float) -> float:
        """Length of edge facing ``other`` across a gap of at most ``max_gap``.

        Two dies are *adjacent* (for Eq. 14) when a pair of parallel edges
        face each other across a gap ≤ ``max_gap``; the adjacent length is
        the overlap of their projections on the shared axis.
        """
        if max_gap < 0:
            raise ParameterError(f"max_gap must be >= 0, got {max_gap}")
        # Horizontal neighbours (gap along x): overlap of y-projections.
        x_gap = max(other.x - self.x2, self.x - other.x2)
        y_overlap = min(self.y2, other.y2) - max(self.y, other.y)
        if 0.0 <= x_gap <= max_gap and y_overlap > 0.0:
            return y_overlap
        # Vertical neighbours (gap along y): overlap of x-projections.
        y_gap = max(other.y - self.y2, self.y - other.y2)
        x_overlap = min(self.x2, other.x2) - max(self.x, other.x)
        if 0.0 <= y_gap <= max_gap and x_overlap > 0.0:
            return x_overlap
        return 0.0


def square_for_area(area_mm2: float) -> tuple[float, float]:
    """Width/height of the square die realizing ``area_mm2``."""
    if area_mm2 <= 0:
        raise ParameterError(f"area must be positive, got {area_mm2}")
    side = math.sqrt(area_mm2)
    return (side, side)


def bounding_box(rects: list[Rect]) -> Rect:
    """Smallest axis-aligned rectangle containing all ``rects``."""
    if not rects:
        raise ParameterError("bounding_box needs at least one rectangle")
    x1 = min(r.x for r in rects)
    y1 = min(r.y for r in rects)
    x2 = max(r.x2 for r in rects)
    y2 = max(r.y2 for r in rects)
    return Rect(x1, y1, x2 - x1, y2 - y1)
