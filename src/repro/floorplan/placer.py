"""Row-based die placement for 2.5D assemblies.

Eq. 14 needs the total adjacent-edge length ``Σ l_adjacent`` between dies on
a 2.5D substrate, and the package model benefits from a realistic assembly
bounding box. Real products use hand-crafted floorplans; a simple row
placer with a fixed die gap captures the geometry the carbon model consumes
(adjacent edge lengths, bounding box) while staying deterministic.

Dies are placed left-to-right in rows, tallest-first, wrapping when the row
would exceed the target aspect; every neighbouring pair is separated by
exactly ``die_gap_mm`` (Table 2's D_gap).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..errors import ParameterError
from .geometry import Rect, bounding_box, square_for_area


@dataclass(frozen=True)
class PlacedDie:
    """A die with its name, area and placed rectangle."""

    name: str
    rect: Rect


@dataclass(frozen=True)
class Floorplan:
    """Result of placement: placed dies plus derived geometry."""

    dies: tuple[PlacedDie, ...]
    die_gap_mm: float

    @property
    def outline(self) -> Rect:
        return bounding_box([d.rect for d in self.dies])

    @property
    def total_die_area_mm2(self) -> float:
        return sum(d.rect.area for d in self.dies)

    def is_overlap_free(self) -> bool:
        rects = [d.rect for d in self.dies]
        return not any(
            a.overlaps(b) for i, a in enumerate(rects) for b in rects[i + 1:]
        )


def place_dies(
    die_areas_mm2: list[float],
    die_gap_mm: float = 1.0,
    names: list[str] | None = None,
    max_row_width_mm: float | None = None,
) -> Floorplan:
    """Place square dies in gap-separated rows.

    ``max_row_width_mm`` defaults to ~√(total area)·1.5, giving a roughly
    square assembly like commercial interposers.
    """
    if not die_areas_mm2:
        raise ParameterError("place_dies needs at least one die")
    if any(a <= 0 for a in die_areas_mm2):
        raise ParameterError("all die areas must be positive")
    if die_gap_mm < 0:
        raise ParameterError(f"die gap must be >= 0, got {die_gap_mm}")
    if names is None:
        names = [f"die{i}" for i in range(len(die_areas_mm2))]
    if len(names) != len(die_areas_mm2):
        raise ParameterError("names and die areas must have equal length")

    total = sum(die_areas_mm2)
    if max_row_width_mm is None:
        max_row_width_mm = 1.5 * math.sqrt(total) + max(
            math.sqrt(a) for a in die_areas_mm2
        )

    # Sort by height descending for tighter rows, but keep (name, dims).
    items = sorted(
        zip(names, die_areas_mm2), key=lambda item: item[1], reverse=True
    )

    placed: list[PlacedDie] = []
    cursor_x = 0.0
    cursor_y = 0.0
    row_height = 0.0
    for name, area in items:
        width, height = square_for_area(area)
        if placed and cursor_x + width > max_row_width_mm:
            # Wrap to the next row.
            cursor_x = 0.0
            cursor_y += row_height + die_gap_mm
            row_height = 0.0
        placed.append(PlacedDie(name, Rect(cursor_x, cursor_y, width, height)))
        cursor_x += width + die_gap_mm
        row_height = max(row_height, height)

    return Floorplan(dies=tuple(placed), die_gap_mm=die_gap_mm)
