"""Deterministic 2.5D floorplanning (geometry for Eq. 13–14)."""

from .adjacency import adjacent_pairs, total_adjacent_length_mm
from .geometry import Rect, bounding_box, square_for_area
from .placer import Floorplan, PlacedDie, place_dies

__all__ = [
    "Floorplan",
    "PlacedDie",
    "Rect",
    "adjacent_pairs",
    "bounding_box",
    "place_dies",
    "square_for_area",
    "total_adjacent_length_mm",
]
