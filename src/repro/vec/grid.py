"""Design grids: the enumerable exploration space as point records.

A :class:`DesignGrid` is the declarative input of the vectorized core: a
flat tuple of :class:`GridPoint` records (design × wafer diameter × fab
location) sharing one workload. :meth:`DesignGrid.from_axes` expands the
paper's case-study axes — integration technology × division approach ×
die count × assembly flow × wafer size × fab location — from a single-die
2D reference, skipping combinations the design rules reject (e.g. a
five-die hybrid-bonded stack); :meth:`DesignGrid.from_designs` crosses
explicit designs with the physical axes instead.

Wafer diameters are validated up front against the same [100, 500] mm
bound :class:`~repro.config.parameters.ParameterSet` enforces, so a grid
that plans cleanly also evaluates cleanly through the scalar comparison
path (``params.with_wafer_diameter``). Fab locations may be grid names
(``"taiwan"``) or raw carbon intensities in g CO₂/kWh — exactly the
values ``ParameterSet.grid()`` accepts — which is what makes dense
CI axes possible without touching the parameter tables.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from ..config.integration import AssemblyFlow, StackingStyle
from ..config.parameters import DEFAULT_PARAMETERS, ParameterSet
from ..core.design import ChipDesign
from ..core.operational import Workload
from ..errors import DesignError, ParameterError
from ..units import WAFER_DIAMETERS_MM

#: The integration technologies :meth:`DesignGrid.from_axes` fans a
#: reference over by default (2D rides along via ``include_2d``).
GRID_INTEGRATIONS = (
    "micro_3d", "hybrid_3d", "m3d", "mcm", "info", "emib", "si_interposer",
)

#: Homogeneous die counts :meth:`DesignGrid.from_axes` tries by default.
GRID_DIE_COUNTS = (2, 3, 4)

#: The ``ParameterSet`` wafer-diameter bound, mirrored here so grids fail
#: at construction instead of deep inside a batch.
_WAFER_MIN_MM = 100.0
_WAFER_MAX_MM = 500.0


def resolve_workload(workload) -> "Workload | None":
    """``"av"``/``"none"``/``None``/:class:`Workload` → a workload or None."""
    if workload is None or workload == "none":
        return None
    if workload == "av":
        return Workload.autonomous_vehicle()
    if isinstance(workload, Workload):
        return workload
    raise ParameterError(
        f"workload must be \"av\", \"none\"/None or a Workload, got "
        f"{workload!r}"
    )


def assembly_options(spec) -> "list[AssemblyFlow]":
    """The assembly flows worth enumerating for one integration spec."""
    if spec.is_3d and spec.name != "m3d":
        return [AssemblyFlow.D2W, AssemblyFlow.W2W]
    if spec.is_2_5d:
        return list(spec.allowed_assembly)
    return [AssemblyFlow.NA]


def _check_wafer(diameter) -> float:
    diameter = float(diameter)
    if not (_WAFER_MIN_MM <= diameter <= _WAFER_MAX_MM):
        raise ParameterError(
            f"wafer diameter must be within [{_WAFER_MIN_MM:.0f}, "
            f"{_WAFER_MAX_MM:.0f}] mm, got {diameter}"
        )
    return diameter


def _location_label(location) -> str:
    return location if isinstance(location, str) else format(location, "g")


@dataclass(frozen=True)
class GridPoint:
    """One grid cell: a design priced at one wafer size and fab location."""

    design: ChipDesign
    wafer_diameter_mm: float
    fab_location: "str | float"
    label: str


@dataclass(frozen=True)
class DesignGrid:
    """A flat, ordered design-space grid sharing one workload."""

    points: tuple[GridPoint, ...]
    workload: "Workload | None" = field(default=None)

    def __post_init__(self) -> None:
        for point in self.points:
            _check_wafer(point.wafer_diameter_mm)

    def __len__(self) -> int:
        return len(self.points)

    @property
    def designs(self) -> "tuple[ChipDesign, ...]":
        """Distinct designs in first-appearance order."""
        seen: dict[int, ChipDesign] = {}
        for point in self.points:
            seen.setdefault(id(point.design), point.design)
        return tuple(seen.values())

    def sample(self, max_configs: int, seed: int) -> "DesignGrid":
        """A deterministic subsample of at most ``max_configs`` points.

        Sampling is order-preserving (indices are sorted after drawing),
        so the same (grid, max_configs, seed) triple yields the same
        grid everywhere — the optimizer's local/service parity depends
        on this.
        """
        if max_configs <= 0:
            raise ParameterError(
                f"max_configs must be positive, got {max_configs}"
            )
        if max_configs >= len(self.points):
            return self
        rng = random.Random(seed)
        indices = sorted(rng.sample(range(len(self.points)), max_configs))
        return DesignGrid(
            points=tuple(self.points[i] for i in indices),
            workload=self.workload,
        )

    @classmethod
    def from_designs(
        cls,
        designs,
        wafer_diameters_mm=None,
        fab_locations=("taiwan",),
        workload="av",
    ) -> "DesignGrid":
        """Cross explicit designs with the wafer and fab-location axes."""
        wafers = tuple(
            _check_wafer(d)
            for d in (
                wafer_diameters_mm
                if wafer_diameters_mm is not None
                else WAFER_DIAMETERS_MM
            )
        )
        if not wafers:
            raise ParameterError("at least one wafer diameter is required")
        locations = tuple(fab_locations)
        if not locations:
            raise ParameterError("at least one fab location is required")
        points = []
        for entry in designs:
            if isinstance(entry, tuple):
                label, design = entry
            else:
                label, design = entry.name, entry
            for wafer in wafers:
                for location in locations:
                    points.append(GridPoint(
                        design=design,
                        wafer_diameter_mm=wafer,
                        fab_location=location,
                        label=(
                            f"{label}@w{wafer:g}"
                            f"@{_location_label(location)}"
                        ),
                    ))
        return cls(
            points=tuple(points), workload=resolve_workload(workload)
        )

    @classmethod
    def from_axes(
        cls,
        reference: ChipDesign,
        *,
        params: "ParameterSet | None" = None,
        integrations=None,
        die_counts=GRID_DIE_COUNTS,
        approaches=("homogeneous", "heterogeneous"),
        wafer_diameters_mm=None,
        fab_locations=("taiwan",),
        workload="av",
        include_2d: bool = True,
    ) -> "DesignGrid":
        """Expand the case-study axes from a single-die 2D reference.

        Division variants that the design rules reject (e.g. more dies
        than the integration allows) are silently skipped — the grid
        holds only constructible designs; genuinely invalid *points*
        (a die too large for a small wafer) surface later as per-point
        errors in the evaluated :class:`~repro.vec.evaluate.GridResult`.
        """
        params = params if params is not None else DEFAULT_PARAMETERS
        if reference.die_count != 1:
            raise ParameterError(
                "a design grid needs a single-die 2D reference"
            )
        if integrations is None:
            integrations = GRID_INTEGRATIONS
        designs: "list[tuple[str, ChipDesign]]" = []
        if include_2d:
            designs.append(("2d", reference))
        for name in integrations:
            spec = params.integration_spec(name)
            for approach in approaches:
                for flow in assembly_options(spec):
                    if approach == "homogeneous":
                        variants = [
                            (f"{name}/homog{n}/{flow.value}", n)
                            for n in die_counts
                        ]
                    else:
                        # The heterogeneous division is the paper's fixed
                        # logic+memory split; die counts don't apply.
                        variants = [(f"{name}/heter/{flow.value}", None)]
                    for label, n_dies in variants:
                        try:
                            if n_dies is not None:
                                design = ChipDesign.homogeneous_split(
                                    reference, name, n_dies=n_dies,
                                    stacking=StackingStyle.F2F,
                                    assembly=flow,
                                )
                            else:
                                design = ChipDesign.heterogeneous_split(
                                    reference, name,
                                    stacking=StackingStyle.F2F,
                                    assembly=flow,
                                )
                        except DesignError:
                            continue
                        design = design.with_overrides(
                            name=f"{reference.name}_"
                                 f"{label.replace('/', '_')}"
                        )
                        designs.append((label, design))
        return cls.from_designs(
            designs,
            wafer_diameters_mm=wafer_diameters_mm,
            fab_locations=fab_locations,
            workload=workload,
        )
