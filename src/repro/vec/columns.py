"""Columnar twins of the scalar embodied-carbon math.

Every function here prices one resolved design over *columns* of wafer
diameters and fab carbon intensities — the two axes the engine's resolve
fingerprint provably excludes — and is pinned **bit-identical** to the
scalar pipeline. Parity rests on three facts:

* The column expressions replicate the scalar expression trees operator
  by operator (same association order, same constants), using only
  elementwise IEEE-exact numpy float64 ops (``+ - * /``); there is no
  reduction (``np.sum`` would change the summation tree), only the same
  sequential per-die accumulation the scalar loops perform, with a
  ``0.0`` start (``0.0 + x == x`` exactly).
* Wafer carbon is affine in the fab CI — ``energy = CI · EPA`` with gas
  and material CI-free — so evaluating the scalar
  :func:`~repro.core.wafer.wafer_carbon_per_cm2` at ``ci = 1.0`` yields
  the exact EPA (``1.0 * x == x``), and ``ci_col * epa`` reproduces the
  scalar energy term per element.
* Everything else (yields, die areas, BEOL layering, packaging) is
  constant across the column axes and comes from the *same* resolved
  objects the scalar path uses.

Per-point failures (a die too large for a small wafer, Eq. 5's DPW < 1)
are masked and reported with the scalar path's own error message — they
never poison the rest of the column.
"""

from __future__ import annotations

import math

import numpy as np

from ..config.integration import BondingMethod, SubstrateKind
from ..config.parameters import ParameterSet
from ..core.dpw import effective_area_per_die_mm2
from ..core.packaging_carbon import packaging_carbon_kg
from ..core.resolve import ResolvedDesign
from ..core.wafer import m3d_wafer_carbon_per_cm2, wafer_carbon_per_cm2
from ..units import mm2_to_cm2


def wafer_area_col(wafer_mm: np.ndarray) -> np.ndarray:
    """Columnar :func:`repro.units.wafer_area_mm2` (``π·(d/2)²``)."""
    radius = wafer_mm / 2.0
    return np.pi * radius * radius


def dies_per_wafer_col(
    wafer_mm: np.ndarray, die_area_mm2: float
) -> "tuple[np.ndarray, np.ndarray]":
    """Columnar Eq. 5: ``(dpw, valid)`` over a wafer-diameter column.

    ``valid`` is False where the die does not fit (``dpw < 1``) — the
    condition the scalar :func:`~repro.core.dpw.dies_per_wafer` raises
    :class:`~repro.errors.DesignError` for.
    """
    gross = wafer_area_col(wafer_mm) / die_area_mm2
    edge_loss = np.pi * wafer_mm / math.sqrt(2.0 * die_area_mm2)
    dpw = gross - edge_loss
    return dpw, dpw >= 1.0


def effective_area_col(
    wafer_mm: np.ndarray, die_area_mm2: float
) -> "tuple[np.ndarray, np.ndarray, np.ndarray]":
    """Columnar A_wafer/DPW: ``(eff_area, dpw, valid)``."""
    dpw, valid = dies_per_wafer_col(wafer_mm, die_area_mm2)
    with np.errstate(divide="ignore", invalid="ignore"):
        eff_area = wafer_area_col(wafer_mm) / dpw
    return eff_area, dpw, valid


def wafer_carbon_col(ci_col: np.ndarray, unit) -> np.ndarray:
    """Columnar Eq. 6 total per cm²: scale a unit-CI breakdown.

    ``unit`` is a :class:`~repro.core.wafer.WaferCarbonBreakdown`
    computed at ``ci = 1.0``; the expression mirrors
    ``total_kg_per_cm2`` = (energy + gas) + material with
    ``energy = ci · epa``.
    """
    return (
        ci_col * unit.energy_kg_per_cm2 + unit.gas_kg_per_cm2
    ) + unit.material_kg_per_cm2


class ColumnSet:
    """Embodied columns of one design block (+ per-point error messages)."""

    __slots__ = (
        "die_kg",
        "bonding_kg",
        "packaging_kg",
        "interposer_kg",
        "embodied_kg",
        "cost_mm2",
        "errors",
    )

    def __init__(self, n: int) -> None:
        self.die_kg = np.zeros(n)
        self.bonding_kg = np.zeros(n)
        self.packaging_kg = np.zeros(n)
        self.interposer_kg = np.zeros(n)
        self.embodied_kg = np.zeros(n)
        self.cost_mm2 = np.zeros(n)
        self.errors: "list[str | None]" = [None] * n


def _mark_dpw_errors(
    errors: "list[str | None]",
    valid: np.ndarray,
    dpw: np.ndarray,
    wafer_mm: np.ndarray,
    die_area_mm2: float,
) -> None:
    """Record Eq. 5 failures with the scalar path's exact message."""
    for i in np.flatnonzero(~valid):
        if errors[i] is None:
            errors[i] = (
                f"die of {die_area_mm2:.0f} mm² does not fit a "
                f"{wafer_mm[i]:.0f} mm wafer (DPW = {dpw[i]:.2f})"
            )


def embodied_columns(
    resolved: ResolvedDesign,
    params: ParameterSet,
    wafer_mm: np.ndarray,
    ci_fab: np.ndarray,
) -> ColumnSet:
    """Eq. 3 over (wafer diameter, fab CI) columns for one design.

    The scalar twin is :func:`repro.core.embodied.embodied_total_kg`
    evaluated at ``params.with_wafer_diameter(wafer_mm[i])`` and
    ``ci_fab[i]`` — the parity tests pin every component column bit for
    bit. ``cost_mm2`` is the exploration cost proxy: effective wafer
    silicon area charged per good unit, Σ (A_wafer/DPW)/Y_eff over the
    dies (the quantity Eq. 4 multiplies by the per-area wafer carbon).
    """
    cols = ColumnSet(len(wafer_mm))
    spec = resolved.spec
    design = resolved.design

    # -- die manufacturing (Eq. 4) -------------------------------------------
    if resolved.is_m3d:
        stack = resolved.m3d_stack
        unit = m3d_wafer_carbon_per_cm2(
            tiers=list(zip(stack.tier_nodes, stack.tier_layers)),
            ci_fab_kg_per_kwh=1.0,
            m3d=params.m3d,
            beol_aware=params.beol_aware,
        )
        per_cm2 = wafer_carbon_col(ci_fab, unit)
        eff_area, dpw, valid = effective_area_col(
            wafer_mm, stack.footprint_mm2
        )
        _mark_dpw_errors(
            cols.errors, valid, dpw, wafer_mm, stack.footprint_mm2
        )
        eff_yield = resolved.stack_yields.per_die[0]
        cols.die_kg = cols.die_kg + (
            per_cm2 * (eff_area / 100.0) / eff_yield
        )
        cols.cost_mm2 = cols.cost_mm2 + eff_area / eff_yield
    else:
        for rdie, eff_yield in zip(
            resolved.dies, resolved.stack_yields.per_die
        ):
            unit = wafer_carbon_per_cm2(
                rdie.node,
                1.0,
                beol_layers=rdie.beol.layers,
                beol_aware=params.beol_aware,
            )
            per_cm2 = wafer_carbon_col(ci_fab, unit)
            eff_area, dpw, valid = effective_area_col(
                wafer_mm, rdie.area_mm2
            )
            _mark_dpw_errors(
                cols.errors, valid, dpw, wafer_mm, rdie.area_mm2
            )
            cols.die_kg = cols.die_kg + (
                per_cm2 * (eff_area / 100.0) / eff_yield
            )
            cols.cost_mm2 = cols.cost_mm2 + eff_area / eff_yield

    # -- bonding (Eq. 11) ----------------------------------------------------
    if not (spec.is_2d or resolved.is_m3d):
        if spec.is_3d:
            process = params.bonding.get(spec.bonding, design.assembly)
            for i in range(len(resolved.dies) - 1):
                cols.bonding_kg = cols.bonding_kg + (
                    ci_fab
                    * process.epa_kwh_per_cm2
                    * mm2_to_cm2(resolved.dies[i].area_mm2)
                    / resolved.stack_yields.per_bond[i]
                )
        else:
            process = params.bonding.get(BondingMethod.C4, design.assembly)
            for rdie, eff_yield in zip(
                resolved.dies, resolved.stack_yields.per_bond
            ):
                cols.bonding_kg = cols.bonding_kg + (
                    ci_fab
                    * process.epa_kwh_per_cm2
                    * mm2_to_cm2(rdie.area_mm2)
                    / eff_yield
                )

    # -- packaging (Eq. 12): CI- and wafer-free, one scalar per block --------
    cols.packaging_kg = cols.packaging_kg + packaging_carbon_kg(
        resolved, params
    )

    # -- substrate (Eq. 13-14): on its own interposer wafer, not the axis ----
    substrate = resolved.substrate
    if substrate is not None and substrate.kind is not SubstrateKind.ORGANIC:
        eff_yield = resolved.stack_yields.substrate
        if eff_yield is None:
            eff_yield = substrate.raw_yield
        if substrate.kind is SubstrateKind.RDL:
            cols.interposer_kg = cols.interposer_kg + (
                params.substrate.rdl_cpa_kg_per_cm2
                * mm2_to_cm2(substrate.area_mm2)
                / eff_yield
            )
        else:
            node = params.node(params.substrate.silicon_node)
            unit = wafer_carbon_per_cm2(
                node,
                1.0,
                beol_layers=float(node.max_beol_layers),
                beol_aware=params.beol_aware,
            )
            per_cm2 = wafer_carbon_col(ci_fab, unit)
            eff_area = effective_area_per_die_mm2(
                params.substrate.wafer_diameter_mm, substrate.area_mm2
            )
            cols.interposer_kg = cols.interposer_kg + (
                per_cm2 * mm2_to_cm2(eff_area) / eff_yield
            )

    # Eq. 3, in the scalar path's exact summation order.
    cols.embodied_kg = (
        cols.die_kg + cols.bonding_kg + cols.packaging_kg
        + cols.interposer_kg
    )
    return cols
