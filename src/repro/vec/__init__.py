"""Batch-native vectorized evaluation: the design axis as a numpy axis.

The scalar pipeline walks one design at a time; this package turns the
*design grid* itself into structure-of-arrays columns. A
:class:`~repro.vec.grid.DesignGrid` enumerates the paper's exploration
space (integration technology × division × assembly × wafer size × fab
location), :class:`~repro.vec.plan.VectorizedBatch` partitions it into
shape-groups (same integration/stacking/die-count → one batch), and
:func:`~repro.vec.evaluate.evaluate_grid` prices every point through the
columnar twins in :mod:`repro.vec.columns` — bit-identical to the scalar
pipeline, because every column replicates the scalar expression tree with
elementwise IEEE-exact numpy ops (see the parity notes in
:mod:`repro.vec.columns`).

``BatchEvaluator.evaluate_grid()`` is the engine-side entry point; the
Pareto optimizer (:class:`repro.analysis.optimizer.ParetoSearch`) chunks
10⁵–10⁶-point grids through it.
"""

from .evaluate import GridResult, evaluate_grid
from .grid import DesignGrid, GridPoint, resolve_workload
from .plan import DesignBlock, ShapeGroup, VectorizedBatch

__all__ = [
    "DesignBlock",
    "DesignGrid",
    "GridPoint",
    "GridResult",
    "ShapeGroup",
    "VectorizedBatch",
    "evaluate_grid",
    "resolve_workload",
]
