"""Shape-group planning: partition a grid into vectorizable batches.

Points that share a *structural shape* — integration technology, stacking
style, die count and assembly flow — run as one :class:`ShapeGroup`.
Within a group, each distinct design forms a :class:`DesignBlock`: the
structural math (Davis wirelength, BEOL layering, floorplanning, yield
composition) runs **once** per block through the scalar resolver, while
the axes that the resolve fingerprint provably excludes — wafer diameter
and fab carbon intensity (see :func:`repro.pipeline.fingerprint.
resolve_key` vs. ``embodied_key``) — become numpy columns over the
block's points.

Planning is pure bookkeeping (no parameter set needed) and deterministic:
groups and blocks appear in first-appearance order, indices ascending.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.design import ChipDesign
from ..obs import trace as obs_trace
from .grid import DesignGrid


@dataclass(frozen=True)
class DesignBlock:
    """All points of one distinct design (the inner SoA unit)."""

    design: ChipDesign
    indices: tuple[int, ...]

    @property
    def point_count(self) -> int:
        return len(self.indices)


@dataclass(frozen=True)
class ShapeGroup:
    """One structural shape: (integration, stacking, die count, assembly)."""

    key: tuple[str, str, int, str]
    blocks: tuple[DesignBlock, ...]

    @property
    def point_count(self) -> int:
        return sum(block.point_count for block in self.blocks)


def shape_key(design: ChipDesign) -> tuple[str, str, int, str]:
    """The structural-shape key a design batches under."""
    return (
        design.integration,
        design.stacking.value,
        design.die_count,
        design.assembly.value,
    )


@dataclass(frozen=True)
class VectorizedBatch:
    """A planned grid: shape-groups of design blocks over point indices."""

    grid: DesignGrid
    groups: tuple[ShapeGroup, ...]

    @property
    def point_count(self) -> int:
        return len(self.grid.points)

    @property
    def group_count(self) -> int:
        return len(self.groups)

    @property
    def block_count(self) -> int:
        return sum(len(group.blocks) for group in self.groups)

    @classmethod
    def plan(cls, grid: DesignGrid) -> "VectorizedBatch":
        """Partition ``grid`` into shape-groups (span: ``vec.plan``)."""
        with obs_trace.span("vec.plan", points=len(grid.points)) as span:
            group_order: list[tuple[str, str, int, str]] = []
            # shape key → (design id → (design, [indices]))
            by_shape: dict[tuple, dict[int, tuple]] = {}
            for index, point in enumerate(grid.points):
                key = shape_key(point.design)
                blocks = by_shape.get(key)
                if blocks is None:
                    blocks = by_shape[key] = {}
                    group_order.append(key)
                entry = blocks.get(id(point.design))
                if entry is None:
                    entry = blocks[id(point.design)] = (point.design, [])
                entry[1].append(index)
            groups = tuple(
                ShapeGroup(
                    key=key,
                    blocks=tuple(
                        DesignBlock(design=design, indices=tuple(indices))
                        for design, indices in by_shape[key].values()
                    ),
                )
                for key in group_order
            )
            if span is not None:
                span.attrs["groups"] = len(groups)
                span.attrs["blocks"] = sum(len(by_shape[k]) for k in by_shape)
        return cls(grid=grid, groups=groups)
