"""Grid evaluation through the columnar twins.

:func:`evaluate_grid` is the vectorized fast path: plan the grid into
shape-groups, resolve each design block **once** through the engine's
memoized scalar resolver (Davis wirelength, floorplans, yields — the
transcendental-heavy work), then price the block's points as numpy
columns over the wafer-diameter and fab-CI axes. Operational carbon,
bandwidth degradation and packaging are block constants (they do not
depend on either axis), computed by the very same scalar code the
per-point path runs — so every output column is bit-identical to a
scalar sweep over ``params.with_wafer_diameter(...)`` ×
``fab_location``.

Failures stay local: an unknown fab location, an unresolvable design or
a die that does not fit a wafer marks *its* points with the scalar
path's error message and NaN columns; the rest of the batch is
untouched.

Observability: planning runs under a ``vec.plan`` span, evaluation under
``vec.eval`` (point/group/error counts as attributes), and every
evaluated point increments the ``carbon3d_vec_points_total`` counter on
the engine's metrics registry.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..config.parameters import ParameterSet
from ..errors import DesignError, ParameterError
from ..obs import trace as obs_trace
from .columns import embodied_columns
from .grid import DesignGrid
from .plan import VectorizedBatch

#: Output columns of a :class:`GridResult`, in report order.
COLUMN_NAMES = (
    "total_kg",
    "embodied_kg",
    "operational_kg",
    "die_kg",
    "bonding_kg",
    "packaging_kg",
    "interposer_kg",
    "performance_tops",
    "cost_mm2",
)


@dataclass
class GridResult:
    """Columnar result of one grid evaluation."""

    grid: DesignGrid
    columns: "dict[str, np.ndarray]"
    errors: "tuple[str | None, ...]"
    group_count: int
    block_count: int

    @property
    def point_count(self) -> int:
        return len(self.grid.points)

    @property
    def error_count(self) -> int:
        return sum(1 for e in self.errors if e is not None)

    @property
    def valid_mask(self) -> np.ndarray:
        """True where the point evaluated (its columns are real numbers)."""
        return np.fromiter(
            (e is None for e in self.errors),
            dtype=bool,
            count=len(self.errors),
        )

    def column(self, name: str) -> np.ndarray:
        if name not in self.columns:
            raise ParameterError(
                f"unknown grid column {name!r}; have "
                f"{', '.join(sorted(self.columns))}"
            )
        return self.columns[name]

    def row(self, index: int) -> dict:
        """One point's values as a JSON-ready record."""
        point = self.grid.points[index]
        record = {
            "index": index,
            "label": point.label,
            "design": point.design.name,
            "integration": point.design.integration,
            "wafer_diameter_mm": point.wafer_diameter_mm,
            "fab_location": point.fab_location,
            "error": self.errors[index],
        }
        for name in COLUMN_NAMES:
            value = float(self.columns[name][index])
            record[name] = None if math.isnan(value) else value
        return record


def evaluate_grid(
    grid: DesignGrid,
    evaluator=None,
    params: "ParameterSet | None" = None,
) -> GridResult:
    """Price every grid point through the vectorized core.

    ``evaluator`` is a :class:`~repro.engine.BatchEvaluator` whose memo
    caches (resolve, bandwidth, operational) are shared with — and
    warmed for — the scalar path; one is built on demand. ``params``
    defaults to the evaluator's parameter set. The grid's wafer-diameter
    axis replaces ``params.wafer_diameter_mm``; every other parameter is
    taken from ``params`` as-is.
    """
    if evaluator is None:
        from ..engine import BatchEvaluator

        evaluator = BatchEvaluator(params=params)
    params = params if params is not None else evaluator.params

    batch = VectorizedBatch.plan(grid)
    points = grid.points
    n = len(points)

    with obs_trace.span(
        "vec.eval", points=n, groups=batch.group_count
    ) as span:
        columns = {name: np.full(n, np.nan) for name in COLUMN_NAMES}
        errors: "list[str | None]" = [None] * n

        # Fab CI per location, resolved once through the engine's interned
        # lookup (identical float to the scalar path's).
        ci_cache: dict = {}

        def _ci_for(location):
            try:
                entry = ci_cache.get(location)
            except TypeError:  # unhashable location object
                entry = None
            if entry is None:
                try:
                    entry = (evaluator._ci(params, location), None)
                except (ParameterError, DesignError) as err:
                    entry = (math.nan, str(err))
                try:
                    ci_cache[location] = entry
                except TypeError:
                    pass
            return entry

        for group in batch.groups:
            for block in group.blocks:
                design = block.design
                idx = np.array(block.indices, dtype=np.intp)
                wafers = np.array(
                    [points[i].wafer_diameter_mm for i in block.indices],
                    dtype=float,
                )
                ci_col = np.empty(len(block.indices), dtype=float)
                for pos, i in enumerate(block.indices):
                    ci, ci_err = _ci_for(points[i].fab_location)
                    ci_col[pos] = ci
                    if ci_err is not None and errors[i] is None:
                        errors[i] = ci_err

                try:
                    rkey = evaluator._rkey(design, params)
                    resolved = evaluator._resolved(design, params, rkey)
                    bandwidth = evaluator._bandwidth(
                        design, params, rkey, resolved=resolved
                    )
                    cols = embodied_columns(resolved, params, wafers, ci_col)
                    operational_kg = 0.0
                    if grid.workload is not None:
                        operational_kg = evaluator._operational(
                            design, params, rkey, grid.workload, bandwidth,
                            resolved=resolved,
                        ).total_kg
                except (DesignError, ParameterError) as err:
                    message = str(err)
                    for i in block.indices:
                        if errors[i] is None:
                            errors[i] = message
                    continue

                performance = (
                    math.nan
                    if design.throughput_tops is None
                    else design.throughput_tops * (1.0 - bandwidth.degradation)
                )

                columns["total_kg"][idx] = cols.embodied_kg + operational_kg
                columns["embodied_kg"][idx] = cols.embodied_kg
                columns["operational_kg"][idx] = operational_kg
                columns["die_kg"][idx] = cols.die_kg
                columns["bonding_kg"][idx] = cols.bonding_kg
                columns["packaging_kg"][idx] = cols.packaging_kg
                columns["interposer_kg"][idx] = cols.interposer_kg
                columns["performance_tops"][idx] = performance
                columns["cost_mm2"][idx] = cols.cost_mm2
                for pos, message in enumerate(cols.errors):
                    i = block.indices[pos]
                    if message is not None and errors[i] is None:
                        errors[i] = message

        # Error points keep NaN columns even where partial values landed.
        bad = np.fromiter(
            (e is not None for e in errors), dtype=bool, count=n
        )
        if bad.any():
            for array in columns.values():
                array[bad] = np.nan

        error_count = int(bad.sum())
        if span is not None:
            span.attrs["errors"] = error_count
        if evaluator.metrics is not None:
            evaluator.metrics.counter(
                "carbon3d_vec_points_total",
                "Grid points evaluated through the vectorized core",
            ).inc(n)

    return GridResult(
        grid=grid,
        columns=columns,
        errors=tuple(errors),
        group_count=batch.group_count,
        block_count=batch.block_count,
    )
