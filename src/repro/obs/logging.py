"""Structured JSON request logging for ``carbon3d serve --log-json``.

One JSON object per line on the chosen stream (stderr by default — the
"listening on" startup banner and subprocess smoke tests own stdout).
The schema is stable and documented in the README's Observability
section:

.. code-block:: json

    {"ts": 1699999999.123, "event": "request", "trace_id": "…",
     "method": "POST", "route": "/batch", "status": 200,
     "duration_ms": 4.21, "cache": "store", "shed": false,
     "error": null}

``cache`` is the envelope cache tag (``"store"``/``"inflight"``/
``"computed"``) when the route has one, ``shed`` flags admission-gate
rejections, and ``error`` carries the error code of a non-2xx response.
"""

from __future__ import annotations

import json
import sys
import threading
import time


class JsonRequestLog:
    """Thread-safe one-line-per-request JSON logger."""

    def __init__(self, stream=None) -> None:
        self._stream = stream if stream is not None else sys.stderr
        self._lock = threading.Lock()

    def emit(self, record: dict) -> None:
        record.setdefault("ts", time.time())
        record.setdefault("event", "request")
        line = json.dumps(record, sort_keys=True, default=str)
        with self._lock:
            try:
                self._stream.write(line + "\n")
                self._stream.flush()
            except (ValueError, OSError):  # pragma: no cover - closed stream
                pass

    def request(
        self,
        *,
        method: str,
        route: str,
        status: int,
        duration_s: float,
        trace_id: "str | None" = None,
        cache: "str | None" = None,
        shed: bool = False,
        error: "str | None" = None,
        **extra,
    ) -> None:
        record = {
            "method": method,
            "route": route,
            "status": status,
            "duration_ms": round(duration_s * 1e3, 3),
            "trace_id": trace_id,
            "cache": cache,
            "shed": shed,
            "error": error,
        }
        record.update(extra)
        self.emit(record)
