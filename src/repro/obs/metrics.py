"""Stdlib-only metrics: counters, gauges, histograms, Prometheus text.

The service layer needs latency distributions and cache hit-rates, not
just monotonically growing ints — and it needs them mutated safely from
the many threads of a ``ThreadingHTTPServer``. This module provides the
three classic instrument types plus a registry that renders them both as
a JSON snapshot (for ``/stats``) and as Prometheus text exposition
format 0.0.4 (for ``GET /metrics``):

* :class:`Counter` — monotonically increasing, lock-protected ``inc()``.
* :class:`Gauge` — a settable value *or* a zero-argument callback
  sampled at collect time (for "current" readings such as cache sizes
  that already live elsewhere).
* :class:`Histogram` — fixed cumulative buckets tuned for request
  latencies, with a :meth:`Histogram.summary` that interpolates
  p50/p90/p99 from the bucket counts.

All three support Prometheus-style labels via :meth:`labels` — e.g.
``registry.histogram("carbon3d_stage_duration_seconds").labels(
stage="embodied", backend="3dcarbon")`` — each label combination being
its own independently-locked child series.

Everything here is dependency-free and usable standalone (a bare
``Histogram()`` works without any registry), so benches can reuse the
percentile math without dragging in the service.
"""

from __future__ import annotations

import threading

# Cumulative upper bounds (seconds) tuned for this service's latencies:
# engine stages sit in the tens of microseconds, HTTP round-trips in the
# low milliseconds, forked MC studies in the tens of milliseconds.
DEFAULT_BUCKETS: "tuple[float, ...]" = (
    0.0001,
    0.00025,
    0.0005,
    0.001,
    0.0025,
    0.005,
    0.01,
    0.025,
    0.05,
    0.1,
    0.25,
    0.5,
    1.0,
    2.5,
    5.0,
    10.0,
)


def _format_value(value: float) -> str:
    """Prometheus-friendly number: ints bare, floats via repr."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def _label_key(labels: dict) -> "tuple[tuple[str, str], ...]":
    return tuple(sorted((str(k), str(v)) for k, v in labels.items()))


def _render_labels(key: "tuple[tuple[str, str], ...]") -> str:
    if not key:
        return ""
    inner = ",".join(f'{name}="{value}"' for name, value in key)
    return "{" + inner + "}"


def _merge_labels(
    extra: "tuple[tuple[str, str], ...]",
    key: "tuple[tuple[str, str], ...]",
) -> "tuple[tuple[str, str], ...]":
    """Registry const-labels merged under a series' own labels.

    A series label with the same name wins over the const label, so an
    instrument that already tags ``worker=`` keeps its own value.
    """
    if not extra:
        return key
    merged = dict(extra)
    merged.update(dict(key))
    return _label_key(merged)


class Counter:
    """A monotonically increasing, thread-safe counter."""

    kind = "counter"

    def __init__(self, name: str = "", help: str = "", fn=None) -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value = 0
        self._fn = fn
        self._children: "dict[tuple, Counter]" = {}

    def inc(self, amount: "int | float" = 1) -> None:
        if amount < 0:
            raise ValueError("counters only go up")
        with self._lock:
            self._value += amount

    def set_function(self, fn) -> None:
        """Sample a monotonic value from ``fn()`` at collect time.

        For counters whose source of truth already lives elsewhere
        (e.g. ``EngineStats`` fields) — the callback twin of
        :meth:`Gauge.set_function`.
        """
        with self._lock:
            self._fn = fn

    @property
    def value(self) -> "int | float":
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return fn()
        except Exception:
            return 0

    def labels(self, **labels) -> "Counter":
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Counter(self.name, self.help)
                self._children[key] = child
            return child

    # -- collection ----------------------------------------------------------

    def _series(self):
        with self._lock:
            children = dict(self._children)
        if children:
            for key, child in sorted(children.items()):
                yield key, child.value
        else:
            yield (), self.value

    def render(self, extra: "tuple[tuple[str, str], ...]" = ()) -> "list[str]":
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} counter",
        ]
        for key, value in self._series():
            key = _merge_labels(extra, key)
            lines.append(
                f"{self.name}{_render_labels(key)} {_format_value(value)}"
            )
        return lines

    def snapshot(self):
        series = list(self._series())
        if len(series) == 1 and series[0][0] == ():
            return series[0][1]
        return {
            _render_labels(key) or "total": value for key, value in series
        }


class Gauge:
    """A settable value or a callback sampled at collect time."""

    kind = "gauge"

    def __init__(self, name: str = "", help: str = "", fn=None) -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()
        self._value: float = 0.0
        self._fn = fn
        self._children: "dict[tuple, Gauge]" = {}

    def set(self, value: "int | float") -> None:
        with self._lock:
            self._value = value

    def set_function(self, fn) -> None:
        """Sample ``fn()`` at every collection instead of a stored value."""
        with self._lock:
            self._fn = fn

    def inc(self, amount: "int | float" = 1) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: "int | float" = 1) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> "int | float":
        with self._lock:
            fn = self._fn
            if fn is None:
                return self._value
        try:
            return fn()
        except Exception:
            return 0

    def labels(self, **labels) -> "Gauge":
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Gauge(self.name, self.help)
                self._children[key] = child
            return child

    def _series(self):
        with self._lock:
            children = dict(self._children)
        if children:
            for key, child in sorted(children.items()):
                yield key, child.value
        else:
            yield (), self.value

    def render(self, extra: "tuple[tuple[str, str], ...]" = ()) -> "list[str]":
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} gauge",
        ]
        for key, value in self._series():
            key = _merge_labels(extra, key)
            lines.append(
                f"{self.name}{_render_labels(key)} {_format_value(value)}"
            )
        return lines

    def snapshot(self):
        series = list(self._series())
        if len(series) == 1 and series[0][0] == ():
            return series[0][1]
        return {
            _render_labels(key) or "total": value for key, value in series
        }


class Histogram:
    """Fixed cumulative-bucket histogram with percentile summaries."""

    kind = "histogram"

    def __init__(
        self,
        name: str = "",
        help: str = "",
        buckets: "tuple[float, ...]" = DEFAULT_BUCKETS,
    ) -> None:
        self.name = name
        self.help = help
        self.buckets = tuple(sorted(buckets))
        self._lock = threading.Lock()
        self._counts = [0] * (len(self.buckets) + 1)  # last = +Inf
        self._sum = 0.0
        self._count = 0
        self._min: "float | None" = None
        self._max: "float | None" = None
        self._children: "dict[tuple, Histogram]" = {}

    def observe(self, value: float) -> None:
        index = len(self.buckets)
        for i, bound in enumerate(self.buckets):
            if value <= bound:
                index = i
                break
        with self._lock:
            self._counts[index] += 1
            self._sum += value
            self._count += 1
            if self._min is None or value < self._min:
                self._min = value
            if self._max is None or value > self._max:
                self._max = value

    def time(self):
        """Context manager observing the elapsed wall time of its body."""
        return _HistogramTimer(self)

    def labels(self, **labels) -> "Histogram":
        key = _label_key(labels)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                child = Histogram(self.name, self.help, self.buckets)
                self._children[key] = child
            return child

    @property
    def count(self) -> int:
        with self._lock:
            return self._count

    def quantile(self, q: float) -> float:
        """Interpolated quantile (0..1) from cumulative bucket counts."""
        with self._lock:
            counts = list(self._counts)
            total = self._count
            low = self._min
            high = self._max
        if total == 0:
            return 0.0
        rank = q * total
        cumulative = 0
        for i, count in enumerate(counts):
            if count == 0:
                continue
            if cumulative + count >= rank:
                lower = self.buckets[i - 1] if i > 0 else (low or 0.0)
                if i < len(self.buckets):
                    upper = self.buckets[i]
                else:
                    upper = high if high is not None else lower
                lower = max(lower, low or 0.0)
                upper = min(upper, high if high is not None else upper)
                if upper < lower:
                    upper = lower
                fraction = (rank - cumulative) / count
                return lower + (upper - lower) * fraction
            cumulative += count
        return high or 0.0

    def summary(self) -> dict:
        """count/sum/mean/min/max + interpolated p50/p90/p99."""
        with self._lock:
            total = self._count
            total_sum = self._sum
            low = self._min
            high = self._max
        if total == 0:
            return {"count": 0}
        return {
            "count": total,
            "sum": total_sum,
            "mean": total_sum / total,
            "min": low,
            "max": high,
            "p50": self.quantile(0.50),
            "p90": self.quantile(0.90),
            "p99": self.quantile(0.99),
        }

    def _series(self):
        with self._lock:
            children = dict(self._children)
        if children:
            for key, child in sorted(children.items()):
                yield key, child
        else:
            yield (), self

    def render(self, extra: "tuple[tuple[str, str], ...]" = ()) -> "list[str]":
        lines = [
            f"# HELP {self.name} {self.help}",
            f"# TYPE {self.name} histogram",
        ]
        for key, child in self._series():
            key = _merge_labels(extra, key)
            with child._lock:
                counts = list(child._counts)
                total_sum = child._sum
                total = child._count
            cumulative = 0
            for bound, count in zip(child.buckets, counts):
                cumulative += count
                labels = dict(key)
                labels["le"] = _format_value(bound)
                lines.append(
                    f"{self.name}_bucket{_render_labels(_label_key(labels))}"
                    f" {cumulative}"
                )
            labels = dict(key)
            labels["le"] = "+Inf"
            lines.append(
                f"{self.name}_bucket{_render_labels(_label_key(labels))}"
                f" {total}"
            )
            lines.append(
                f"{self.name}_sum{_render_labels(key)}"
                f" {_format_value(total_sum)}"
            )
            lines.append(f"{self.name}_count{_render_labels(key)} {total}")
        return lines

    def snapshot(self):
        series = list(self._series())
        if len(series) == 1 and series[0][0] == ():
            return series[0][1].summary()
        return {_render_labels(key): child.summary() for key, child in series}


class _HistogramTimer:
    __slots__ = ("_histogram", "_start")

    def __init__(self, histogram: Histogram) -> None:
        self._histogram = histogram
        self._start = 0.0

    def __enter__(self):
        import time

        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc):
        import time

        self._histogram.observe(time.perf_counter() - self._start)
        return False


class MetricsRegistry:
    """A named collection of metrics with two render targets.

    ``render_prometheus()`` emits text exposition format 0.0.4 for
    ``GET /metrics``; ``snapshot()`` emits a JSON-ready dict for the
    ``/stats`` envelope. Registering an existing name returns the
    existing instrument (so modules can idempotently declare what they
    use).

    ``const_labels`` are stamped onto every Prometheus series the
    registry renders — the fleet front end uses ``{"worker": "<i>"}`` so
    a scrape that round-robins across pre-forked workers never silently
    mixes per-process counters into one series. A series' own label with
    the same name wins. JSON snapshots stay unlabelled (the ``/stats``
    payload carries the worker index at the envelope level instead).
    """

    def __init__(self, const_labels: "dict[str, str] | None" = None) -> None:
        self._lock = threading.Lock()
        self._metrics: "dict[str, object]" = {}
        self.const_labels = dict(const_labels) if const_labels else {}

    def _register(self, factory, name: str, help: str, **kwargs):
        with self._lock:
            existing = self._metrics.get(name)
            if existing is not None:
                return existing
            metric = factory(name, help, **kwargs)
            self._metrics[name] = metric
            return metric

    def counter(self, name: str, help: str = "", fn=None) -> Counter:
        counter = self._register(Counter, name, help)
        if fn is not None:
            counter.set_function(fn)
        return counter

    def gauge(self, name: str, help: str = "", fn=None) -> Gauge:
        gauge = self._register(Gauge, name, help)
        if fn is not None:
            gauge.set_function(fn)
        return gauge

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: "tuple[float, ...]" = DEFAULT_BUCKETS,
    ) -> Histogram:
        return self._register(Histogram, name, help, buckets=buckets)

    def get(self, name: str):
        with self._lock:
            return self._metrics.get(name)

    def names(self) -> "list[str]":
        with self._lock:
            return sorted(self._metrics)

    def render_prometheus(self) -> str:
        with self._lock:
            metrics = [self._metrics[name] for name in sorted(self._metrics)]
        extra = _label_key(self.const_labels)
        lines: "list[str]" = []
        for metric in metrics:
            lines.extend(metric.render(extra))
        return "\n".join(lines) + "\n"

    def snapshot(self) -> dict:
        with self._lock:
            metrics = dict(self._metrics)
        return {
            name: metric.snapshot() for name, metric in sorted(metrics.items())
        }
