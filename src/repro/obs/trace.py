"""Lightweight spans: request correlation from Session to forked worker.

A *trace* is a tree of timed spans sharing one ``trace_id``. The
:func:`trace` context manager opens (or adopts) a root span and makes it
current via a :mod:`contextvars` variable; :func:`span` opens a child of
whatever is current. Crucially, **when no trace is active, ``span()`` is
a no-op** — a single contextvar read and no allocation — so instrumented
hot paths (engine stages, memo lookups) cost nothing for plain library
use and benches.

The trace id travels:

* Session → ServiceClient → server as the ``X-Carbon3D-Trace-Id``
  header (:data:`TRACE_HEADER`), echoed back in response envelopes and
  NDJSON stream lines;
* parent → forked worker implicitly (contextvars survive ``fork``);
  finished worker spans return over the result pipe via
  :func:`begin_worker_capture` / :func:`end_worker_capture` in the
  child and :func:`adopt_spans` in the parent;
* parent thread → pool thread via ``contextvars.copy_context()`` in
  ``BatchEvaluator.evaluate_many``.

Finished spans are recorded in a process-global, bounded
:class:`TraceCollector`; :func:`stage_breakdown` aggregates per-stage
self-times for ``StudyHandle.timing()`` and :func:`render_tree` prints
the ``carbon3d trace`` span tree.
"""

from __future__ import annotations

import contextvars
import os
import threading
import time

TRACE_HEADER = "X-Carbon3D-Trace-Id"

_current: "contextvars.ContextVar[Span | None]" = contextvars.ContextVar(
    "carbon3d_span", default=None
)
# When set (in a forked worker), finished spans append here instead of
# the global collector, so the child can ship them over the result pipe.
_capture: "contextvars.ContextVar[list | None]" = contextvars.ContextVar(
    "carbon3d_span_capture", default=None
)


def _new_id(nbytes: int = 8) -> str:
    return os.urandom(nbytes).hex()


class Span:
    """One timed operation in a trace tree."""

    __slots__ = (
        "trace_id",
        "span_id",
        "parent_id",
        "name",
        "attrs",
        "start_s",
        "duration_s",
        "_t0",
    )

    def __init__(
        self,
        trace_id: str,
        name: str,
        parent_id: "str | None" = None,
        attrs: "dict | None" = None,
    ) -> None:
        self.trace_id = trace_id
        self.span_id = _new_id()
        self.parent_id = parent_id
        self.name = name
        self.attrs = attrs or {}
        self.start_s = time.time()
        self.duration_s = 0.0
        self._t0 = time.perf_counter()

    def finish(self) -> None:
        self.duration_s = time.perf_counter() - self._t0

    def to_dict(self) -> dict:
        return {
            "trace_id": self.trace_id,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "name": self.name,
            "attrs": self.attrs,
            "start_s": self.start_s,
            "duration_s": self.duration_s,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Span":
        span = cls.__new__(cls)
        span.trace_id = data["trace_id"]
        span.span_id = data["span_id"]
        span.parent_id = data.get("parent_id")
        span.name = data["name"]
        span.attrs = data.get("attrs") or {}
        span.start_s = data.get("start_s", 0.0)
        span.duration_s = data.get("duration_s", 0.0)
        span._t0 = 0.0
        return span

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Span({self.name!r}, trace={self.trace_id[:8]}, "
            f"{self.duration_s * 1e3:.3f}ms)"
        )


class TraceCollector:
    """Bounded in-memory store of finished spans, keyed by trace id."""

    def __init__(self, max_traces: int = 64) -> None:
        self.max_traces = max_traces
        self._lock = threading.Lock()
        self._traces: "dict[str, list[Span]]" = {}

    def record(self, span: Span) -> None:
        with self._lock:
            spans = self._traces.get(span.trace_id)
            if spans is None:
                while len(self._traces) >= self.max_traces:
                    # dict preserves insertion order: evict the oldest.
                    oldest = next(iter(self._traces))
                    del self._traces[oldest]
                spans = []
                self._traces[span.trace_id] = spans
            spans.append(span)

    def spans(self, trace_id: str) -> "list[Span]":
        with self._lock:
            return list(self._traces.get(trace_id, ()))

    def trace_ids(self) -> "list[str]":
        with self._lock:
            return list(self._traces)

    def clear(self) -> None:
        with self._lock:
            self._traces.clear()


collector = TraceCollector()


def _record(span: Span) -> None:
    sink = _capture.get()
    if sink is not None:
        sink.append(span)
    else:
        collector.record(span)


class _SpanContext:
    """Context manager entering ``span`` as the current span."""

    __slots__ = ("span", "_token")

    def __init__(self, span: Span) -> None:
        self.span = span
        self._token = None

    def __enter__(self) -> Span:
        self._token = _current.set(self.span)
        return self.span

    def __exit__(self, exc_type, exc, tb) -> bool:
        self.span.finish()
        if exc_type is not None:
            self.span.attrs.setdefault("error", exc_type.__name__)
        _current.reset(self._token)
        _record(self.span)
        return False


class _NullSpan:
    """What ``span()`` returns when no trace is active: nothing, cheaply."""

    __slots__ = ()

    def __enter__(self):
        return None

    def __exit__(self, *exc) -> bool:
        return False


_NULL = _NullSpan()


def trace(
    name: str, trace_id: "str | None" = None, **attrs
) -> "_SpanContext":
    """Open a root span, starting (or joining) a trace.

    * If ``trace_id`` is given (e.g. from an incoming header), the new
      trace adopts it, correlating client and server timelines.
    * If a trace is already active (e.g. ``carbon3d trace`` wrapped the
      Session), the "root" degrades gracefully to a child span of it.
    """
    active = _current.get()
    if trace_id is None:
        trace_id = active.trace_id if active is not None else _new_id(16)
    parent_id = active.span_id if active is not None else None
    return _SpanContext(Span(trace_id, name, parent_id, attrs or None))


def span(name: str, **attrs):
    """Open a child span of the current trace; no-op when none is active."""
    active = _current.get()
    if active is None:
        return _NULL
    return _SpanContext(
        Span(active.trace_id, name, active.span_id, attrs or None)
    )


def current_trace_id() -> "str | None":
    """Trace id of the active trace, or None."""
    active = _current.get()
    return active.trace_id if active is not None else None


def active() -> bool:
    """Whether a trace is currently active in this context."""
    return _current.get() is not None


# -- forked-worker span shipping ---------------------------------------------


def begin_worker_capture() -> "list[Span]":
    """Redirect finished spans into a list (called in a forked child).

    The child inherited the parent's context across ``fork``, so spans
    it opens already carry the right trace/parent ids — they just must
    not be recorded into the child's (soon to be discarded) collector.
    """
    sink: "list[Span]" = []
    _capture.set(sink)
    return sink


def end_worker_capture(sink: "list[Span]") -> "list[dict]":
    """Stop capturing; return the spans as pipe-ready dicts."""
    _capture.set(None)
    return [span.to_dict() for span in sink]


def adopt_spans(span_dicts: "list[dict]") -> None:
    """Record spans shipped back from a worker into this process."""
    for data in span_dicts:
        collector.record(Span.from_dict(data))


# -- reporting ---------------------------------------------------------------


def _child_index(spans: "list[Span]") -> "dict[str | None, list[Span]]":
    children: "dict[str | None, list[Span]]" = {}
    for item in spans:
        children.setdefault(item.parent_id, []).append(item)
    for siblings in children.values():
        siblings.sort(key=lambda s: s.start_s)
    return children


def self_times(spans: "list[Span]") -> "dict[str, float]":
    """span_id -> duration minus the direct children's durations."""
    children = _child_index(spans)
    result: "dict[str, float]" = {}
    for item in spans:
        child_total = sum(
            c.duration_s for c in children.get(item.span_id, ())
        )
        result[item.span_id] = max(0.0, item.duration_s - child_total)
    return result


def stage_breakdown(spans: "list[Span]") -> "dict[str, dict]":
    """Aggregate spans by name: count, total and self time (seconds)."""
    selfs = self_times(spans)
    breakdown: "dict[str, dict]" = {}
    for item in spans:
        entry = breakdown.setdefault(
            item.name, {"count": 0, "total_s": 0.0, "self_s": 0.0}
        )
        entry["count"] += 1
        entry["total_s"] += item.duration_s
        entry["self_s"] += selfs[item.span_id]
    return breakdown


def render_tree(spans: "list[Span]") -> str:
    """Indented span tree with per-span total and self times."""
    if not spans:
        return "(no spans recorded)"
    children = _child_index(spans)
    known = {item.span_id for item in spans}
    selfs = self_times(spans)
    lines: "list[str]" = []

    def walk(item: Span, depth: int) -> None:
        indent = "  " * depth
        total_ms = item.duration_s * 1e3
        self_ms = selfs[item.span_id] * 1e3
        attrs = ""
        if item.attrs:
            inner = ", ".join(
                f"{k}={v}" for k, v in sorted(item.attrs.items())
            )
            attrs = f"  [{inner}]"
        lines.append(
            f"{indent}{item.name}  total={total_ms:.3f}ms"
            f"  self={self_ms:.3f}ms{attrs}"
        )
        for child in children.get(item.span_id, ()):
            walk(child, depth + 1)

    # Roots: no parent, or a parent we never saw (e.g. spans adopted
    # from a worker whose parent span finished in another process).
    roots = [
        item
        for item in spans
        if item.parent_id is None or item.parent_id not in known
    ]
    roots.sort(key=lambda s: s.start_s)
    for root in roots:
        walk(root, 0)
    return "\n".join(lines)
