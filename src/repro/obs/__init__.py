"""Observability: tracing, metrics, and structured logging.

Three stdlib-only pieces shared by every layer of the stack:

* :mod:`repro.obs.trace` — contextvar-propagated spans with a global
  bounded collector; ``X-Carbon3D-Trace-Id`` correlation from Session
  through HTTP to forked engine workers. No-ops when no trace is
  active, so library-only use pays nothing.
* :mod:`repro.obs.metrics` — atomic counters, gauges, and fixed-bucket
  histograms behind a :class:`~repro.obs.metrics.MetricsRegistry` that
  renders Prometheus text exposition (``GET /metrics``) and JSON
  snapshots (``/stats``).
* :mod:`repro.obs.logging` — one-line-per-request JSON logs for
  ``carbon3d serve --log-json``.
"""

from . import logging, metrics, trace  # noqa: F401 (submodule re-exports)
from .logging import JsonRequestLog
from .metrics import (
    DEFAULT_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)

# NOTE: ``trace`` here is the *submodule* (``repro.obs.trace``); the
# root context manager is re-exported as ``start_trace`` to avoid
# shadowing it. ``span``/``current_trace_id`` keep their names.
from .trace import (  # noqa: E402
    TRACE_HEADER,
    Span,
    TraceCollector,
    active,
    adopt_spans,
    collector,
    current_trace_id,
    render_tree,
    span,
    stage_breakdown,
)
from .trace import trace as start_trace

__all__ = [
    "JsonRequestLog",
    "DEFAULT_BUCKETS",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "TRACE_HEADER",
    "Span",
    "TraceCollector",
    "active",
    "adopt_spans",
    "collector",
    "current_trace_id",
    "logging",
    "metrics",
    "render_tree",
    "span",
    "stage_breakdown",
    "start_trace",
    "trace",
]
