"""Aggregated parameter set consumed by the carbon model.

:class:`ParameterSet` bundles every database in :mod:`repro.config` plus the
deployment-level constants (wafer size, bandwidth-constraint thresholds,
workload traffic intensity). All model entry points take a ``params``
argument defaulting to :func:`ParameterSet.default`; ablation studies build
modified copies through the ``with_*`` helpers, so a study never mutates
shared state.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Any

from ..errors import ParameterError
from .bonding import DEFAULT_BONDING_TABLE, BondingTable
from .grid import DEFAULT_GRID_TABLE, GridProfile, GridTable
from .integration import (
    DEFAULT_INTEGRATION_TABLE,
    IntegrationSpec,
    IntegrationTable,
)
from .m3d import DEFAULT_M3D_PARAMETERS, M3DParameters
from .packaging import DEFAULT_PACKAGING_TABLE, PackagingTable
from .substrate import DEFAULT_SUBSTRATE_PARAMETERS, SubstrateParameters
from .technology import DEFAULT_TECHNOLOGY_TABLE, ProcessNode, TechnologyTable


@dataclass(frozen=True)
class BandwidthConstraintParameters:
    """Constants of the Sec. 3.4 bandwidth constraint.

    MCM-GPU (Arunkumar ISCA'17) observed >20 % throughput degradation when
    inter-die bandwidth halves relative to the on-chip baseline; the paper
    marks designs *invalid* when they fall below the throughput requirement,
    i.e. when the achieved/required bandwidth ratio drops under 0.5.
    """

    #: Degradation at the half-bandwidth point (MCM-GPU: 20 %).
    degradation_at_half_bw: float = 0.20
    #: Below this achieved/required ratio the design is invalid.
    invalid_bw_ratio: float = 0.5
    #: On-chip traffic intensity of the fixed-throughput DNN workload,
    #: bytes of on-chip traffic per operation. Calibrated so the
    #: paper's validity pattern reproduces (MCM/InFO invalid for ORIN, all
    #: four 2.5D invalid for THOR — Secs. 5.1/5.2).
    traffic_bytes_per_op: float = 0.13
    #: Fraction of the on-chip traffic that actually crosses a die boundary
    #: after partitioning (Rent-style cut share); scales the I/O switching
    #: energy of Eq. 17 without weakening the Sec. 3.4 capacity check,
    #: which compares against the full 2D on-chip bandwidth.
    io_traffic_fraction: float = 0.30
    #: Whether the constraint is enforced at all (ablation knob A4).
    enabled: bool = True

    def __post_init__(self) -> None:
        if not 0.0 < self.degradation_at_half_bw < 1.0:
            raise ParameterError("degradation_at_half_bw must lie in (0, 1)")
        if not 0.0 < self.invalid_bw_ratio <= 1.0:
            raise ParameterError("invalid_bw_ratio must lie in (0, 1]")
        if self.traffic_bytes_per_op <= 0:
            raise ParameterError("traffic_bytes_per_op must be positive")
        if not 0.0 < self.io_traffic_fraction <= 1.0:
            raise ParameterError("io_traffic_fraction must lie in (0, 1]")

    def with_overrides(self, **overrides: Any) -> "BandwidthConstraintParameters":
        return replace(self, **overrides)


@dataclass(frozen=True)
class ParameterSet:
    """Every database and constant the 3D-Carbon model reads."""

    technology: TechnologyTable = field(default_factory=TechnologyTable)
    integration: IntegrationTable = field(default_factory=IntegrationTable)
    bonding: BondingTable = field(default_factory=BondingTable)
    packaging: PackagingTable = field(default_factory=PackagingTable)
    substrate: SubstrateParameters = DEFAULT_SUBSTRATE_PARAMETERS
    m3d: M3DParameters = DEFAULT_M3D_PARAMETERS
    grids: GridTable = field(default_factory=GridTable)
    bandwidth: BandwidthConstraintParameters = BandwidthConstraintParameters()
    #: Default manufacturing wafer diameter (mm); Table 2 covers 200–450 mm.
    wafer_diameter_mm: float = 300.0
    #: Whether wafer carbon scales with the estimated BEOL layer count
    #: (the 3D-Carbon refinement over ACT+; ablation knob A1).
    beol_aware: bool = True

    def __post_init__(self) -> None:
        if not 100.0 <= self.wafer_diameter_mm <= 500.0:
            raise ParameterError(
                f"wafer diameter {self.wafer_diameter_mm} mm outside "
                f"[100, 500] (Table 2 covers 200–450 mm)"
            )

    # -- constructors ------------------------------------------------------

    @classmethod
    def default(cls) -> "ParameterSet":
        """The calibrated default parameter set (DESIGN.md §5)."""
        return cls(
            technology=DEFAULT_TECHNOLOGY_TABLE,
            integration=DEFAULT_INTEGRATION_TABLE,
            bonding=DEFAULT_BONDING_TABLE,
            packaging=DEFAULT_PACKAGING_TABLE,
            grids=DEFAULT_GRID_TABLE,
        )

    # -- lookups -----------------------------------------------------------

    def node(self, name: "str | float | ProcessNode") -> ProcessNode:
        """Resolve a process-node spelling."""
        return self.technology.get(name)

    def integration_spec(self, name: "str | IntegrationSpec") -> IntegrationSpec:
        """Resolve an integration-technology spelling."""
        return self.integration.get(name)

    def grid(self, location: "str | float | GridProfile") -> GridProfile:
        """Resolve a grid location (or raw g CO₂/kWh value)."""
        return self.grids.get(location)

    # -- override helpers (ablation studies) --------------------------------

    def with_wafer_diameter(self, diameter_mm: float) -> "ParameterSet":
        return replace(self, wafer_diameter_mm=diameter_mm)

    def with_beol_aware(self, enabled: bool) -> "ParameterSet":
        return replace(self, beol_aware=enabled)

    def with_bandwidth(self, **overrides: Any) -> "ParameterSet":
        return replace(self, bandwidth=self.bandwidth.with_overrides(**overrides))

    def with_substrate(self, **overrides: Any) -> "ParameterSet":
        return replace(self, substrate=self.substrate.with_overrides(**overrides))

    def with_m3d(self, **overrides: Any) -> "ParameterSet":
        return replace(self, m3d=self.m3d.with_overrides(**overrides))

    def with_node_override(
        self, node: "str | ProcessNode", **overrides: float
    ) -> "ParameterSet":
        return replace(
            self, technology=self.technology.with_node_override(node, **overrides)
        )

    def with_integration_override(
        self, name: "str | IntegrationSpec", **overrides: Any
    ) -> "ParameterSet":
        return replace(
            self, integration=self.integration.with_spec_override(name, **overrides)
        )

    def with_bonding_override(self, method, flow, **overrides: Any) -> "ParameterSet":
        return replace(
            self, bonding=self.bonding.with_process_override(method, flow, **overrides)
        )

    def with_packaging_override(self, name: str, **overrides: Any) -> "ParameterSet":
        return replace(
            self, packaging=self.packaging.with_class_override(name, **overrides)
        )


#: Module-level default used throughout the package.
DEFAULT_PARAMETERS = ParameterSet.default()
