"""Surveyed operational-power data (Sec. 3.3 and Table 4).

When no third-party power plug-in provides ``Eff_die`` directly, 3D-Carbon
falls back to surveyed energy-efficiency characterizations. This module
carries:

* the NVIDIA DRIVE series specifications of Table 4 (the case-study
  inputs), extended with the products' advertised DL throughput, which the
  fixed-throughput workload model of Eq. 16–17 needs;
* a generic per-node efficiency survey (TOPS/W for inference accelerators)
  used for designs without product data, following the survey style of
  Kim et al. (DAC'21).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from ..errors import ParameterError, UnknownTechnologyError


@dataclass(frozen=True)
class DeviceSurvey:
    """One surveyed device: the columns of Table 4 plus throughput."""

    name: str
    node: str
    gate_count_billion: float
    efficiency_tops_per_w: float
    announced_year: int
    #: Advertised deep-learning throughput (TOPS) — the fixed-throughput
    #: requirement of the AV workload (Sudhakar IEEE Micro'23).
    throughput_tops: float

    def __post_init__(self) -> None:
        if self.gate_count_billion <= 0:
            raise ParameterError(f"{self.name}: gate count must be positive")
        if self.efficiency_tops_per_w <= 0:
            raise ParameterError(f"{self.name}: efficiency must be positive")
        if self.throughput_tops <= 0:
            raise ParameterError(f"{self.name}: throughput must be positive")

    @property
    def gate_count(self) -> float:
        """Gate count as an absolute number (Table 4 lists billions)."""
        return self.gate_count_billion * 1.0e9

    @property
    def power_w(self) -> float:
        """Fixed-throughput power of the 2D device: Th / Eff (Eq. 17)."""
        return self.throughput_tops / self.efficiency_tops_per_w


#: Table 4 — NVIDIA GPU DRIVE series specifications [25], with advertised
#: platform DL TOPS: PX 2 ≈ 24, XAVIER ≈ 32, ORIN ≈ 254, THOR ≈ 2000.
NVIDIA_DRIVE_SERIES: tuple[DeviceSurvey, ...] = (
    DeviceSurvey("PX2", "16nm", 15.3, 0.75, 2016, 24.0),
    DeviceSurvey("XAVIER", "12nm", 21.0, 1.00, 2017, 32.0),
    DeviceSurvey("ORIN", "7nm", 17.0, 2.74, 2019, 254.0),
    DeviceSurvey("THOR", "5nm", 77.0, 12.5, 2022, 2000.0),
)


#: Generic surveyed inference efficiency by node (TOPS/W), used when a die
#: has no product-level survey entry (Kim DAC'21-style scaling survey).
SURVEYED_EFFICIENCY_TOPS_PER_W: Mapping[str, float] = {
    "28nm": 0.4,
    "22nm": 0.5,
    "20nm": 0.55,
    "16nm": 0.75,
    "14nm": 0.85,
    "12nm": 1.0,
    "10nm": 1.6,
    "7nm": 2.74,
    "5nm": 12.5,
    "3nm": 20.0,
}


class DeviceSurveyTable:
    """Lookup of surveyed devices by name."""

    def __init__(self, devices: Mapping[str, DeviceSurvey] | None = None) -> None:
        if devices is None:
            self._devices = {d.name.lower(): d for d in NVIDIA_DRIVE_SERIES}
        else:
            self._devices = {k.lower(): v for k, v in devices.items()}

    def get(self, name: "str | DeviceSurvey") -> DeviceSurvey:
        if isinstance(name, DeviceSurvey):
            return name
        key = str(name).strip().lower()
        try:
            return self._devices[key]
        except KeyError:
            known = ", ".join(sorted(self._devices))
            raise UnknownTechnologyError(
                f"unknown surveyed device {name!r}; known: {known}"
            ) from None

    def __iter__(self) -> Iterator[DeviceSurvey]:
        return iter(self._devices.values())

    def __len__(self) -> int:
        return len(self._devices)

    def register(self, device: DeviceSurvey, overwrite: bool = False) -> None:
        key = device.name.lower()
        if key in self._devices and not overwrite:
            raise ParameterError(f"device {device.name!r} already registered")
        self._devices[key] = device


def surveyed_efficiency(node_name: str) -> float:
    """Surveyed TOPS/W for a node, for dies without product data."""
    try:
        return SURVEYED_EFFICIENCY_TOPS_PER_W[node_name]
    except KeyError:
        known = ", ".join(sorted(SURVEYED_EFFICIENCY_TOPS_PER_W))
        raise UnknownTechnologyError(
            f"no surveyed efficiency for node {node_name!r}; known: {known}"
        ) from None


DEFAULT_DEVICE_SURVEY = DeviceSurveyTable()
