"""2.5D substrate characterization (Eq. 13–14).

Covers the three explicitly manufactured substrates:

* **silicon interposer** — area ``A = s_Si_int · Σ A_die`` (Eq. 13),
  manufactured like a die on the BEOL-only ``interposer`` node record
  (no FEOL transistors for a passive interposer) with a substrate yield
  from the Eq. 15 distribution;
* **EMIB bridge** — area ``A = s_EMIB · D_gap · Σ l_adjacent`` (Eq. 14):
  small silicon slivers spanning adjacent die edges;
* **InFO RDL** — same geometric model as EMIB per Eq. 14, but costed with a
  dedicated RDL carbon-per-area characterization ``CPA_RDL`` (Table 2,
  imec PPACE + Nagapurkar SUSCOM'22), since the fan-out RDL is built from
  polymer/Cu build-up layers, not a processed silicon wafer.

``D_gap`` is the die-to-die gap (0.5–2 mm, Table 2) and the scale factors
``s ≥ 1`` absorb keep-out and routing margins (Chiplet Actuary).
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ParameterError
from .integration import SubstrateKind


@dataclass(frozen=True)
class SubstrateParameters:
    """Geometry scale factors and carbon factors for 2.5D substrates."""

    #: Eq. 13 scale: interposer area over total die area (≥ 1).
    si_interposer_scale: float = 1.20
    #: Eq. 14 scale for EMIB bridges.
    emib_scale: float = 2.0
    #: Eq. 14 scale for InFO RDL. The fan-out RDL spans the whole package,
    #: not just the die-to-die gap, so the scale is an order of magnitude
    #: above EMIB's bridge (Sec. 5.1: "large substrate areas").
    rdl_scale: float = 30.0
    #: Die-to-die gap D_gap in mm (Table 2: 0.5–2 mm).
    die_gap_mm: float = 1.0
    #: Node record used to manufacture silicon substrates (interposer/EMIB).
    silicon_node: str = "interposer"
    #: RDL carbon per area, kg CO₂/cm² (CPA_RDL characterization:
    #: multi-layer polymer/Cu build-up with sputtered seed, Nagapurkar'22).
    rdl_cpa_kg_per_cm2: float = 0.50
    #: RDL per-substrate yield; fan-out warpage keeps it low (Sec. 5.1:
    #: "low substrate yields").
    rdl_yield: float = 0.88
    #: Organic MCM substrate yield (laminate, mature).
    organic_yield: float = 0.99
    #: Silicon-interposer wafer diameter (mm); CoWoS runs on 300 mm.
    wafer_diameter_mm: float = 300.0

    def __post_init__(self) -> None:
        for label, value in (
            ("si_interposer_scale", self.si_interposer_scale),
            ("emib_scale", self.emib_scale),
            ("rdl_scale", self.rdl_scale),
        ):
            if value < 1.0:
                raise ParameterError(f"{label} must be >= 1 (Table 2), got {value}")
        if not 0.1 <= self.die_gap_mm <= 5.0:
            raise ParameterError(
                f"die_gap_mm={self.die_gap_mm} outside [0.1, 5] "
                f"(Table 2 range is 0.5–2 mm)"
            )
        if self.rdl_cpa_kg_per_cm2 < 0:
            raise ParameterError("rdl_cpa_kg_per_cm2 must be >= 0")
        for label, value in (
            ("rdl_yield", self.rdl_yield),
            ("organic_yield", self.organic_yield),
        ):
            if not 0.0 < value <= 1.0:
                raise ParameterError(f"{label} must lie in (0, 1], got {value}")
        if self.wafer_diameter_mm <= 0:
            raise ParameterError("wafer_diameter_mm must be positive")

    def scale_for(self, kind: SubstrateKind) -> float:
        """Geometry scale factor for the given substrate kind."""
        if kind is SubstrateKind.SILICON_INTERPOSER:
            return self.si_interposer_scale
        if kind is SubstrateKind.EMIB_BRIDGE:
            return self.emib_scale
        if kind is SubstrateKind.RDL:
            return self.rdl_scale
        raise ParameterError(f"substrate kind {kind.value} has no area scale")

    def with_overrides(self, **overrides) -> "SubstrateParameters":
        return replace(self, **overrides)


DEFAULT_SUBSTRATE_PARAMETERS = SubstrateParameters()
