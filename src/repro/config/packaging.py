"""Packaging carbon characterization (Eq. 12).

3D-Carbon estimates packaging carbon as ``CPA_packaging · A_package`` where
``A_package`` follows a linear empirical model from the Chiplet Actuary cost
study (Feng DAC'22): the package area is a technology-dependent multiple of
the *largest* die for 3D stacks and of the *total* die area for 2.5D
assemblies (Sec. 3.2.3).

``CPA_packaging`` defaults to 0.0787 kg CO₂/cm² of package area for organic
laminate packages — calibrated so the EPYC 7452 validation of Sec. 4.1
reproduces the paper's 3.47 kg packaging footprint on its 58.5 × 75.4 mm
SP3 package (Nagapurkar et al., SUSCOM'22 embodied-energy characterization).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from ..errors import ParameterError, UnknownTechnologyError


@dataclass(frozen=True)
class PackageClass:
    """One package family: carbon per area plus the area scale factor s."""

    name: str
    cpa_kg_per_cm2: float
    #: Package area = scale × base die area (max die for 3D, Σ dies for 2.5D,
    #: the single die for 2D). Table 2: s ≥ 1.
    area_scale: float
    #: Additive margin (mm²) for BGA field / keep-out, the intercept of the
    #: linear empirical equation.
    area_margin_mm2: float = 0.0

    def __post_init__(self) -> None:
        if self.cpa_kg_per_cm2 < 0:
            raise ParameterError(f"{self.name}: CPA must be >= 0")
        if self.area_scale < 1.0:
            raise ParameterError(
                f"{self.name}: package area scale must be >= 1 (Table 2)"
            )
        if self.area_margin_mm2 < 0:
            raise ParameterError(f"{self.name}: area margin must be >= 0")

    def package_area_mm2(self, base_area_mm2: float) -> float:
        """Linear empirical package-area model A_pkg = s·A_base + margin."""
        if base_area_mm2 < 0:
            raise ParameterError("base area must be >= 0")
        return self.area_scale * base_area_mm2 + self.area_margin_mm2

    def with_overrides(self, **overrides) -> "PackageClass":
        return replace(self, **overrides)


def _default_classes() -> dict[str, PackageClass]:
    classes = (
        # Large flip-chip BGA, e.g. server CPUs / automotive SoCs. The 4.42
        # scale maps a 458 mm² ORIN-class die onto a ~45×45 mm body, and a
        # 712 mm² EPYC die complement onto its 4411 mm² SP3 package.
        PackageClass("fcbga", cpa_kg_per_cm2=0.0787, area_scale=4.42),
        # EPYC-style multi-die server package: the SP3 body is ~6.2× the
        # total silicon area (Sec. 4.1 inputs).
        PackageClass("server_mcm", cpa_kg_per_cm2=0.0787, area_scale=6.20),
        # Mobile package-on-package (Lakefield: 12×12 mm over a 92 mm² base
        # die, scale ≈ 1.57).
        PackageClass("pop_mobile", cpa_kg_per_cm2=0.0787, area_scale=1.57),
        # Fan-out wafer-level package: RDL is the substrate, small margin.
        PackageClass("fowlp", cpa_kg_per_cm2=0.060, area_scale=1.30),
    )
    return {c.name: c for c in classes}


class PackagingTable:
    """Lookup of :class:`PackageClass` by name."""

    def __init__(self, classes: Mapping[str, PackageClass] | None = None) -> None:
        self._classes = _default_classes() if classes is None else dict(classes)

    def get(self, name: "str | PackageClass") -> PackageClass:
        if type(name) is str:
            # Canonical lower-case names skip the normalization.
            record = self._classes.get(name)
            if record is not None:
                return record
        if isinstance(name, PackageClass):
            return name
        key = str(name).strip().lower()
        try:
            return self._classes[key]
        except KeyError:
            known = ", ".join(sorted(self._classes))
            raise UnknownTechnologyError(
                f"unknown package class {name!r}; known: {known}"
            ) from None

    def __len__(self) -> int:
        return len(self._classes)

    def names(self) -> list[str]:
        return list(self._classes)

    def register(self, package: PackageClass, overwrite: bool = False) -> None:
        if package.name in self._classes and not overwrite:
            raise ParameterError(f"package {package.name!r} already registered")
        self._classes[package.name] = package

    def with_record(self, package: PackageClass) -> "PackagingTable":
        """Copy of the table with ``package`` installed under its own name."""
        classes = dict(self._classes)
        classes[package.name] = package
        table = object.__new__(PackagingTable)
        table._classes = classes
        return table

    def with_class_override(self, name: str, **overrides) -> "PackagingTable":
        package = self.get(name).with_overrides(**overrides)
        classes = dict(self._classes)
        classes[package.name] = package
        return PackagingTable(classes)


DEFAULT_PACKAGING_TABLE = PackagingTable()
