"""Parameter databases for the 3D-Carbon model (paper Table 2).

Sub-modules:

* :mod:`repro.config.technology` — process-node records (λ, β, EPA/GPA/MPA,
  D₀/α, BEOL limits, TSV/MIV sizes);
* :mod:`repro.config.integration` — 3D/2.5D integration technologies
  (Table 1 + Fig. 2 interface physics);
* :mod:`repro.config.bonding` — bonding energy and per-bond yields;
* :mod:`repro.config.packaging` — package classes and the package-area model;
* :mod:`repro.config.substrate` — interposer/RDL/EMIB geometry and carbon;
* :mod:`repro.config.m3d` — monolithic-3D sequential-manufacturing knobs;
* :mod:`repro.config.grid` — grid carbon intensities (CI_emb / CI_use);
* :mod:`repro.config.power` — surveyed device power data (Table 4);
* :mod:`repro.config.parameters` — the aggregated :class:`ParameterSet`.
"""

from .bonding import BondingProcess, BondingTable, DEFAULT_BONDING_TABLE
from .grid import DEFAULT_GRID_TABLE, GridProfile, GridTable
from .integration import (
    DEFAULT_INTEGRATION_TABLE,
    AssemblyFlow,
    BondingMethod,
    IntegrationFamily,
    IntegrationSpec,
    IntegrationTable,
    StackingStyle,
    SubstrateKind,
)
from .loader import (
    load_parameters,
    parameters_from_dict,
    parameters_to_dict,
    save_parameters,
)
from .m3d import DEFAULT_M3D_PARAMETERS, M3DParameters
from .packaging import DEFAULT_PACKAGING_TABLE, PackageClass, PackagingTable
from .parameters import (
    DEFAULT_PARAMETERS,
    BandwidthConstraintParameters,
    ParameterSet,
)
from .power import (
    DEFAULT_DEVICE_SURVEY,
    NVIDIA_DRIVE_SERIES,
    DeviceSurvey,
    DeviceSurveyTable,
    surveyed_efficiency,
)
from .substrate import DEFAULT_SUBSTRATE_PARAMETERS, SubstrateParameters
from .technology import (
    DEFAULT_TECHNOLOGY_TABLE,
    ProcessNode,
    TechnologyTable,
)

__all__ = [
    "AssemblyFlow",
    "BandwidthConstraintParameters",
    "BondingMethod",
    "BondingProcess",
    "BondingTable",
    "DEFAULT_BONDING_TABLE",
    "DEFAULT_DEVICE_SURVEY",
    "DEFAULT_GRID_TABLE",
    "DEFAULT_INTEGRATION_TABLE",
    "DEFAULT_M3D_PARAMETERS",
    "DEFAULT_PACKAGING_TABLE",
    "DEFAULT_PARAMETERS",
    "DEFAULT_SUBSTRATE_PARAMETERS",
    "DEFAULT_TECHNOLOGY_TABLE",
    "DeviceSurvey",
    "DeviceSurveyTable",
    "GridProfile",
    "GridTable",
    "IntegrationFamily",
    "IntegrationSpec",
    "IntegrationTable",
    "load_parameters",
    "parameters_from_dict",
    "parameters_to_dict",
    "save_parameters",
    "M3DParameters",
    "NVIDIA_DRIVE_SERIES",
    "PackageClass",
    "PackagingTable",
    "ParameterSet",
    "ProcessNode",
    "StackingStyle",
    "SubstrateKind",
    "SubstrateParameters",
    "TechnologyTable",
    "surveyed_efficiency",
]
