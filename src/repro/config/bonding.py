"""Bonding-process database: energy per area and per-bond yields (Eq. 11).

The paper's Table 2 gives the bonding energy range
``EPA^{micro/hybrid/C4}_{D2W/W2W} = 0.9–2.75 kWh/cm²`` (EVG equipment data)
and per-bond yields ``y^{micro/hybrid}_{W2W} ∈ (0, 1]``. Sec. 4.2 pins the
micro-bump values through the Lakefield validation: D2W bonding has *lower*
per-bond yield than W2W (advanced placement) but permits known-good-die
testing, so the default table uses

* micro-bump: y_D2W = 0.96, y_W2W = 0.97
* hybrid:     y_D2W = 0.95, y_W2W = 0.97
* C4 (2.5D die attach): y = 0.99 (mature flip-chip)

which reproduces the quoted effective yields (logic 89.3 %, memory 88.4 %
in D2W; 79.7 % for both dies in W2W) together with the 7/14 nm defect
densities in :mod:`repro.config.technology`.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Mapping

from ..errors import ParameterError, UnknownTechnologyError
from .integration import AssemblyFlow, BondingMethod


@dataclass(frozen=True)
class BondingProcess:
    """Energy and yield of one (method, flow) bonding combination."""

    method: BondingMethod
    flow: AssemblyFlow
    epa_kwh_per_cm2: float
    bond_yield: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.epa_kwh_per_cm2 <= 5.0:
            raise ParameterError(
                f"bonding EPA {self.epa_kwh_per_cm2} outside [0, 5] kWh/cm² "
                f"(Table 2 range is 0.9–2.75)"
            )
        if not 0.0 < self.bond_yield <= 1.0:
            raise ParameterError(
                f"bond yield {self.bond_yield} outside (0, 1]"
            )

    def with_overrides(self, **overrides) -> "BondingProcess":
        return replace(self, **overrides)


_KEY = tuple[BondingMethod, AssemblyFlow]


def _default_processes() -> dict[_KEY, BondingProcess]:
    entries = (
        # 3D stacking. Hybrid bonding needs CMP + plasma activation on both
        # faces, so it sits at the top of the EVG energy range; micro-bump
        # thermo-compression is mid-range.
        BondingProcess(BondingMethod.MICRO_BUMP, AssemblyFlow.D2W, 1.05, 0.96),
        BondingProcess(BondingMethod.MICRO_BUMP, AssemblyFlow.W2W, 0.85, 0.97),
        BondingProcess(BondingMethod.HYBRID, AssemblyFlow.D2W, 0.95, 0.95),
        BondingProcess(BondingMethod.HYBRID, AssemblyFlow.W2W, 0.70, 0.97),
        # 2.5D die attach (C4 reflow); chip-first embeds dies before RDL
        # build-up, chip-last solders finished dies onto the substrate.
        # C4 reflow is decades-mature flip-chip attach; its energy sits far
        # below the EVG advanced-bonding range.
        BondingProcess(BondingMethod.C4, AssemblyFlow.CHIP_FIRST, 0.25, 0.99),
        BondingProcess(BondingMethod.C4, AssemblyFlow.CHIP_LAST, 0.15, 0.99),
        # C4 used in a 3D flow (e.g. base die to package) — same physics.
        BondingProcess(BondingMethod.C4, AssemblyFlow.D2W, 0.35, 0.99),
        BondingProcess(BondingMethod.C4, AssemblyFlow.W2W, 0.35, 0.99),
    )
    return {(e.method, e.flow): e for e in entries}


class BondingTable:
    """Lookup of :class:`BondingProcess` by (method, assembly flow)."""

    def __init__(
        self, processes: Mapping[_KEY, BondingProcess] | None = None
    ) -> None:
        self._processes = (
            _default_processes() if processes is None else dict(processes)
        )

    def get(self, method: BondingMethod, flow: AssemblyFlow) -> BondingProcess:
        if method is BondingMethod.NONE:
            raise ParameterError(
                "BondingMethod.NONE has no bonding process (2D or M3D design)"
            )
        try:
            return self._processes[(method, flow)]
        except KeyError:
            known = ", ".join(
                f"({m.value},{f.value})" for m, f in sorted(
                    self._processes, key=lambda k: (k[0].value, k[1].value)
                )
            )
            raise UnknownTechnologyError(
                f"no bonding process for ({method.value}, {flow.value}); "
                f"known: {known}"
            ) from None

    def __len__(self) -> int:
        return len(self._processes)

    def register(self, process: BondingProcess, overwrite: bool = False) -> None:
        key = (process.method, process.flow)
        if key in self._processes and not overwrite:
            raise ParameterError(f"bonding process {key} already registered")
        self._processes[key] = process

    def with_process_override(
        self, method: BondingMethod, flow: AssemblyFlow, **overrides
    ) -> "BondingTable":
        return self.with_record(self.get(method, flow).with_overrides(**overrides))

    def with_record(self, process: BondingProcess) -> "BondingTable":
        """Copy of the table with ``process`` installed under its own key."""
        processes = dict(self._processes)
        processes[(process.method, process.flow)] = process
        table = object.__new__(BondingTable)
        table._processes = processes
        return table


DEFAULT_BONDING_TABLE = BondingTable()
