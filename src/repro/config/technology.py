"""Process-node (foundry) parameter database.

One :class:`ProcessNode` record per logic technology from 3 nm to 28 nm,
covering every foundry-related parameter of the paper's Table 2:

* ``feature_nm`` (λ) — drawn feature size used by the gate-area model
  A_gate = N_g·β·λ² (Eq. 8);
* ``beta`` (β) — dimensionless gate-area scaling term, paper range 450–850
  (Stow ISVLSI'16); calibrated per node against published die sizes
  (e.g. NVIDIA ORIN ≈ 455 mm² for 17 B devices at 7 nm ⇒ β ≈ 550);
* ``epa_kwh_per_cm2`` (EPA) — fab electricity per wafer area at the node's
  *maximum* BEOL stack, ACT-informed (Gupta ISCA'22 / imec PPACE);
* ``gpa_kg_per_cm2`` / ``mpa_kg_per_cm2`` (GPA/MPA) — direct fab gas and
  raw-material emissions per area, paper range 0.1–0.5 kg CO₂/cm²;
* ``defect_density_per_cm2`` (D₀) and ``alpha`` — negative-binomial yield
  parameters of Eq. 15, from the Chiplet Actuary cost model (Feng DAC'22).
  7 nm and 14 nm values are calibrated so the Lakefield validation yields of
  Sec. 4.2 (89.3 % logic / 88.4 % memory in D2W, 79.7 % W2W) reproduce;
* ``max_beol_layers`` — upper bound on metal layers (Table 2 input);
* ``beol_carbon_fraction`` — share of per-wafer carbon attributable to the
  BEOL at the maximum layer count. 3D-Carbon differs from ACT+ by scaling
  wafer carbon with the *estimated* layer count (Sec. 4.1), so EPA/GPA are
  split into a FEOL part and a per-layer part using this fraction;
* ``tsv_diameter_um`` (D_TSV) — per-node TSV size, paper range 0.3–25 µm,
  and ``miv_diameter_um`` for monolithic 3D (< 0.6 µm, Kim DAC'21);
* ``sram_density_factor`` — area of an SRAM "gate" relative to a logic gate
  at this node; used by the heterogeneous die split of Sec. 5 where memory
  moves to an older node (SRAM bit cells scale worse than logic but start
  far denser than a β·λ² logic gate).
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Iterator, Mapping

from ..errors import ParameterError, UnknownTechnologyError


@dataclass(frozen=True)
class ProcessNode:
    """All per-node foundry parameters used by the carbon model."""

    name: str
    feature_nm: float
    beta: float
    epa_kwh_per_cm2: float
    gpa_kg_per_cm2: float
    mpa_kg_per_cm2: float
    defect_density_per_cm2: float
    alpha: float
    max_beol_layers: int
    beol_carbon_fraction: float = 0.45
    tsv_diameter_um: float = 5.0
    miv_diameter_um: float = 0.6
    sram_density_factor: float = 0.25
    # Rent's-rule wiring parameters (Table 2: N_fan 1–5, p 0.6–0.8, ω = 3.6λ).
    # fanout = 1.0 calibrates Eq. 10 so flagship 2D SoCs land just below
    # their node's maximum metal count (ORIN ≈ 12.7 of 13 at 7 nm).
    rent_exponent: float = 0.70
    fanout: float = 1.0
    wiring_efficiency: float = 0.50

    def __post_init__(self) -> None:
        checks = [
            ("feature_nm", self.feature_nm, 1.0, 1000.0),
            ("beta", self.beta, 100.0, 2000.0),
            ("epa_kwh_per_cm2", self.epa_kwh_per_cm2, 0.05, 10.0),
            ("gpa_kg_per_cm2", self.gpa_kg_per_cm2, 0.0, 1.0),
            ("mpa_kg_per_cm2", self.mpa_kg_per_cm2, 0.0, 1.0),
            ("defect_density_per_cm2", self.defect_density_per_cm2, 0.0, 5.0),
            ("alpha", self.alpha, 0.5, 100.0),
            ("beol_carbon_fraction", self.beol_carbon_fraction, 0.0, 0.9),
            ("tsv_diameter_um", self.tsv_diameter_um, 0.1, 50.0),
            ("miv_diameter_um", self.miv_diameter_um, 0.01, 1.0),
            ("sram_density_factor", self.sram_density_factor, 0.01, 1.5),
            ("rent_exponent", self.rent_exponent, 0.1, 0.95),
            ("fanout", self.fanout, 1.0, 5.0),
            ("wiring_efficiency", self.wiring_efficiency, 0.05, 1.0),
        ]
        for label, value, low, high in checks:
            if not low <= value <= high:
                raise ParameterError(
                    f"{self.name}: {label}={value} outside [{low}, {high}]"
                )
        if self.max_beol_layers < 1:
            raise ParameterError(
                f"{self.name}: max_beol_layers must be >= 1, "
                f"got {self.max_beol_layers}"
            )

    # -- derived quantities -------------------------------------------------

    @property
    def wire_pitch_nm(self) -> float:
        """Routable wire pitch ω = 3.6·λ (Table 2, Stow ISVLSI'16)."""
        return 3.6 * self.feature_nm

    @property
    def gate_area_um2(self) -> float:
        """Area of one standard gate: β·λ² in µm²."""
        lam_um = self.feature_nm / 1000.0
        return self.beta * lam_um * lam_um

    def epa_feol_kwh_per_cm2(self) -> float:
        """FEOL share of the fab-electricity footprint."""
        return self.epa_kwh_per_cm2 * (1.0 - self.beol_carbon_fraction)

    def epa_per_beol_layer_kwh_per_cm2(self) -> float:
        """Per-metal-layer share of the fab-electricity footprint."""
        return (
            self.epa_kwh_per_cm2 * self.beol_carbon_fraction / self.max_beol_layers
        )

    def gpa_feol_kg_per_cm2(self) -> float:
        """FEOL share of direct gas emissions."""
        return self.gpa_kg_per_cm2 * (1.0 - self.beol_carbon_fraction)

    def gpa_per_beol_layer_kg_per_cm2(self) -> float:
        """Per-metal-layer share of direct gas emissions."""
        return (
            self.gpa_kg_per_cm2 * self.beol_carbon_fraction / self.max_beol_layers
        )

    def with_overrides(self, **overrides: float) -> "ProcessNode":
        """Return a copy with the given fields replaced (validated again)."""
        return replace(self, **overrides)


def _node(name: str, **kwargs) -> ProcessNode:
    return ProcessNode(name=name, **kwargs)


#: Built-in node table, 3–28 nm (paper Table 2 "Process 3~28 nm").
#: EPA/GPA values follow the ACT per-node characterization; D₀/α follow
#: Chiplet Actuary with the 7/14 nm calibration described in DESIGN.md §5.
_BUILTIN_NODES: tuple[ProcessNode, ...] = (
    _node(
        "3nm", feature_nm=3.0, beta=520.0,
        epa_kwh_per_cm2=2.75, gpa_kg_per_cm2=0.30, mpa_kg_per_cm2=0.50,
        defect_density_per_cm2=0.20, alpha=10.0, max_beol_layers=16,
        tsv_diameter_um=0.3, rent_exponent=0.63,
    ),
    _node(
        "5nm", feature_nm=5.0, beta=530.0,
        epa_kwh_per_cm2=2.75, gpa_kg_per_cm2=0.25, mpa_kg_per_cm2=0.50,
        defect_density_per_cm2=0.15, alpha=10.0, max_beol_layers=15,
        tsv_diameter_um=0.5, rent_exponent=0.63,
    ),
    _node(
        "7nm", feature_nm=7.0, beta=550.0,
        epa_kwh_per_cm2=1.52, gpa_kg_per_cm2=0.18, mpa_kg_per_cm2=0.50,
        defect_density_per_cm2=0.139, alpha=10.0, max_beol_layers=13,
        tsv_diameter_um=1.0, rent_exponent=0.62,
    ),
    _node(
        "10nm", feature_nm=10.0, beta=550.0,
        epa_kwh_per_cm2=1.475, gpa_kg_per_cm2=0.15, mpa_kg_per_cm2=0.50,
        defect_density_per_cm2=0.11, alpha=10.0, max_beol_layers=13,
        tsv_diameter_um=2.0, rent_exponent=0.62,
    ),
    _node(
        "12nm", feature_nm=12.0, beta=555.0,
        epa_kwh_per_cm2=1.30, gpa_kg_per_cm2=0.14, mpa_kg_per_cm2=0.50,
        defect_density_per_cm2=0.10, alpha=10.0, max_beol_layers=12,
        tsv_diameter_um=3.0, rent_exponent=0.62,
    ),
    _node(
        "14nm", feature_nm=14.0, beta=560.0,
        epa_kwh_per_cm2=1.20, gpa_kg_per_cm2=0.13, mpa_kg_per_cm2=0.50,
        defect_density_per_cm2=0.09, alpha=10.0, max_beol_layers=12,
        tsv_diameter_um=4.0, rent_exponent=0.62,
    ),
    _node(
        "16nm", feature_nm=16.0, beta=560.0,
        epa_kwh_per_cm2=1.20, gpa_kg_per_cm2=0.125, mpa_kg_per_cm2=0.50,
        defect_density_per_cm2=0.09, alpha=10.0, max_beol_layers=11,
        tsv_diameter_um=5.0, rent_exponent=0.61,
    ),
    _node(
        "20nm", feature_nm=20.0, beta=600.0,
        epa_kwh_per_cm2=1.00, gpa_kg_per_cm2=0.12, mpa_kg_per_cm2=0.50,
        defect_density_per_cm2=0.08, alpha=10.0, max_beol_layers=10,
        tsv_diameter_um=8.0, rent_exponent=0.61,
    ),
    _node(
        "22nm", feature_nm=22.0, beta=600.0,
        epa_kwh_per_cm2=0.95, gpa_kg_per_cm2=0.11, mpa_kg_per_cm2=0.50,
        defect_density_per_cm2=0.075, alpha=10.0, max_beol_layers=10,
        tsv_diameter_um=10.0, rent_exponent=0.61,
    ),
    _node(
        "28nm", feature_nm=28.0, beta=620.0,
        epa_kwh_per_cm2=0.90, gpa_kg_per_cm2=0.10, mpa_kg_per_cm2=0.50,
        defect_density_per_cm2=0.07, alpha=10.0, max_beol_layers=9,
        tsv_diameter_um=15.0, rent_exponent=0.6,
    ),
    # Mature nodes used for passive interposers and bridge dies. A passive
    # interposer carries no FEOL transistors, so its EPA/GPA/MPA are far
    # below logic wafers (BEOL-only processing).
    _node(
        "65nm", feature_nm=65.0, beta=700.0,
        epa_kwh_per_cm2=0.50, gpa_kg_per_cm2=0.08, mpa_kg_per_cm2=0.40,
        defect_density_per_cm2=0.05, alpha=10.0, max_beol_layers=7,
        tsv_diameter_um=25.0, rent_exponent=0.6,
    ),
    _node(
        "interposer", feature_nm=65.0, beta=700.0,
        epa_kwh_per_cm2=0.50, gpa_kg_per_cm2=0.05, mpa_kg_per_cm2=0.30,
        defect_density_per_cm2=0.05, alpha=10.0, max_beol_layers=4,
        beol_carbon_fraction=0.60, tsv_diameter_um=25.0, rent_exponent=0.6,
    ),
)


class TechnologyTable:
    """Lookup table of :class:`ProcessNode` records, keyed by node name.

    Node names accept flexible spellings: ``"7nm"``, ``"7 nm"``, ``"7"``,
    and ``7`` all resolve to the same record.
    """

    def __init__(self, nodes: Mapping[str, ProcessNode] | None = None) -> None:
        if nodes is None:
            self._nodes = {node.name: node for node in _BUILTIN_NODES}
        else:
            self._nodes = dict(nodes)

    @staticmethod
    def canonical_name(node: "str | int | float | ProcessNode") -> str:
        """Normalize a node spelling to the table key (``7`` → ``"7nm"``)."""
        if isinstance(node, ProcessNode):
            return node.name
        if isinstance(node, (int, float)):
            value = float(node)
            text = f"{int(value)}nm" if value == int(value) else f"{value}nm"
            return text
        text = str(node).strip().lower().replace(" ", "")
        if re.fullmatch(r"\d+(\.\d+)?", text):
            text += "nm"
        return text

    def get(self, node: "str | int | float | ProcessNode") -> ProcessNode:
        """Resolve a node spelling to its record, or raise."""
        if type(node) is str:
            # Canonical spellings ("7nm") skip the regex normalization —
            # they are what every hot path passes.
            record = self._nodes.get(node)
            if record is not None:
                return record
        if isinstance(node, ProcessNode):
            return node
        key = self.canonical_name(node)
        try:
            return self._nodes[key]
        except KeyError:
            known = ", ".join(sorted(self._nodes))
            raise UnknownTechnologyError(
                f"unknown process node {node!r}; known nodes: {known}"
            ) from None

    def __contains__(self, node: object) -> bool:
        try:
            self.get(node)  # type: ignore[arg-type]
        except UnknownTechnologyError:
            return False
        return True

    def __iter__(self) -> Iterator[ProcessNode]:
        return iter(self._nodes.values())

    def __len__(self) -> int:
        return len(self._nodes)

    def names(self) -> list[str]:
        """All node names in the table."""
        return list(self._nodes)

    def register(self, node: ProcessNode, overwrite: bool = False) -> None:
        """Add a custom node (e.g. a user-characterized process)."""
        if node.name in self._nodes and not overwrite:
            raise ParameterError(f"node {node.name!r} already registered")
        self._nodes[node.name] = node

    def with_node_override(
        self, node: "str | ProcessNode", **overrides: float
    ) -> "TechnologyTable":
        """Return a copy of the table with one node's fields replaced."""
        return self.with_record(self.get(node).with_overrides(**overrides))

    def with_record(self, node: ProcessNode) -> "TechnologyTable":
        """Copy of the table with ``node`` installed under its own name."""
        nodes = dict(self._nodes)
        nodes[node.name] = node
        table = object.__new__(TechnologyTable)
        table._nodes = nodes
        return table


#: Default table instance shared by :class:`repro.config.parameters.ParameterSet`.
DEFAULT_TECHNOLOGY_TABLE = TechnologyTable()
