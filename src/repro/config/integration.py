"""Integration-technology database (paper Table 1 and Fig. 2).

Each :class:`IntegrationSpec` describes one of the 3D/2.5D options studied by
the paper plus the 2D monolithic reference. The interface-physics numbers
(data rate, I/O density, energy per bit, pitch) are transcribed from the
vertical-stack diagram of Fig. 2; the deployment attributes (which bonding
method, whether I/O driver area and I/O power apply, how the package scales)
come from Secs. 2.1, 3.2 and 3.3:

=====================  =========  ==============  ============  ==========
technology             data rate  I/O density     energy/bit    pitch
=====================  =========  ==============  ============  ==========
MCM 2.5D               4 Gbps     50 /mm/layer    500–2000 fJ   —
InFO 2.5D              4 Gbps     100 /mm/layer   250 fJ        —
EMIB 2.5D              3.4 Gbps   200–500 /mm/l   150 fJ        —
Si-interposer 2.5D     3.2–6.4 G  500 /mm/layer   120 fJ        —
micro-bump 3D          6 Gbps     (from pitch)    140 fJ        10–50 µm
hybrid-bond 3D         5 Gbps     (from pitch)    200 fJ        1–5 µm
monolithic 3D (M3D)    15 Gbps    (from MIV)      <5 fJ         0.6 µm MIV
=====================  =========  ==============  ============  ==========

``interconnect_power_saving`` (κ) models the use-phase benefit of shorter
vertical interconnects quoted in Sec. 2.2.2 ("operational carbon benefits
from shorter interconnect lengths"); magnitudes follow the PPA study of
Kim et al. (DAC'21): M3D ≈ 8 %, hybrid ≈ 3 %, micro-bump ≈ 1 % of die power.
2.5D technologies gain nothing (wires get longer, not shorter).

``io_area_ratio`` is the γ of Eq. 9 (I/O driver area as a fraction of gate
area, from the Chiplet Actuary model); ``io_power_counted`` implements the
Sec. 3.3 rule that only 2.5D ICs and micro-bumping 3D ICs pay interface
power.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from enum import Enum
from typing import Iterator, Mapping

from ..errors import ParameterError, UnknownTechnologyError


class IntegrationFamily(str, Enum):
    """Top-level classification from Table 1."""

    PLANAR_2D = "2D"
    THREE_D = "3D"
    TWO_FIVE_D = "2.5D"


class BondingMethod(str, Enum):
    """Die-attach technology; drives Eq. 11 and the Table 3 yields."""

    NONE = "none"          # 2D and M3D (sequential processing, no bond step)
    C4 = "c4"              # flip-chip bumps for 2.5D die attach
    MICRO_BUMP = "micro"   # µ-bump 3D stacking
    HYBRID = "hybrid"      # Cu-Cu hybrid bonding


class SubstrateKind(str, Enum):
    """What (if any) extra substrate is manufactured (Eq. 13–14)."""

    NONE = "none"
    ORGANIC = "organic"        # MCM: package substrate, folded into packaging
    RDL = "rdl"                # InFO redistribution layer
    EMIB_BRIDGE = "emib"       # embedded silicon bridge
    SILICON_INTERPOSER = "si"  # full silicon interposer


class StackingStyle(str, Enum):
    """Face-to-face vs face-to-back for 3D stacks (Table 1)."""

    F2F = "f2f"
    F2B = "f2b"
    NA = "n/a"


class AssemblyFlow(str, Enum):
    """Assembly order; selects the Table 3 yield composition."""

    D2W = "d2w"
    W2W = "w2w"
    CHIP_FIRST = "chip_first"
    CHIP_LAST = "chip_last"
    NA = "n/a"


@dataclass(frozen=True)
class IntegrationSpec:
    """One integration technology and its interface/assembly physics."""

    name: str
    family: IntegrationFamily
    bonding: BondingMethod
    substrate: SubstrateKind
    data_rate_gbps: float
    energy_per_bit_fj: float
    io_density_per_mm_per_layer: float
    connection_pitch_um: float | None = None
    io_area_ratio: float = 0.0          # γ of Eq. 9
    io_power_counted: bool = False      # Sec. 3.3 rule
    interconnect_power_saving: float = 0.0  # κ, fraction of die power saved
    #: Gate-area multiplier from shorter interconnects: fine-pitch vertical
    #: integration removes repeaters/buffers (Kim DAC'21 PPA study reports
    #: up to ~20 % cell-area reduction for M3D, a few % for hybrid bonding).
    gate_area_factor: float = 1.0
    #: Metal layers removed from each die's BEOL stack because inter-die
    #: connections replace top-level global routing (Kim DAC'21).
    beol_layers_saved: int = 0
    max_dies: int | None = None         # Table 1: hybrid F2F limited to 2
    allowed_stacking: tuple[StackingStyle, ...] = (StackingStyle.NA,)
    allowed_assembly: tuple[AssemblyFlow, ...] = (AssemblyFlow.NA,)
    bandwidth_matches_2d: bool = False  # Sec. 3.4: 3D matches on-chip BW

    def __post_init__(self) -> None:
        if self.data_rate_gbps < 0 or self.energy_per_bit_fj < 0:
            raise ParameterError(f"{self.name}: interface physics must be >= 0")
        if self.io_density_per_mm_per_layer < 0:
            raise ParameterError(f"{self.name}: I/O density must be >= 0")
        if not 0.0 <= self.io_area_ratio <= 1.0:
            raise ParameterError(
                f"{self.name}: io_area_ratio must lie in [0, 1] (Table 2)"
            )
        if not 0.0 <= self.interconnect_power_saving < 0.5:
            raise ParameterError(
                f"{self.name}: interconnect_power_saving must lie in [0, 0.5)"
            )
        if self.max_dies is not None and self.max_dies < 2:
            raise ParameterError(f"{self.name}: max_dies must be >= 2")
        if not 0.5 <= self.gate_area_factor <= 1.0:
            raise ParameterError(
                f"{self.name}: gate_area_factor must lie in [0.5, 1]"
            )
        if self.beol_layers_saved < 0:
            raise ParameterError(
                f"{self.name}: beol_layers_saved must be >= 0"
            )

    @property
    def is_3d(self) -> bool:
        return self.family is IntegrationFamily.THREE_D

    @property
    def is_2_5d(self) -> bool:
        return self.family is IntegrationFamily.TWO_FIVE_D

    @property
    def is_2d(self) -> bool:
        return self.family is IntegrationFamily.PLANAR_2D

    def with_overrides(self, **overrides) -> "IntegrationSpec":
        """Copy with fields replaced (re-validated)."""
        return replace(self, **overrides)


def _pitch_density_per_mm(pitch_um: float) -> float:
    """Linear connection density implied by an area-array pitch (1/mm)."""
    return 1000.0 / pitch_um


_BUILTIN_SPECS: tuple[IntegrationSpec, ...] = (
    IntegrationSpec(
        name="2d",
        family=IntegrationFamily.PLANAR_2D,
        bonding=BondingMethod.NONE,
        substrate=SubstrateKind.NONE,
        data_rate_gbps=0.0,
        energy_per_bit_fj=0.0,
        io_density_per_mm_per_layer=0.0,
        bandwidth_matches_2d=True,
    ),
    IntegrationSpec(
        name="micro_3d",
        family=IntegrationFamily.THREE_D,
        bonding=BondingMethod.MICRO_BUMP,
        substrate=SubstrateKind.NONE,
        data_rate_gbps=6.0,
        energy_per_bit_fj=140.0,
        io_density_per_mm_per_layer=_pitch_density_per_mm(30.0),
        connection_pitch_um=30.0,   # Fig. 2: 10–50 µm
        io_area_ratio=0.05,
        io_power_counted=True,      # Sec. 3.3: micro-bump 3D pays I/O power
        interconnect_power_saving=0.012,
        gate_area_factor=0.96,
        beol_layers_saved=1,
        allowed_stacking=(StackingStyle.F2F, StackingStyle.F2B),
        allowed_assembly=(AssemblyFlow.D2W, AssemblyFlow.W2W),
        bandwidth_matches_2d=True,  # Sec. 3.4 assumption for 3D ICs
    ),
    IntegrationSpec(
        name="hybrid_3d",
        family=IntegrationFamily.THREE_D,
        bonding=BondingMethod.HYBRID,
        substrate=SubstrateKind.NONE,
        data_rate_gbps=5.0,
        energy_per_bit_fj=200.0,
        io_density_per_mm_per_layer=_pitch_density_per_mm(3.0),
        connection_pitch_um=3.0,    # Fig. 2: 1–5 µm
        io_area_ratio=0.0,          # bond pads live in the metal stack
        io_power_counted=False,
        interconnect_power_saving=0.03,
        gate_area_factor=0.94,
        beol_layers_saved=3,
        allowed_stacking=(StackingStyle.F2F, StackingStyle.F2B),
        allowed_assembly=(AssemblyFlow.D2W, AssemblyFlow.W2W),
        bandwidth_matches_2d=True,
    ),
    IntegrationSpec(
        name="m3d",
        family=IntegrationFamily.THREE_D,
        bonding=BondingMethod.NONE,  # sequential manufacturing, no bond step
        substrate=SubstrateKind.NONE,
        data_rate_gbps=15.0,
        energy_per_bit_fj=5.0,
        io_density_per_mm_per_layer=_pitch_density_per_mm(0.6),
        connection_pitch_um=0.6,    # MIV < 0.6 µm (Kim DAC'21)
        io_area_ratio=0.0,
        io_power_counted=False,
        interconnect_power_saving=0.082,
        gate_area_factor=0.80,
        beol_layers_saved=4,
        max_dies=2,                 # Table 1: M3D F2B, 2 tiers
        allowed_stacking=(StackingStyle.F2B,),
        allowed_assembly=(AssemblyFlow.NA,),
        bandwidth_matches_2d=True,
    ),
    IntegrationSpec(
        name="mcm",
        family=IntegrationFamily.TWO_FIVE_D,
        bonding=BondingMethod.C4,
        substrate=SubstrateKind.ORGANIC,
        data_rate_gbps=4.0,
        energy_per_bit_fj=1000.0,   # Fig. 2: 500–2000 fJ/bit SerDes
        io_density_per_mm_per_layer=50.0,
        io_area_ratio=0.03,
        io_power_counted=True,
        allowed_assembly=(AssemblyFlow.CHIP_LAST,),
    ),
    IntegrationSpec(
        name="info",
        family=IntegrationFamily.TWO_FIVE_D,
        bonding=BondingMethod.C4,
        substrate=SubstrateKind.RDL,
        data_rate_gbps=4.0,
        energy_per_bit_fj=250.0,
        io_density_per_mm_per_layer=100.0,
        io_area_ratio=0.03,
        io_power_counted=True,
        allowed_assembly=(AssemblyFlow.CHIP_FIRST, AssemblyFlow.CHIP_LAST),
    ),
    IntegrationSpec(
        name="emib",
        family=IntegrationFamily.TWO_FIVE_D,
        bonding=BondingMethod.C4,
        substrate=SubstrateKind.EMIB_BRIDGE,
        data_rate_gbps=3.4,
        energy_per_bit_fj=150.0,
        io_density_per_mm_per_layer=350.0,  # Fig. 2: 200–500 /mm/layer
        io_area_ratio=0.03,
        io_power_counted=True,
        beol_layers_saved=1,    # dense bridge links offload global routing
        allowed_assembly=(AssemblyFlow.CHIP_LAST,),
    ),
    IntegrationSpec(
        name="si_interposer",
        family=IntegrationFamily.TWO_FIVE_D,
        bonding=BondingMethod.C4,
        substrate=SubstrateKind.SILICON_INTERPOSER,
        data_rate_gbps=4.8,         # Fig. 2: 3.2–6.4 Gbps
        energy_per_bit_fj=120.0,
        io_density_per_mm_per_layer=500.0,
        io_area_ratio=0.03,
        io_power_counted=True,
        beol_layers_saved=1,    # dense interposer links offload global routing
        allowed_assembly=(AssemblyFlow.CHIP_LAST,),
    ),
)

#: Convenient aliases accepted by :meth:`IntegrationTable.get`.
_ALIASES: Mapping[str, str] = {
    "2d": "2d",
    "planar": "2d",
    "monolithic_2d": "2d",
    "micro": "micro_3d",
    "micro_bump": "micro_3d",
    "microbump_3d": "micro_3d",
    "micro_bump_3d": "micro_3d",
    "hybrid": "hybrid_3d",
    "hybrid_bonding": "hybrid_3d",
    "hybrid_bonding_3d": "hybrid_3d",
    "m3d": "m3d",
    "monolithic_3d": "m3d",
    "mcm": "mcm",
    "info": "info",
    "info_2.5d": "info",
    "emib": "emib",
    "si": "si_interposer",
    "si_int": "si_interposer",
    "silicon_interposer": "si_interposer",
    "interposer": "si_interposer",
}


class IntegrationTable:
    """Lookup table of :class:`IntegrationSpec`, with alias support."""

    def __init__(self, specs: Mapping[str, IntegrationSpec] | None = None) -> None:
        if specs is None:
            self._specs = {spec.name: spec for spec in _BUILTIN_SPECS}
        else:
            self._specs = dict(specs)

    @staticmethod
    def canonical_name(name: "str | IntegrationSpec") -> str:
        if isinstance(name, IntegrationSpec):
            return name.name
        text = str(name).strip().lower().replace(" ", "_").replace("-", "_")
        return _ALIASES.get(text, text)

    def get(self, name: "str | IntegrationSpec") -> IntegrationSpec:
        if type(name) is str:
            # Canonical names skip the normalization — the hot-path case.
            spec = self._specs.get(name)
            if spec is not None:
                return spec
        if isinstance(name, IntegrationSpec):
            return name
        key = self.canonical_name(name)
        try:
            return self._specs[key]
        except KeyError:
            known = ", ".join(sorted(self._specs))
            raise UnknownTechnologyError(
                f"unknown integration technology {name!r}; known: {known}"
            ) from None

    def __contains__(self, name: object) -> bool:
        try:
            self.get(name)  # type: ignore[arg-type]
        except UnknownTechnologyError:
            return False
        return True

    def __iter__(self) -> Iterator[IntegrationSpec]:
        return iter(self._specs.values())

    def __len__(self) -> int:
        return len(self._specs)

    def names(self) -> list[str]:
        return list(self._specs)

    def register(self, spec: IntegrationSpec, overwrite: bool = False) -> None:
        if spec.name in self._specs and not overwrite:
            raise ParameterError(f"spec {spec.name!r} already registered")
        self._specs[spec.name] = spec

    def with_spec_override(
        self, name: "str | IntegrationSpec", **overrides
    ) -> "IntegrationTable":
        return self.with_record(self.get(name).with_overrides(**overrides))

    def with_record(self, spec: IntegrationSpec) -> "IntegrationTable":
        """Copy of the table with ``spec`` installed under its own name."""
        specs = dict(self._specs)
        specs[spec.name] = spec
        table = object.__new__(IntegrationTable)
        table._specs = specs
        return table

    def three_d_names(self) -> list[str]:
        return [s.name for s in self if s.is_3d]

    def two_five_d_names(self) -> list[str]:
        return [s.name for s in self if s.is_2_5d]


DEFAULT_INTEGRATION_TABLE = IntegrationTable()
