"""Monolithic-3D (M3D) manufacturing parameters.

M3D builds tiers *sequentially* on one substrate (Sec. 2.1.1): tier 2's FEOL
is processed on top of tier 1 through inter-layer dielectric (ILD), with
fine-pitch MIVs (< 0.6 µm) connecting tiers. Relative to bonding-based 3D,
this changes the embodied model in three ways (Kim DAC'21, Stow ISVLSI'16):

* no bonding step (Eq. 11 contributes zero);
* one wafer, one raw-material footprint (MPA charged once on the footprint),
  but the FEOL is processed once per tier at reduced incremental cost —
  ``feol_overhead`` is the *extra* FEOL fraction for each additional tier
  (low-temperature processing reuses alignment/lithography infrastructure);
* sequential processing slightly degrades the effective defect density of
  the combined stack (``defect_density_factor``), because tier-2 devices are
  fabricated over topography and cannot be yield-tested independently.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from ..errors import ParameterError


@dataclass(frozen=True)
class M3DParameters:
    """Sequential-manufacturing cost/yield knobs for monolithic 3D."""

    #: Extra FEOL electricity+gas per additional tier, as a fraction of one
    #: full FEOL pass (0.30 ⇒ a 2-tier M3D die pays 1.30× one FEOL).
    feol_overhead: float = 0.30
    #: ILD deposition/planarization energy between tiers, kWh/cm² per
    #: inter-tier interface.
    ild_epa_kwh_per_cm2: float = 0.05
    #: Multiplier on the node defect density for the monolithic stack.
    defect_density_factor: float = 1.10
    #: Maximum number of sequential tiers supported (paper Table 1: 2).
    max_tiers: int = 2

    def __post_init__(self) -> None:
        if not 0.0 <= self.feol_overhead <= 1.0:
            raise ParameterError(
                f"feol_overhead must lie in [0, 1], got {self.feol_overhead}"
            )
        if self.ild_epa_kwh_per_cm2 < 0:
            raise ParameterError("ild_epa_kwh_per_cm2 must be >= 0")
        if self.defect_density_factor < 1.0:
            raise ParameterError(
                "defect_density_factor must be >= 1 (sequential processing "
                "cannot improve the defect density)"
            )
        if self.max_tiers < 2:
            raise ParameterError("max_tiers must be >= 2")

    def with_overrides(self, **overrides) -> "M3DParameters":
        return replace(self, **overrides)


DEFAULT_M3D_PARAMETERS = M3DParameters()
