"""Electrical-grid carbon intensity database (CI_emb / CI_use, Table 2).

The paper sources fab and use-phase carbon intensities from industry
environmental reports; the quoted range is 30–700 g CO₂/kWh. This module
provides a location-keyed table spanning that range plus helpers to express
intensities directly. Values are annual grid averages (IEA-style); fab
locations map to the grids of the major foundry sites.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from ..errors import ParameterError, UnknownTechnologyError
from ..units import grams_per_kwh

#: Paper Table 2 bounds, used for validation.
MIN_G_PER_KWH = 5.0
MAX_G_PER_KWH = 900.0


@dataclass(frozen=True)
class GridProfile:
    """Carbon intensity of one electrical grid."""

    name: str
    g_co2_per_kwh: float
    description: str = ""

    def __post_init__(self) -> None:
        if not MIN_G_PER_KWH <= self.g_co2_per_kwh <= MAX_G_PER_KWH:
            raise ParameterError(
                f"{self.name}: carbon intensity {self.g_co2_per_kwh} g/kWh "
                f"outside [{MIN_G_PER_KWH}, {MAX_G_PER_KWH}]"
            )

    @property
    def kg_co2_per_kwh(self) -> float:
        """Carbon intensity in kg CO₂/kWh (internal unit)."""
        return grams_per_kwh(self.g_co2_per_kwh)


_BUILTIN_GRIDS: tuple[GridProfile, ...] = (
    GridProfile("world", 475.0, "world average grid"),
    GridProfile("taiwan", 509.0, "TSMC fab sites (Taipower grid)"),
    GridProfile("south_korea", 415.0, "Samsung fab sites"),
    GridProfile("usa", 380.0, "US average grid"),
    GridProfile("usa_az", 350.0, "Arizona (Intel/TSMC US fabs)"),
    GridProfile("ireland", 296.0, "Intel Leixlip"),
    GridProfile("israel", 558.0, "Intel Kiryat Gat"),
    GridProfile("china", 555.0, "SMIC fab sites"),
    GridProfile("japan", 462.0, "Kioxia/Sony fab sites"),
    GridProfile("germany", 366.0, "European fabs"),
    GridProfile("india", 700.0, "coal-heavy grid upper bound"),
    GridProfile("iceland", 30.0, "near-fully renewable grid (Table 2 lower bound)"),
    GridProfile("sweden", 45.0, "hydro/nuclear grid"),
    GridProfile("france", 85.0, "nuclear-heavy grid"),
    GridProfile("renewable_charging", 50.0,
                "renewable-leaning EV charging mix used for the AV case study"),
)


class GridTable:
    """Lookup of :class:`GridProfile` by location name."""

    def __init__(self, grids: Mapping[str, GridProfile] | None = None) -> None:
        if grids is None:
            self._grids = {g.name: g for g in _BUILTIN_GRIDS}
        else:
            self._grids = dict(grids)

    def get(self, location: "str | float | GridProfile") -> GridProfile:
        """Resolve a location name — or a raw g/kWh number — to a profile."""
        if isinstance(location, GridProfile):
            return location
        if isinstance(location, (int, float)):
            return GridProfile(f"custom_{float(location):g}", float(location))
        key = str(location).strip().lower().replace(" ", "_")
        try:
            return self._grids[key]
        except KeyError:
            known = ", ".join(sorted(self._grids))
            raise UnknownTechnologyError(
                f"unknown grid location {location!r}; known: {known}"
            ) from None

    def __contains__(self, location: object) -> bool:
        try:
            self.get(location)  # type: ignore[arg-type]
        except UnknownTechnologyError:
            return False
        return True

    def __iter__(self) -> Iterator[GridProfile]:
        return iter(self._grids.values())

    def __len__(self) -> int:
        return len(self._grids)

    def names(self) -> list[str]:
        return list(self._grids)

    def register(self, grid: GridProfile, overwrite: bool = False) -> None:
        if grid.name in self._grids and not overwrite:
            raise ParameterError(f"grid {grid.name!r} already registered")
        self._grids[grid.name] = grid


DEFAULT_GRID_TABLE = GridTable()
