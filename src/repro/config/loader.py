"""Parameter-set serialization: calibration files users can version.

The paper emphasizes that carbon models live or die by their parameter
data. This module round-trips the *entire* :class:`ParameterSet` — every
node, integration spec, bonding process, package class, substrate/M3D/
bandwidth constant and grid — through plain dictionaries and JSON files,
so a team can pin, diff and share calibrations alongside their designs::

    save_parameters(params, "calibration_2024.json")
    params = load_parameters("calibration_2024.json")
"""

from __future__ import annotations

import dataclasses
import json
from pathlib import Path

from ..errors import ParameterError
from .bonding import BondingProcess, BondingTable
from .grid import GridProfile, GridTable
from .integration import (
    AssemblyFlow,
    BondingMethod,
    IntegrationFamily,
    IntegrationSpec,
    IntegrationTable,
    StackingStyle,
    SubstrateKind,
)
from .m3d import M3DParameters
from .packaging import PackageClass, PackagingTable
from .parameters import BandwidthConstraintParameters, ParameterSet
from .substrate import SubstrateParameters
from .technology import ProcessNode, TechnologyTable

#: Schema version written into every file.
SCHEMA_VERSION = 1


def _node_to_dict(node: ProcessNode) -> dict:
    return dataclasses.asdict(node)


def _spec_to_dict(spec: IntegrationSpec) -> dict:
    data = dataclasses.asdict(spec)
    data["family"] = spec.family.value
    data["bonding"] = spec.bonding.value
    data["substrate"] = spec.substrate.value
    data["allowed_stacking"] = [s.value for s in spec.allowed_stacking]
    data["allowed_assembly"] = [a.value for a in spec.allowed_assembly]
    return data


def _spec_from_dict(data: dict) -> IntegrationSpec:
    payload = dict(data)
    payload["family"] = IntegrationFamily(payload["family"])
    payload["bonding"] = BondingMethod(payload["bonding"])
    payload["substrate"] = SubstrateKind(payload["substrate"])
    payload["allowed_stacking"] = tuple(
        StackingStyle(s) for s in payload["allowed_stacking"]
    )
    payload["allowed_assembly"] = tuple(
        AssemblyFlow(a) for a in payload["allowed_assembly"]
    )
    return IntegrationSpec(**payload)


def _bonding_to_dict(process: BondingProcess) -> dict:
    return {
        "method": process.method.value,
        "flow": process.flow.value,
        "epa_kwh_per_cm2": process.epa_kwh_per_cm2,
        "bond_yield": process.bond_yield,
    }


def _bonding_from_dict(data: dict) -> BondingProcess:
    return BondingProcess(
        method=BondingMethod(data["method"]),
        flow=AssemblyFlow(data["flow"]),
        epa_kwh_per_cm2=data["epa_kwh_per_cm2"],
        bond_yield=data["bond_yield"],
    )


def parameters_to_dict(params: ParameterSet) -> dict:
    """The full parameter set as a JSON-ready dictionary."""
    return {
        "schema_version": SCHEMA_VERSION,
        "wafer_diameter_mm": params.wafer_diameter_mm,
        "beol_aware": params.beol_aware,
        "nodes": [_node_to_dict(node) for node in params.technology],
        "integrations": [_spec_to_dict(spec) for spec in params.integration],
        "bonding": [
            _bonding_to_dict(params.bonding.get(method, flow))
            for method in (BondingMethod.MICRO_BUMP, BondingMethod.HYBRID,
                           BondingMethod.C4)
            for flow in (AssemblyFlow.D2W, AssemblyFlow.W2W,
                         AssemblyFlow.CHIP_FIRST, AssemblyFlow.CHIP_LAST)
            if _has_process(params, method, flow)
        ],
        "packaging": [
            dataclasses.asdict(params.packaging.get(name))
            for name in params.packaging.names()
        ],
        "substrate": dataclasses.asdict(params.substrate),
        "m3d": dataclasses.asdict(params.m3d),
        "bandwidth": dataclasses.asdict(params.bandwidth),
        "grids": [
            dataclasses.asdict(grid) for grid in params.grids
        ],
    }


def _has_process(params: ParameterSet, method, flow) -> bool:
    try:
        params.bonding.get(method, flow)
    except Exception:
        return False
    return True


def parameters_from_dict(data: dict) -> ParameterSet:
    """Inverse of :func:`parameters_to_dict` (validates every record)."""
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ParameterError(
            f"unsupported parameter schema version {version!r} "
            f"(expected {SCHEMA_VERSION})"
        )
    nodes = {record["name"]: ProcessNode(**record)
             for record in data["nodes"]}
    specs = {
        record["name"]: _spec_from_dict(record)
        for record in data["integrations"]
    }
    processes = {}
    for record in data["bonding"]:
        process = _bonding_from_dict(record)
        processes[(process.method, process.flow)] = process
    packages = {
        record["name"]: PackageClass(**record)
        for record in data["packaging"]
    }
    grids = {
        record["name"]: GridProfile(**record) for record in data["grids"]
    }
    return ParameterSet(
        technology=TechnologyTable(nodes),
        integration=IntegrationTable(specs),
        bonding=BondingTable(processes),
        packaging=PackagingTable(packages),
        substrate=SubstrateParameters(**data["substrate"]),
        m3d=M3DParameters(**data["m3d"]),
        grids=GridTable(grids),
        bandwidth=BandwidthConstraintParameters(**data["bandwidth"]),
        wafer_diameter_mm=data["wafer_diameter_mm"],
        beol_aware=data["beol_aware"],
    )


def save_parameters(params: ParameterSet, path: "str | Path") -> None:
    """Write a parameter set to a JSON calibration file."""
    Path(path).write_text(
        json.dumps(parameters_to_dict(params), indent=2), encoding="utf-8"
    )


def load_parameters(path: "str | Path") -> ParameterSet:
    """Read a parameter set from a JSON calibration file."""
    return parameters_from_dict(
        json.loads(Path(path).read_text(encoding="utf-8"))
    )
