"""Deadline budgets: cooperative timeout enforcement.

A :class:`Deadline` is a monotonic budget created where a request enters
the system (the ``X-Carbon3D-Deadline-Ms`` header, a session's
``deadline_ms``) and *checked* at natural work boundaries — between
batch points, before and after an engine computation, while waiting on a
coalesced future. Overruns raise the typed
:class:`~repro.errors.EvaluationTimeout`, which the service maps to a
504 payload instead of a hung connection.

Enforcement is cooperative by design: evaluation stages are pure CPU
Python that cannot be safely preempted mid-float, so the guarantee is
"a request never *returns* long after its budget, and never hangs", not
"computation halts at the microsecond". The fault-injection suite pins
the behaviour by delaying inside a checked region.
"""

from __future__ import annotations

import time

from ..errors import EvaluationTimeout


class Deadline:
    """A monotonic time budget with typed overrun checks."""

    __slots__ = ("budget_s", "_clock", "_t0")

    def __init__(self, budget_s: float, clock=time.monotonic) -> None:
        if budget_s <= 0:
            raise ValueError(f"deadline budget must be > 0s, got {budget_s}")
        self.budget_s = float(budget_s)
        self._clock = clock
        self._t0 = clock()

    @classmethod
    def after_ms(cls, budget_ms: float, clock=time.monotonic) -> "Deadline":
        """The header spelling: a budget in milliseconds."""
        return cls(budget_ms / 1000.0, clock=clock)

    def elapsed_s(self) -> float:
        return self._clock() - self._t0

    def remaining_s(self) -> float:
        """Seconds left (never negative)."""
        return max(0.0, self.budget_s - self.elapsed_s())

    def expired(self) -> bool:
        return self.elapsed_s() >= self.budget_s

    def check(self, what: str = "request") -> None:
        """Raise :class:`EvaluationTimeout` if the budget is spent."""
        elapsed = self.elapsed_s()
        if elapsed >= self.budget_s:
            raise EvaluationTimeout(
                f"{what} exceeded its {self.budget_s:.3f}s deadline "
                f"({elapsed:.3f}s elapsed)",
                budget_s=self.budget_s,
                elapsed_s=elapsed,
            )
