"""Deterministic, seedable fault injection for the whole stack.

A :class:`FaultPlan` names **injection points** (sites) at the stage,
store, transport and worker layers and describes what should go wrong
there — an injected error, a delay, or a hard worker crash — and
*when*: after the Nth hit, for M firings, with a (seeded, deterministic)
probability. The recovery machinery this exercises lives next to each
site: the fork map reassigns crashed shards, the store quarantines and
rebuilds corrupt files, the dispatcher enforces deadlines, the client
breaks the circuit.

Plans activate three ways, all reaching the same injector:

* ``Session(faults=plan)`` — a per-session injector threaded into the
  session's engine, dispatcher and store;
* ``carbon3d serve --fault-plan PLAN`` — installs the plan on the
  process-global injector before the server starts;
* the ``CARBON3D_FAULT_PLAN`` environment variable (inline JSON or a
  file path) — picked up at import, so subprocess tests can arm a
  server they spawn without touching its command line.

Every component's injection hook is a single attribute check while no
plan is installed, so production paths pay (almost) nothing.

Sites (see :data:`FAULT_SITES`)::

    stage.resolve  stage.embodied  stage.bandwidth  stage.operational
    engine.point   worker.item
    store.open     store.get       store.put        store.close
    dispatcher.compute             server.request   transport.request

Determinism: rule counters advance per hit, and probabilistic rules draw
from a per-rule :class:`random.Random` seeded from ``(plan.seed, rule
index)`` — the same plan against the same call sequence fires the same
faults, which is what lets CI drive every recovery path repeatably.
"""

from __future__ import annotations

import json
import os
import sqlite3
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from random import Random

from ..errors import CarbonModelError, ParameterError

#: Environment variable holding a plan (inline JSON or a file path).
FAULT_PLAN_ENV = "CARBON3D_FAULT_PLAN"

#: The catalog of named injection points, by layer.
FAULT_SITES = (
    # stage layer (engine memo misses — the stage actually runs)
    "stage.resolve", "stage.embodied", "stage.bandwidth",
    "stage.operational",
    # engine layer
    "engine.point",      # before each EvalPoint evaluation
    "worker.item",       # in a forked child, before each work item
    # store layer
    "store.open", "store.get", "store.put", "store.close",
    # service layer
    "dispatcher.compute",  # before an engine computation runs
    "server.request",      # server-side, before routing a POST
    # client transport layer
    "transport.request",   # client-side, before sending a request
)

#: What ``action="error"`` raises, by rule ``error`` kind. Components
#: catch exactly these families (the store catches ``sqlite3.Error``,
#: the transport catches ``ConnectionError``), so an injected failure
#: walks the very same recovery branch a real one would.
ERROR_KINDS = {
    "fault": lambda msg: FaultError(msg),
    "sqlite": lambda msg: sqlite3.DatabaseError(msg),
    "busy": lambda msg: sqlite3.OperationalError(msg or "database is locked"),
    "oserror": lambda msg: OSError(msg),
    "connection": lambda msg: ConnectionError(msg),
}


class FaultError(CarbonModelError):
    """The generic injected failure (``action="error"``, kind ``fault``)."""


@dataclass(frozen=True)
class FaultRule:
    """One fault: where (``site``), what (``action``), and when.

    ``after`` skips the first N hits at the site; ``times`` bounds how
    often the rule fires (``None`` = forever); ``probability`` gates each
    eligible hit through the plan's seeded RNG. ``worker`` restricts the
    rule to one process-worker index (0 is the parent; forked children
    count from 1) — the handle that lets a test kill exactly one shard
    of a parallel map.
    """

    site: str
    action: str = "error"          # "error" | "delay" | "crash"
    after: int = 0
    times: "int | None" = 1
    probability: float = 1.0
    delay_s: float = 0.0
    error: str = "fault"
    exit_code: int = 137           # crash: SIGKILL's conventional status
    worker: "int | None" = None
    message: str = ""

    def __post_init__(self) -> None:
        if not self.site or not isinstance(self.site, str):
            raise ParameterError("a fault rule needs a non-empty site name")
        if self.site not in FAULT_SITES:
            raise ParameterError(
                f"unknown fault site {self.site!r}; known sites: "
                f"{', '.join(FAULT_SITES)}"
            )
        if self.action not in ("error", "delay", "crash"):
            raise ParameterError(
                f"fault action must be error/delay/crash, got {self.action!r}"
            )
        if self.error not in ERROR_KINDS:
            raise ParameterError(
                f"unknown fault error kind {self.error!r}; known: "
                f"{', '.join(sorted(ERROR_KINDS))}"
            )
        if self.after < 0:
            raise ParameterError(f"after must be >= 0, got {self.after}")
        if self.times is not None and self.times < 1:
            raise ParameterError(
                f"times must be >= 1 or null, got {self.times}"
            )
        if not 0.0 < self.probability <= 1.0:
            raise ParameterError(
                f"probability must be in (0, 1], got {self.probability}"
            )
        if self.delay_s < 0:
            raise ParameterError(f"delay_s must be >= 0, got {self.delay_s}")

    def to_dict(self) -> dict:
        data = {"site": self.site, "action": self.action}
        if self.after:
            data["after"] = self.after
        if self.times != 1:
            data["times"] = self.times
        if self.probability != 1.0:
            data["probability"] = self.probability
        if self.delay_s:
            data["delay_s"] = self.delay_s
        if self.error != "fault":
            data["error"] = self.error
        if self.exit_code != 137:
            data["exit_code"] = self.exit_code
        if self.worker is not None:
            data["worker"] = self.worker
        if self.message:
            data["message"] = self.message
        return data


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded set of :class:`FaultRule`\\ s (JSON round-trips)."""

    rules: "tuple[FaultRule, ...]" = ()
    seed: int = 0
    name: str = ""

    def __post_init__(self) -> None:
        object.__setattr__(self, "rules", tuple(self.rules))

    def to_dict(self) -> dict:
        data: dict = {"rules": [rule.to_dict() for rule in self.rules]}
        if self.seed:
            data["seed"] = self.seed
        if self.name:
            data["name"] = self.name
        return data

    def to_json(self) -> str:
        return json.dumps(self.to_dict())

    @classmethod
    def from_dict(cls, data: dict) -> "FaultPlan":
        if not isinstance(data, dict):
            raise ParameterError(
                f"a fault plan must be a JSON object, got "
                f"{type(data).__name__}"
            )
        unknown = set(data) - {"rules", "seed", "name"}
        if unknown:
            raise ParameterError(
                f"fault plan: unknown key(s) {sorted(unknown)} "
                f"(allowed: rules, seed, name)"
            )
        rules_data = data.get("rules", [])
        if not isinstance(rules_data, list):
            raise ParameterError("fault plan \"rules\" must be a list")
        rules = []
        for index, rule in enumerate(rules_data):
            if not isinstance(rule, dict):
                raise ParameterError(
                    f"fault rule #{index} must be a JSON object"
                )
            known = {f.name for f in FaultRule.__dataclass_fields__.values()}
            bad = set(rule) - known
            if bad:
                raise ParameterError(
                    f"fault rule #{index}: unknown key(s) {sorted(bad)}"
                )
            rules.append(FaultRule(**rule))
        return cls(
            rules=tuple(rules),
            seed=int(data.get("seed", 0)),
            name=str(data.get("name", "")),
        )

    @classmethod
    def from_json(cls, text: str) -> "FaultPlan":
        try:
            data = json.loads(text)
        except json.JSONDecodeError as error:
            raise ParameterError(
                f"fault plan is not valid JSON: {error}"
            ) from None
        return cls.from_dict(data)

    @classmethod
    def coerce(cls, value) -> "FaultPlan | None":
        """A plan from whatever the caller has in hand.

        Accepts ``None``, a ready plan, a dict, inline JSON text, or a
        path to a JSON file (the ``--fault-plan`` / env-var spellings).
        """
        if value is None or isinstance(value, cls):
            return value
        if isinstance(value, dict):
            return cls.from_dict(value)
        if isinstance(value, str):
            text = value.strip()
            if not text.startswith("{") and os.path.exists(text):
                with open(text, encoding="utf-8") as handle:
                    text = handle.read()
            return cls.from_json(text)
        raise ParameterError(
            f"cannot build a FaultPlan from {type(value).__name__}"
        )


# -- worker identity ----------------------------------------------------------

_worker_index = 0


def set_worker_index(index: int) -> None:
    """Tag this process's worker identity (forked children count from 1)."""
    global _worker_index
    _worker_index = index


def current_worker_index() -> int:
    return _worker_index


# -- the injector -------------------------------------------------------------

@dataclass
class FiredFault:
    """One fired fault, logged for assertions and operator visibility."""

    site: str
    action: str
    worker: int
    rule_index: int
    at_s: float = field(default_factory=time.monotonic)


class FaultInjector:
    """Evaluates a plan at each hit; the per-rule state lives here.

    ``active`` is a plain attribute (not a property) so hot paths can
    guard their hooks with one attribute read.
    """

    def __init__(self, plan: "FaultPlan | None" = None) -> None:
        self._lock = threading.Lock()
        self.fired: "list[FiredFault]" = []
        self.set_plan(plan)

    @property
    def plan(self) -> "FaultPlan | None":
        return self._plan

    def set_plan(self, plan: "FaultPlan | None") -> None:
        """Swap the plan, resetting counters, RNGs and the fired log."""
        with self._lock:
            self._plan = plan
            self.active = plan is not None and bool(plan.rules)
            self._hits = [0] * (len(plan.rules) if plan else 0)
            self._count = [0] * (len(plan.rules) if plan else 0)
            self._rngs = [
                Random((plan.seed << 8) ^ index)
                for index in range(len(plan.rules) if plan else 0)
            ]
            self.fired = []

    def hit(self, site: str) -> None:
        """Evaluate one hit at ``site``; may sleep, raise, or exit hard."""
        if not self.active:
            return
        worker = _worker_index
        to_fire: "list[tuple[int, FaultRule]]" = []
        with self._lock:
            for index, rule in enumerate(self._plan.rules):
                if rule.site != site:
                    continue
                if rule.worker is not None and rule.worker != worker:
                    continue
                self._hits[index] += 1
                if self._hits[index] <= rule.after:
                    continue
                if rule.times is not None and self._count[index] >= rule.times:
                    continue
                if (
                    rule.probability < 1.0
                    and self._rngs[index].random() >= rule.probability
                ):
                    continue
                self._count[index] += 1
                self.fired.append(
                    FiredFault(site, rule.action, worker, index)
                )
                to_fire.append((index, rule))
        # Act outside the lock: sleeps and raises must not serialize
        # unrelated hits (and an exit needs no lock at all).
        for _, rule in to_fire:
            if rule.action == "delay":
                time.sleep(rule.delay_s)
        for _, rule in to_fire:
            if rule.action == "crash":
                os._exit(rule.exit_code)
            if rule.action == "error":
                message = rule.message or (
                    f"injected {rule.error} fault at {site}"
                )
                raise ERROR_KINDS[rule.error](message)

    def fired_sites(self) -> "list[str]":
        with self._lock:
            return [event.site for event in self.fired]

    def describe(self) -> str:
        """One status line for logs (``carbon3d serve`` startup banner)."""
        plan = self._plan
        if plan is None or not plan.rules:
            return "inactive"
        name = plan.name or "unnamed plan"
        sites = ", ".join(sorted({rule.site for rule in plan.rules}))
        return (
            f"{name}: {len(plan.rules)} rule"
            f"{'s' if len(plan.rules) != 1 else ''} "
            f"(seed {plan.seed}) at {sites}"
        )


def _plan_from_env() -> "FaultPlan | None":
    text = os.environ.get(FAULT_PLAN_ENV)
    if not text:
        return None
    return FaultPlan.coerce(text)


#: The process-global injector. Components built without an explicit
#: ``faults=`` bind this one, so ``install_plan`` (or the env var, read
#: here at import) arms every default-wired component at once.
GLOBAL_INJECTOR = FaultInjector(_plan_from_env())


def global_injector() -> FaultInjector:
    return GLOBAL_INJECTOR


def install_plan(plan) -> FaultInjector:
    """Arm the process-global injector (``carbon3d serve --fault-plan``)."""
    GLOBAL_INJECTOR.set_plan(FaultPlan.coerce(plan))
    return GLOBAL_INJECTOR


@contextmanager
def injected(plan):
    """Temporarily arm the global injector (the test-suite idiom)."""
    previous = GLOBAL_INJECTOR.plan
    GLOBAL_INJECTOR.set_plan(FaultPlan.coerce(plan))
    try:
        yield GLOBAL_INJECTOR
    finally:
        GLOBAL_INJECTOR.set_plan(previous)


def resolve_injector(faults) -> FaultInjector:
    """The injector for a component's ``faults=`` argument.

    ``None`` binds the process-global injector; a plan (or anything
    :meth:`FaultPlan.coerce` accepts) gets a private injector; a ready
    injector passes through — one shared injector keeps rule counters
    coherent across a session's engine, dispatcher and store.
    """
    if faults is None:
        return GLOBAL_INJECTOR
    if isinstance(faults, FaultInjector):
        return faults
    return FaultInjector(FaultPlan.coerce(faults))


def fire(site: str, faults: "FaultInjector | None" = None) -> None:
    """The cold-path hook: evaluate one hit at ``site``."""
    injector = faults if faults is not None else GLOBAL_INJECTOR
    if injector.active:
        injector.hit(site)
