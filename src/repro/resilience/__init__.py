"""Fault tolerance: deterministic fault injection + recovery machinery.

The package has three small parts:

* :mod:`repro.resilience.faults` — the seedable :class:`FaultPlan` /
  :class:`FaultInjector` framework naming injection points at the
  stage, store, transport and worker layers;
* :mod:`repro.resilience.deadline` — cooperative :class:`Deadline`
  budgets raising the typed
  :class:`~repro.errors.EvaluationTimeout`;
* :mod:`repro.resilience.breaker` — the service client's
  :class:`CircuitBreaker`.

The recovery paths these exercise live where the work happens (the fork
map's shard reassignment, the store's quarantine-and-rebuild, the
server's admission gate and graceful drain) — this package only provides
the deterministic way to make them fire in CI.
"""

from ..errors import EvaluationTimeout
from .breaker import CircuitBreaker, CircuitOpenError
from .deadline import Deadline
from .faults import (
    FAULT_PLAN_ENV,
    FAULT_SITES,
    FaultError,
    FaultInjector,
    FaultPlan,
    FaultRule,
    fire,
    global_injector,
    injected,
    install_plan,
    resolve_injector,
)

__all__ = [
    "FAULT_PLAN_ENV",
    "FAULT_SITES",
    "CircuitBreaker",
    "CircuitOpenError",
    "Deadline",
    "EvaluationTimeout",
    "FaultError",
    "FaultInjector",
    "FaultPlan",
    "FaultRule",
    "fire",
    "global_injector",
    "injected",
    "install_plan",
    "resolve_injector",
]
