"""A circuit breaker for the service client's transport path.

The classic three-state machine over consecutive failures:

* **closed** — requests flow; each transport-level failure (or a 503
  load-shed answer) increments a consecutive-failure count, any success
  resets it;
* **open** — after ``failure_threshold`` consecutive failures the
  breaker opens for ``cooldown_s`` (or the server's ``Retry-After``,
  whichever is longer) and requests fail fast with
  :class:`CircuitOpenError` — no socket is touched, so a struggling
  server stops receiving retry pile-on from this client;
* **half-open** — once the cool-down elapses, exactly one probe request
  is allowed through; success closes the breaker, failure re-opens it
  for another cool-down.

The clock is injectable so tests drive state transitions
deterministically without sleeping.
"""

from __future__ import annotations

import threading
import time
import weakref

from ..errors import CarbonModelError

#: Every live breaker in this process, for observability rollups
#: (``carbon3d_breakers_open`` on ``/metrics``). Weak: a breaker lives
#: exactly as long as the client that owns it.
_LIVE_BREAKERS: "weakref.WeakSet[CircuitBreaker]" = weakref.WeakSet()


def live_breakers() -> "list[CircuitBreaker]":
    """All breakers currently alive in this process."""
    return list(_LIVE_BREAKERS)


def open_breaker_count() -> int:
    """How many live breakers are not fully closed (open or half-open)."""
    return sum(
        1 for b in live_breakers() if b.state != CircuitBreaker.CLOSED
    )


class CircuitOpenError(CarbonModelError):
    """The breaker is open; the request was not sent.

    ``retry_after_s`` says how long until the next probe is allowed.
    """

    def __init__(self, message: str, retry_after_s: float = 0.0) -> None:
        super().__init__(message)
        self.retry_after_s = retry_after_s


class CircuitBreaker:
    """Consecutive-failure circuit breaker with Retry-After awareness."""

    CLOSED = "closed"
    OPEN = "open"
    HALF_OPEN = "half_open"

    def __init__(
        self,
        failure_threshold: int = 5,
        cooldown_s: float = 1.0,
        clock=time.monotonic,
    ) -> None:
        if failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, got {failure_threshold}"
            )
        if cooldown_s < 0:
            raise ValueError(f"cooldown_s must be >= 0, got {cooldown_s}")
        self.failure_threshold = failure_threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = self.CLOSED
        self._failures = 0
        self._open_until = 0.0
        #: Lifetime counters for /stats-style introspection.
        self.opened = 0
        self.rejected = 0
        _LIVE_BREAKERS.add(self)

    @property
    def state(self) -> str:
        with self._lock:
            return self._peek_state()

    def _peek_state(self) -> str:
        if self._state == self.OPEN and self._clock() >= self._open_until:
            return self.HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """Whether a request may proceed (claims the half-open probe)."""
        with self._lock:
            state = self._peek_state()
            if state == self.CLOSED:
                return True
            if state == self.HALF_OPEN and self._state != self.HALF_OPEN:
                # Claim the single probe (OPEN past its cool-down);
                # once _state is HALF_OPEN a probe is already in flight
                # and concurrent callers stay rejected until it reports.
                self._state = self.HALF_OPEN
                return True
            self.rejected += 1
            return False

    def check(self) -> None:
        """``allow()`` or raise :class:`CircuitOpenError`."""
        if not self.allow():
            with self._lock:
                remaining = max(0.0, self._open_until - self._clock())
            raise CircuitOpenError(
                f"circuit breaker open after {self._failures} consecutive "
                f"failures; retry in {remaining:.2f}s",
                retry_after_s=remaining,
            )

    def record_success(self) -> None:
        with self._lock:
            self._state = self.CLOSED
            self._failures = 0

    def record_failure(self, retry_after_s: "float | None" = None) -> None:
        """Count a failure; open when the threshold (or a probe) trips.

        ``retry_after_s`` — a server's explicit back-off request —
        extends the cool-down when it is longer.
        """
        with self._lock:
            was_half_open = self._state == self.HALF_OPEN
            self._failures += 1
            if was_half_open or self._failures >= self.failure_threshold:
                hold = max(self.cooldown_s, retry_after_s or 0.0)
                self._state = self.OPEN
                self._open_until = self._clock() + hold
                self.opened += 1
