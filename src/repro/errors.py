"""Exception hierarchy for the 3D-Carbon reproduction.

All library-raised exceptions derive from :class:`CarbonModelError` so callers
can catch one base type. Input problems raise :class:`DesignError` or
:class:`ParameterError`; evaluating a design that violates the bandwidth
constraint of Sec. 3.4 does *not* raise — it returns a report flagged invalid
— but asking for metrics that require a valid design raises
:class:`InvalidDesignError`.
"""

from __future__ import annotations


class CarbonModelError(Exception):
    """Base class for all errors raised by :mod:`repro`."""


class DesignError(CarbonModelError):
    """The hardware design description is inconsistent or incomplete."""


class ParameterError(CarbonModelError):
    """A configuration parameter is out of its physical/documented range."""


class UnknownTechnologyError(ParameterError):
    """A process node or integration technology name is not in the database."""


class BackendError(CarbonModelError):
    """A carbon-backend name is unknown (or the backend cannot serve).

    Raised by the :mod:`repro.pipeline` registry and surfaced unchanged by
    the CLI and the service (which maps it to a typed 400 payload rather
    than a traceback). ``backend`` carries the offending name and
    ``known`` the registered alternatives; ``field`` tags the request
    field for service error payloads.
    """

    field = "backend"

    def __init__(
        self, message: str, backend: "str | None" = None,
        known: "tuple[str, ...]" = (),
    ) -> None:
        super().__init__(message)
        self.backend = backend
        self.known = tuple(known)


class EvaluationTimeout(CarbonModelError):
    """An evaluation exceeded its deadline budget.

    Raised cooperatively — the engine and dispatcher check their budget
    at point/stage boundaries, so a request that overruns its
    ``X-Carbon3D-Deadline-Ms`` (or an evaluator's ``point_timeout_s``)
    surfaces as this typed error rather than a hung caller. ``budget_s``
    carries the allowance and ``elapsed_s`` how long the work actually
    took when the overrun was detected.
    """

    def __init__(
        self,
        message: str,
        budget_s: "float | None" = None,
        elapsed_s: "float | None" = None,
    ) -> None:
        super().__init__(message)
        self.budget_s = budget_s
        self.elapsed_s = elapsed_s


class InvalidDesignError(CarbonModelError):
    """The design fails a deployment constraint (e.g. I/O bandwidth)."""


class UnitError(CarbonModelError):
    """A quantity was supplied in an unconvertible or negative unit."""
