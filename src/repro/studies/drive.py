"""NVIDIA DRIVE case study (Sec. 5, Fig. 5, Table 4).

Compares the original 2D DRIVE GPUs (PX 2, XAVIER, ORIN, THOR — Table 4)
against hypothetical 2-die 3D/2.5D designs built with two division
approaches:

* **homogeneous** — the 2D IC split into two similar dies (Fig. 5a);
* **heterogeneous** — memory/I/O isolated on a separate 28 nm die
  (Fig. 5b).

3D designs use F2F stacking with D2W assembly (Sec. 5); 2.5D designs use
their technology's native assembly flow, with InFO evaluated both
chip-first (InFO_1) and chip-last (InFO_2). Every design is evaluated
under the fixed AV workload, and the Sec. 3.4 bandwidth constraint marks
under-provisioned 2.5D designs invalid.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.integration import AssemblyFlow, StackingStyle
from ..config.parameters import DEFAULT_PARAMETERS, ParameterSet
from ..config.power import NVIDIA_DRIVE_SERIES, DeviceSurvey
from ..core.design import ChipDesign
from ..core.operational import Workload
from ..core.report import LifecycleReport
from ..errors import ParameterError

#: Fig. 5 x-axis: integration options per device. InFO appears twice with
#: the chip-first (InFO_1) and chip-last (InFO_2) approaches.
FIG5_OPTIONS: tuple[tuple[str, str, AssemblyFlow | None], ...] = (
    ("2D", "2d", None),
    ("Micro", "micro_3d", AssemblyFlow.D2W),
    ("Hybrid", "hybrid_3d", AssemblyFlow.D2W),
    ("M3D", "m3d", None),
    ("MCM", "mcm", AssemblyFlow.CHIP_LAST),
    ("InFO_1", "info", AssemblyFlow.CHIP_FIRST),
    ("InFO_2", "info", AssemblyFlow.CHIP_LAST),
    ("EMIB", "emib", AssemblyFlow.CHIP_LAST),
    ("Si_int", "si_interposer", AssemblyFlow.CHIP_LAST),
)

APPROACHES = ("homogeneous", "heterogeneous")


def drive_2d_design(device: "DeviceSurvey | str") -> ChipDesign:
    """Table 4 row → 2D reference design."""
    if isinstance(device, str):
        device = _lookup_device(device)
    return ChipDesign.planar_2d(
        f"{device.name}_2D",
        node=device.node,
        gate_count=device.gate_count,
        package_class="fcbga",
        throughput_tops=device.throughput_tops,
        efficiency_tops_per_w=device.efficiency_tops_per_w,
    )


def _lookup_device(name: str) -> DeviceSurvey:
    for device in NVIDIA_DRIVE_SERIES:
        if device.name.lower() == name.lower():
            return device
    known = ", ".join(d.name for d in NVIDIA_DRIVE_SERIES)
    raise ParameterError(f"unknown DRIVE device {name!r}; known: {known}")


def drive_design(
    device: "DeviceSurvey | str",
    option_label: str,
    approach: str = "homogeneous",
) -> ChipDesign:
    """One Fig. 5 bar: a device × integration-option design."""
    if isinstance(device, str):
        device = _lookup_device(device)
    if approach not in APPROACHES:
        raise ParameterError(
            f"approach must be one of {APPROACHES}, got {approach!r}"
        )
    option = _option_by_label(option_label)
    label, integration, assembly = option
    reference = drive_2d_design(device)
    if integration == "2d":
        return reference
    if approach == "homogeneous":
        design = ChipDesign.homogeneous_split(
            reference,
            integration,
            n_dies=2,
            stacking=StackingStyle.F2F,
            assembly=assembly if assembly is not None else AssemblyFlow.D2W,
        )
    else:
        design = ChipDesign.heterogeneous_split(
            reference,
            integration,
            memory_node="28nm",
            stacking=StackingStyle.F2F,
            assembly=assembly if assembly is not None else AssemblyFlow.D2W,
        )
    return design.with_overrides(
        name=f"{device.name}_{label}_{approach[:5]}"
    )


def _option_by_label(label: str) -> tuple[str, str, AssemblyFlow | None]:
    for option in FIG5_OPTIONS:
        if option[0].lower() == label.lower():
            return option
    known = ", ".join(o[0] for o in FIG5_OPTIONS)
    raise ParameterError(f"unknown Fig. 5 option {label!r}; known: {known}")


@dataclass(frozen=True)
class DriveCell:
    """One bar of Fig. 5: device × option."""

    device: str
    option: str
    report: LifecycleReport

    @property
    def valid(self) -> bool:
        return self.report.valid


@dataclass(frozen=True)
class DriveStudyResult:
    """All Fig. 5 bars for one division approach."""

    approach: str
    workload: Workload
    cells: tuple[DriveCell, ...]

    def cell(self, device: str, option: str) -> DriveCell:
        for cell in self.cells:
            if (
                cell.device.lower() == device.lower()
                and cell.option.lower() == option.lower()
            ):
                return cell
        raise ParameterError(f"no cell for ({device}, {option})")

    def devices(self) -> list[str]:
        seen: list[str] = []
        for cell in self.cells:
            if cell.device not in seen:
                seen.append(cell.device)
        return seen

    def format_table(self) -> str:
        """Fig. 5-style rows: one line per device × option."""
        header = (
            f"{'device':<8} {'option':<8} {'emb kg':>9} {'oper kg':>9} "
            f"{'total kg':>9} {'BW ach/req (TB/s)':>20} {'valid':>6}"
        )
        lines = [f"Fig. 5 ({self.approach} approach)", header, "-" * len(header)]
        for cell in self.cells:
            bw = cell.report.bandwidth
            bw_text = (
                f"{bw.achieved_tb_s:8.1f}/{bw.required_tb_s:8.1f}"
                if bw.constrained
                else f"{'matches 2D':>17}"
            )
            lines.append(
                f"{cell.device:<8} {cell.option:<8} "
                f"{cell.report.embodied_kg:9.2f} "
                f"{cell.report.operational_kg:9.2f} "
                f"{cell.report.total_kg:9.2f} {bw_text:>20} "
                f"{'yes' if cell.valid else 'NO':>6}"
            )
        return "\n".join(lines)


def drive_study(
    approach: str = "homogeneous",
    workload: Workload | None = None,
    params: ParameterSet | None = None,
    fab_location: "str | float" = "taiwan",
    devices: "list[str] | None" = None,
    evaluator=None,
    session=None,
) -> DriveStudyResult:
    """Evaluate the full Fig. 5 grid for one division approach.

    Evaluation routes through the :class:`repro.api.Session` front door
    (pass ``session=`` to share one engine across studies): the grid
    re-prices each device's split designs across nine integration
    options, so the session's shared resolve/operational memos do most
    of the work once. Results are bit-identical to the per-design
    ``CarbonModel`` path (equivalence-tested). ``evaluator=`` survives
    as a thin shim — it is wrapped into a local session.
    """
    from ..api import local_session_for

    params = params if params is not None else DEFAULT_PARAMETERS
    workload = (
        workload if workload is not None else Workload.autonomous_vehicle()
    )
    session = local_session_for(evaluator, params, fab_location, session)
    device_list = (
        [_lookup_device(name) for name in devices]
        if devices is not None
        else list(NVIDIA_DRIVE_SERIES)
    )
    cells = []
    for device in device_list:
        for label, _, _ in FIG5_OPTIONS:
            design = drive_design(device, label, approach)
            report = session.report(
                design, workload=workload, params=params,
                fab_location=fab_location,
            )
            cells.append(
                DriveCell(device=device.name, option=label, report=report)
            )
    return DriveStudyResult(
        approach=approach, workload=workload, cells=tuple(cells)
    )
