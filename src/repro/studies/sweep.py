"""Design-space exploration helpers (the "carbon-conscious design" use).

The paper positions 3D-Carbon as an early-design-stage tool; these sweeps
exercise it the way an architect would: vary one design axis, hold the
rest, and compare lifecycle carbon. Used by the ablation benches and the
``design_space_exploration`` example.

Every sweep evaluates through a :class:`repro.engine.BatchEvaluator`
(each accepts an ``evaluator=`` to share caches across sweeps): axes
that cannot change the design resolution — fab location, wafer
diameter — resolve the design exactly once for the whole sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.integration import AssemblyFlow, StackingStyle
from ..config.parameters import DEFAULT_PARAMETERS, ParameterSet
from ..core.design import ChipDesign
from ..core.operational import Workload
from ..core.report import LifecycleReport
from ..errors import ParameterError

#: The full Table 1 integration span, in presentation order — the default
#: x-axis of :func:`sweep_integrations` and of the service's sweep requests.
DEFAULT_INTEGRATIONS: tuple[str, ...] = (
    "2d", "micro_3d", "hybrid_3d", "m3d",
    "mcm", "info", "emib", "si_interposer",
)


def _evaluator_for(evaluator, params, fab_location="taiwan"):
    """A caller-supplied engine, or a fresh one for this sweep."""
    if evaluator is not None:
        return evaluator
    from ..engine import BatchEvaluator

    return BatchEvaluator(params=params, fab_location=fab_location)


@dataclass(frozen=True)
class SweepPoint:
    """One evaluated configuration in a sweep."""

    label: str
    report: LifecycleReport


def sweep_integrations(
    reference: ChipDesign,
    integrations: "list[str] | None" = None,
    workload: Workload | None = None,
    params: ParameterSet | None = None,
    fab_location: "str | float" = "taiwan",
    evaluator=None,
) -> list[SweepPoint]:
    """Evaluate a 2D reference against every (or selected) integration."""
    params = params if params is not None else DEFAULT_PARAMETERS
    evaluator = _evaluator_for(evaluator, params, fab_location)
    if integrations is None:
        integrations = list(DEFAULT_INTEGRATIONS)
    points = []
    for name in integrations:
        if params.integration_spec(name).is_2d:
            design = reference
        else:
            design = ChipDesign.homogeneous_split(reference, name)
        report = evaluator.report(
            design, workload=workload, params=params, fab_location=fab_location
        )
        points.append(SweepPoint(label=name, report=report))
    return points


def sweep_die_counts(
    reference: ChipDesign,
    integration: str = "mcm",
    die_counts: "list[int] | None" = None,
    workload: Workload | None = None,
    params: ParameterSet | None = None,
    fab_location: "str | float" = "taiwan",
    evaluator=None,
) -> list[SweepPoint]:
    """How does chiplet count change lifecycle carbon for one technology?"""
    params = params if params is not None else DEFAULT_PARAMETERS
    evaluator = _evaluator_for(evaluator, params, fab_location)
    if die_counts is None:
        die_counts = [2, 3, 4]
    spec = params.integration_spec(integration)
    if spec.is_2d:
        raise ParameterError("die-count sweeps need a multi-die technology")
    points = []
    for n in die_counts:
        if spec.max_dies is not None and n > spec.max_dies:
            continue
        design = ChipDesign.homogeneous_split(
            reference, integration, n_dies=n,
            stacking=StackingStyle.F2F, assembly=AssemblyFlow.D2W,
        ).with_overrides(name=f"{reference.name}_{integration}_{n}die")
        report = evaluator.report(
            design, workload=workload, params=params, fab_location=fab_location
        )
        points.append(SweepPoint(label=f"{n} dies", report=report))
    return points


def sweep_wafer_diameters(
    design: ChipDesign,
    diameters_mm: "list[float] | None" = None,
    params: ParameterSet | None = None,
    fab_location: "str | float" = "taiwan",
    evaluator=None,
) -> list[SweepPoint]:
    """Embodied carbon vs wafer size (Table 2's 200–450 mm range).

    The wafer diameter never enters design resolution, so the whole sweep
    resolves the design once.
    """
    base = params if params is not None else DEFAULT_PARAMETERS
    evaluator = _evaluator_for(evaluator, base, fab_location)
    if diameters_mm is None:
        diameters_mm = [200.0, 300.0, 450.0]
    points = []
    for diameter in diameters_mm:
        swept = base.with_wafer_diameter(diameter)
        report = evaluator.report(design, params=swept, fab_location=fab_location)
        points.append(SweepPoint(label=f"{diameter:.0f} mm", report=report))
    return points


def sweep_fab_locations(
    design: ChipDesign,
    locations: "list[str] | None" = None,
    params: ParameterSet | None = None,
    evaluator=None,
) -> list[SweepPoint]:
    """Embodied carbon vs manufacturing grid (Table 2's 30–700 g/kWh).

    The grid only scales the fab-electricity term, so the design resolves
    once and only Eq. 3 re-prices per location.
    """
    base = params if params is not None else DEFAULT_PARAMETERS
    evaluator = _evaluator_for(evaluator, base)
    if locations is None:
        locations = ["iceland", "france", "usa", "taiwan", "india"]
    points = []
    for location in locations:
        report = evaluator.report(design, params=base, fab_location=location)
        points.append(SweepPoint(label=location, report=report))
    return points


def format_sweep(points: "list[SweepPoint]", title: str = "") -> str:
    """Fixed-width rendering of a sweep."""
    header = (
        f"{'configuration':<22} {'embodied kg':>12} {'oper kg':>9} "
        f"{'total kg':>9} {'valid':>6}"
    )
    lines = []
    if title:
        lines.append(title)
    lines.extend([header, "-" * len(header)])
    for point in points:
        lines.append(
            f"{point.label:<22.22} {point.report.embodied_kg:12.2f} "
            f"{point.report.operational_kg:9.2f} "
            f"{point.report.total_kg:9.2f} "
            f"{'yes' if point.report.valid else 'NO':>6}"
        )
    return "\n".join(lines)
