"""Additional commercial-product models from the paper's Table 1.

Table 1 names representative products for each integration technology;
beyond the two used for validation (EPYC, Lakefield), this module models:

* **AMD Ryzen 7 5800X3D** — 3D V-Cache: a 64 MB SRAM die hybrid-bonded
  face-to-face on top of a 7 nm CCD (Wuu ISSCC'22; Table 1's hybrid-
  bonding rows);
* **HBM-class memory stack** — micro-bumping F2B with ≥ 2 dies (Table 1's
  micro-bumping F2B row): a base logic die plus four DRAM-like tiers;
* **NVIDIA P100-class GPU** — silicon-interposer 2.5D (Table 1's silicon
  interposer row): a large GPU die plus four HBM sites on a CoWoS-style
  interposer.

These are exercised by tests and examples as realistic end-to-end
workloads for the model, not as validation anchors (no public LCA
exists for them).
"""

from __future__ import annotations

from ..config.integration import AssemblyFlow, StackingStyle
from ..core.design import ChipDesign, Die, DieKind, PackageSpec

#: Zen3 CCD and V-Cache die sizes (Wuu et al., ISSCC'22).
V_CACHE_CCD_AREA_MM2 = 81.0
V_CACHE_SRAM_AREA_MM2 = 41.0

#: HBM-style stack: base die + DRAM tiers (JEDEC-class geometry).
HBM_BASE_AREA_MM2 = 96.0
HBM_DRAM_AREA_MM2 = 92.0

#: P100-class assembly (Table 1: NVIDIA GPU P100).
P100_GPU_AREA_MM2 = 610.0
P100_HBM_SITE_AREA_MM2 = 96.0


def ryzen_5800x3d_design() -> ChipDesign:
    """AMD 3D V-Cache: SRAM die hybrid-bonded F2F onto the CCD."""
    ccd = Die(
        name="ccd",
        node="7nm",
        area_mm2=V_CACHE_CCD_AREA_MM2,
        workload_share=1.0,
        efficiency_tops_per_w=2.74,
    )
    v_cache = Die(
        name="v_cache",
        node="7nm",
        area_mm2=V_CACHE_SRAM_AREA_MM2,
        kind=DieKind.MEMORY,
        workload_share=0.0,
    )
    return ChipDesign(
        name="Ryzen7_5800X3D",
        dies=(ccd, v_cache),
        integration="hybrid_3d",
        stacking=StackingStyle.F2F,
        assembly=AssemblyFlow.D2W,  # AMD stacks known-good dies
        package=PackageSpec("fcbga"),
    )


def hbm_stack_design(dram_tiers: int = 4) -> ChipDesign:
    """HBM-class stack: base die + N DRAM tiers, micro-bump F2B."""
    if dram_tiers < 1:
        raise ValueError("an HBM stack needs at least one DRAM tier")
    dies = [
        Die(
            name="hbm_base",
            node="28nm",
            area_mm2=HBM_BASE_AREA_MM2,
            kind=DieKind.IO,
            workload_share=0.0,
        )
    ]
    dies.extend(
        Die(
            name=f"dram{i}",
            node="28nm",
            area_mm2=HBM_DRAM_AREA_MM2,
            kind=DieKind.MEMORY,
            workload_share=0.0,
            beol_layers=4,
        )
        for i in range(dram_tiers)
    )
    # DRAM tiers carry no compute; give the base die a token share so the
    # operational model has an owner when a workload is attached.
    dies[0] = dies[0].with_overrides(workload_share=1.0,
                                     efficiency_tops_per_w=0.5)
    return ChipDesign(
        name=f"HBM_{dram_tiers}high",
        dies=tuple(dies),
        integration="micro_3d",
        stacking=StackingStyle.F2B,
        assembly=AssemblyFlow.D2W,
        package=PackageSpec("pop_mobile"),
    )


def p100_class_design() -> ChipDesign:
    """P100-class GPU + 4 HBM sites on a silicon interposer."""
    dies = [
        Die(
            name="gpu",
            node="16nm",
            area_mm2=P100_GPU_AREA_MM2,
            workload_share=1.0,
            efficiency_tops_per_w=0.75,
        )
    ]
    dies.extend(
        Die(
            name=f"hbm{i}",
            node="28nm",
            area_mm2=P100_HBM_SITE_AREA_MM2,
            kind=DieKind.MEMORY,
            workload_share=0.0,
        )
        for i in range(4)
    )
    return ChipDesign(
        name="P100_class",
        dies=tuple(dies),
        integration="si_interposer",
        assembly=AssemblyFlow.CHIP_LAST,
        package=PackageSpec("fcbga"),
        throughput_tops=21.0,
    )
