"""Case studies: Sec. 4 validation and the Sec. 5 NVIDIA DRIVE analysis."""

from .decision import (
    PAPER_TABLE5,
    TABLE5_OPTIONS,
    Table5Result,
    Table5Row,
    table5_study,
)
from .products import (
    hbm_stack_design,
    p100_class_design,
    ryzen_5800x3d_design,
)
from .scaling import (
    SCALING_NODES,
    NodeScalingPoint,
    format_scaling_table,
    node_scaling_study,
)
from .drive import (
    APPROACHES,
    FIG5_OPTIONS,
    DriveCell,
    DriveStudyResult,
    drive_2d_design,
    drive_design,
    drive_study,
)
from .sweep import (
    SweepPoint,
    format_sweep,
    sweep_die_counts,
    sweep_fab_locations,
    sweep_integrations,
    sweep_wafer_diameters,
)
from .validation import (
    EpycValidation,
    LakefieldValidation,
    epyc_2d_equivalent_design,
    epyc_7452_design,
    epyc_validation,
    lakefield_design,
    lakefield_validation,
)

__all__ = [
    "APPROACHES",
    "NodeScalingPoint",
    "SCALING_NODES",
    "format_scaling_table",
    "hbm_stack_design",
    "node_scaling_study",
    "p100_class_design",
    "ryzen_5800x3d_design",
    "DriveCell",
    "DriveStudyResult",
    "EpycValidation",
    "FIG5_OPTIONS",
    "LakefieldValidation",
    "PAPER_TABLE5",
    "SweepPoint",
    "TABLE5_OPTIONS",
    "Table5Result",
    "Table5Row",
    "drive_2d_design",
    "drive_design",
    "drive_study",
    "epyc_2d_equivalent_design",
    "epyc_7452_design",
    "epyc_validation",
    "format_sweep",
    "lakefield_design",
    "lakefield_validation",
    "sweep_die_counts",
    "sweep_fab_locations",
    "sweep_integrations",
    "sweep_wafer_diameters",
    "table5_study",
]
