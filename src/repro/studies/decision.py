"""Table 5: sustainable decision-making for NVIDIA DRIVE ORIN (Sec. 5.2).

Evaluates the five *valid* 3D/2.5D alternatives to the 2D ORIN under the
homogeneous division approach — EMIB, silicon interposer, micro-bump 3D,
hybrid-bonding 3D and M3D — and derives the Table 5 columns: embodied and
overall carbon save ratios plus the choosing (T_c) and replacing (T_r)
metrics against the 10-year AV lifetime.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.parameters import DEFAULT_PARAMETERS, ParameterSet
from ..core.metrics import DecisionMetrics, decision_metrics, format_decision_table
from ..core.operational import Workload
from ..core.report import LifecycleReport
from .drive import drive_design

#: Table 5 columns, in paper order.
TABLE5_OPTIONS: tuple[str, ...] = ("EMIB", "Si_int", "Micro", "Hybrid", "M3D")

#: Paper's reference values for Table 5 (save ratios in %), used by the
#: benchmark harness to print paper-vs-measured.
PAPER_TABLE5 = {
    "EMIB": {"embodied_save": 23.69, "overall_save": 6.50},
    "Si_int": {"embodied_save": -9.59, "overall_save": -9.86},
    "Micro": {"embodied_save": 25.88, "overall_save": 7.63},
    "Hybrid": {"embodied_save": 35.64, "overall_save": 21.71},
    "M3D": {"embodied_save": 65.53, "overall_save": 41.03},
}


@dataclass(frozen=True)
class Table5Row:
    """One Table 5 column (an alternative IC) as a row."""

    option: str
    report: LifecycleReport
    metrics: DecisionMetrics


@dataclass(frozen=True)
class Table5Result:
    """Full Table 5 with the 2D baseline report."""

    baseline: LifecycleReport
    rows: tuple[Table5Row, ...]

    def row(self, option: str) -> Table5Row:
        for row in self.rows:
            if row.option.lower() == option.lower():
                return row
        raise KeyError(option)

    def format_table(self) -> str:
        return format_decision_table([row.metrics for row in self.rows])


def table5_study(
    device: str = "ORIN",
    workload: Workload | None = None,
    params: ParameterSet | None = None,
    fab_location: "str | float" = "taiwan",
    evaluator=None,
    session=None,
) -> Table5Result:
    """Reproduce Table 5 (defaults: ORIN, AV workload, 10-year lifetime).

    Evaluation routes through the :class:`repro.api.Session` front door
    (pass ``session=`` to share one engine — e.g. with the Fig. 5 grid,
    which evaluates the same ORIN splits); results are bit-identical to
    the per-design ``CarbonModel`` path (equivalence-tested).
    ``evaluator=`` survives as a thin shim wrapped into a local session.
    """
    from ..api import local_session_for

    params = params if params is not None else DEFAULT_PARAMETERS
    workload = (
        workload if workload is not None else Workload.autonomous_vehicle()
    )
    session = local_session_for(evaluator, params, fab_location, session)
    baseline = session.report(
        drive_design(device, "2D"), workload=workload, params=params,
        fab_location=fab_location,
    )
    rows = []
    for option in TABLE5_OPTIONS:
        design = drive_design(device, option, approach="homogeneous")
        report = session.report(
            design, workload=workload, params=params,
            fab_location=fab_location,
        )
        rows.append(
            Table5Row(
                option=option,
                report=report,
                metrics=decision_metrics(baseline, report),
            )
        )
    return Table5Result(baseline=baseline, rows=tuple(rows))
