"""Node-scaling trend study (ACT-style carbon-per-area/gate curves).

The intro's tension — newer nodes are more carbon-intensive per area but
pack more gates — is quantified here: per node, the study computes the
manufacturing carbon per cm² (Eq. 6 at max BEOL), the carbon per billion
gates (folding in density and yield for a reference die size), and the
embodied carbon of a fixed-gate-count reference design. Used by the
scaling example and as a sanity harness for the technology table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.parameters import DEFAULT_PARAMETERS, ParameterSet
from ..core.design import ChipDesign
from ..errors import ParameterError

#: Logic nodes in scaling order (coarse → fine).
SCALING_NODES: tuple[str, ...] = (
    "28nm", "22nm", "20nm", "16nm", "14nm", "12nm", "10nm", "7nm", "5nm",
    "3nm",
)


@dataclass(frozen=True)
class NodeScalingPoint:
    """Carbon characteristics of one node."""

    node: str
    feature_nm: float
    carbon_per_cm2_kg: float      # Eq. 6 at the node's max BEOL stack
    gate_density_m_per_mm2: float  # million gates per mm²
    carbon_per_bgate_kg: float    # embodied kg per billion gates (ref die)
    reference_design_kg: float    # full Eq. 3 for the reference design


def node_scaling_study(
    gate_count: float = 2.0e9,
    params: ParameterSet | None = None,
    fab_location: "str | float" = "taiwan",
    nodes: "tuple[str, ...]" = SCALING_NODES,
    evaluator=None,
) -> "list[NodeScalingPoint]":
    """Evaluate the scaling trend for a fixed-gate-count reference design.

    Pass a :class:`repro.engine.BatchEvaluator` to share caches with other
    studies (repeat runs at different ``fab_location`` reuse every node's
    resolution).
    """
    if gate_count <= 0:
        raise ParameterError("gate count must be positive")
    params = params if params is not None else DEFAULT_PARAMETERS
    ci = params.grid(fab_location).kg_co2_per_kwh
    if evaluator is None:
        from ..engine import BatchEvaluator

        evaluator = BatchEvaluator(params=params, fab_location=fab_location)

    from ..core.wafer import wafer_carbon_per_cm2

    points = []
    for name in nodes:
        node = params.node(name)
        per_cm2 = wafer_carbon_per_cm2(
            node, ci, beol_layers=float(node.max_beol_layers)
        ).total_kg_per_cm2
        density = 1.0 / node.gate_area_um2  # gates per µm² → M/mm²
        design = ChipDesign.planar_2d(
            f"ref_{name}", name, gate_count=gate_count
        )
        report = evaluator.embodied(
            design, params=params, fab_location=fab_location
        )
        points.append(
            NodeScalingPoint(
                node=name,
                feature_nm=node.feature_nm,
                carbon_per_cm2_kg=per_cm2,
                gate_density_m_per_mm2=density,
                carbon_per_bgate_kg=report.total_kg / (gate_count / 1e9),
                reference_design_kg=report.total_kg,
            )
        )
    return points


def format_scaling_table(points: "list[NodeScalingPoint]") -> str:
    """Fixed-width rendering of the scaling study."""
    header = (
        f"{'node':<7} {'kg/cm2':>8} {'Mgate/mm2':>10} "
        f"{'kg/Bgate':>9} {'ref design kg':>14}"
    )
    lines = [header, "-" * len(header)]
    for p in points:
        lines.append(
            f"{p.node:<7} {p.carbon_per_cm2_kg:8.3f} "
            f"{p.gate_density_m_per_mm2:10.1f} {p.carbon_per_bgate_kg:9.3f} "
            f"{p.reference_design_kg:14.3f}"
        )
    return "\n".join(lines)
