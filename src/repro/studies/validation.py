"""Validation studies of Sec. 4: EPYC 7452 (Fig. 4a) and Lakefield (Fig. 4b).

:func:`compare_backends` generalizes the section's method — run every
registered carbon backend over one design in a single batched engine
call — to any :class:`~repro.core.design.ChipDesign`; the two named
studies reproduce the paper's published comparisons:

* **AMD EPYC 7452** — an MCM 2.5D server CPU: four 74 mm² 7 nm CCDs plus a
  416 mm² 14 nm I/O die on a 58.5 × 75.4 mm organic package [8, 23].
* **Intel Lakefield** — a micro-bump (Foveros) 3D mobile processor: an
  82 mm² logic die stacked face-to-face on a 92 mm² base die in a
  12 × 12 mm package-on-package [15]. The paper models the pair as
  7 nm-on-14 nm; both D2W and W2W assembly variants are evaluated and the
  quoted effective yields (89.3 % / 88.4 % / 79.7 %) are reproduced.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.act_plus import ActPlusEstimate, act_plus_estimate
from ..baselines.lca import LcaEstimate, lca_estimate
from ..config.integration import AssemblyFlow, StackingStyle
from ..config.parameters import DEFAULT_PARAMETERS, ParameterSet
from ..core.design import ChipDesign, Die, DieKind, PackageSpec
from ..core.embodied import EmbodiedReport, embodied_carbon
from ..core.operational import Workload
from ..core.resolve import resolve_design
from ..pipeline.backends import BackendReport
from ..pipeline.registry import backend_names, get_backend

#: EPYC 7452 physical inputs (Sec. 4.1 and product documentation).
EPYC_CCD_AREA_MM2 = 74.0
EPYC_CCD_COUNT = 4
EPYC_IO_DIE_AREA_MM2 = 416.0
EPYC_PACKAGE_AREA_MM2 = 58.5 * 75.4

#: Lakefield physical inputs (Sec. 4.2 / ISSCC'20).
LAKEFIELD_LOGIC_AREA_MM2 = 82.0
LAKEFIELD_BASE_AREA_MM2 = 92.0
LAKEFIELD_PACKAGE_AREA_MM2 = 12.0 * 12.0


def epyc_7452_design() -> ChipDesign:
    """The EPYC 7452 as an MCM 2.5D design description."""
    dies = [
        Die(
            name=f"ccd{i}",
            node="7nm",
            area_mm2=EPYC_CCD_AREA_MM2,
            workload_share=1.0 / EPYC_CCD_COUNT,
        )
        for i in range(EPYC_CCD_COUNT)
    ]
    dies.append(
        Die(
            name="io_die",
            node="14nm",
            area_mm2=EPYC_IO_DIE_AREA_MM2,
            kind=DieKind.IO,
            workload_share=0.0,
        )
    )
    return ChipDesign(
        name="EPYC_7452",
        dies=tuple(dies),
        integration="mcm",
        assembly=AssemblyFlow.CHIP_LAST,
        package=PackageSpec("server_mcm", area_mm2=EPYC_PACKAGE_AREA_MM2),
    )


def epyc_2d_equivalent_design() -> ChipDesign:
    """EPYC's silicon as one 2D monolithic die (the Sec. 4.1 adjustment).

    LCA reports are written for 2D monolithic ICs; to compare like with
    like the paper re-runs 3D-Carbon on a single die of the summed area at
    the node the LCA database actually covers (14 nm).
    """
    total = EPYC_CCD_COUNT * EPYC_CCD_AREA_MM2 + EPYC_IO_DIE_AREA_MM2
    return ChipDesign.planar_2d(
        "EPYC_7452_2D_equivalent",
        node="14nm",
        area_mm2=total,
        package_class="server_mcm",
        package_area_mm2=EPYC_PACKAGE_AREA_MM2,
    )


def lakefield_design(assembly: AssemblyFlow = AssemblyFlow.D2W) -> ChipDesign:
    """Intel Lakefield as a micro-bump (Foveros) F2F 3D stack."""
    base = Die(
        name="base_die",
        node="14nm",
        area_mm2=LAKEFIELD_BASE_AREA_MM2,
        kind=DieKind.MEMORY,
        workload_share=0.0,
    )
    logic = Die(
        name="logic_die",
        node="7nm",
        area_mm2=LAKEFIELD_LOGIC_AREA_MM2,
        workload_share=1.0,
    )
    return ChipDesign(
        name=f"Lakefield_{assembly.value}",
        dies=(base, logic),
        integration="micro_3d",
        stacking=StackingStyle.F2F,
        assembly=assembly,
        package=PackageSpec("pop_mobile", area_mm2=LAKEFIELD_PACKAGE_AREA_MM2),
    )


@dataclass(frozen=True)
class BackendComparison:
    """Every registered carbon model's verdict on one design.

    The generalized Sec. 4 cross-model table: one row per backend, all
    evaluated in a single batched engine call (the design resolves once
    and every model prices the same resolution).
    """

    design_name: str
    workload_name: "str | None"
    reports: tuple[BackendReport, ...]
    #: Per-backend Monte-Carlo bands (parallel to ``reports``), drawn
    #: from each backend's *own* factor set; ``None`` when the
    #: comparison ran without draws.
    bands: "tuple | None" = None

    def report(self, backend: str) -> BackendReport:
        for entry in self.reports:
            if entry.backend == backend:
                return entry
        raise KeyError(backend)

    def band(self, backend: str):
        """The backend's uncertainty band (KeyError without draws)."""
        if self.bands is None:
            raise KeyError(backend)
        for entry, band in zip(self.reports, self.bands):
            if entry.backend == backend:
                return band
        raise KeyError(backend)

    def rows(self) -> "list[tuple]":
        """(label, die, bonding, packaging, interposer, emb, oper, total)."""
        rows = []
        for entry in self.reports:
            breakdown = entry.breakdown_dict()
            rows.append((
                get_backend(entry.backend).label,
                breakdown.get("die", 0.0),
                breakdown.get("bonding", 0.0),
                breakdown.get("packaging", 0.0),
                breakdown.get("interposer", 0.0),
                entry.embodied_kg,
                entry.operational_kg,
                entry.total_kg,
            ))
        return rows

    def format_table(self) -> str:
        """Fixed-width cross-model table (kg CO₂e; '—' = not modeled)."""
        header = (
            f"{'model':<14} {'die':>9} {'bond':>8} {'pkg':>8} {'subst':>8} "
            f"{'embodied':>9} {'oper':>9} {'total':>9}"
        )
        lines = [
            f"cross-model comparison — {self.design_name}"
            + (f" under {self.workload_name}" if self.workload_name else ""),
            header,
            "-" * len(header),
        ]
        for label, die, bond, pkg, subst, emb, oper, total in self.rows():
            oper_text = f"{oper:9.2f}" if oper is not None else f"{'—':>9}"
            lines.append(
                f"{label:<14.14} {die:9.2f} {bond:8.2f} {pkg:8.2f} "
                f"{subst:8.2f} {emb:9.2f} {oper_text} {total:9.2f}"
            )
        if self.bands is not None:
            lines.append("")
            lines.append(
                "uncertainty (each backend draws its own factor set):"
            )
            for entry, band in zip(self.reports, self.bands):
                lines.append(
                    f"{get_backend(entry.backend).label:<14.14} "
                    f"n={band.n:<5d} p05 {band.p05:9.2f}  "
                    f"p50 {band.p50:9.2f}  p95 {band.p95:9.2f}"
                )
        return "\n".join(lines)


def compare_backends(
    design: ChipDesign,
    backends: "list[str] | None" = None,
    workload: "Workload | None" = None,
    params: ParameterSet | None = None,
    fab_location: "str | float" = "taiwan",
    evaluator=None,
    draws: int = 0,
    seed: int = 20240623,
    session=None,
) -> BackendComparison:
    """Evaluate ``design`` under every (or selected) carbon backend.

    Routed through the :class:`repro.api.Session` front door (pass
    ``session=`` to share one engine across studies; the legacy
    ``evaluator=`` is a thin shim wrapped into a local session). One
    batched ``evaluate_many`` call: the shared resolve stage runs once
    and each backend's own stages are memoized per fingerprint, so
    adding a model to the comparison costs only that model's pricing
    math. Results are bit-identical to each backend's direct API
    (parity-tested).

    ``draws > 0`` additionally attaches a Monte-Carlo uncertainty band
    per backend, drawn from *that backend's own* factor set (Table 2 for
    3D-Carbon, the ACT intensity table, the GaBi CPA spread, ...) — the
    honest cross-model comparison the paper's Sec. 4 calls for. All
    bands share the one engine, so the design's resolution and every
    stage a draw cannot touch are computed once across the whole study.
    """
    from ..api import local_session_for
    from ..engine import EvalPoint

    params = params if params is not None else DEFAULT_PARAMETERS
    session = local_session_for(evaluator, params, fab_location, session)
    if backends is None:
        backends = list(backend_names())
    else:
        for name in backends:
            get_backend(name)  # typed BackendError before any evaluation
    points = [
        EvalPoint(
            design=design,
            params=params,
            fab_location=fab_location,
            workload=workload,
            label=name,
            backend=name,
        )
        for name in backends
    ]
    reports = session.native_reports(points)
    bands = None
    if draws:
        from ..analysis.uncertainty import monte_carlo

        bands = tuple(
            monte_carlo(
                design,
                workload=workload,
                params=params,
                fab_location=fab_location,
                samples=draws,
                seed=seed,
                evaluator=session.evaluator,
                backend=name,
            )
            for name in backends
        )
    return BackendComparison(
        design_name=design.name,
        workload_name=workload.name if workload is not None else None,
        reports=tuple(reports),
        bands=bands,
    )


@dataclass(frozen=True)
class EpycValidation:
    """Fig. 4(a): the three modeled estimates for EPYC 7452."""

    lca: LcaEstimate
    act_plus: ActPlusEstimate
    carbon_3d: EmbodiedReport
    carbon_3d_as_2d: EmbodiedReport

    @property
    def lca_vs_2d_discrepancy(self) -> float:
        """Relative gap between LCA and 2D-adjusted 3D-Carbon (paper ≈ 4.4 %)."""
        return abs(self.lca.total_kg - self.carbon_3d_as_2d.total_kg) / (
            self.carbon_3d_as_2d.total_kg
        )

    def rows(self) -> "list[tuple[str, float, float, float]]":
        """(model, die kg, packaging kg, total kg) rows for the bench."""
        return [
            ("LCA", self.lca.die_kg, self.lca.packaging_kg, self.lca.total_kg),
            (
                "ACT+",
                self.act_plus.die_kg,
                self.act_plus.packaging_kg,
                self.act_plus.total_kg,
            ),
            (
                "3D-Carbon",
                self.carbon_3d.die_kg + self.carbon_3d.bonding_kg
                + self.carbon_3d.interposer_kg,
                self.carbon_3d.packaging_kg,
                self.carbon_3d.total_kg,
            ),
        ]


def epyc_validation(
    params: ParameterSet | None = None,
    fab_location: "str | float" = "taiwan",
) -> EpycValidation:
    """Run the complete Fig. 4(a) comparison."""
    params = params if params is not None else DEFAULT_PARAMETERS
    ci = params.grid(fab_location).kg_co2_per_kwh
    design = epyc_7452_design()
    resolved = resolve_design(design, params)
    dies = [(rd.node.name, rd.area_mm2) for rd in resolved.dies]
    return EpycValidation(
        lca=lca_estimate(dies, params, monolithic=True),
        act_plus=act_plus_estimate(design, ci, params),
        carbon_3d=embodied_carbon(resolved, params, ci),
        carbon_3d_as_2d=embodied_carbon(epyc_2d_equivalent_design(), params, ci),
    )


@dataclass(frozen=True)
class LakefieldValidation:
    """Fig. 4(b): estimates and the Sec. 4.2 yield anchors for Lakefield."""

    lca: LcaEstimate
    act_plus: ActPlusEstimate
    carbon_3d_d2w: EmbodiedReport
    carbon_3d_w2w: EmbodiedReport
    d2w_logic_yield: float
    d2w_memory_yield: float
    w2w_yield: float

    def rows(self) -> "list[tuple[str, float]]":
        return [
            ("LCA", self.lca.total_kg),
            ("ACT+", self.act_plus.total_kg),
            ("3D-Carbon (D2W)", self.carbon_3d_d2w.total_kg),
            ("3D-Carbon (W2W)", self.carbon_3d_w2w.total_kg),
        ]


def lakefield_validation(
    params: ParameterSet | None = None,
    fab_location: "str | float" = "taiwan",
) -> LakefieldValidation:
    """Run the complete Fig. 4(b) comparison (both assembly flows)."""
    params = params if params is not None else DEFAULT_PARAMETERS
    ci = params.grid(fab_location).kg_co2_per_kwh
    d2w = lakefield_design(AssemblyFlow.D2W)
    w2w = lakefield_design(AssemblyFlow.W2W)
    resolved_d2w = resolve_design(d2w, params)
    resolved_w2w = resolve_design(w2w, params)
    dies = [(rd.node.name, rd.area_mm2) for rd in resolved_d2w.dies]
    # Die order: (base/memory, logic); Table 3 indexes bottom→top.
    memory_yield, logic_yield = resolved_d2w.stack_yields.per_die
    return LakefieldValidation(
        lca=lca_estimate(dies, params, monolithic=False, packaging_kg=0.3),
        act_plus=act_plus_estimate(d2w, ci, params),
        carbon_3d_d2w=embodied_carbon(resolved_d2w, params, ci),
        carbon_3d_w2w=embodied_carbon(resolved_w2w, params, ci),
        d2w_logic_yield=logic_yield,
        d2w_memory_yield=memory_yield,
        w2w_yield=resolved_w2w.stack_yields.per_die[0],
    )
