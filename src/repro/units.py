"""Unit conversion helpers shared across the 3D-Carbon model.

The model mixes die-scale geometry (mm², µm, nm), fab-scale carbon factors
(kg CO₂ per cm², kWh per cm²), interface physics (Gbps, fJ/bit) and
lifecycle accounting (kWh, kg CO₂, years). Keeping every conversion in one
module avoids the classic power-of-ten bugs of area-per-area models.

Conventions used throughout the package:

* areas are stored in **mm²** on design objects and converted to **cm²**
  only where a per-cm² carbon/energy factor is applied;
* lengths on dies are **mm**, feature sizes are **nm**, vias/pitches **µm**;
* energy is **kWh**, power **W**, carbon **kg CO₂-equivalent**;
* carbon intensity is **kg CO₂ per kWh** internally (grids are usually
  published in g CO₂/kWh — use :func:`grams_per_kwh`).
"""

from __future__ import annotations

import math

from .errors import UnitError

# ---------------------------------------------------------------------------
# area
# ---------------------------------------------------------------------------

MM2_PER_CM2 = 100.0
UM2_PER_MM2 = 1.0e6
NM_PER_UM = 1000.0
NM_PER_MM = 1.0e6

#: Standard wafer diameters (mm) and the resulting areas (mm²); the paper's
#: Table 2 gives the area range 31,415.93–159,043.13 mm², i.e. 200–450 mm.
WAFER_DIAMETERS_MM = (200.0, 300.0, 450.0)

HOURS_PER_YEAR = 8766.0  # 365.25 days
HOURS_PER_DAY = 24.0

SECONDS_PER_HOUR = 3600.0

BITS_PER_BYTE = 8.0

# fJ -> kWh: 1 fJ = 1e-15 J; 1 kWh = 3.6e6 J
KWH_PER_FJ = 1.0e-15 / 3.6e6
# W -> kW
KW_PER_W = 1.0e-3


def mm2_to_cm2(area_mm2: float) -> float:
    """Convert an area from mm² to cm²."""
    return area_mm2 / MM2_PER_CM2


def cm2_to_mm2(area_cm2: float) -> float:
    """Convert an area from cm² to mm²."""
    return area_cm2 * MM2_PER_CM2


def um2_to_mm2(area_um2: float) -> float:
    """Convert an area from µm² to mm²."""
    return area_um2 / UM2_PER_MM2


def nm_to_mm(length_nm: float) -> float:
    """Convert a length from nm to mm."""
    return length_nm / NM_PER_MM


def um_to_mm(length_um: float) -> float:
    """Convert a length from µm to mm."""
    return length_um / 1000.0


def wafer_area_mm2(diameter_mm: float) -> float:
    """Area of a circular wafer of the given diameter (mm → mm²)."""
    if diameter_mm <= 0:
        raise UnitError(f"wafer diameter must be positive, got {diameter_mm}")
    radius = diameter_mm / 2.0
    return math.pi * radius * radius


def wafer_diameter_mm(area_mm2: float) -> float:
    """Diameter of a circular wafer given its area (mm² → mm)."""
    if area_mm2 <= 0:
        raise UnitError(f"wafer area must be positive, got {area_mm2}")
    return 2.0 * math.sqrt(area_mm2 / math.pi)


# ---------------------------------------------------------------------------
# carbon / energy
# ---------------------------------------------------------------------------

def grams_per_kwh(grams: float) -> float:
    """Convert a grid carbon intensity from g CO₂/kWh to kg CO₂/kWh."""
    if grams < 0:
        raise UnitError(f"carbon intensity must be non-negative, got {grams}")
    return grams / 1000.0


def kwh_from_w_hours(power_w: float, hours: float) -> float:
    """Energy (kWh) consumed by ``power_w`` watts over ``hours`` hours."""
    if power_w < 0:
        raise UnitError(f"power must be non-negative, got {power_w}")
    if hours < 0:
        raise UnitError(f"duration must be non-negative, got {hours}")
    return power_w * KW_PER_W * hours


def years_to_hours(years: float, duty_hours_per_day: float = HOURS_PER_DAY) -> float:
    """Active hours accumulated over ``years`` at a daily duty cycle.

    ``duty_hours_per_day`` defaults to 24 (always-on); the autonomous-vehicle
    case study uses ~1 h/day of compute per Sudhakar et al. (IEEE Micro '23).
    """
    if years < 0:
        raise UnitError(f"years must be non-negative, got {years}")
    if not 0 <= duty_hours_per_day <= HOURS_PER_DAY:
        raise UnitError(
            f"duty hours/day must be within [0, 24], got {duty_hours_per_day}"
        )
    return years * 365.25 * duty_hours_per_day


# ---------------------------------------------------------------------------
# interfaces
# ---------------------------------------------------------------------------

def gbps_to_bits_per_s(gbps: float) -> float:
    """Convert Gbps to bit/s."""
    return gbps * 1.0e9


def tbps_to_gbps(tbps: float) -> float:
    """Convert Tbit/s to Gbit/s."""
    return tbps * 1000.0


def io_power_w(energy_per_bit_fj: float, data_rate_gbps: float) -> float:
    """Power of one I/O lane: energy/bit (fJ) × data rate (Gbps) → W.

    fJ/bit × bit/s = fW ⇒ multiply by 1e-15 to get W.
    """
    if energy_per_bit_fj < 0 or data_rate_gbps < 0:
        raise UnitError("I/O energy and data rate must be non-negative")
    return energy_per_bit_fj * 1.0e-15 * gbps_to_bits_per_s(data_rate_gbps)


def terabytes_per_s(bandwidth_bits_per_s: float) -> float:
    """Convert bit/s to TB/s (decimal terabytes)."""
    return bandwidth_bits_per_s / BITS_PER_BYTE / 1.0e12


def tops_to_ops(tops: float) -> float:
    """Convert tera-operations/second to operations/second."""
    return tops * 1.0e12
