"""Baseline carbon models the paper compares 3D-Carbon against (Sec. 4)."""

from .act import (
    ACT_FIXED_YIELD,
    ACT_PACKAGING_KG,
    ActDieEstimate,
    ActEstimate,
    act_die_carbon_kg,
    act_estimate,
)
from .act_plus import (
    ACT_PLUS_25D_COST_FACTOR,
    ActPlusEstimate,
    act_plus_estimate,
)
from .first_order import (
    FIRST_ORDER_KG_PER_CM2,
    FIRST_ORDER_PACKAGING_KG,
    FirstOrderEstimate,
    first_order_estimate,
)
from .lca import (
    GABI_CPA_KG_PER_CM2,
    GABI_FINEST_NODE,
    GABI_PACKAGING_KG,
    LcaEstimate,
    gabi_factor,
    lca_estimate,
)

__all__ = [
    "ACT_FIXED_YIELD",
    "ACT_PACKAGING_KG",
    "ACT_PLUS_25D_COST_FACTOR",
    "ActDieEstimate",
    "ActEstimate",
    "ActPlusEstimate",
    "FIRST_ORDER_KG_PER_CM2",
    "FIRST_ORDER_PACKAGING_KG",
    "FirstOrderEstimate",
    "GABI_CPA_KG_PER_CM2",
    "GABI_FINEST_NODE",
    "GABI_PACKAGING_KG",
    "LcaEstimate",
    "act_die_carbon_kg",
    "act_estimate",
    "act_plus_estimate",
    "first_order_estimate",
    "gabi_factor",
    "lca_estimate",
]
