"""LCA-report baseline — a GaBi-style per-area life-cycle database.

The paper validates against LCA reports built on the (commercial) GaBi
database (Sec. 4). We reproduce the two behaviours the paper relies on:

* **node coverage stops at 14 nm** — "Since GaBi doesn't cover the 7 nm
  process, it assumes 14 nm for both dies, leading to an underestimation"
  (Sec. 4.2): requests below 14 nm silently clamp to the 14 nm factor;
* **2D-monolithic accounting** — LCA reports are "designed for 2D
  monolithic ICs" (Sec. 4.1): in monolithic mode a multi-die product is
  priced as a single die of the summed area, whose negative-binomial yield
  is catastrophically low for big assemblies (why LCA over-reports EPYC).

LCA databases price *processed wafers*, so the per-die silicon charge
includes the dies-per-wafer edge losses (Eq. 5 geometry) on a 300 mm
wafer. Per-node factors are raw (pre-yield) wafer intensities calibrated
so the 2D-monolithic EPYC discrepancy against 3D-Carbon is ≈ 4.4 %.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from ..config.parameters import DEFAULT_PARAMETERS, ParameterSet
from ..core.dpw import effective_area_per_die_mm2
from ..core.yield_model import die_yield
from ..errors import ParameterError
from ..units import mm2_to_cm2

#: GaBi-like per-wafer-area carbon factors (kg CO₂/cm², pre-yield).
#: Nothing below 14 nm exists in the database (the paper's stated gap).
GABI_CPA_KG_PER_CM2: Mapping[str, float] = {
    "14nm": 1.405,
    "16nm": 1.39,
    "20nm": 1.23,
    "22nm": 1.18,
    "28nm": 1.09,
    "65nm": 0.75,
}

#: Wafer size the database assumes.
GABI_WAFER_DIAMETER_MM = 300.0

#: Finest node the database covers; finer requests clamp here.
GABI_FINEST_NODE = "14nm"

#: Flat packaging entry of the database (kg CO₂ per package).
GABI_PACKAGING_KG = 1.20


@dataclass(frozen=True)
class LcaEstimate:
    """LCA-report style embodied estimate."""

    die_kg: float
    packaging_kg: float
    clamped_nodes: tuple[str, ...]
    monolithic: bool

    @property
    def total_kg(self) -> float:
        return self.die_kg + self.packaging_kg

    def breakdown(self) -> dict[str, float]:
        return {
            "die": self.die_kg,
            "bonding": 0.0,
            "packaging": self.packaging_kg,
            "interposer": 0.0,
        }


def gabi_factor(node_name: str, params: ParameterSet) -> tuple[float, bool]:
    """Database factor for a node, clamping below 14 nm.

    Returns ``(kg CO₂/cm², clamped?)``.
    """
    node = params.node(node_name)
    key = node.name
    if key in GABI_CPA_KG_PER_CM2:
        return GABI_CPA_KG_PER_CM2[key], False
    finest = params.node(GABI_FINEST_NODE)
    if node.feature_nm < finest.feature_nm:
        return GABI_CPA_KG_PER_CM2[GABI_FINEST_NODE], True
    # Coarser than anything tabulated: use the coarsest entry.
    coarsest = max(
        GABI_CPA_KG_PER_CM2,
        key=lambda name: params.node(name).feature_nm,
    )
    return GABI_CPA_KG_PER_CM2[coarsest], True


def lca_estimate(
    dies: "list[tuple[str, float]]",
    params: ParameterSet | None = None,
    monolithic: bool = False,
    packaging_kg: float = GABI_PACKAGING_KG,
    cpa_scale: float = 1.0,
) -> LcaEstimate:
    """LCA-report estimate for ``(node, area_mm2)`` dies.

    ``monolithic=True`` prices the summed silicon as one die at the finest
    (clamped) node present — the 2D-monolithic accounting of Sec. 4.1.
    ``cpa_scale`` multiplies every database CPA factor — the uncertainty
    knob of the whole (internally consistent) table, exposed as the
    model-scoped ``gabi_cpa_scale`` Monte-Carlo factor.
    """
    if not dies:
        raise ParameterError("LCA estimate needs at least one die")
    if any(area <= 0 for _, area in dies):
        raise ParameterError("die areas must be positive")
    if cpa_scale <= 0:
        raise ParameterError(f"cpa_scale must be positive, got {cpa_scale}")
    params = params if params is not None else DEFAULT_PARAMETERS

    clamped: list[str] = []
    yield_node = params.node(GABI_FINEST_NODE)

    if monolithic:
        total_area = sum(area for _, area in dies)
        finest = min(dies, key=lambda d: params.node(d[0]).feature_nm)[0]
        factor, was_clamped = gabi_factor(finest, params)
        factor *= cpa_scale
        if was_clamped:
            clamped.append(finest)
        y = die_yield(
            total_area,
            yield_node.defect_density_per_cm2,
            yield_node.alpha,
        )
        wafer_share = effective_area_per_die_mm2(
            GABI_WAFER_DIAMETER_MM, total_area
        )
        die_kg = factor * mm2_to_cm2(wafer_share) / y
    else:
        die_kg = 0.0
        for node_name, area in dies:
            factor, was_clamped = gabi_factor(node_name, params)
            factor *= cpa_scale
            if was_clamped:
                clamped.append(node_name)
            y = die_yield(
                area, yield_node.defect_density_per_cm2, yield_node.alpha
            )
            wafer_share = effective_area_per_die_mm2(
                GABI_WAFER_DIAMETER_MM, area
            )
            die_kg += factor * mm2_to_cm2(wafer_share) / y

    return LcaEstimate(
        die_kg=die_kg,
        packaging_kg=packaging_kg,
        clamped_nodes=tuple(clamped),
        monolithic=monolithic,
    )
