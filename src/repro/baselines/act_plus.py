"""ACT+ baseline (Elgamal et al., 2023) — multi-die extension of ACT.

The paper characterizes ACT+ as estimating "2.5D IC carbon footprint from
2D ICs based on cost comparison" while it "simplistically treats 3D stacked
dies as 2D" (Sec. 1). Concretely, relative to 3D-Carbon:

* every die is priced with the plain ACT model (fixed yield, no BEOL or
  dies-per-wafer awareness);
* 2.5D assemblies scale the summed die carbon by a cost-derived packaging
  overhead factor instead of modeling bonding/substrate manufacturing;
* 3D stacks are the plain sum of their dies — no stacking yields, no
  bonding energy, no sequential-manufacturing modeling;
* packaging stays at ACT's fixed 0.15 kg per package.

This reproduces both validation observations of Sec. 4: ACT+ reports far
less packaging carbon for EPYC (0.15 vs 3.47 kg) and cannot distinguish
D2W from W2W for Lakefield.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.parameters import DEFAULT_PARAMETERS, ParameterSet
from ..core.design import ChipDesign
from ..core.resolve import resolve_design
from ..errors import ParameterError
from .act import ACT_PACKAGING_KG, ActEstimate, act_estimate

#: Cost-comparison multiplier ACT+ applies to 2.5D die carbon (the extra
#: known-good-die and assembly cost of chiplet integration, Elgamal'23).
ACT_PLUS_25D_COST_FACTOR = 1.05


@dataclass(frozen=True)
class ActPlusEstimate:
    """ACT+ result for a (possibly multi-die) design."""

    design_name: str
    integration: str
    act: ActEstimate
    cost_factor: float

    @property
    def die_kg(self) -> float:
        return self.act.die_kg * self.cost_factor

    @property
    def packaging_kg(self) -> float:
        return self.act.packaging_kg

    @property
    def total_kg(self) -> float:
        return self.die_kg + self.packaging_kg

    def breakdown(self) -> dict[str, float]:
        return {
            "die": self.die_kg,
            "bonding": 0.0,
            "packaging": self.packaging_kg,
            "interposer": 0.0,
        }


def act_plus_estimate(
    design: ChipDesign,
    ci_fab_kg_per_kwh: float,
    params: ParameterSet | None = None,
    packaging_kg: float = ACT_PACKAGING_KG,
    resolved=None,
) -> ActPlusEstimate:
    """ACT+ embodied estimate for any :class:`ChipDesign`.

    Die areas are resolved with the shared area model so that gate-count
    designs are comparable; everything downstream of the area is ACT's
    simplified accounting. ``resolved`` (optional) reuses an existing
    resolution of the same (design, params) pair — the backend pipeline
    passes its shared resolve-stage output so cross-model comparisons
    resolve each design once.
    """
    params = params if params is not None else DEFAULT_PARAMETERS
    if ci_fab_kg_per_kwh < 0:
        raise ParameterError("fab carbon intensity must be >= 0")
    if resolved is None:
        resolved = resolve_design(design, params)
    dies = [
        (rdie.name, rdie.node.name, rdie.area_mm2) for rdie in resolved.dies
    ]
    act = act_estimate(
        dies, ci_fab_kg_per_kwh, params, packaging_kg=packaging_kg
    )
    cost_factor = (
        ACT_PLUS_25D_COST_FACTOR if resolved.spec.is_2_5d else 1.0
    )
    return ActPlusEstimate(
        design_name=design.name,
        integration=resolved.spec.name,
        act=act,
        cost_factor=cost_factor,
    )
