"""ACT baseline (Gupta et al., ISCA 2022) — 2D architectural carbon model.

Reimplementation of the ACT embodied model as the paper describes and
compares against (Sec. 4):

    CFP = (CI_fab · EPA + GPA + MPA) · A_die / Y  +  C_packaging

with a *fixed* process yield (ACT's default 0.875 — no area dependence, no
dies-per-wafer geometry, no BEOL awareness) and a *fixed* per-package
carbon of 0.15 kg (the constant the paper contrasts with 3D-Carbon's
area-based 3.47 kg for EPYC). Node-level EPA/GPA/MPA reuse the shared
technology table, which is itself ACT-informed, so the comparison isolates
the modeling differences rather than the data differences.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..config.parameters import DEFAULT_PARAMETERS, ParameterSet
from ..errors import ParameterError
from ..units import mm2_to_cm2

#: ACT defaults.
ACT_FIXED_YIELD = 0.875
ACT_PACKAGING_KG = 0.15


@dataclass(frozen=True)
class ActDieEstimate:
    """ACT carbon for one die."""

    name: str
    node: str
    area_mm2: float
    carbon_kg: float


@dataclass(frozen=True)
class ActEstimate:
    """ACT total: per-die manufacturing plus fixed packaging."""

    dies: tuple[ActDieEstimate, ...]
    packaging_kg: float

    @property
    def die_kg(self) -> float:
        return sum(d.carbon_kg for d in self.dies)

    @property
    def total_kg(self) -> float:
        return self.die_kg + self.packaging_kg

    def breakdown(self) -> dict[str, float]:
        return {
            "die": self.die_kg,
            "bonding": 0.0,
            "packaging": self.packaging_kg,
            "interposer": 0.0,
        }


def act_die_carbon_kg(
    node_name: str,
    area_mm2: float,
    ci_fab_kg_per_kwh: float,
    params: ParameterSet | None = None,
    process_yield: float = ACT_FIXED_YIELD,
) -> float:
    """ACT per-die embodied carbon (no DPW, no BEOL, fixed yield)."""
    if area_mm2 <= 0:
        raise ParameterError(f"die area must be positive, got {area_mm2}")
    if not 0.0 < process_yield <= 1.0:
        raise ParameterError(f"yield must lie in (0, 1], got {process_yield}")
    params = params if params is not None else DEFAULT_PARAMETERS
    node = params.node(node_name)
    cpa = (
        ci_fab_kg_per_kwh * node.epa_kwh_per_cm2
        + node.gpa_kg_per_cm2
        + node.mpa_kg_per_cm2
    )
    return cpa * mm2_to_cm2(area_mm2) / process_yield


def act_estimate(
    dies: "list[tuple[str, str, float]]",
    ci_fab_kg_per_kwh: float,
    params: ParameterSet | None = None,
    process_yield: float = ACT_FIXED_YIELD,
    packaging_kg: float = ACT_PACKAGING_KG,
) -> ActEstimate:
    """ACT for a chip given ``(name, node, area_mm2)`` die tuples."""
    if not dies:
        raise ParameterError("ACT estimate needs at least one die")
    records = tuple(
        ActDieEstimate(
            name=name,
            node=node,
            area_mm2=area,
            carbon_kg=act_die_carbon_kg(
                node, area, ci_fab_kg_per_kwh, params, process_yield
            ),
        )
        for name, node, area in dies
    )
    return ActEstimate(dies=records, packaging_kg=packaging_kg)
