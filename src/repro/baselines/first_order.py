"""First-order baseline (Eeckhout, IEEE CAL 2022).

The paper's related work cites a first-order sustainability model that
"estimates the embodied footprint per chip based on die size" [10]. The
model is a linear per-area intensity with a flat packaging adder — useful
as the simplest possible sanity baseline and as the lower bound on model
fidelity in the comparison benches.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ParameterError
from ..units import mm2_to_cm2

#: First-order silicon carbon intensity (kg CO₂ per cm² of die), the
#: mid-range of published per-wafer LCAs across recent logic nodes.
FIRST_ORDER_KG_PER_CM2 = 1.5

#: Flat packaging + assembly adder (kg CO₂ per chip).
FIRST_ORDER_PACKAGING_KG = 0.3


@dataclass(frozen=True)
class FirstOrderEstimate:
    """First-order embodied estimate: k·A + c."""

    die_area_mm2: float
    die_kg: float
    packaging_kg: float

    @property
    def total_kg(self) -> float:
        return self.die_kg + self.packaging_kg

    def breakdown(self) -> dict[str, float]:
        """Component → kg mapping, shaped like the other baselines'."""
        return {
            "die": self.die_kg,
            "bonding": 0.0,
            "packaging": self.packaging_kg,
            "interposer": 0.0,
        }


def first_order_estimate(
    total_die_area_mm2: float,
    kg_per_cm2: float = FIRST_ORDER_KG_PER_CM2,
    packaging_kg: float = FIRST_ORDER_PACKAGING_KG,
) -> FirstOrderEstimate:
    """Die-size-only embodied model: carbon = k · area + packaging."""
    if total_die_area_mm2 <= 0:
        raise ParameterError("die area must be positive")
    if kg_per_cm2 < 0 or packaging_kg < 0:
        raise ParameterError("model coefficients must be >= 0")
    return FirstOrderEstimate(
        die_area_mm2=total_die_area_mm2,
        die_kg=kg_per_cm2 * mm2_to_cm2(total_die_area_mm2),
        packaging_kg=packaging_kg,
    )
