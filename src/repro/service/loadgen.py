"""Load harness: concurrent keep-alive clients against a worker fleet.

Two layers:

* :func:`run_load` drives one running endpoint with N concurrent
  keep-alive clients over a fixed request budget and reports
  client-observed throughput (rps) and latency percentiles (p50/p99) —
  the numbers an operator sizing a deployment actually cares about.
  Responses are digested per distinct design so separate runs can be
  compared for bit-identity without holding every payload.
* :func:`bench_fleet` sweeps a fleet over worker counts (1, 2, 4, ...):
  for each count it forks a fresh :class:`ServiceFleet` on a fresh
  store, runs a **cold** pass (every answer computed, claim rows
  arbitrating cross-worker dedup) and a **warm** pass (every answer from
  the shared store), and asserts every worker count returns payloads
  bit-identical to the 1-worker baseline. The rps-vs-workers curves land
  in ``BENCH_service.json`` as a ``service_fleet`` trajectory entry via
  :func:`run_fleet_bench`.

The recorded schema carries ``workers``, ``keep_alive``,
``concurrency`` and ``cpus`` next to the rps figures: a 4-worker curve
measured on a 1-CPU host (where forking buys no parallelism, only
dedup and isolation) must never be read as a like-for-like scaling
claim against a 4-CPU run.

Invoked by ``python -m repro.cli loadgen`` and the CI fleet smoke job;
``examples/load_test.py`` drives it against a local fleet.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import threading
import time

from ..errors import ParameterError
from ..obs.metrics import Histogram
from .bench import _design_payload
from .client import ServiceClient
from .fleet import ServiceFleet


def usable_cpus() -> int:
    """CPUs this process may run on (affinity-aware)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def _digest(result: dict) -> str:
    """Canonical fingerprint of one response payload."""
    canonical = json.dumps(result, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()


def run_load(
    url: str,
    requests_n: int = 64,
    concurrency: int = 8,
    distinct: int = 8,
    keep_alive: bool = True,
    token: "str | None" = None,
    timeout: float = 120.0,
) -> dict:
    """Drive ``requests_n`` evaluates at ``url`` from concurrent clients.

    ``distinct`` designs round-robin across the request budget, so a
    fresh store computes ``distinct`` points and serves the rest from
    store/coalescing — the mix that exercises cross-worker dedup.
    ``keep_alive=False`` drops every connection after each request
    (``pool_size=0``), isolating what connection reuse is worth.

    Returns rps, p50/p99 latency (ms), per-design response digests (for
    cross-run bit-identity checks), and the response source counts.
    """
    if requests_n < 1:
        raise ParameterError(f"need >= 1 request, got {requests_n}")
    if concurrency < 1:
        raise ParameterError(f"need >= 1 client, got {concurrency}")
    if distinct < 1:
        raise ParameterError(f"need >= 1 distinct design, got {distinct}")
    latency = Histogram("loadgen_latency", "per-request wall time")
    counter = {"next": 0}
    lock = threading.Lock()
    digests: "dict[int, str]" = {}
    sources: "dict[str, int]" = {}
    errors: "list[str]" = []

    def worker() -> None:
        client = ServiceClient(
            url, timeout=timeout, token=token,
            pool_size=1 if keep_alive else 0,
        )
        try:
            while True:
                with lock:
                    index = counter["next"]
                    if index >= requests_n:
                        return
                    counter["next"] = index + 1
                design_index = index % distinct
                try:
                    with latency.time():
                        envelope = client.evaluate(
                            _design_payload(design_index)
                        )
                except Exception as error:  # noqa: BLE001 - recorded
                    with lock:
                        errors.append(f"{type(error).__name__}: {error}")
                    continue
                digest = _digest(envelope["result"])
                with lock:
                    source = envelope.get("cache", "?")
                    sources[source] = sources.get(source, 0) + 1
                    previous = digests.setdefault(design_index, digest)
                    if previous != digest:
                        errors.append(
                            f"design {design_index} answered two different "
                            f"payloads"
                        )
        finally:
            client.close()

    threads = [
        threading.Thread(target=worker, name=f"loadgen-{i}", daemon=True)
        for i in range(concurrency)
    ]
    start = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    elapsed = time.perf_counter() - start
    summary = latency.summary()
    completed = requests_n - len(errors)
    return {
        "requests": requests_n,
        "completed": completed,
        "concurrency": concurrency,
        "distinct_designs": distinct,
        "keep_alive": keep_alive,
        "elapsed_s": elapsed,
        "rps": completed / elapsed if elapsed > 0 else 0.0,
        "p50_ms": summary["p50"] * 1e3,
        "p99_ms": summary["p99"] * 1e3,
        "sources": sources,
        "digests": digests,
        "errors": errors,
    }


def bench_fleet(
    worker_counts: "tuple | list" = (1, 2, 4),
    requests_n: int = 64,
    concurrency: int = 8,
    distinct: int = 8,
    keep_alive: bool = True,
) -> dict:
    """rps-vs-workers curves: cold + warm pass per fleet size.

    Every worker count gets a fresh fleet on a fresh store. The
    1-worker cold digests are the identity baseline: every later pass —
    any worker count, cold or warm — must answer bit-identical payloads
    or the curve entry reports ``identical=False`` (and the whole
    result ``identical=False``).
    """
    if not worker_counts:
        raise ParameterError("need at least one worker count")
    counts = sorted(set(int(c) for c in worker_counts))
    if counts[0] < 1:
        raise ParameterError(f"worker counts must be >= 1, got {counts[0]}")
    curves = []
    baseline: "dict[int, str] | None" = None
    with tempfile.TemporaryDirectory(prefix="carbon3d_fleet_") as tmp:
        for workers in counts:
            store_path = os.path.join(tmp, f"fleet_{workers}.sqlite3")
            fleet = ServiceFleet(workers=workers, store_path=store_path)
            fleet.start()
            try:
                cold = run_load(
                    fleet.url, requests_n=requests_n,
                    concurrency=concurrency, distinct=distinct,
                    keep_alive=keep_alive,
                )
                warm = run_load(
                    fleet.url, requests_n=requests_n,
                    concurrency=concurrency, distinct=distinct,
                    keep_alive=keep_alive,
                )
            finally:
                fleet.close()
            if cold["errors"] or warm["errors"]:
                raise AssertionError(
                    f"loadgen errors at {workers} worker(s): "
                    f"{(cold['errors'] + warm['errors'])[:3]}"
                )
            if baseline is None:
                baseline = cold["digests"]
            identical = (
                cold["digests"] == baseline and warm["digests"] == baseline
            )
            curves.append({
                "workers": workers,
                "cold_rps": cold["rps"],
                "warm_rps": warm["rps"],
                "cold_p50_ms": cold["p50_ms"],
                "cold_p99_ms": cold["p99_ms"],
                "warm_p50_ms": warm["p50_ms"],
                "warm_p99_ms": warm["p99_ms"],
                "identical": identical,
            })
    single = curves[0]["warm_rps"]
    best = max(curves, key=lambda c: c["warm_rps"])
    return {
        "requests": requests_n,
        "concurrency": concurrency,
        "distinct_designs": distinct,
        "keep_alive": keep_alive,
        "cpus": usable_cpus(),
        "workers": counts,
        "curves": curves,
        "identical": all(c["identical"] for c in curves),
        "best_workers": best["workers"],
        "best_warm_rps": best["warm_rps"],
        "scaling_vs_1": best["warm_rps"] / single if single > 0 else 0.0,
    }


def run_fleet_bench(
    output_path: "str | None" = "BENCH_service.json",
    worker_counts: "tuple | list" = (1, 2, 4),
    requests_n: int = 64,
    concurrency: int = 8,
    distinct: int = 8,
    keep_alive: bool = True,
) -> dict:
    """Run the fleet bench and (optionally) append it to the trajectory."""
    result = {
        "bench": "service_fleet",
        "fleet": bench_fleet(
            worker_counts=worker_counts, requests_n=requests_n,
            concurrency=concurrency, distinct=distinct,
            keep_alive=keep_alive,
        ),
    }
    if output_path:
        from ..io.results import write_bench_report

        write_bench_report(result, output_path)
    return result


def format_fleet_bench(result: dict) -> str:
    """One-block human rendering of the rps-vs-workers curves."""
    f = result["fleet"]
    lines = [
        f"fleet        {f['requests']} requests × {f['concurrency']} "
        f"clients ({f['distinct_designs']} designs, "
        f"keep_alive={f['keep_alive']}, {f['cpus']} cpu(s)): "
        f"identical={f['identical']}"
    ]
    for curve in f["curves"]:
        lines.append(
            f"             {curve['workers']}w: "
            f"cold {curve['cold_rps']:.0f} rps "
            f"(p50 {curve['cold_p50_ms']:.1f}ms "
            f"p99 {curve['cold_p99_ms']:.1f}ms) → "
            f"warm {curve['warm_rps']:.0f} rps "
            f"(p50 {curve['warm_p50_ms']:.1f}ms "
            f"p99 {curve['warm_p99_ms']:.1f}ms)"
        )
    lines.append(
        f"             best: {f['best_workers']} worker(s) at "
        f"{f['best_warm_rps']:.0f} rps warm "
        f"({f['scaling_vs_1']:.2f}× the 1-worker warm rps)"
    )
    return "\n".join(lines)
