"""Pre-forked multi-worker front end for the carbon service.

``ServiceFleet`` scales the single-process :class:`CarbonService`
horizontally on one host: the parent binds the listening socket **once**
and forks N workers, each running the unmodified threaded handler loop
over the shared socket (the kernel load-balances ``accept`` across
them). Binding before forking means there is no readiness race — a
client connecting the instant :meth:`start` returns simply queues in the
listen backlog until a worker accepts.

**Supervision.** The parent never serves; it watches its children with
per-pid ``waitpid(WNOHANG)`` polls (never ``waitpid(-1)``, which would
steal the engine's ``fork_map`` children) and refills a dead slot with a
fresh fork, reusing the kill-and-reap discipline of
:mod:`repro.engine.parallel`. Restarts stop once shutdown begins.

**Shutdown.** :meth:`close` fans SIGTERM out to every worker; each
worker's handler triggers the existing graceful drain (stop admitting,
finish in-flight, persist to the store, release). Workers that outlive
the drain budget are SIGKILLed and reaped, so ``close`` always returns
and never leaks zombies.

**Shared state.** Workers share nothing in memory — each builds its own
:class:`CarbonService` (and its own SQLite connection) *after* the fork.
Cross-worker dedup rides on the store's claim rows (see
:mod:`repro.service.store`): concurrent identical requests on different
workers still compute exactly once. An in-memory fleet (no
``store_path``) serves fine but loses that guarantee — each worker
dedups only within itself.
"""

from __future__ import annotations

import os
import signal
import socket
import sys
import threading
import time
import traceback

from ..engine.parallel import default_worker_count, fork_available
from .server import CarbonService


def resolve_worker_count(workers) -> int:
    """``--workers N|auto`` → a positive int (auto = usable CPUs)."""
    if workers in (None, "auto"):
        return default_worker_count()
    count = int(workers)
    if count < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return count


class ServiceFleet:
    """Parent-side handle: bound socket, worker pids, supervision."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: "int | str | None" = 2,
        poll_interval_s: float = 0.2,
        drain_timeout_s: float = 10.0,
        backlog: int = 128,
        **server_kwargs,
    ) -> None:
        if not fork_available():  # pragma: no cover - POSIX-only repo
            raise RuntimeError("ServiceFleet requires os.fork (POSIX)")
        self.host = host
        self.port = port
        self.workers = resolve_worker_count(workers)
        self.poll_interval_s = poll_interval_s
        self.drain_timeout_s = drain_timeout_s
        self.backlog = backlog
        self.server_kwargs = server_kwargs
        self.socket: "socket.socket | None" = None
        #: worker index → live child pid
        self.pids: "dict[int, int]" = {}
        #: dead workers refilled by supervision (test/ops visibility)
        self.restarts = 0
        self._stopping = threading.Event()
        self._supervisor: "threading.Thread | None" = None
        self._lock = threading.Lock()

    # -- lifecycle ----------------------------------------------------------

    def start(self, supervise: bool = True) -> "ServiceFleet":
        """Bind once, fork all workers, begin supervising."""
        self.socket = socket.create_server(
            (self.host, self.port), backlog=self.backlog
        )
        self.port = self.socket.getsockname()[1]
        for index in range(self.workers):
            self._spawn(index)
        if supervise:
            self._supervisor = threading.Thread(
                target=self._supervise, name="carbon3d-fleet", daemon=True
            )
            self._supervisor.start()
        return self

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def alive(self) -> "list[int]":
        """Live worker pids (snapshot)."""
        with self._lock:
            return sorted(self.pids.values())

    def _spawn(self, index: int) -> int:
        pid = os.fork()
        if pid == 0:  # pragma: no cover - exercised via forked children
            status = 1
            try:
                self._worker_main(index)
                status = 0
            except BaseException:
                traceback.print_exc()
            finally:
                os._exit(status)
        with self._lock:
            self.pids[index] = pid
        return pid

    def _worker_main(self, index: int) -> None:
        """Child body: fresh server over the inherited socket, then drain.

        Everything process-local is rebuilt after the fork — the
        ``CarbonService``, its dispatcher, metrics registry (tagged
        ``worker=<index>``), and, crucially, the SQLite connection
        (``store_path`` in ``server_kwargs``; sharing a parent
        connection across a fork is undefined in SQLite).
        """
        server = CarbonService(
            listen_socket=self.socket,
            worker_index=index,
            **self.server_kwargs,
        )

        def _drain(signum, frame):
            # shutdown() blocks until the serve loop exits; hand it to a
            # helper thread, then serve_forever's finally drains.
            threading.Thread(
                target=server.shutdown,
                name="carbon3d-worker-drain",
                daemon=True,
            ).start()

        signal.signal(signal.SIGTERM, _drain)
        signal.signal(signal.SIGINT, signal.SIG_IGN)
        try:
            server.serve_forever(poll_interval=0.1)
        finally:
            server.close()

    # -- supervision --------------------------------------------------------

    def poll(self) -> "list[int]":
        """Reap dead workers; refill their slots unless stopping.

        Returns the indices restarted this call. Per-pid
        ``waitpid(WNOHANG)`` keeps this safe to run from a thread in a
        process that also forks ``fork_map`` children elsewhere.
        """
        with self._lock:
            entries = list(self.pids.items())
        restarted = []
        for index, pid in entries:
            try:
                done, _status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                done = pid
            if done == 0:
                continue
            with self._lock:
                if self.pids.get(index) == pid:
                    del self.pids[index]
            if not self._stopping.is_set():
                self._spawn(index)
                self.restarts += 1
                restarted.append(index)
        return restarted

    def _supervise(self) -> None:
        while not self._stopping.wait(self.poll_interval_s):
            self.poll()

    def request_stop(self) -> None:
        """Flag shutdown (signal-handler safe); ``wait`` then returns."""
        self._stopping.set()

    def wait(self) -> None:
        """Block until :meth:`request_stop` or :meth:`close` is called."""
        self._stopping.wait()

    # -- shutdown -----------------------------------------------------------

    def close(self) -> None:
        """SIGTERM fan-out → bounded graceful drain → SIGKILL stragglers."""
        self._stopping.set()
        if self._supervisor is not None:
            self._supervisor.join(timeout=5.0)
            self._supervisor = None
        with self._lock:
            entries = list(self.pids.items())
            self.pids.clear()
        for _index, pid in entries:
            try:
                os.kill(pid, signal.SIGTERM)
            except (OSError, ProcessLookupError):
                pass
        deadline = time.monotonic() + self.drain_timeout_s
        for _index, pid in entries:
            if not self._reap(pid, deadline):
                sys.stderr.write(
                    f"[carbon3d] fleet worker {pid} outlived the "
                    f"{self.drain_timeout_s}s drain budget; killing\n"
                )
                try:
                    os.kill(pid, signal.SIGKILL)
                except (OSError, ProcessLookupError):
                    pass
                self._reap(pid, time.monotonic() + 5.0)
        if self.socket is not None:
            self.socket.close()
            self.socket = None

    @staticmethod
    def _reap(pid: int, deadline: float) -> bool:
        """Wait for ``pid`` until ``deadline``; True once reaped."""
        while True:
            try:
                done, _status = os.waitpid(pid, os.WNOHANG)
            except ChildProcessError:
                return True
            if done != 0:
                return True
            if time.monotonic() >= deadline:
                return False
            time.sleep(0.01)

    def __enter__(self) -> "ServiceFleet":
        if self.socket is None:
            self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.close()
