"""Service throughput bench: warm vs cold store → ``BENCH_service.json``.

Measures end-to-end HTTP requests/second against a real
:class:`~repro.service.server.CarbonService` under the traffic mix an
exploration service actually sees:

* ``evaluates`` single-point requests over *distinct* designs (each needs
  its own resolve/wirelength work when the store is cold);
* ``mc_requests`` Monte-Carlo summary requests (the expensive
  interactive queries a persistent store pays off most on).

Each repeat runs the same request list twice through two server
processes-worth of state: a **cold** pass against a fresh store (every
answer computed through the engine), then a **restarted** server on the
same store file — dispatcher and engine memos empty, exactly the
cold-restart scenario — where every answer must come back from the
persistent store. The bench asserts the two passes return bit-identical
payloads and that the warm pass never touched the engine, so the
speedup it reports compares equivalent, verified work. Per-request
latency is measured client-side into a
:class:`repro.obs.metrics.Histogram`; the best repeat's p50/p99 land in
the report next to the rps figures.

Invoked by ``python -m repro.cli bench --service`` and
``benchmarks/perf_report.py --service``.
"""

from __future__ import annotations

import os
import tempfile
import threading
import time

from ..errors import ParameterError
from ..obs.metrics import Histogram
from .client import ServiceClient
from .server import make_server

#: Gate count of the 2-die hybrid-bonded reference each request varies.
_BASE_GATES = 17.0e9


def _design_payload(index: int) -> dict:
    """Distinct 2-die hybrid-3D designs (distinct gate counts → no sharing)."""
    gates = _BASE_GATES * (1.0 + 0.01 * index)
    return {
        "name": f"bench_{index}",
        "integration": "hybrid_3d",
        "stacking": "f2f",
        "assembly": "d2w",
        "package": {"class": "fcbga"},
        "throughput_tops": 254.0,
        "dies": [
            {"name": "top", "node": "7nm", "gate_count": gates / 2,
             "workload_share": 0.5},
            {"name": "bottom", "node": "7nm", "gate_count": gates / 2,
             "workload_share": 0.5},
        ],
    }


def _requests(evaluates: int, mc_requests: int, samples: int) -> list:
    """(kind, kwargs) pairs, evaluates first, then Monte-Carlo summaries."""
    requests = [
        ("evaluate", {"design": _design_payload(i)})
        for i in range(evaluates)
    ]
    requests.extend(
        ("montecarlo", {
            "design": _design_payload(i),
            "samples": samples,
            "seed": 20240623 + i,
        })
        for i in range(mc_requests)
    )
    return requests


def _run_pass(
    store_path: str, requests: list
) -> "tuple[float, list, dict, dict]":
    """One server lifetime: serve every request.

    Returns ``(elapsed_s, results, stats, latency_summary)`` — the
    latency summary is a per-request client-side histogram
    (count/p50/p90/p99/...) from :class:`repro.obs.metrics.Histogram`.
    """
    server = make_server(store_path=store_path)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    client = ServiceClient(server.url)
    latency = Histogram("request_latency", "per-request wall time")
    try:
        results = []
        start = time.perf_counter()
        for kind, kwargs in requests:
            with latency.time():
                envelope = getattr(client, kind)(**kwargs)
            results.append((envelope["cache"], envelope["result"]))
        elapsed = time.perf_counter() - start
        stats = client.stats()
    finally:
        server.close()
        thread.join(timeout=5.0)
    return elapsed, results, stats, latency.summary()


def bench_service(
    evaluates: int = 24,
    mc_requests: int = 8,
    samples: int = 400,
    repeats: int = 3,
) -> dict:
    """Cold-vs-warm-store requests/sec over HTTP; assert identical payloads."""
    if repeats < 1:
        raise ParameterError(f"need >= 1 bench repeat, got {repeats}")
    requests = _requests(evaluates, mc_requests, samples)
    cold_s = warm_s = float("inf")
    cold_latency = warm_latency = None
    with tempfile.TemporaryDirectory(prefix="carbon3d_bench_") as tmp:
        for repeat in range(repeats):
            store_path = os.path.join(tmp, f"store_{repeat}.sqlite3")
            cold, cold_results, _, cold_lat = _run_pass(store_path, requests)
            warm, warm_results, warm_stats, warm_lat = _run_pass(
                store_path, requests
            )
            if [r for _, r in cold_results] != [r for _, r in warm_results]:
                raise AssertionError(
                    "warm-store responses diverged from cold responses"
                )
            if any(source != "store" for source, _ in warm_results):
                raise AssertionError(
                    "a warm-pass request missed the persistent store"
                )
            if warm_stats["engine"]["resolve_misses"] != 0:
                raise AssertionError(
                    "the warm pass re-resolved a design — store bypassed"
                )
            # Keep the latency summary of each side's best repeat so
            # the trajectory compares like-for-like with the rps floor.
            if cold < cold_s:
                cold_s, cold_latency = cold, cold_lat
            if warm < warm_s:
                warm_s, warm_latency = warm, warm_lat
    n = len(requests)
    return {
        "requests": n,
        # Run shape, recorded so trajectory entries stay comparable as
        # the serving stack evolves (pre-forked fleets, keep-alive
        # clients): this bench is the single-process, single-client
        # baseline the fleet curves are measured against.
        "workers": 1,
        "keep_alive": True,
        "evaluates": evaluates,
        "mc_requests": mc_requests,
        "mc_samples": samples,
        "cold_s": cold_s,
        "warm_s": warm_s,
        "cold_rps": n / cold_s,
        "warm_rps": n / warm_s,
        "cold_p50_ms": cold_latency["p50"] * 1e3,
        "cold_p99_ms": cold_latency["p99"] * 1e3,
        "warm_p50_ms": warm_latency["p50"] * 1e3,
        "warm_p99_ms": warm_latency["p99"] * 1e3,
        "speedup": cold_s / warm_s,
        "identical": True,
    }


def run_service_bench(
    output_path: "str | None" = "BENCH_service.json",
    evaluates: int = 24,
    mc_requests: int = 8,
    samples: int = 400,
    repeats: int = 3,
) -> dict:
    """Run the bench and (optionally) write the JSON report."""
    result = {
        "bench": "service",
        "service": bench_service(
            evaluates=evaluates, mc_requests=mc_requests, samples=samples,
            repeats=repeats,
        ),
    }
    if output_path:
        from ..io.results import write_bench_report

        write_bench_report(result, output_path)
    return result


def format_service_bench(result: dict) -> str:
    """One-paragraph human rendering."""
    s = result["service"]
    text = (
        f"service      {s['requests']} requests ({s['evaluates']} evaluate + "
        f"{s['mc_requests']} montecarlo×{s['mc_samples']}): "
        f"cold {s['cold_s'] * 1e3:.1f}ms ({s['cold_rps']:.0f} req/s) → "
        f"warm store {s['warm_s'] * 1e3:.1f}ms ({s['warm_rps']:.0f} req/s) "
        f"({s['speedup']:.1f}×, identical={s['identical']})"
    )
    if "cold_p50_ms" in s:
        text += (
            f"\n             latency: cold p50 {s['cold_p50_ms']:.2f}ms "
            f"p99 {s['cold_p99_ms']:.2f}ms → warm p50 "
            f"{s['warm_p50_ms']:.2f}ms p99 {s['warm_p99_ms']:.2f}ms"
        )
    return text
