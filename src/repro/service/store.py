"""Persistent, content-addressed result store (SQLite, stdlib-only).

The store maps a **content key** — the SHA-256 digest of a canonical
rendering of the engine's value fingerprints (see
:func:`canonical_text`) — to the JSON payload of a finished evaluation.
Because the key is derived from the *values* a pipeline stage reads (the
frozen parameter records, the design, the workload, the grid carbon
intensities) plus the id of the carbon backend that computed them, two
requests share an entry exactly when the engine could not distinguish
them — the same sharing rule :mod:`repro.pipeline.fingerprint` applies
in-process, made durable.

Unlike Python's ``hash()`` (randomized per process for strings), the
digest is stable across interpreter sessions, so a server restart keeps
serving from the store instead of recomputing — the ROADMAP's
"cross-session cache persistence" follow-up.

Eviction follows the same :class:`repro.caching.EvictionPolicy` the
engine's in-memory caches use — LRU up to ``max_entries`` — implemented
over a monotonically increasing ``last_used`` clock column (batched
deletes amortize the SQL cost). Hit/miss/eviction statistics are kept
per instance and, cumulatively, in the database itself.

**Claim rows.** Because the database file is shared across the
pre-forked worker fleet, it doubles as the cross-process coordination
point for the dispatcher's exactly-one-compute guarantee: short-lived
rows in the ``claims`` table mark keys a worker is computing *right
now* (claim → compute → publish → release). Claims carry a TTL, so a
worker killed mid-claim never wedges a key — the stale row is swept on
the next contested :meth:`ResultStore.try_claim` and another worker
recomputes (bit-identically, by the engine's determinism contract).

**Self-healing.** The store is a cache of recomputable results, which
makes the aggressive recovery policy safe: a database that fails its
open-time ``PRAGMA quick_check`` — or turns corrupt at runtime — is
*quarantined* (renamed aside to ``<name>.corrupt``, WAL/SHM sidecars
included, for post-mortem) and a fresh one is built in its place; every
lost entry costs exactly one recomputation. Transient ``SQLITE_BUSY``
contention is retried a bounded number of times with a small backoff
before surfacing as a typed :class:`StoreError`.
"""

from __future__ import annotations

import enum
import hashlib
import json
import sqlite3
import sys
import threading
import time
from dataclasses import fields as dataclass_fields
from dataclasses import is_dataclass
from pathlib import Path

from ..caching import EvictionPolicy
from ..errors import CarbonModelError
from ..pipeline.fingerprint import CachedKey
from ..resilience.faults import resolve_injector

#: Bump when the canonical encoding or stored payload shape changes; a
#: mismatched database is cleared rather than served.
#: v2: content keys carry the carbon-backend id (the backend-protocol
#: refactor), so a v1 store — keyed without one — is cleared.
#: v3: Monte-Carlo keys carry the backend's own factor-set fingerprint
#: (per-backend uncertainty), and baseline store fingerprints pin model
#: constants (LCA ``cpa_scale``, first-order coefficients) — a v2 store,
#: keyed on the shared Table 2 factors whatever the backend, could serve
#: stale per-backend results and is rebuilt instead.
#: v4: keys are tenant-namespaced (see :mod:`repro.tenancy.namespace`).
#: The anonymous/legacy namespace keeps the *unsalted* v3 digest
#: byte-for-byte, so a v3 store is **adopted** — its rows become the
#: anonymous namespace, which is exactly who wrote them — rather than
#: wiped; named tenants hash to disjoint keys a v3 store cannot contain,
#: so adoption can never serve a wrong-tenant result.
STORE_FORMAT_VERSION = 4

#: Prior versions whose rows remain valid under the current format
#: (mapped into the anonymous namespace); anything else is wiped.
_ADOPTABLE_VERSIONS = ("3",)


class StoreError(CarbonModelError):
    """The result store cannot serve (corrupt file, closed handle, ...)."""


def canonical_text(value) -> str:
    """A deterministic, session-stable rendering of a fingerprint value.

    Handles exactly the shapes pipeline fingerprints are made of — frozen
    dataclasses, enums, tuples/lists, dicts, strings, numbers, ``None``
    and :class:`~repro.pipeline.fingerprint.CachedKey` wrappers — and
    refuses anything else (a silent fallback would risk two different
    requests sharing a key). Floats render via ``repr``, which
    round-trips exactly.
    """
    if value is None or value is True or value is False:
        return repr(value)
    if isinstance(value, CachedKey):
        return canonical_text(value.value)
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, (tuple, list)):
        return "(" + ",".join(canonical_text(item) for item in value) + ")"
    if isinstance(value, dict):
        items = sorted(
            (canonical_text(k), canonical_text(v)) for k, v in value.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if is_dataclass(value) and not isinstance(value, type):
        parts = ",".join(
            f"{f.name}={canonical_text(getattr(value, f.name))}"
            for f in dataclass_fields(value)
        )
        return f"{type(value).__name__}({parts})"
    raise StoreError(
        f"cannot canonically encode {type(value).__name__!r} into a "
        f"content key"
    )


def content_key(value) -> str:
    """SHA-256 digest of :func:`canonical_text` — the store's address."""
    return hashlib.sha256(canonical_text(value).encode("utf-8")).hexdigest()


_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS results (
    key       TEXT PRIMARY KEY,
    payload   TEXT NOT NULL,
    created   REAL NOT NULL,
    last_used INTEGER NOT NULL,
    use_count INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_results_last_used ON results (last_used);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS claims (
    key     TEXT PRIMARY KEY,
    owner   TEXT NOT NULL,
    expires REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS usage (
    tenant  TEXT NOT NULL,
    field   TEXT NOT NULL,
    value   INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (tenant, field)
);
"""

#: SQLite sidecar files that must travel with a quarantined database —
#: a WAL left behind would replay stale (possibly corrupt) pages into
#: the freshly rebuilt file.
_SIDECAR_SUFFIXES = ("-wal", "-shm")


def _is_busy(error: sqlite3.OperationalError) -> bool:
    """Whether an OperationalError is SQLITE_BUSY/SQLITE_LOCKED contention."""
    message = str(error).lower()
    return "locked" in message or "busy" in message


class ResultStore:
    """SQLite-backed content-addressed cache of finished evaluations.

    ``path`` may be ``":memory:"`` (tests) or a filesystem path; the
    connection is shared across the server's request threads behind one
    lock (evaluations dominate request cost by orders of magnitude, so a
    single writer is not a throughput concern).

    ``faults`` accepts a :class:`~repro.resilience.FaultPlan` (or
    injector) whose ``store.*`` rules fire inside the real error-handling
    paths — the quarantine, busy-retry and close branches are exercised
    by injection, not just by luck. ``busy_retries``/``busy_backoff_s``
    bound the retry-on-contention loop.
    """

    def __init__(
        self,
        path: "str | Path" = ":memory:",
        max_entries: int = 100_000,
        policy: "EvictionPolicy | None" = None,
        faults=None,
        busy_retries: int = 5,
        busy_backoff_s: float = 0.05,
    ) -> None:
        self.path = str(path)
        self.policy = (
            policy if policy is not None
            else EvictionPolicy.for_store(max_entries)
        )
        self.faults = resolve_injector(faults)
        self.busy_retries = max(0, busy_retries)
        self.busy_backoff_s = max(0.0, busy_backoff_s)
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Recovery counters: databases quarantined (open-time integrity
        #: failure or runtime corruption) and busy retries taken.
        self.quarantined = 0
        self.busy_retried = 0
        #: Set to the prior format-version string when this open adopted
        #: a pre-tenancy database into the anonymous namespace.
        self.adopted: "str | None" = None
        #: Lifetime counters accumulate in memory and flush to the meta
        #: table lazily (stats/close, or every
        #: :data:`FLUSH_PENDING_EVERY` observations) — a per-probe
        #: UPSERT would triple the SQL of every cache lookup for pure
        #: bookkeeping. Because the meta table lives in the shared
        #: database file, the flushed counters are *fleet-wide*: every
        #: pre-forked worker accumulates into the same rows, so any one
        #: worker's ``/stats`` reports the whole fleet's story (modulo
        #: up to ``FLUSH_PENDING_EVERY - 1`` not-yet-flushed probes per
        #: peer).
        self._pending = {"hits": 0, "misses": 0, "evictions": 0}
        self._lock = threading.Lock()
        with self._lock:
            self._open_checked()

    # -- connection lifecycle (caller holds the lock) ------------------------

    def _open_raw(self) -> None:
        try:
            self._conn = sqlite3.connect(self.path, check_same_thread=False)
        except sqlite3.Error as error:
            raise StoreError(
                f"cannot open result store at {self.path!r}: {error}"
            ) from error

    def _verify_and_init(self) -> None:
        """Pragmas, integrity check, schema, version — on a raw connection.

        Raises :class:`sqlite3.DatabaseError` when the file is not a
        healthy database (including a failed ``quick_check``) so the
        caller can quarantine and rebuild.
        """
        if self.faults.active:
            self.faults.hit("store.open")
        conn = self._conn
        # A cache may trade durability-on-crash for lookup latency:
        # losing an entry only costs a recomputation.
        conn.execute("PRAGMA journal_mode=WAL")
        conn.execute("PRAGMA synchronous=OFF")
        conn.execute(
            f"PRAGMA busy_timeout={int(self.busy_backoff_s * 1000)}"
        )
        row = conn.execute("PRAGMA quick_check").fetchone()
        verdict = "" if row is None else str(row[0])
        if verdict.lower() != "ok":
            raise sqlite3.DatabaseError(
                f"integrity check failed: {verdict or 'no result'}"
            )
        conn.executescript(_SCHEMA_SQL)
        version = self._meta_get("format_version")
        if version is None:
            self._meta_set("format_version", str(STORE_FORMAT_VERSION))
        elif version in _ADOPTABLE_VERSIONS:
            # Pre-tenancy rows carry the anonymous namespace's exact
            # keys; adopt them in place instead of recomputing a warm
            # cache from scratch.
            self.adopted = version
            self._meta_set("format_version", str(STORE_FORMAT_VERSION))
        elif version != str(STORE_FORMAT_VERSION):
            # A stale format cannot be trusted to share keys; start over.
            conn.execute("DELETE FROM results")
            self._meta_set("format_version", str(STORE_FORMAT_VERSION))
        row = conn.execute(
            "SELECT COALESCE(MAX(last_used), 0) FROM results"
        ).fetchone()
        self._clock = int(row[0])
        conn.commit()

    def _open_checked(self) -> None:
        """Open + verify, quarantining a corrupt database once."""
        self._open_raw()
        try:
            self._verify_and_init()
        except sqlite3.DatabaseError as error:
            self._quarantine(error)
            self._verify_and_init()

    def _quarantine(self, error: BaseException) -> None:
        """Move the corrupt database aside and rebuild a fresh one.

        The quarantined file keeps its bytes for post-mortem under
        ``<name>.corrupt`` (numeric suffix when that exists already);
        WAL/SHM sidecars travel with it so the rebuilt store cannot
        replay their pages.
        """
        try:
            self._conn.close()
        except sqlite3.Error:
            pass
        if self.path != ":memory:":
            base = Path(self.path)
            target = base.with_name(base.name + ".corrupt")
            ordinal = 0
            while target.exists():
                ordinal += 1
                target = base.with_name(f"{base.name}.corrupt.{ordinal}")
            try:
                base.rename(target)
            except OSError:
                # Last resort: a file that cannot even be renamed must
                # not stay in the store's path.
                base.unlink(missing_ok=True)
            for suffix in _SIDECAR_SUFFIXES:
                sidecar = Path(self.path + suffix)
                if sidecar.exists():
                    try:
                        sidecar.rename(Path(str(target) + suffix))
                    except OSError:
                        sidecar.unlink(missing_ok=True)
            print(
                f"[carbon3d] result store corrupt ({error}); quarantined "
                f"to {target} and rebuilding",
                file=sys.stderr,
                flush=True,
            )
        self.quarantined += 1
        self._open_raw()

    def _run(self, site: str, op):
        """Execute ``op`` with bounded busy retries and corruption healing.

        Caller holds the lock. ``SQLITE_BUSY``-style contention retries
        up to ``busy_retries`` times with linear backoff; any other
        :class:`sqlite3.DatabaseError` quarantines the database and runs
        ``op`` once against the rebuilt store (a cache may always start
        cold). Persistent failures surface as typed :class:`StoreError`.
        """
        attempts = 0
        healed = False
        while True:
            try:
                if self.faults.active:
                    self.faults.hit(site)
                return op()
            except sqlite3.OperationalError as error:
                if _is_busy(error) and attempts < self.busy_retries:
                    attempts += 1
                    self.busy_retried += 1
                    try:
                        self._conn.rollback()
                    except sqlite3.Error:
                        pass
                    time.sleep(self.busy_backoff_s * attempts)
                    continue
                if not _is_busy(error) and not healed:
                    healed = True
                    self._quarantine(error)
                    self._verify_and_init()
                    continue
                raise StoreError(
                    f"result store failed on {site}: {error}"
                ) from error
            except sqlite3.DatabaseError as error:
                if healed:
                    raise StoreError(
                        f"result store failed on {site} after rebuild: "
                        f"{error}"
                    ) from error
                healed = True
                self._quarantine(error)
                self._verify_and_init()

    # -- meta helpers (caller holds the lock) -------------------------------

    def _meta_get(self, key: str) -> "str | None":
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def _meta_set(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    #: Flush pending lifetime counters to the shared meta table after
    #: this many un-flushed observations — frequent enough that a peer
    #: worker's ``/stats`` sees near-live fleet-wide counters, rare
    #: enough that the amortized SQL cost per lookup stays negligible.
    FLUSH_PENDING_EVERY = 32

    def _flush_lifetime(self) -> None:
        for name, amount in self._pending.items():
            if amount:
                current = self._meta_get(f"lifetime_{name}")
                self._meta_set(
                    f"lifetime_{name}",
                    str((int(current) if current else 0) + amount),
                )
                self._pending[name] = 0
        self._conn.commit()

    def _maybe_flush_lifetime(self) -> None:
        """Flush inside the caller's lock once enough probes piled up."""
        if sum(self._pending.values()) >= self.FLUSH_PENDING_EVERY:
            try:
                self._flush_lifetime()
            except sqlite3.Error:
                # Pure bookkeeping: a contended flush retries on the
                # next threshold crossing instead of failing the lookup.
                pass

    # -- the cache interface -------------------------------------------------

    def get(self, key: str) -> "str | None":
        """The stored payload for ``key``, marking it most-recently-used.

        A corruption mid-``get`` heals the store and reports a miss (the
        rebuilt database is empty by construction) — callers recompute,
        exactly as for any cold key.
        """

        def op() -> "str | None":
            row = self._conn.execute(
                "SELECT payload FROM results WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                return None
            self._clock += 1
            self._conn.execute(
                "UPDATE results SET last_used = ?, use_count = use_count + 1 "
                "WHERE key = ?",
                (self._clock, key),
            )
            self._conn.commit()
            return row[0]

        with self._lock:
            payload = self._run("store.get", op)
            if payload is None:
                self.misses += 1
                self._pending["misses"] += 1
            else:
                self.hits += 1
                self._pending["hits"] += 1
            self._maybe_flush_lifetime()
            return payload

    def peek(self, key: str) -> "str | None":
        """The stored payload without touching stats or LRU recency.

        The claim-wait poll loop (see :meth:`try_claim`) probes a key
        many times per second while a peer worker computes; counting
        each probe as a miss would swamp the hit-ratio stats, and
        bumping recency for a key about to be fetched anyway is wasted
        SQL. One real :meth:`get` follows when the payload lands.
        """

        def op() -> "str | None":
            row = self._conn.execute(
                "SELECT payload FROM results WHERE key = ?", (key,)
            ).fetchone()
            return None if row is None else row[0]

        with self._lock:
            return self._run("store.peek", op)

    # -- claim rows: cross-process exactly-one-compute -----------------------

    def try_claim(
        self, key: str, owner: str, ttl_s: float
    ) -> "tuple[bool, bool]":
        """Atomically claim ``key`` for ``owner`` → ``(acquired, stale)``.

        A claim row says "a worker process is computing this key right
        now" — the cross-process twin of the dispatcher's in-flight
        coalescing map. The insert is atomic at the SQLite level, so
        exactly one process of a pre-forked fleet wins a contested key.
        An *expired* claim (a worker killed mid-compute never released
        it) is evicted first, so a dead owner can never wedge a key past
        its TTL; ``stale`` reports that an expired claim was swept in
        the process.
        """

        def op() -> "tuple[bool, bool]":
            now = time.time()
            stale = self._conn.execute(
                "DELETE FROM claims WHERE key = ? AND expires <= ?",
                (key, now),
            ).rowcount
            cursor = self._conn.execute(
                "INSERT INTO claims (key, owner, expires) VALUES (?, ?, ?) "
                "ON CONFLICT(key) DO NOTHING",
                (key, owner, now + ttl_s),
            )
            self._conn.commit()
            return cursor.rowcount == 1, stale > 0

        with self._lock:
            return self._run("store.claim", op)

    def release_claim(self, key: str, owner: str) -> None:
        """Drop ``owner``'s claim on ``key`` (a foreign claim is kept)."""

        def op() -> None:
            self._conn.execute(
                "DELETE FROM claims WHERE key = ? AND owner = ?",
                (key, owner),
            )
            self._conn.commit()

        with self._lock:
            self._run("store.claim", op)

    def claim_active(self, key: str) -> bool:
        """Whether a live (unexpired) claim currently covers ``key``."""

        def op() -> bool:
            row = self._conn.execute(
                "SELECT expires FROM claims WHERE key = ?", (key,)
            ).fetchone()
            return row is not None and row[0] > time.time()

        with self._lock:
            return self._run("store.claim", op)

    def put(self, key: str, payload: str) -> None:
        """Insert (or refresh) a payload, evicting LRU entries past the bound."""

        def op() -> None:
            self._clock += 1
            self._conn.execute(
                "INSERT INTO results (key, payload, created, last_used, "
                "use_count) VALUES (?, ?, ?, ?, 0) "
                "ON CONFLICT(key) DO UPDATE SET payload = excluded.payload, "
                "last_used = excluded.last_used",
                (key, payload, time.time(), self._clock),
            )
            count = self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]
            overflow = count - self.policy.max_entries
            if overflow > 0:
                drop = max(self.policy.evict_batch, overflow)
                cursor = self._conn.execute(
                    "DELETE FROM results WHERE key IN ("
                    "SELECT key FROM results WHERE key != ? "
                    "ORDER BY last_used ASC LIMIT ?)",
                    (key, drop),
                )
                self.evictions += cursor.rowcount
                self._pending["evictions"] += cursor.rowcount
            self._conn.commit()

        with self._lock:
            self._run("store.put", op)
            self._maybe_flush_lifetime()

    # -- usage rows: fleet-wide tenant accounting -----------------------------

    def add_usage(self, tenant: str, deltas: "dict[str, int]") -> None:
        """UPSERT-increment usage counters for ``tenant``.

        One commit per served request (the server batches a request's
        deltas into a single call). The rows live in the shared database
        file, so — like the claim rows — they are the fleet's single
        source of truth: every worker increments the same counters, and
        absolute quotas read them back fleet-accurately.
        """

        def op() -> None:
            for field, value in deltas.items():
                self._conn.execute(
                    "INSERT INTO usage (tenant, field, value) "
                    "VALUES (?, ?, ?) "
                    "ON CONFLICT(tenant, field) "
                    "DO UPDATE SET value = value + excluded.value",
                    (tenant, field, int(value)),
                )
            self._conn.commit()

        with self._lock:
            self._run("store.usage", op)

    def usage_totals(self, tenant: str) -> "dict[str, int]":
        """Live counters for one tenant (empty dict when unseen)."""

        def op() -> "dict[str, int]":
            rows = self._conn.execute(
                "SELECT field, value FROM usage WHERE tenant = ?",
                (tenant,),
            ).fetchall()
            return {field: int(value) for field, value in rows}

        with self._lock:
            return self._run("store.usage", op)

    def usage_all(self) -> "dict[str, dict[str, int]]":
        """Counters for every tenant the store has ever accounted."""

        def op() -> "dict[str, dict[str, int]]":
            rows = self._conn.execute(
                "SELECT tenant, field, value FROM usage"
            ).fetchall()
            totals: "dict[str, dict[str, int]]" = {}
            for tenant, field, value in rows:
                totals.setdefault(tenant, {})[field] = int(value)
            return totals

        with self._lock:
            return self._run("store.usage", op)

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return self._conn.execute(
                "SELECT 1 FROM results WHERE key = ?", (key,)
            ).fetchone() is not None

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM results")
            self._conn.execute("DELETE FROM claims")
            self._conn.commit()
        self.hits = self.misses = self.evictions = 0

    def stats(self) -> dict:
        """Instance and lifetime counters, JSON-ready for ``/stats``.

        The ``fleet`` block is store-backed (entries, live claims, and
        the lifetime counters from the shared meta table), so in a
        pre-forked deployment it reports the *whole fleet's* traffic
        whichever worker answers the scrape; the top-level hit/miss
        fields stay this process's own. Expired claim rows are swept as
        housekeeping — a dead worker's claims must not linger forever on
        keys nobody re-requests.
        """
        with self._lock:
            self._flush_lifetime()
            self._conn.execute(
                "DELETE FROM claims WHERE expires <= ?", (time.time(),)
            )
            self._conn.commit()
            entries = self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]
            claims = self._conn.execute(
                "SELECT COUNT(*) FROM claims"
            ).fetchone()[0]
            lifetime = {
                name: int(self._meta_get(f"lifetime_{name}") or 0)
                for name in ("hits", "misses", "evictions")
            }
        return {
            "path": self.path,
            "entries": entries,
            "max_entries": self.policy.max_entries,
            "evict_batch": self.policy.evict_batch,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "quarantined": self.quarantined,
            "busy_retried": self.busy_retried,
            "lifetime": lifetime,
            "fleet": {
                "entries": entries,
                "claims": claims,
                **lifetime,
            },
        }

    def close(self) -> None:
        with self._lock:
            try:
                if self.faults.active:
                    self.faults.hit("store.close")
                self._flush_lifetime()
            except sqlite3.Error as error:
                # Losing the lifetime counter flush is acceptable at
                # shutdown; failing to close the handle is not.
                print(
                    f"[carbon3d] result store close: dropping lifetime "
                    f"counter flush ({error})",
                    file=sys.stderr,
                    flush=True,
                )
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
