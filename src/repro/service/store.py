"""Persistent, content-addressed result store (SQLite, stdlib-only).

The store maps a **content key** — the SHA-256 digest of a canonical
rendering of the engine's value fingerprints (see
:func:`canonical_text`) — to the JSON payload of a finished evaluation.
Because the key is derived from the *values* a pipeline stage reads (the
frozen parameter records, the design, the workload, the grid carbon
intensities) plus the id of the carbon backend that computed them, two
requests share an entry exactly when the engine could not distinguish
them — the same sharing rule :mod:`repro.pipeline.fingerprint` applies
in-process, made durable.

Unlike Python's ``hash()`` (randomized per process for strings), the
digest is stable across interpreter sessions, so a server restart keeps
serving from the store instead of recomputing — the ROADMAP's
"cross-session cache persistence" follow-up.

Eviction follows the same :class:`repro.caching.EvictionPolicy` the
engine's in-memory caches use — LRU up to ``max_entries`` — implemented
over a monotonically increasing ``last_used`` clock column (batched
deletes amortize the SQL cost). Hit/miss/eviction statistics are kept
per instance and, cumulatively, in the database itself.
"""

from __future__ import annotations

import enum
import hashlib
import json
import sqlite3
import threading
from dataclasses import fields as dataclass_fields
from dataclasses import is_dataclass
from pathlib import Path

from ..caching import EvictionPolicy
from ..errors import CarbonModelError
from ..pipeline.fingerprint import CachedKey

#: Bump when the canonical encoding or stored payload shape changes; a
#: mismatched database is cleared rather than served.
#: v2: content keys carry the carbon-backend id (the backend-protocol
#: refactor), so a v1 store — keyed without one — is cleared.
#: v3: Monte-Carlo keys carry the backend's own factor-set fingerprint
#: (per-backend uncertainty), and baseline store fingerprints pin model
#: constants (LCA ``cpa_scale``, first-order coefficients) — a v2 store,
#: keyed on the shared Table 2 factors whatever the backend, could serve
#: stale per-backend results and is rebuilt instead.
STORE_FORMAT_VERSION = 3


class StoreError(CarbonModelError):
    """The result store cannot serve (corrupt file, closed handle, ...)."""


def canonical_text(value) -> str:
    """A deterministic, session-stable rendering of a fingerprint value.

    Handles exactly the shapes pipeline fingerprints are made of — frozen
    dataclasses, enums, tuples/lists, dicts, strings, numbers, ``None``
    and :class:`~repro.pipeline.fingerprint.CachedKey` wrappers — and
    refuses anything else (a silent fallback would risk two different
    requests sharing a key). Floats render via ``repr``, which
    round-trips exactly.
    """
    if value is None or value is True or value is False:
        return repr(value)
    if isinstance(value, CachedKey):
        return canonical_text(value.value)
    if isinstance(value, enum.Enum):
        return f"{type(value).__name__}.{value.name}"
    if isinstance(value, str):
        return json.dumps(value)
    if isinstance(value, (int, float)):
        return repr(value)
    if isinstance(value, (tuple, list)):
        return "(" + ",".join(canonical_text(item) for item in value) + ")"
    if isinstance(value, dict):
        items = sorted(
            (canonical_text(k), canonical_text(v)) for k, v in value.items()
        )
        return "{" + ",".join(f"{k}:{v}" for k, v in items) + "}"
    if is_dataclass(value) and not isinstance(value, type):
        parts = ",".join(
            f"{f.name}={canonical_text(getattr(value, f.name))}"
            for f in dataclass_fields(value)
        )
        return f"{type(value).__name__}({parts})"
    raise StoreError(
        f"cannot canonically encode {type(value).__name__!r} into a "
        f"content key"
    )


def content_key(value) -> str:
    """SHA-256 digest of :func:`canonical_text` — the store's address."""
    return hashlib.sha256(canonical_text(value).encode("utf-8")).hexdigest()


_SCHEMA_SQL = """
CREATE TABLE IF NOT EXISTS results (
    key       TEXT PRIMARY KEY,
    payload   TEXT NOT NULL,
    created   REAL NOT NULL,
    last_used INTEGER NOT NULL,
    use_count INTEGER NOT NULL DEFAULT 0
);
CREATE INDEX IF NOT EXISTS idx_results_last_used ON results (last_used);
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
"""


class ResultStore:
    """SQLite-backed content-addressed cache of finished evaluations.

    ``path`` may be ``":memory:"`` (tests) or a filesystem path; the
    connection is shared across the server's request threads behind one
    lock (evaluations dominate request cost by orders of magnitude, so a
    single writer is not a throughput concern).
    """

    def __init__(
        self,
        path: "str | Path" = ":memory:",
        max_entries: int = 100_000,
        policy: "EvictionPolicy | None" = None,
    ) -> None:
        self.path = str(path)
        self.policy = (
            policy if policy is not None
            else EvictionPolicy.for_store(max_entries)
        )
        self.hits = 0
        self.misses = 0
        self.evictions = 0
        #: Lifetime counters accumulate in memory and flush to the meta
        #: table lazily (stats/close) — a per-probe UPSERT would triple
        #: the SQL of every cache lookup for pure bookkeeping.
        self._pending = {"hits": 0, "misses": 0, "evictions": 0}
        self._lock = threading.Lock()
        try:
            self._conn = sqlite3.connect(
                self.path, check_same_thread=False
            )
        except sqlite3.Error as error:  # pragma: no cover - bad path
            raise StoreError(f"cannot open result store: {error}") from error
        with self._lock:
            # A cache may trade durability-on-crash for lookup latency:
            # losing an entry only costs a recomputation.
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=OFF")
            self._conn.executescript(_SCHEMA_SQL)
            version = self._meta_get("format_version")
            if version is None:
                self._meta_set("format_version", str(STORE_FORMAT_VERSION))
            elif version != str(STORE_FORMAT_VERSION):
                # A stale format cannot be trusted to share keys; start over.
                self._conn.execute("DELETE FROM results")
                self._meta_set("format_version", str(STORE_FORMAT_VERSION))
            row = self._conn.execute(
                "SELECT COALESCE(MAX(last_used), 0) FROM results"
            ).fetchone()
            self._clock = int(row[0])
            self._conn.commit()

    # -- meta helpers (caller holds the lock) -------------------------------

    def _meta_get(self, key: str) -> "str | None":
        row = self._conn.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return None if row is None else row[0]

    def _meta_set(self, key: str, value: str) -> None:
        self._conn.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    def _flush_lifetime(self) -> None:
        for name, amount in self._pending.items():
            if amount:
                current = self._meta_get(f"lifetime_{name}")
                self._meta_set(
                    f"lifetime_{name}",
                    str((int(current) if current else 0) + amount),
                )
                self._pending[name] = 0
        self._conn.commit()

    # -- the cache interface -------------------------------------------------

    def get(self, key: str) -> "str | None":
        """The stored payload for ``key``, marking it most-recently-used."""
        with self._lock:
            row = self._conn.execute(
                "SELECT payload FROM results WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                self.misses += 1
                self._pending["misses"] += 1
                return None
            self._clock += 1
            self._conn.execute(
                "UPDATE results SET last_used = ?, use_count = use_count + 1 "
                "WHERE key = ?",
                (self._clock, key),
            )
            self.hits += 1
            self._pending["hits"] += 1
            self._conn.commit()
            return row[0]

    def put(self, key: str, payload: str) -> None:
        """Insert (or refresh) a payload, evicting LRU entries past the bound."""
        import time

        with self._lock:
            self._clock += 1
            self._conn.execute(
                "INSERT INTO results (key, payload, created, last_used, "
                "use_count) VALUES (?, ?, ?, ?, 0) "
                "ON CONFLICT(key) DO UPDATE SET payload = excluded.payload, "
                "last_used = excluded.last_used",
                (key, payload, time.time(), self._clock),
            )
            count = self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]
            overflow = count - self.policy.max_entries
            if overflow > 0:
                drop = max(self.policy.evict_batch, overflow)
                cursor = self._conn.execute(
                    "DELETE FROM results WHERE key IN ("
                    "SELECT key FROM results WHERE key != ? "
                    "ORDER BY last_used ASC LIMIT ?)",
                    (key, drop),
                )
                self.evictions += cursor.rowcount
                self._pending["evictions"] += cursor.rowcount
            self._conn.commit()

    def __len__(self) -> int:
        with self._lock:
            return self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return self._conn.execute(
                "SELECT 1 FROM results WHERE key = ?", (key,)
            ).fetchone() is not None

    def clear(self) -> None:
        with self._lock:
            self._conn.execute("DELETE FROM results")
            self._conn.commit()
        self.hits = self.misses = self.evictions = 0

    def stats(self) -> dict:
        """Instance and lifetime counters, JSON-ready for ``/stats``."""
        with self._lock:
            self._flush_lifetime()
            entries = self._conn.execute(
                "SELECT COUNT(*) FROM results"
            ).fetchone()[0]
            lifetime = {
                name: int(self._meta_get(f"lifetime_{name}") or 0)
                for name in ("hits", "misses", "evictions")
            }
        return {
            "path": self.path,
            "entries": entries,
            "max_entries": self.policy.max_entries,
            "evict_batch": self.policy.evict_batch,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "lifetime": lifetime,
        }

    def close(self) -> None:
        with self._lock:
            try:
                self._flush_lifetime()
            except sqlite3.Error:  # pragma: no cover - already closed
                pass
            self._conn.close()

    def __enter__(self) -> "ResultStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
