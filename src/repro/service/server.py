"""The HTTP face of the service: a stdlib-only threaded JSON API.

``CarbonService`` is a :class:`http.server.ThreadingHTTPServer` whose
handler routes:

* ``POST /evaluate``   — one point → a lifecycle report;
* ``POST /batch``      — many points, deduplicated;
* ``POST /sweep``      — integration × fab-location grid of a reference;
* ``POST /montecarlo`` — a Monte-Carlo uncertainty summary drawn from
  the chosen backend's own factor set;
* ``POST /compare``    — one design across all (or listed) backends in
  one engine batch, optionally with per-backend uncertainty bands;
* ``POST /tornado``    — the one-at-a-time sensitivity study over the
  backend's own factor set;
* ``GET  /healthz``    — liveness + config echo;
* ``GET  /stats``      — dispatcher / engine / store counters.

Validation errors answer 400 with the typed error envelope of
:mod:`repro.service.schema`; unknown routes answer 404; unexpected
failures answer 500 (the error type still in the payload). Worker
threads share one :class:`~repro.service.dispatcher.Dispatcher`, whose
store/in-flight coalescing makes concurrent identical requests cheap.

**Streaming.** ``/batch`` and ``/sweep`` requests carrying
``"stream": true`` answer ``application/x-ndjson``: one header line
(``{"schema": 1, "ok": true, "stream": <kind>, "points": N}``), then one
line per point **as it finishes** — store hits immediately, computed
points right after their engine call lands (each feeding the store) —
and a ``{"done": true, "points": N}`` terminator. Entries keep input
order and carry an explicit ``index``. A mid-stream failure emits one
final ``{"ok": false, "error": {...}}`` line (the status line already
went out as 200, so the error rides in-band).

**Auth.** With ``token=...`` (``carbon3d serve --token``) every route
except ``GET /healthz`` requires a matching ``X-Carbon3D-Token`` header;
mismatches answer 401 with a typed ``AuthError`` payload.
"""

from __future__ import annotations

import hmac
import json
import sys
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..config.parameters import ParameterSet
from ..errors import CarbonModelError
from . import schema
from .dispatcher import Dispatcher
from .store import ResultStore

#: Request bodies above this size are refused outright (16 MiB of JSON
#: is far beyond any legitimate batch under the schema's point limits).
MAX_BODY_BYTES = 16 * 1024 * 1024


class ServiceHandler(BaseHTTPRequestHandler):
    """Route requests to the owning :class:`CarbonService`'s dispatcher."""

    server: "CarbonService"
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------------

    def log_message(self, format: str, *args) -> None:  # noqa: A002
        if self.server.verbose:
            sys.stderr.write(
                "[carbon3d] %s %s\n" % (self.address_string(), format % args)
            )

    def _send_json(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Advertise what the server is about to do anyway (set when a
            # request body was never drained off a keep-alive socket).
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, status: int, error: Exception) -> None:
        self._send_json(status, schema.error_envelope(error))

    def _authorized(self) -> bool:
        """Shared-secret check; ``GET /healthz`` stays open for probes."""
        token = self.server.token
        if token is None or self.path == "/healthz":
            return True
        provided = self.headers.get("X-Carbon3D-Token")
        return provided is not None and hmac.compare_digest(provided, token)

    def _send_stream(self, kind: str, total: int, entries) -> None:
        """Write an NDJSON point stream (see the module docstring)."""
        # The response has no Content-Length — the body ends when the
        # connection closes, so keep-alive reuse is off the table.
        self.close_connection = True
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Connection", "close")
        self.end_headers()

        def write_line(payload: dict) -> None:
            self.wfile.write(json.dumps(payload).encode("utf-8") + b"\n")
            self.wfile.flush()

        write_line({
            "schema": schema.SCHEMA_VERSION,
            "ok": True,
            "stream": kind,
            "points": total,
        })
        try:
            for entry in entries:
                write_line(entry)
        except Exception as error:
            # Too late for a non-200 status; the error rides in-band as
            # the stream's final line.
            self.server.dispatcher.stats.errors += 1
            write_line(schema.error_envelope(error))
            return
        write_line({"done": True, "points": total})

    def _read_json_body(self) -> dict:
        # Until the body is fully read off the socket, answering on a
        # keep-alive connection would leave the unread bytes to be parsed
        # as the next HTTP request — poison the connection instead of
        # reusing it.
        self.close_connection = True
        length = self.headers.get("Content-Length")
        try:
            length = int(length)
        except (TypeError, ValueError):
            raise schema.SchemaError(
                "request needs a Content-Length header and a JSON body"
            ) from None
        if not 0 < length <= MAX_BODY_BYTES:
            raise schema.SchemaError(
                f"request body must be 1..{MAX_BODY_BYTES} bytes, "
                f"got {length}"
            )
        raw = self.rfile.read(length)
        self.close_connection = False
        try:
            return json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as error:
            raise schema.SchemaError(
                f"request body is not valid JSON: {error}"
            ) from None

    # -- routes --------------------------------------------------------------

    def do_GET(self) -> None:  # noqa: N802 (http.server API)
        try:
            if not self._authorized():
                self._send_error(
                    401, schema.AuthError("missing or invalid service token")
                )
            elif self.path == "/healthz":
                self._send_json(200, self.server.health_payload())
            elif self.path == "/stats":
                self._send_json(
                    200,
                    schema.ok_envelope(self.server.dispatcher.stats_dict()),
                )
            else:
                self._send_error(
                    404, schema.SchemaError(f"no such route: {self.path}")
                )
        except Exception as error:  # pragma: no cover - defensive
            self.server.dispatcher.stats.errors += 1
            self._send_error(500, error)

    def do_POST(self) -> None:  # noqa: N802 (http.server API)
        dispatcher = self.server.dispatcher
        try:
            if not self._authorized():
                # The body stays unread, so the connection cannot be
                # reused — close it rather than parse attacker bytes.
                self.close_connection = True
                self._send_error(
                    401, schema.AuthError("missing or invalid service token")
                )
                return
            body = self._read_json_body()
            if self.path == "/evaluate":
                request = schema.parse_evaluate_request(body)
                result, source = dispatcher.evaluate(request)
                self._send_json(
                    200, schema.ok_envelope(result, cache=source)
                )
            elif self.path == "/batch":
                request = schema.parse_batch_request(body)
                if request.stream:
                    total, entries = dispatcher.stream_batch(request)
                    self._send_stream("batch", total, entries)
                else:
                    self._send_json(
                        200, schema.ok_envelope(dispatcher.batch(request))
                    )
            elif self.path == "/sweep":
                request = schema.parse_sweep_request(body)
                if request.stream:
                    total, entries = dispatcher.stream_sweep(request)
                    self._send_stream("sweep", total, entries)
                else:
                    self._send_json(
                        200, schema.ok_envelope(dispatcher.sweep(request))
                    )
            elif self.path == "/montecarlo":
                request = schema.parse_montecarlo_request(body)
                result, source = dispatcher.montecarlo(request)
                self._send_json(
                    200, schema.ok_envelope(result, cache=source)
                )
            elif self.path == "/compare":
                request = schema.parse_compare_request(body)
                self._send_json(
                    200, schema.ok_envelope(dispatcher.compare(request))
                )
            elif self.path == "/tornado":
                request = schema.parse_tornado_request(body)
                result, source = dispatcher.tornado(request)
                self._send_json(
                    200, schema.ok_envelope(result, cache=source)
                )
            else:
                self._send_error(
                    404, schema.SchemaError(f"no such route: {self.path}")
                )
        except CarbonModelError as error:
            dispatcher.stats.errors += 1
            self._send_error(400, error)
        except Exception as error:
            dispatcher.stats.errors += 1
            self._send_error(500, error)


class CarbonService(ThreadingHTTPServer):
    """A carbon-evaluation server bound to one dispatcher + result store."""

    daemon_threads = True

    def __init__(
        self,
        address: "tuple[str, int]" = ("127.0.0.1", 0),
        params: "ParameterSet | None" = None,
        fab_location: "str | float" = "taiwan",
        store_path: "str | None" = None,
        store: "ResultStore | None" = None,
        max_entries: int = 100_000,
        verbose: bool = False,
        token: "str | None" = None,
    ) -> None:
        super().__init__(address, ServiceHandler)
        if store is None and store_path is not None:
            store = ResultStore(store_path, max_entries=max_entries)
        self.store = store
        #: Optional shared secret; when set, requests (except
        #: ``GET /healthz``) must carry it as ``X-Carbon3D-Token``.
        self.token = token
        self.dispatcher = Dispatcher(
            params=params, fab_location=fab_location, store=store
        )
        self.verbose = verbose
        self.started_s = time.time()
        self._serving = False

    @property
    def url(self) -> str:
        host, port = self.server_address[:2]
        return f"http://{host}:{port}"

    def health_payload(self) -> dict:
        from ..pipeline.registry import backend_names

        return schema.ok_envelope({
            "status": "ok",
            "schema": schema.SCHEMA_VERSION,
            "uptime_s": time.time() - self.started_s,
            "fab_location": self.dispatcher.fab_location,
            "store": None if self.store is None else self.store.path,
            "backends": list(backend_names()),
            "auth": self.token is not None,
            "endpoints": [
                "/evaluate", "/batch", "/sweep", "/montecarlo", "/compare",
                "/tornado", "/healthz", "/stats",
            ],
        })

    def serve_forever(self, poll_interval: float = 0.5) -> None:
        self._serving = True
        try:
            super().serve_forever(poll_interval)
        finally:
            self._serving = False

    def handle_error(self, request, client_address) -> None:
        """Keep routine client disconnects out of the server log.

        A keep-alive client closing its socket lands here as a
        ConnectionError from the blocked readline; the socketserver
        default would print a full traceback per disconnect.
        """
        import sys as _sys

        error = _sys.exc_info()[1]
        if isinstance(error, (ConnectionError, TimeoutError)):
            return
        if self.verbose:
            super().handle_error(request, client_address)
        else:
            _sys.stderr.write(
                f"[carbon3d] request error from {client_address}: "
                f"{type(error).__name__}: {error}\n"
            )

    def close(self) -> None:
        """Shut down the listener and release the store handle.

        Safe to call on a server that never entered ``serve_forever`` —
        ``shutdown()`` would otherwise block forever waiting on the serve
        loop's completion event.
        """
        if self._serving:
            self.shutdown()
        self.server_close()
        if self.store is not None:
            self.store.close()


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    **kwargs,
) -> CarbonService:
    """Bind a service (``port=0`` picks a free port; nothing runs yet)."""
    return CarbonService(address=(host, port), **kwargs)


def serve_forever(service: CarbonService) -> None:
    """Run until interrupted, then close cleanly."""
    try:
        service.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive
        pass
    finally:
        service.close()
